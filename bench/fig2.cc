/**
 * @file
 * Reproduces paper Figure 2: multiplexed single-bus effective
 * bandwidth vs r (p = 1), for both bus-grant priorities and several
 * n x m configurations, with the equivalent crossbar EBW (cycle
 * (r+2)t, hence r-independent) as the flat comparison lines.
 *
 * Shape properties reported by the paper and checked here:
 *  - EBW grows with r, toward the (r+2)/2 ceiling for small r;
 *  - priority to processors (g') beats priority to memories (g'');
 *  - as r grows the single-bus EBW approaches the crossbar value
 *    from above, with the crossbar acting as the large-r floor.
 */

#include "bench_common.hh"

#include <algorithm>

#include "analytic/crossbar.hh"

namespace {

struct Config
{
    int n, m;
};
constexpr Config kConfigs[] = {{4, 4}, {8, 8}, {8, 16}, {16, 16}};
constexpr int kRs[] = {2, 4, 6, 8, 12, 16, 20, 24};

void
printReproduction()
{
    using namespace sbn;
    using namespace sbn::bench;

    banner("Figure 2",
           "EBW vs r, p = 1: single-bus under g' (proc priority) and "
           "g'' (mem priority)\nvs the crossbar with basic cycle "
           "(r+2)t. One series pair per n x m.");

    for (const auto &[n, m] : kConfigs) {
        const double xbar = crossbarEbw(n, m);
        std::printf("%dx%d (crossbar EBW = %.3f)\n", n, m, xbar);
        std::printf("  %4s  %12s  %12s  %9s  %15s\n", "r",
                    "g' proc-prio", "g'' mem-prio", "crossbar",
                    "(r+2)/2 ceiling");

        // One parallel streamed sweep per panel: r x policy grid, two
        // cells per printed row (r outer, policy inner). Rows print
        // as soon as they and their predecessors finish.
        SweepSpec spec;
        spec.base = simConfig(n, m, kRs[0],
                              ArbitrationPolicy::ProcessorPriority,
                              false);
        spec.memoryRatios.assign(std::begin(kRs), std::end(kRs));
        spec.policies = {ArbitrationPolicy::ProcessorPriority,
                         ArbitrationPolicy::MemoryPriority};
        const std::vector<double> grid = sweepEbwStreamed(
            spec, 2,
            [&](std::size_t row, const std::vector<double> &cells) {
                std::printf("  %4d  %12.3f  %12.3f  %9.3f  %15.1f\n",
                            kRs[row], cells[0], cells[1], xbar,
                            (kRs[row] + 2) / 2.0);
                std::fflush(stdout);
            });

        // Shape assertions echoed in the output; look the r=4 row up
        // by value so edits to kRs cannot shift the check.
        const std::size_t r4 =
            std::find(spec.memoryRatios.begin(),
                      spec.memoryRatios.end(), 4) -
            spec.memoryRatios.begin();
        const double proc_r4 = grid[2 * r4];
        const double mem_r4 = grid[2 * r4 + 1];
        // In bench shard mode cells another shard owns are NaN; a
        // NaN comparison must read as "not checked here", not as a
        // paper-property violation.
        const char *verdict =
            std::isnan(proc_r4) || std::isnan(mem_r4)
                ? "n/a (cells off-shard)"
                : (proc_r4 >= mem_r4 - 0.02 ? "OK" : "VIOLATED");
        std::printf("  g' >= g'' at r=4: %.3f >= %.3f  %s\n\n", proc_r4,
                    mem_r4, verdict);
    }
}

void
BM_Fig2Point(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig cfg =
            simConfig(8, 8, static_cast<int>(state.range(0)),
                      ArbitrationPolicy::ProcessorPriority, false);
        cfg.warmupCycles = 1000;
        cfg.measureCycles = 50000;
        cfg.seed = seed++;
        benchmark::DoNotOptimize(runEbw(cfg));
    }
}
BENCHMARK(BM_Fig2Point)->Arg(4)->Arg(24)->Unit(benchmark::kMillisecond);

} // namespace

SBN_BENCH_MAIN(printReproduction)
