/**
 * @file
 * Ablation studies over the design choices DESIGN.md calls out.
 * These go beyond the paper's published grids:
 *
 *  A1. arbitration tie-break: random (paper hypothesis (h)) vs
 *      oldest-first - EBW is insensitive, fairness improves slightly.
 *  A2. buffer depth: input capacity 1/2/4/unbounded - how much of the
 *      Section 6 gain small real SRAM buffers already capture.
 *  A3. output buffer depth: 1 vs unbounded (blocking effects).
 *  A4. policy x buffering matrix at a reference point.
 *  A5. non-uniform (hot-spot) reference extension: EBW degradation as
 *      one module receives a growing share of the traffic, buffered
 *      vs not (the paper assumes uniform reference, hypothesis (e)).
 */

#include "bench_common.hh"

#include <numeric>

namespace {

void
printReproduction()
{
    using namespace sbn;
    using namespace sbn::bench;

    banner("Ablations",
           "Design-choice studies beyond the paper's grids "
           "(n = 8, m = 8, r = 8 reference point unless noted).");

    // ---- A1: tie-break rule ------------------------------------------
    {
        TextTable table("A1. arbitration tie-break (n=8, m=8, r=8, "
                        "unbuffered, proc priority)");
        table.setHeader({"rule", "EBW", "mean wait", "max-min proc "
                         "completions"});
        for (auto rule : {SelectionRule::Random,
                          SelectionRule::OldestFirst}) {
            SystemConfig cfg = simConfig(
                8, 8, 8, ArbitrationPolicy::ProcessorPriority, false);
            cfg.selection = rule;
            const Metrics m = runOnce(cfg);
            std::uint64_t lo = m.perProcessorCompletions[0];
            std::uint64_t hi = lo;
            for (auto c : m.perProcessorCompletions) {
                lo = std::min(lo, c);
                hi = std::max(hi, c);
            }
            table.addRow({rule == SelectionRule::Random ? "random"
                                                        : "oldest-first",
                          TextTable::formatNumber(m.ebw, 3),
                          TextTable::formatNumber(m.meanWaitCycles, 2),
                          std::to_string(hi - lo)});
        }
        table.print(std::cout);
    }

    // ---- A2: input buffer depth ---------------------------------------
    {
        TextTable table("\nA2. input buffer depth (n=8, m=4, r=12, "
                        "buffered, proc priority)");
        table.setHeader({"input capacity", "EBW", "% of unbounded gain"});
        SystemConfig base = simConfig(
            8, 4, 12, ArbitrationPolicy::ProcessorPriority, false);
        const double plain = runEbw(base);
        base.buffered = true;
        const double unbounded = runEbw(base);
        for (int cap : {1, 2, 4, 0}) {
            SystemConfig cfg = base;
            cfg.inputCapacity = cap;
            const double e = runEbw(cfg);
            const double share =
                (e - plain) / std::max(unbounded - plain, 1e-9);
            table.addRow({cap == 0 ? "unbounded" : std::to_string(cap),
                          TextTable::formatNumber(e, 3),
                          TextTable::formatNumber(100.0 * share, 1)});
        }
        table.print(std::cout);
        std::printf("unbuffered reference EBW = %.3f\n", plain);
    }

    // ---- A3: output buffer depth --------------------------------------
    {
        TextTable table("\nA3. output buffer depth (n=8, m=4, r=8)");
        table.setHeader({"output capacity", "EBW"});
        for (int cap : {1, 2, 0}) {
            SystemConfig cfg = simConfig(
                8, 4, 8, ArbitrationPolicy::ProcessorPriority, true);
            cfg.outputCapacity = cap;
            table.addRow({cap == 0 ? "unbounded" : std::to_string(cap),
                          TextTable::formatNumber(runEbw(cfg), 3)});
        }
        table.print(std::cout);
    }

    // ---- A4: policy x buffering ---------------------------------------
    {
        TextTable table("\nA4. policy x buffering EBW (n=8, m=8, r=8)");
        table.setHeader({"", "unbuffered", "buffered"});
        for (auto policy : {ArbitrationPolicy::ProcessorPriority,
                            ArbitrationPolicy::MemoryPriority}) {
            std::vector<std::string> row{
                policy == ArbitrationPolicy::ProcessorPriority
                    ? "proc priority (g')"
                    : "mem priority (g'')"};
            for (bool buffered : {false, true})
                row.push_back(TextTable::formatNumber(
                    ebw(8, 8, 8, policy, buffered), 3));
            table.addRow(row);
        }
        table.print(std::cout);
    }

    // ---- A5: hot-spot reference ---------------------------------------
    {
        TextTable table("\nA5. hot-spot traffic (n=8, m=8, r=8): one "
                        "module weighted w, others 1");
        table.setHeader({"hot weight", "unbuffered EBW", "buffered EBW"});
        constexpr double kHotWeights[] = {1.0, 2.0, 4.0, 8.0};
        std::vector<SystemConfig> points;
        for (double w : kHotWeights) {
            std::vector<double> weights(8, 1.0);
            weights[0] = w;
            SystemConfig plain = simConfig(
                8, 8, 8, ArbitrationPolicy::ProcessorPriority, false);
            plain.workload.pattern = ReferencePattern::Weighted;
            plain.workload.moduleWeights = weights;
            SystemConfig buf = plain;
            buf.buffered = true;
            points.push_back(plain);
            points.push_back(buf);
        }
        const std::vector<double> results = sweepEbw(points);
        for (std::size_t i = 0; i < std::size(kHotWeights); ++i)
            table.addNumericRow(
                TextTable::formatNumber(kHotWeights[i], 0),
                {results[2 * i], results[2 * i + 1]});
        table.print(std::cout);
        std::printf("hot-spotting degrades both organizations; "
                    "buffering keeps an edge but cannot\nremove "
                    "serialization at the hot module (extension beyond "
                    "paper hypothesis (e)).\n");
    }
}

void
BM_AblationPoint(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig cfg = simConfig(
            8, 8, 8, ArbitrationPolicy::ProcessorPriority, true);
        cfg.warmupCycles = 1000;
        cfg.measureCycles = 50000;
        cfg.seed = seed++;
        benchmark::DoNotOptimize(runEbw(cfg));
    }
}
BENCHMARK(BM_AblationPoint)->Unit(benchmark::kMillisecond);

} // namespace

SBN_BENCH_MAIN(printReproduction)
