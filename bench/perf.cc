/**
 * @file
 * Performance benchmarks of the library itself (not a paper artifact):
 * simulator event throughput across system shapes, kernel scheduling
 * cost, and analytic-model solve times. Regressions here mean the
 * reproduction benches get slower to run.
 */

#include "bench_common.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "analytic/crossbar.hh"
#include "analytic/occupancy_chain.hh"
#include "analytic/procprio.hh"
#include "baselines/multibus_sim.hh"
#include "core/faststat.hh"
#include "core/system.hh"
#include "desim/simulation.hh"
#include "exec/parallel_runner.hh"
#include "exec/sweep.hh"
#include "exec/thread_pool.hh"

namespace {

/**
 * One kernel throughput measurement: wall time, heap events and
 * derived cycles/s for a config, for both the exact CycleSkip kernel
 * and the statistical FastStat kernel.
 */
struct KernelSample
{
    std::string name;
    sbn::SystemConfig config;
    double seconds = 0.0;
    std::uint64_t events = 0;
    double ebw = 0.0;
    double faststatSeconds = 0.0;
    double faststatEbw = 0.0;

    double
    eventsPerCycle() const
    {
        return static_cast<double>(events) /
               static_cast<double>(config.warmupCycles +
                                   config.measureCycles);
    }

    double
    faststatSpeedup() const
    {
        return faststatSeconds > 0.0 ? seconds / faststatSeconds
                                     : 0.0;
    }
};

/**
 * Interleave repetitions of the two kernels and keep the fastest wall
 * time of each. Shared-host noise inflates both kernels together, so
 * alternating reps and taking per-kernel minima makes the reported
 * speedup far more stable than a single back-to-back pair of runs.
 */
KernelSample
measureKernel(std::string name, sbn::SystemConfig cfg)
{
    using clock = std::chrono::steady_clock;
    constexpr int kReps = 3;
    KernelSample sample;
    sample.name = std::move(name);
    sample.seconds = std::numeric_limits<double>::infinity();
    sample.faststatSeconds = std::numeric_limits<double>::infinity();

    for (int rep = 0; rep < kReps; ++rep) {
        {
            cfg.kernel = sbn::KernelKind::CycleSkip;
            sbn::SingleBusSystem system(cfg);
            const auto t0 = clock::now();
            const sbn::Metrics metrics = system.run();
            const double s =
                std::chrono::duration<double>(clock::now() - t0)
                    .count();
            if (s < sample.seconds) {
                sample.seconds = s;
                sample.events = system.heapEventsExecuted();
            }
            sample.ebw = metrics.ebw;
        }
        {
            cfg.kernel = sbn::KernelKind::FastStat;
            sbn::FastStatSystem system(cfg);
            const auto t0 = clock::now();
            const sbn::Metrics metrics = system.run();
            const double s =
                std::chrono::duration<double>(clock::now() - t0)
                    .count();
            sample.faststatSeconds =
                std::min(sample.faststatSeconds, s);
            sample.faststatEbw = metrics.ebw;
        }
    }
    cfg.kernel = sbn::KernelKind::CycleSkip;
    sample.config = cfg;
    return sample;
}

void
writeKernelJson(const std::vector<KernelSample> &samples,
                const char *path)
{
    std::ofstream out(path);
    if (!out) {
        std::printf("warning: could not write %s\n", path);
        return;
    }
    out << "{\n  \"benchmark\": \"kernel\",\n  \"configs\": [\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const KernelSample &s = samples[i];
        const auto cycles =
            s.config.warmupCycles + s.config.measureCycles;
        out << "    {\n"
            << "      \"name\": \"" << s.name << "\",\n"
            << "      \"n\": " << s.config.numProcessors << ",\n"
            << "      \"m\": " << s.config.numModules << ",\n"
            << "      \"r\": " << s.config.memoryRatio << ",\n"
            << "      \"p\": " << s.config.requestProbability << ",\n"
            << "      \"buffered\": "
            << (s.config.buffered ? "true" : "false") << ",\n"
            << "      \"cycles\": " << cycles << ",\n"
            << "      \"ebw\": " << s.ebw << ",\n"
            << "      \"cycleskip\": {\"wall_s\": " << s.seconds
            << ", \"heap_events\": " << s.events
            << ", \"events_per_cycle\": " << s.eventsPerCycle()
            << ", \"cycles_per_s\": "
            << static_cast<double>(cycles) / s.seconds << "},\n"
            << "      \"faststat\": {\"wall_s\": " << s.faststatSeconds
            << ", \"ebw\": " << s.faststatEbw
            << ", \"cycles_per_s\": "
            << static_cast<double>(cycles) / s.faststatSeconds
            << ", \"speedup\": " << s.faststatSpeedup() << "}\n"
            << "    }" << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", path);
}

/**
 * Kernel throughput over the regimes the paper sweeps live in (low
 * request probability = long think spans), a saturated point, and a
 * hot-spot workload point, for both the exact CycleSkip kernel and
 * the statistical FastStat kernel. Prints a table and writes a
 * machine-readable BENCH_kernel.json (path overridable via the
 * SBN_BENCH_KERNEL_JSON environment variable) so CI can track both
 * kernels' perf trajectories per PR. The Classic reference kernel is
 * retired; tools/check_bench_trend.py now normalizes by a reference
 * sample or the same run's median cycles/s to cancel machine speed
 * (see --normalize-by).
 */
void
runKernelComparison()
{
    using namespace sbn;
    using namespace sbn::bench;

    auto cfg = [](int n, int m, int r, double p, bool buffered) {
        SystemConfig c = simConfig(
            n, m, r, ArbitrationPolicy::ProcessorPriority, buffered, p);
        c.warmupCycles = 10000;
        c.measureCycles = 1000000;
        c.seed = 20260727;
        return c;
    };

    std::vector<KernelSample> samples;
    samples.push_back(
        measureKernel("fig2_lowp_n16", cfg(16, 16, 8, 0.05, false)));
    samples.push_back(
        measureKernel("fig3_lowp_n8", cfg(8, 8, 8, 0.1, false)));
    samples.push_back(
        measureKernel("lowp_buffered_n16", cfg(16, 16, 8, 0.1, true)));
    samples.push_back(
        measureKernel("lowp_wide_n32", cfg(32, 32, 8, 0.05, true)));
    samples.push_back(
        measureKernel("saturated_n8", cfg(8, 8, 8, 1.0, false)));
    {
        SystemConfig hot = cfg(8, 8, 8, 1.0, false);
        hot.workload.pattern = ReferencePattern::HotSpot;
        hot.workload.hotFraction = 0.5;
        samples.push_back(measureKernel("hotspot_h05_n8", hot));
    }

    std::printf("Kernel throughput (cycleskip vs faststat), %s:\n",
                "1.01M cycles per run, best of 3 interleaved reps");
    std::printf("%-20s %9s %11s %11s %8s %8s\n", "config", "ev/cyc",
                "cs Mcyc/s", "fs Mcyc/s", "speedup", "ebw");
    for (const KernelSample &s : samples) {
        const auto cycles = static_cast<double>(
            s.config.warmupCycles + s.config.measureCycles);
        std::printf("%-20s %9.3f %11.1f %11.1f %7.2fx %8.3f\n",
                    s.name.c_str(), s.eventsPerCycle(),
                    cycles / s.seconds / 1e6,
                    cycles / s.faststatSeconds / 1e6,
                    s.faststatSpeedup(), s.ebw);
    }
    std::printf("\n");

    const char *path = std::getenv("SBN_BENCH_KERNEL_JSON");
    writeKernelJson(samples, path != nullptr ? path
                                             : "BENCH_kernel.json");
}

void
printReproduction()
{
    sbn::bench::banner(
        "Library performance",
        "Not a paper artifact: throughput/latency of the simulator, "
        "kernel and solvers.");
    runKernelComparison();
}

void
BM_SimulatorThroughput(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(state.range(1));
    const bool buffered = state.range(2) != 0;
    std::uint64_t cycles = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig cfg = simConfig(
            n, m, 8, ArbitrationPolicy::ProcessorPriority, buffered);
        cfg.warmupCycles = 0;
        cfg.measureCycles = 200000;
        cfg.seed = seed++;
        benchmark::DoNotOptimize(runEbw(cfg));
        cycles += cfg.measureCycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput)
    ->Args({4, 4, 0})
    ->Args({8, 16, 0})
    ->Args({8, 16, 1})
    ->Args({32, 32, 0})
    ->Args({32, 32, 1})
    ->Unit(benchmark::kMillisecond);

/**
 * Low-request-probability regime (the Fig. 2/3 sweeps): most cycles
 * are think cycles, so this is where the cycle-skipping calendar's
 * event-count reduction pays.
 */
void
BM_SimulatorLowP(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    std::uint64_t cycles = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig cfg = simConfig(
            16, 16, 8, ArbitrationPolicy::ProcessorPriority, false,
            0.05);
        cfg.warmupCycles = 0;
        cfg.measureCycles = 200000;
        cfg.seed = seed++;
        benchmark::DoNotOptimize(runEbw(cfg));
        cycles += cfg.measureCycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorLowP)->Unit(benchmark::kMillisecond);

void
BM_EventKernelScheduleRun(benchmark::State &state)
{
    using namespace sbn;
    const auto depth = static_cast<std::size_t>(state.range(0));
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulation sim;
        std::vector<std::unique_ptr<EventFunction>> pool;
        pool.reserve(depth);
        for (std::size_t i = 0; i < depth; ++i) {
            pool.push_back(std::make_unique<EventFunction>([] {}));
            sim.queue().schedule(*pool.back(), i % 97);
        }
        events += sim.runAll();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventKernelScheduleRun)->Arg(1024)->Arg(65536);

/**
 * Deschedule-heavy kernel churn: schedule a full window, cancel 3/4
 * of it, reschedule the cancelled events later, run everything. This
 * is the pattern that used to scan the heap linearly per deschedule
 * and let tombstones pile up; it now exercises the O(1) deschedule
 * and the bounded compaction.
 */
void
BM_EventKernelDescheduleChurn(benchmark::State &state)
{
    using namespace sbn;
    const auto depth = static_cast<std::size_t>(state.range(0));
    std::uint64_t deschedules = 0;
    for (auto _ : state) {
        Simulation sim;
        std::vector<std::unique_ptr<EventFunction>> pool;
        pool.reserve(depth);
        for (std::size_t i = 0; i < depth; ++i) {
            pool.push_back(std::make_unique<EventFunction>([] {}));
            sim.queue().schedule(*pool.back(), i % 97);
        }
        for (std::size_t i = 0; i < depth; ++i) {
            if (i % 4 != 0) {
                sim.queue().deschedule(*pool[i]);
                ++deschedules;
            }
        }
        for (std::size_t i = 0; i < depth; ++i) {
            if (i % 4 != 0)
                sim.queue().schedule(*pool[i], 100 + i % 97);
        }
        benchmark::DoNotOptimize(sim.runAll());
    }
    state.counters["deschedules/s"] = benchmark::Counter(
        static_cast<double>(deschedules), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventKernelDescheduleChurn)->Arg(1024)->Arg(65536);

/**
 * Parallel sweep throughput at 1 / 2 / hardware threads: the same
 * 16-point r x policy grid per iteration, fanned out by
 * ParallelRunner. cycles/s counters across the Arg(threads) rows give
 * the execution layer's scaling curve on this machine.
 */
void
BM_ParallelSweepScaling(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    const auto threads = static_cast<unsigned>(state.range(0));
    ParallelRunner runner(threads);

    SweepSpec spec;
    spec.base = simConfig(8, 8, 2,
                          ArbitrationPolicy::ProcessorPriority, false);
    spec.base.warmupCycles = 0;
    spec.base.measureCycles = 50000;
    spec.memoryRatios = {2, 4, 6, 8, 10, 12, 14, 16};
    spec.policies = {ArbitrationPolicy::ProcessorPriority,
                     ArbitrationPolicy::MemoryPriority};

    std::uint64_t cycles = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        spec.base.seed = seed++;
        const auto grid = runner.sweep(
            spec, [](const SystemConfig &cfg) { return runEbw(cfg); });
        benchmark::DoNotOptimize(grid.data());
        cycles += spec.size() * spec.base.measureCycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
    state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ParallelSweepScaling)
    ->Apply([](benchmark::internal::Benchmark *bench) {
        bench->Arg(1)->Arg(2);
        const auto hw =
            static_cast<std::int64_t>(sbn::ThreadPool::hardwareThreads());
        if (hw > 2)
            bench->Arg(hw);
    })
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void
BM_OccupancyChainBuild(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sbn::OccupancyChain chain(n, n, n);
        benchmark::DoNotOptimize(chain.solve().meanBusy);
    }
}
BENCHMARK(BM_OccupancyChainBuild)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_ProcPrioChainBuild(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sbn::ProcPrioChain chain(8, m, 12);
        benchmark::DoNotOptimize(chain.ebw());
    }
}
BENCHMARK(BM_ProcPrioChainBuild)->Arg(8)->Arg(16);

void
BM_BaselineCrossbarSim(benchmark::State &state)
{
    std::uint64_t slots = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sbn::runCrossbarSim(16, 16, 1.0, seed++, 0, 100000));
        slots += 100000;
    }
    state.counters["slots/s"] = benchmark::Counter(
        static_cast<double>(slots), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BaselineCrossbarSim)->Unit(benchmark::kMillisecond);

} // namespace

SBN_BENCH_MAIN(printReproduction)
