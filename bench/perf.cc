/**
 * @file
 * Performance benchmarks of the library itself (not a paper artifact):
 * simulator event throughput across system shapes, kernel scheduling
 * cost, and analytic-model solve times. Regressions here mean the
 * reproduction benches get slower to run.
 */

#include "bench_common.hh"

#include "analytic/crossbar.hh"
#include "analytic/occupancy_chain.hh"
#include "analytic/procprio.hh"
#include "baselines/multibus_sim.hh"
#include "desim/simulation.hh"
#include "exec/parallel_runner.hh"
#include "exec/sweep.hh"
#include "exec/thread_pool.hh"

namespace {

void
printReproduction()
{
    sbn::bench::banner(
        "Library performance",
        "Not a paper artifact: throughput/latency of the simulator, "
        "kernel and solvers.");
}

void
BM_SimulatorThroughput(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(state.range(1));
    const bool buffered = state.range(2) != 0;
    std::uint64_t cycles = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig cfg = simConfig(
            n, m, 8, ArbitrationPolicy::ProcessorPriority, buffered);
        cfg.warmupCycles = 0;
        cfg.measureCycles = 200000;
        cfg.seed = seed++;
        benchmark::DoNotOptimize(runEbw(cfg));
        cycles += cfg.measureCycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput)
    ->Args({4, 4, 0})
    ->Args({8, 16, 0})
    ->Args({8, 16, 1})
    ->Args({32, 32, 0})
    ->Args({32, 32, 1})
    ->Unit(benchmark::kMillisecond);

void
BM_EventKernelScheduleRun(benchmark::State &state)
{
    using namespace sbn;
    const auto depth = static_cast<std::size_t>(state.range(0));
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulation sim;
        std::vector<std::unique_ptr<EventFunction>> pool;
        pool.reserve(depth);
        for (std::size_t i = 0; i < depth; ++i) {
            pool.push_back(std::make_unique<EventFunction>([] {}));
            sim.queue().schedule(*pool.back(), i % 97);
        }
        events += sim.runAll();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventKernelScheduleRun)->Arg(1024)->Arg(65536);

/**
 * Deschedule-heavy kernel churn: schedule a full window, cancel 3/4
 * of it, reschedule the cancelled events later, run everything. This
 * is the pattern that used to scan the heap linearly per deschedule
 * and let tombstones pile up; it now exercises the O(1) deschedule
 * and the bounded compaction.
 */
void
BM_EventKernelDescheduleChurn(benchmark::State &state)
{
    using namespace sbn;
    const auto depth = static_cast<std::size_t>(state.range(0));
    std::uint64_t deschedules = 0;
    for (auto _ : state) {
        Simulation sim;
        std::vector<std::unique_ptr<EventFunction>> pool;
        pool.reserve(depth);
        for (std::size_t i = 0; i < depth; ++i) {
            pool.push_back(std::make_unique<EventFunction>([] {}));
            sim.queue().schedule(*pool.back(), i % 97);
        }
        for (std::size_t i = 0; i < depth; ++i) {
            if (i % 4 != 0) {
                sim.queue().deschedule(*pool[i]);
                ++deschedules;
            }
        }
        for (std::size_t i = 0; i < depth; ++i) {
            if (i % 4 != 0)
                sim.queue().schedule(*pool[i], 100 + i % 97);
        }
        benchmark::DoNotOptimize(sim.runAll());
    }
    state.counters["deschedules/s"] = benchmark::Counter(
        static_cast<double>(deschedules), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventKernelDescheduleChurn)->Arg(1024)->Arg(65536);

/**
 * Parallel sweep throughput at 1 / 2 / hardware threads: the same
 * 16-point r x policy grid per iteration, fanned out by
 * ParallelRunner. cycles/s counters across the Arg(threads) rows give
 * the execution layer's scaling curve on this machine.
 */
void
BM_ParallelSweepScaling(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    const auto threads = static_cast<unsigned>(state.range(0));
    ParallelRunner runner(threads);

    SweepSpec spec;
    spec.base = simConfig(8, 8, 2,
                          ArbitrationPolicy::ProcessorPriority, false);
    spec.base.warmupCycles = 0;
    spec.base.measureCycles = 50000;
    spec.memoryRatios = {2, 4, 6, 8, 10, 12, 14, 16};
    spec.policies = {ArbitrationPolicy::ProcessorPriority,
                     ArbitrationPolicy::MemoryPriority};

    std::uint64_t cycles = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        spec.base.seed = seed++;
        const auto grid = runner.sweep(
            spec, [](const SystemConfig &cfg) { return runEbw(cfg); });
        benchmark::DoNotOptimize(grid.data());
        cycles += spec.size() * spec.base.measureCycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
    state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ParallelSweepScaling)
    ->Apply([](benchmark::internal::Benchmark *bench) {
        bench->Arg(1)->Arg(2);
        const auto hw =
            static_cast<std::int64_t>(sbn::ThreadPool::hardwareThreads());
        if (hw > 2)
            bench->Arg(hw);
    })
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void
BM_OccupancyChainBuild(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sbn::OccupancyChain chain(n, n, n);
        benchmark::DoNotOptimize(chain.solve().meanBusy);
    }
}
BENCHMARK(BM_OccupancyChainBuild)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_ProcPrioChainBuild(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sbn::ProcPrioChain chain(8, m, 12);
        benchmark::DoNotOptimize(chain.ebw());
    }
}
BENCHMARK(BM_ProcPrioChainBuild)->Arg(8)->Arg(16);

void
BM_BaselineCrossbarSim(benchmark::State &state)
{
    std::uint64_t slots = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sbn::runCrossbarSim(16, 16, 1.0, seed++, 0, 100000));
        slots += 100000;
    }
    state.counters["slots/s"] = benchmark::Counter(
        static_cast<double>(slots), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BaselineCrossbarSim)->Unit(benchmark::kMillisecond);

} // namespace

SBN_BENCH_MAIN(printReproduction)
