/**
 * @file
 * Performance benchmarks of the library itself (not a paper artifact):
 * simulator event throughput across system shapes, kernel scheduling
 * cost, and analytic-model solve times. Regressions here mean the
 * reproduction benches get slower to run.
 */

#include "bench_common.hh"

#include "analytic/crossbar.hh"
#include "analytic/occupancy_chain.hh"
#include "analytic/procprio.hh"
#include "baselines/multibus_sim.hh"
#include "desim/simulation.hh"

namespace {

void
printReproduction()
{
    sbn::bench::banner(
        "Library performance",
        "Not a paper artifact: throughput/latency of the simulator, "
        "kernel and solvers.");
}

void
BM_SimulatorThroughput(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(state.range(1));
    const bool buffered = state.range(2) != 0;
    std::uint64_t cycles = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig cfg = simConfig(
            n, m, 8, ArbitrationPolicy::ProcessorPriority, buffered);
        cfg.warmupCycles = 0;
        cfg.measureCycles = 200000;
        cfg.seed = seed++;
        benchmark::DoNotOptimize(runEbw(cfg));
        cycles += cfg.measureCycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput)
    ->Args({4, 4, 0})
    ->Args({8, 16, 0})
    ->Args({8, 16, 1})
    ->Args({32, 32, 0})
    ->Args({32, 32, 1})
    ->Unit(benchmark::kMillisecond);

void
BM_EventKernelScheduleRun(benchmark::State &state)
{
    using namespace sbn;
    const auto depth = static_cast<std::size_t>(state.range(0));
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulation sim;
        std::vector<std::unique_ptr<EventFunction>> pool;
        pool.reserve(depth);
        for (std::size_t i = 0; i < depth; ++i) {
            pool.push_back(std::make_unique<EventFunction>([] {}));
            sim.queue().schedule(*pool.back(), i % 97);
        }
        events += sim.runAll();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventKernelScheduleRun)->Arg(1024)->Arg(65536);

void
BM_OccupancyChainBuild(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sbn::OccupancyChain chain(n, n, n);
        benchmark::DoNotOptimize(chain.solve().meanBusy);
    }
}
BENCHMARK(BM_OccupancyChainBuild)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_ProcPrioChainBuild(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sbn::ProcPrioChain chain(8, m, 12);
        benchmark::DoNotOptimize(chain.ebw());
    }
}
BENCHMARK(BM_ProcPrioChainBuild)->Arg(8)->Arg(16);

void
BM_BaselineCrossbarSim(benchmark::State &state)
{
    std::uint64_t slots = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sbn::runCrossbarSim(16, 16, 1.0, seed++, 0, 100000));
        slots += 100000;
    }
    state.counters["slots/s"] = benchmark::Counter(
        static_cast<double>(slots), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BaselineCrossbarSim)->Unit(benchmark::kMillisecond);

} // namespace

SBN_BENCH_MAIN(printReproduction)
