/**
 * @file
 * Shared scaffolding for the reproduction benchmarks.
 *
 * Every binary in bench/ regenerates one table or figure from the
 * paper: it first prints the paper's numbers next to ours (shape
 * comparison), then runs google-benchmark timings for the kernels
 * involved. Binaries accept google-benchmark's usual flags; pass
 * --benchmark_filter=none to skip timings and only print the
 * reproduction.
 */

#ifndef SBN_BENCH_BENCH_COMMON_HH
#define SBN_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/experiment.hh"
#include "exec/parallel_runner.hh"
#include "exec/sweep.hh"
#include "util/table.hh"

namespace sbn::bench {

/** Print the banner identifying the reproduced artifact. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::printf("\n================================================"
                "====================\n");
    std::printf("Reproduction: %s\n%s\n", artifact.c_str(),
                description.c_str());
    std::printf("=================================================="
                "==================\n\n");
}

/** Standard simulation config used by the reproduction benches. */
inline SystemConfig
simConfig(int n, int m, int r, ArbitrationPolicy policy, bool buffered,
          double p = 1.0)
{
    SystemConfig cfg;
    cfg.numProcessors = n;
    cfg.numModules = m;
    cfg.memoryRatio = r;
    cfg.requestProbability = p;
    cfg.policy = policy;
    cfg.buffered = buffered;
    cfg.warmupCycles = 20000;
    cfg.measureCycles = 400000;
    cfg.seed = 20260611;
    return cfg;
}

/** Shorthand: run one config and return EBW. */
inline double
ebw(int n, int m, int r, ArbitrationPolicy policy, bool buffered,
    double p = 1.0)
{
    return runEbw(simConfig(n, m, r, policy, buffered, p));
}

/**
 * Shared parallel runner for the reproduction benches, sized to the
 * hardware: the grid points behind every figure/table are independent
 * seeded runs, so they fan out across all cores without changing any
 * printed number.
 */
inline ParallelRunner &
runner()
{
    static ParallelRunner shared(0);
    return shared;
}

/** Evaluate EBW at each materialized point of a sweep, in grid order. */
inline std::vector<double>
sweepEbw(const SweepSpec &spec)
{
    return runner().sweep(
        spec, [](const SystemConfig &cfg) { return runEbw(cfg); });
}

/** Evaluate EBW over an explicit config list, results in input order. */
inline std::vector<double>
sweepEbw(const std::vector<SystemConfig> &points)
{
    return runner().mapConfigs(
        points, [](const SystemConfig &cfg) { return runEbw(cfg); });
}

/**
 * Print a relative-difference summary line for a paper-vs-ours pair
 * series; used at the bottom of each table reproduction.
 */
class DiffTracker
{
  public:
    void
    add(double paper, double ours)
    {
        const double rel = std::abs(ours - paper) / paper;
        sum_ += rel;
        ++count_;
        if (rel > worst_) {
            worst_ = rel;
            worstPaper_ = paper;
            worstOurs_ = ours;
        }
    }

    void
    report(const char *what) const
    {
        if (!count_)
            return;
        std::printf("%s: mean |rel diff| = %.2f%%, worst = %.2f%% "
                    "(paper %.3f vs ours %.3f) over %d cells\n",
                    what, 100.0 * sum_ / count_, 100.0 * worst_,
                    worstPaper_, worstOurs_, count_);
    }

  private:
    double sum_ = 0.0;
    double worst_ = 0.0;
    double worstPaper_ = 0.0;
    double worstOurs_ = 0.0;
    int count_ = 0;
};

} // namespace sbn::bench

/**
 * Every bench defines printReproduction() and registers BENCHMARK
 * cases, then uses this main: reproduction first, timings second.
 */
#define SBN_BENCH_MAIN(print_reproduction)                                 \
    int main(int argc, char **argv)                                       \
    {                                                                      \
        print_reproduction();                                             \
        ::benchmark::Initialize(&argc, argv);                             \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))         \
            return 1;                                                     \
        ::benchmark::RunSpecifiedBenchmarks();                            \
        ::benchmark::Shutdown();                                          \
        return 0;                                                         \
    }

#endif // SBN_BENCH_BENCH_COMMON_HH
