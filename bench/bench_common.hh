/**
 * @file
 * Shared scaffolding for the reproduction benchmarks.
 *
 * Every binary in bench/ regenerates one table or figure from the
 * paper: it first prints the paper's numbers next to ours (shape
 * comparison), then runs google-benchmark timings for the kernels
 * involved. Binaries accept google-benchmark's usual flags; pass
 * --benchmark_filter=none to skip timings and only print the
 * reproduction.
 */

#ifndef SBN_BENCH_BENCH_COMMON_HH
#define SBN_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/experiment.hh"
#include "exec/adaptive.hh"
#include "exec/parallel_runner.hh"
#include "exec/sweep.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace sbn::bench {

/** Print the banner identifying the reproduced artifact. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::printf("\n================================================"
                "====================\n");
    std::printf("Reproduction: %s\n%s\n", artifact.c_str(),
                description.c_str());
    std::printf("=================================================="
                "==================\n\n");
}

/** Standard simulation config used by the reproduction benches. */
inline SystemConfig
simConfig(int n, int m, int r, ArbitrationPolicy policy, bool buffered,
          double p = 1.0)
{
    SystemConfig cfg;
    cfg.numProcessors = n;
    cfg.numModules = m;
    cfg.memoryRatio = r;
    cfg.requestProbability = p;
    cfg.policy = policy;
    cfg.buffered = buffered;
    cfg.warmupCycles = 20000;
    cfg.measureCycles = 400000;
    cfg.seed = 20260611;
    return cfg;
}

/** Shorthand: run one config and return EBW. */
inline double
ebw(int n, int m, int r, ArbitrationPolicy policy, bool buffered,
    double p = 1.0)
{
    return runEbw(simConfig(n, m, r, policy, buffered, p));
}

/**
 * Shared parallel runner for the reproduction benches, sized to the
 * hardware: the grid points behind every figure/table are independent
 * seeded runs, so they fan out across all cores without changing any
 * printed number.
 */
inline ParallelRunner &
runner()
{
    static ParallelRunner shared(0);
    return shared;
}

/** Evaluate EBW at each materialized point of a sweep, in grid order. */
inline std::vector<double>
sweepEbw(const SweepSpec &spec)
{
    return runner().sweep(
        spec, [](const SystemConfig &cfg) { return runEbw(cfg); });
}

/** Evaluate EBW over an explicit config list, results in input order. */
inline std::vector<double>
sweepEbw(const std::vector<SystemConfig> &points)
{
    return runner().mapConfigs(
        points, [](const SystemConfig &cfg) { return runEbw(cfg); });
}

/**
 * Streaming sweepEbw() for table-shaped grids whose printed rows are
 * @p row_width consecutive flat-grid cells (i.e. the row axis is the
 * sweep's outermost axis): onRow(row, cells) fires in row order as
 * soon as a row's cells - and all earlier rows - have finished, so
 * the reproduction prints progressively while later rows are still
 * simulating. Returns the full grid, identical to sweepEbw().
 */
inline std::vector<double>
sweepEbwStreamed(
    const SweepSpec &spec, std::size_t row_width,
    const std::function<void(std::size_t,
                             const std::vector<double> &)> &onRow)
{
    sbn_assert(row_width >= 1 && spec.size() % row_width == 0,
               "row width must evenly divide the sweep grid");
    std::vector<double> cells;
    cells.reserve(row_width);
    std::size_t row = 0;
    return runner().sweepStreamed(
        spec, [](const SystemConfig &cfg) { return runEbw(cfg); },
        [&](std::size_t, const SystemConfig &, double value) {
            // Callbacks arrive in flat-index order, so consecutive
            // cells fill each row left to right.
            cells.push_back(value);
            if (cells.size() == row_width) {
                onRow(row++, cells);
                cells.clear();
            }
        });
}

/**
 * Adaptive-precision EBW sweep: every grid point is replicated (seeds
 * derived from its config.seed) until the CI half-width meets
 * @p target or the schedule cap, with each round's extra replications
 * fanned out on the shared pool. Results are bit-identical at any
 * thread count.
 */
inline std::vector<AdaptiveEstimate>
adaptiveSweepEbw(const SweepSpec &spec, const PrecisionTarget &target,
                 const RoundSchedule &schedule,
                 const AdaptiveReplicator::PointCallback &onPoint = {})
{
    const AdaptiveReplicator replicator(runner(), target, schedule);
    return replicator.sweep(
        spec,
        [](const SystemConfig &cfg, std::uint64_t seed) {
            SystemConfig c = cfg;
            c.seed = seed;
            return runEbw(c);
        },
        onPoint);
}

/** One-line adaptivity summary for an adaptive sweep's estimates. */
inline void
reportAdaptivity(const std::vector<AdaptiveEstimate> &estimates)
{
    if (estimates.empty())
        return;
    std::uint64_t total = 0, lo = ~0ull, hi = 0;
    double worst_hw = 0.0;
    std::size_t capped = 0;
    for (const AdaptiveEstimate &e : estimates) {
        total += e.estimate.samples;
        lo = std::min<std::uint64_t>(lo, e.estimate.samples);
        hi = std::max<std::uint64_t>(hi, e.estimate.samples);
        worst_hw = std::max(worst_hw, e.estimate.halfWidth);
        if (!e.converged)
            ++capped;
    }
    std::printf("adaptive precision: %llu replications over %zu "
                "points (%llu-%llu per point), worst CI half-width "
                "%.4f, %zu point(s) hit the cap\n",
                static_cast<unsigned long long>(total),
                estimates.size(),
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi), worst_hw, capped);
}

/**
 * Print a relative-difference summary line for a paper-vs-ours pair
 * series; used at the bottom of each table reproduction.
 */
class DiffTracker
{
  public:
    void
    add(double paper, double ours)
    {
        const double rel = std::abs(ours - paper) / paper;
        sum_ += rel;
        ++count_;
        if (rel > worst_) {
            worst_ = rel;
            worstPaper_ = paper;
            worstOurs_ = ours;
        }
    }

    void
    report(const char *what) const
    {
        if (!count_)
            return;
        std::printf("%s: mean |rel diff| = %.2f%%, worst = %.2f%% "
                    "(paper %.3f vs ours %.3f) over %d cells\n",
                    what, 100.0 * sum_ / count_, 100.0 * worst_,
                    worstPaper_, worstOurs_, count_);
    }

  private:
    double sum_ = 0.0;
    double worst_ = 0.0;
    double worstPaper_ = 0.0;
    double worstOurs_ = 0.0;
    int count_ = 0;
};

} // namespace sbn::bench

/**
 * Every bench defines printReproduction() and registers BENCHMARK
 * cases, then uses this main: reproduction first, timings second.
 */
#define SBN_BENCH_MAIN(print_reproduction)                                 \
    int main(int argc, char **argv)                                       \
    {                                                                      \
        print_reproduction();                                             \
        ::benchmark::Initialize(&argc, argv);                             \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))         \
            return 1;                                                     \
        ::benchmark::RunSpecifiedBenchmarks();                            \
        ::benchmark::Shutdown();                                          \
        return 0;                                                         \
    }

#endif // SBN_BENCH_BENCH_COMMON_HH
