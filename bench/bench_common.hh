/**
 * @file
 * Shared scaffolding for the reproduction benchmarks.
 *
 * Every binary in bench/ regenerates one table or figure from the
 * paper: it first prints the paper's numbers next to ours (shape
 * comparison), then runs google-benchmark timings for the kernels
 * involved. Binaries accept google-benchmark's usual flags; pass
 * --benchmark_filter=none to skip timings and only print the
 * reproduction.
 */

#ifndef SBN_BENCH_BENCH_COMMON_HH
#define SBN_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <sys/stat.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/experiment.hh"
#include "exec/adaptive.hh"
#include "exec/parallel_runner.hh"
#include "exec/sweep.hh"
#include "shard/runner.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace sbn::bench {

/** Print the banner identifying the reproduced artifact. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::printf("\n================================================"
                "====================\n");
    std::printf("Reproduction: %s\n%s\n", artifact.c_str(),
                description.c_str());
    std::printf("=================================================="
                "==================\n\n");
}

/** Standard simulation config used by the reproduction benches. */
inline SystemConfig
simConfig(int n, int m, int r, ArbitrationPolicy policy, bool buffered,
          double p = 1.0)
{
    SystemConfig cfg;
    cfg.numProcessors = n;
    cfg.numModules = m;
    cfg.memoryRatio = r;
    cfg.requestProbability = p;
    cfg.policy = policy;
    cfg.buffered = buffered;
    cfg.warmupCycles = 20000;
    cfg.measureCycles = 400000;
    cfg.seed = 20260611;
    return cfg;
}

/** Shorthand: run one config and return EBW. */
inline double
ebw(int n, int m, int r, ArbitrationPolicy policy, bool buffered,
    double p = 1.0)
{
    return runEbw(simConfig(n, m, r, policy, buffered, p));
}

/**
 * Shared parallel runner for the reproduction benches, sized to the
 * hardware: the grid points behind every figure/table are independent
 * seeded runs, so they fan out across all cores without changing any
 * printed number.
 */
inline ParallelRunner &
runner()
{
    static ParallelRunner shared(0);
    return shared;
}

/**
 * Sharded bench execution (see docs/sharding.md). Every fig/table
 * binary accepts, in addition to the google-benchmark flags:
 *
 *   --shard=i/N        run only shard i of N of each sweep grid,
 *                      appending JSONL records per completed point
 *   --shard-dir=DIR    record directory (default bench-shards)
 *   --shard-layout=L   contiguous (default) or strided
 *   --shard-resume     skip points with matching records on disk
 *
 * In shard mode the sweep helpers below compute only the shard's
 * points (values at other grid cells print as nan) and write each
 * sweep's records to DIR/<bench>-sweep<k>-shard-i-of-N.jsonl, where
 * k counts the binary's sweeps in issue order. Merge one sweep's
 * files with `sbn_sweep --merge --size=<grid> --files=a,b,...` or
 * the shard library. Values are bit-identical to the unsharded
 * run's.
 */
struct ShardMode
{
    bool active = false;
    ShardSpec shard;
    ShardLayout layout = ShardLayout::Contiguous;
    std::string dir = "bench-shards";
    bool resume = false;
    std::string benchName = "bench";
    unsigned sweepCounter = 0;

    /** Record path of the next sweep this binary issues. */
    std::string
    nextPath()
    {
        return dir + "/" + benchName + "-sweep" +
               std::to_string(sweepCounter++) + "-shard-" +
               std::to_string(shard.index) + "-of-" +
               std::to_string(shard.count) + ".jsonl";
    }
};

inline ShardMode &
shardMode()
{
    static ShardMode mode;
    return mode;
}

/**
 * Strip the shard flags from argv (before benchmark::Initialize sees
 * them) and configure shardMode(). Called by SBN_BENCH_MAIN.
 */
inline void
initShardArgs(int *argc, char **argv)
{
    ShardMode &mode = shardMode();
    if (*argc > 0) {
        const std::string prog = argv[0];
        const std::size_t slash = prog.find_last_of('/');
        mode.benchName =
            slash == std::string::npos ? prog : prog.substr(slash + 1);
    }

    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--shard=", 0) == 0) {
            mode.active = true;
            mode.shard = ShardSpec::parse(arg.substr(8));
        } else if (arg.rfind("--shard-dir=", 0) == 0) {
            mode.dir = arg.substr(12);
        } else if (arg.rfind("--shard-layout=", 0) == 0) {
            mode.layout = parseShardLayout(arg.substr(15));
        } else if (arg == "--shard-resume") {
            mode.resume = true;
        } else {
            argv[kept++] = argv[i];
        }
    }
    *argc = kept;

    if (mode.active) {
        // Fail before any point simulates, not mid-run at the first
        // record write (see ensureWritableShardDir).
        ensureWritableShardDir(mode.dir);
        std::printf("shard mode: %s of each sweep grid (%s), records "
                    "under %s/\n",
                    mode.shard.toString().c_str(),
                    shardLayoutName(mode.layout), mode.dir.c_str());
    }
}

/**
 * Shard-mode backend of the sweep helpers: run this process's shard
 * of @p points through the shard runner (records on disk), then
 * surface the shard's values at their grid cells; cells other shards
 * own read back as NaN and print as nan.
 */
inline std::vector<double>
shardedSweepEbw(const std::vector<SystemConfig> &points)
{
    ShardMode &mode = shardMode();
    const std::string path = mode.nextPath();
    const ShardRunStats stats = runShardSweep(
        points, mode.shard, mode.layout,
        [](const SystemConfig &cfg) { return runEbw(cfg); }, path,
        mode.resume);
    std::printf("shard %s: %zu/%zu point(s) computed, %zu resumed "
                "-> %s\n",
                mode.shard.toString().c_str(), stats.computed,
                stats.owned, stats.skipped, path.c_str());
    std::vector<double> values(
        points.size(), std::numeric_limits<double>::quiet_NaN());
    for (const PointRecord &record :
         readRecordFile(path, /*tolerate_partial_tail=*/false))
        values[record.flatIndex] = record.mean;
    return values;
}

/** Evaluate EBW at each materialized point of a sweep, in grid order. */
inline std::vector<double>
sweepEbw(const SweepSpec &spec)
{
    if (shardMode().active)
        return shardedSweepEbw(spec.materialize());
    return runner().sweep(
        spec, [](const SystemConfig &cfg) { return runEbw(cfg); });
}

/** Evaluate EBW over an explicit config list, results in input order. */
inline std::vector<double>
sweepEbw(const std::vector<SystemConfig> &points)
{
    if (shardMode().active)
        return shardedSweepEbw(points);
    return runner().mapConfigs(
        points, [](const SystemConfig &cfg) { return runEbw(cfg); });
}

/**
 * Streaming sweepEbw() for table-shaped grids whose printed rows are
 * @p row_width consecutive flat-grid cells (i.e. the row axis is the
 * sweep's outermost axis): onRow(row, cells) fires in row order as
 * soon as a row's cells - and all earlier rows - have finished, so
 * the reproduction prints progressively while later rows are still
 * simulating. Returns the full grid, identical to sweepEbw().
 */
inline std::vector<double>
sweepEbwStreamed(
    const SweepSpec &spec, std::size_t row_width,
    const std::function<void(std::size_t,
                             const std::vector<double> &)> &onRow)
{
    sbn_assert(row_width >= 1 && spec.size() % row_width == 0,
               "row width must evenly divide the sweep grid");
    if (shardMode().active) {
        // Shard mode: rows materialize after the shard finishes
        // (cells other shards own are nan), so stream them all at
        // the end instead of progressively.
        const std::vector<double> values =
            shardedSweepEbw(spec.materialize());
        for (std::size_t row = 0; row * row_width < values.size();
             ++row)
            onRow(row,
                  std::vector<double>(
                      values.begin() +
                          static_cast<std::ptrdiff_t>(row * row_width),
                      values.begin() + static_cast<std::ptrdiff_t>(
                                           (row + 1) * row_width)));
        return values;
    }
    std::vector<double> cells;
    cells.reserve(row_width);
    std::size_t row = 0;
    return runner().sweepStreamed(
        spec, [](const SystemConfig &cfg) { return runEbw(cfg); },
        [&](std::size_t, const SystemConfig &, double value) {
            // Callbacks arrive in flat-index order, so consecutive
            // cells fill each row left to right.
            cells.push_back(value);
            if (cells.size() == row_width) {
                onRow(row++, cells);
                cells.clear();
            }
        });
}

/**
 * Adaptive-precision EBW sweep: every grid point is replicated (seeds
 * derived from its config.seed) until the CI half-width meets
 * @p target or the schedule cap, with each round's extra replications
 * fanned out on the shared pool. Results are bit-identical at any
 * thread count.
 */
inline std::vector<AdaptiveEstimate>
adaptiveSweepEbw(const SweepSpec &spec, const PrecisionTarget &target,
                 const RoundSchedule &schedule,
                 const AdaptiveReplicator::PointCallback &onPoint = {})
{
    const auto experiment = [](const SystemConfig &cfg,
                               std::uint64_t seed) {
        SystemConfig c = cfg;
        c.seed = seed;
        return runEbw(c);
    };

    if (shardMode().active) {
        ShardMode &mode = shardMode();
        const std::vector<SystemConfig> points = spec.materialize();
        const std::string path = mode.nextPath();
        const ShardRunStats stats = runShardAdaptive(
            points, mode.shard, mode.layout, target, schedule,
            experiment, path, mode.resume);
        std::printf("shard %s: %zu/%zu point(s) computed, %zu "
                    "resumed -> %s\n",
                    mode.shard.toString().c_str(), stats.computed,
                    stats.owned, stats.skipped, path.c_str());

        // Off-shard cells report NaN with zero samples; the summary
        // and table printers treat them as "not computed here".
        std::vector<AdaptiveEstimate> estimates(points.size());
        for (AdaptiveEstimate &e : estimates)
            e.estimate.mean = std::numeric_limits<double>::quiet_NaN();
        for (const PointRecord &record :
             readRecordFile(path, /*tolerate_partial_tail=*/false)) {
            AdaptiveEstimate &e = estimates[record.flatIndex];
            e.estimate.mean = record.mean;
            e.estimate.halfWidth = record.halfWidth;
            e.estimate.samples = record.replications;
            e.rounds = record.rounds;
            e.converged = record.converged;
            if (onPoint)
                onPoint(record.flatIndex, points[record.flatIndex],
                        e);
        }
        return estimates;
    }

    const AdaptiveReplicator replicator(runner(), target, schedule);
    return replicator.sweep(spec, experiment, onPoint);
}

/** One-line adaptivity summary for an adaptive sweep's estimates. */
inline void
reportAdaptivity(const std::vector<AdaptiveEstimate> &estimates)
{
    if (estimates.empty())
        return;
    std::uint64_t total = 0, lo = ~0ull, hi = 0;
    double worst_hw = 0.0;
    std::size_t capped = 0, counted = 0;
    for (const AdaptiveEstimate &e : estimates) {
        if (e.estimate.samples == 0)
            continue; // off-shard cell in shard mode
        ++counted;
        total += e.estimate.samples;
        lo = std::min<std::uint64_t>(lo, e.estimate.samples);
        hi = std::max<std::uint64_t>(hi, e.estimate.samples);
        worst_hw = std::max(worst_hw, e.estimate.halfWidth);
        if (!e.converged)
            ++capped;
    }
    if (counted == 0)
        return;
    std::printf("adaptive precision: %llu replications over %zu "
                "points (%llu-%llu per point), worst CI half-width "
                "%.4f, %zu point(s) hit the cap\n",
                static_cast<unsigned long long>(total), counted,
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi), worst_hw, capped);
}

/**
 * Print a relative-difference summary line for a paper-vs-ours pair
 * series; used at the bottom of each table reproduction.
 */
class DiffTracker
{
  public:
    void
    add(double paper, double ours)
    {
        if (std::isnan(ours))
            return; // off-shard cell in bench shard mode
        const double rel = std::abs(ours - paper) / paper;
        sum_ += rel;
        ++count_;
        if (rel > worst_) {
            worst_ = rel;
            worstPaper_ = paper;
            worstOurs_ = ours;
        }
    }

    void
    report(const char *what) const
    {
        if (!count_)
            return;
        std::printf("%s: mean |rel diff| = %.2f%%, worst = %.2f%% "
                    "(paper %.3f vs ours %.3f) over %d cells\n",
                    what, 100.0 * sum_ / count_, 100.0 * worst_,
                    worstPaper_, worstOurs_, count_);
    }

  private:
    double sum_ = 0.0;
    double worst_ = 0.0;
    double worstPaper_ = 0.0;
    double worstOurs_ = 0.0;
    int count_ = 0;
};

} // namespace sbn::bench

/**
 * Every bench defines printReproduction() and registers BENCHMARK
 * cases, then uses this main: reproduction first, timings second.
 * Shard flags (--shard=i/N, --shard-dir, --shard-layout,
 * --shard-resume; see ShardMode) are consumed before
 * google-benchmark parses the rest.
 */
#define SBN_BENCH_MAIN(print_reproduction)                                 \
    int main(int argc, char **argv)                                       \
    {                                                                      \
        ::sbn::bench::initShardArgs(&argc, argv);                         \
        print_reproduction();                                             \
        ::benchmark::Initialize(&argc, argv);                             \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))         \
            return 1;                                                     \
        ::benchmark::RunSpecifiedBenchmarks();                            \
        ::benchmark::Shutdown();                                          \
        return 0;                                                         \
    }

#endif // SBN_BENCH_BENCH_COMMON_HH
