/**
 * @file
 * Reproduces the Section 6 model-validation experiment: if the
 * constant bus/memory service times of the buffered system are
 * replaced by exponentials, the system becomes a product-form closed
 * queueing network (BCMP) solvable by standard techniques (exact MVA
 * here). The paper reports that this characterization mispredicts
 * the constant-time simulation by MORE THAN 25%, pessimistically.
 */

#include "bench_common.hh"

#include "analytic/detmva.hh"
#include "analytic/mva.hh"

namespace {

constexpr int kNs[] = {4, 8, 16};
constexpr int kMs[] = {2, 4, 8};

void
printReproduction()
{
    using namespace sbn;
    using namespace sbn::bench;

    banner("Section 6 model validation",
           "EBW: constant-service simulation vs exponential "
           "product-form model (exact MVA).\nPaper claim: "
           "discrepancies exceed 25%, exponential is pessimistic.");

    TextTable table;
    table.setHeader({"n", "m", "r", "sim (const)", "MVA (expo)",
                     "(sim-mva)/mva %", "det-MVA (ext)", "det err %"});

    // The grid is irregular (r depends on m), so materialize the
    // simulation points explicitly and fan them out in input order.
    std::vector<sbn::SystemConfig> points;
    for (int n : kNs)
        for (int m : kMs)
            for (int r : {2 * m, 4 * m})
                points.push_back(simConfig(
                    n, m, r, ArbitrationPolicy::ProcessorPriority,
                    true));
    const std::vector<double> sims = sweepEbw(points);

    double worst = 0.0;
    int worst_n = 0, worst_m = 0, worst_r = 0;
    double worst_det = 0.0;
    bool always_pessimistic = true;
    std::size_t cell = 0;
    for (int n : kNs) {
        for (int m : kMs) {
            for (int r : {2 * m, 4 * m}) {
                const double sim = sims[cell++];
                const double expo = mvaBufferedBus(n, m, r).ebw;
                const double det =
                    mvaBufferedBusDeterministic(n, m, r).ebw;
                const double gap = (sim - expo) / expo;
                const double det_gap = (det - sim) / sim;
                worst_det = std::max(worst_det, std::abs(det_gap));
                if (gap < -1e-3)
                    always_pessimistic = false;
                if (gap > worst) {
                    worst = gap;
                    worst_n = n;
                    worst_m = m;
                    worst_r = r;
                }
                table.addRow({std::to_string(n), std::to_string(m),
                              std::to_string(r),
                              TextTable::formatNumber(sim, 3),
                              TextTable::formatNumber(expo, 3),
                              TextTable::formatNumber(100.0 * gap, 1),
                              TextTable::formatNumber(det, 3),
                              TextTable::formatNumber(
                                  100.0 * det_gap, 1)});
            }
        }
    }
    table.print(std::cout);

    std::printf("\nmax discrepancy: %.1f%% at n=%d m=%d r=%d "
                "(paper: exceeds 25%%)  %s\n",
                100.0 * worst, worst_n, worst_m, worst_r,
                worst > 0.25 ? "REPRODUCED" : "NOT REPRODUCED");
    std::printf("exponential model pessimistic everywhere: %s "
                "(paper: pessimistic)\n",
                always_pessimistic ? "yes" : "NO");
    std::printf("\nThe gap peaks where bus and memory service rates "
                "balance (r ~ 2m): constant\nservice pipelines "
                "deterministically while the exponential model pays "
                "full queueing\nvariance at both resources.\n");
    std::printf("\nExtension (Section 6 open problem): the "
                "deterministic-residual MVA ('det-MVA')\nmodels the "
                "buffered system analytically within %.1f%% over this "
                "grid - the\nanalytical model the paper says is 'not "
                "constructed so far'.\n",
                100.0 * worst_det);
}

void
BM_MvaSolve(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(sbn::mvaBufferedBus(n, 8, 16).ebw);
    }
}
BENCHMARK(BM_MvaSolve)->Arg(8)->Arg(64);

} // namespace

SBN_BENCH_MAIN(printReproduction)
