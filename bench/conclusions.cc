/**
 * @file
 * Reproduces the quantitative design claims of the paper's Section 7
 * (conclusions), one by one:
 *
 *  C1. Max bandwidth (r+2)/2 is attainable with r < min(n, m); for
 *      larger r the crossbar EBW is the floor of the single-bus EBW.
 *  C2. The 8x8 crossbar EBW is attained by the single bus with m=14,
 *      r=8; with m=10 only ~5% degradation is suffered.
 *  C3. (ref [5], unit caveat) a multiple-bus network needs ~4 buses
 *      for the 8x8 crossbar level; in non-multiplexed units our chain
 *      puts the requirement at 5 buses (documented in DESIGN.md).
 *  C4. With p > 0.4, r = 8 suffices to exceed the crossbar in an
 *      8x16 system; with p = 0.3, r = 12 is enough.
 *  C5. A buffered single bus with r = 18 performs like a 16x16
 *      crossbar.
 *  C6. The buffered single bus operates in saturation until r
 *      approaches min(n, m); EBW above the crossbar is attainable
 *      with r ~ min(n, m) + 2.
 */

#include "bench_common.hh"

#include "analytic/crossbar.hh"
#include "analytic/multibus.hh"
#include "baselines/multibus_sim.hh"

namespace {

void
printReproduction()
{
    using namespace sbn;
    using namespace sbn::bench;

    banner("Section 7 conclusions",
           "Quantitative design claims, paper vs this reproduction.");

    // ---- C1: saturation condition -----------------------------------
    {
        std::printf("C1. saturation: EBW = (r+2)/2 attainable with "
                    "r < min(n,m)\n");
        for (const auto &[n, m, r] :
             {std::array{8, 8, 4}, std::array{16, 16, 8}}) {
            const double e = ebw(
                n, m, r, ArbitrationPolicy::ProcessorPriority, false);
            std::printf("    n=%d m=%d r=%d: EBW=%.3f vs ceiling "
                        "%.1f (%.1f%%)\n",
                        n, m, r, e, (r + 2) / 2.0,
                        100.0 * e / ((r + 2) / 2.0));
        }
    }

    // ---- C2: matching the 8x8 crossbar ------------------------------
    {
        const double xbar = crossbarEbw(8, 8);
        const double e14 = ebw(
            8, 14, 8, ArbitrationPolicy::ProcessorPriority, false);
        const double e10 = ebw(
            8, 10, 8, ArbitrationPolicy::ProcessorPriority, false);
        std::printf("\nC2. 8x8 crossbar EBW = %.3f\n", xbar);
        std::printf("    single-bus m=14, r=8: %.3f (%.1f%% of "
                    "crossbar; paper: attained)\n",
                    e14, 100.0 * e14 / xbar);
        std::printf("    single-bus m=10, r=8: %.3f (degradation "
                    "%.1f%%; paper: ~5%%)\n",
                    e10, 100.0 * (1.0 - e10 / xbar));
    }

    // ---- C3: multiple-bus equivalent --------------------------------
    {
        const double xbar = crossbarEbw(8, 8);
        std::printf("\nC3. multiple-bus (non-multiplexed units, "
                    "n=8, m=14): crossbar level %.3f\n",
                    xbar);
        for (int b = 3; b <= 6; ++b) {
            const double bw = multibusExactBandwidth(8, 14, b);
            std::printf("    b=%d: BW=%.3f (%.1f%%)%s\n", b, bw,
                        100.0 * bw / xbar,
                        bw >= 0.95 * xbar ? "  <- reaches it" : "");
        }
        std::printf("    (paper quotes 4 buses from ref [5], whose "
                    "multiple-bus network is itself\n     multiplexed; "
                    "see DESIGN.md on the unit mismatch)\n");
    }

    // ---- C4: partial-load crossovers on 8x16 -------------------------
    {
        std::printf("\nC4. 8x16, crossover against the crossbar under "
                    "partial load:\n");
        for (const auto &[p, r] : {std::pair{0.5, 8}, {0.4, 8},
                                   {0.3, 12}}) {
            const double e = ebw(
                8, 16, r, ArbitrationPolicy::ProcessorPriority, false,
                p);
            const auto xbar = runCrossbarSim(8, 16, p, 7, 5000, 400000);
            std::printf("    p=%.1f r=%2d: single-bus %.3f vs crossbar "
                        "%.3f  %s\n",
                        p, r, e, xbar.bandwidth,
                        e >= xbar.bandwidth * 0.99 ? "exceeds/matches"
                                                   : "below");
        }
    }

    // ---- C5: buffered r=18 vs 16x16 crossbar -------------------------
    {
        const double xbar = crossbarEbw(16, 16);
        const double buf = ebw(
            16, 16, 18, ArbitrationPolicy::ProcessorPriority, true);
        std::printf("\nC5. buffered 16x16 single bus, r=18: EBW=%.3f "
                    "vs 16x16 crossbar %.3f (%.1f%%)\n",
                    buf, xbar, 100.0 * buf / xbar);
    }

    // ---- C6: buffered saturation range -------------------------------
    {
        std::printf("\nC6. buffered 16x16: saturation (EBW ~ (r+2)/2) "
                    "until r ~ min(n,m):\n");
        SweepSpec spec;
        spec.base = simConfig(16, 16, 8,
                              ArbitrationPolicy::ProcessorPriority,
                              true);
        spec.memoryRatios = {8, 12, 14, 16, 18, 20};
        const std::vector<double> grid = sweepEbw(spec);
        for (std::size_t i = 0; i < spec.memoryRatios.size(); ++i) {
            const int r = spec.memoryRatios[i];
            const double e = grid[i];
            std::printf("    r=%2d: EBW=%.3f  (%.1f%% of ceiling "
                        "%.1f)%s\n",
                        r, e, 100.0 * e / ((r + 2) / 2.0),
                        (r + 2) / 2.0,
                        e > crossbarEbw(16, 16) ? "  > crossbar" : "");
        }
    }
}

void
BM_CrossbarExact(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(sbn::crossbarExactBandwidth(n, n));
    }
}
BENCHMARK(BM_CrossbarExact)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

} // namespace

SBN_BENCH_MAIN(printReproduction)
