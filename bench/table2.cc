/**
 * @file
 * Reproduces paper Table 2: EBW via the Section 3.2 combinational
 * approximation (non-symmetric expression), priority to memory
 * modules, r = min(n, m) + 7. Also prints the symmetrized variant
 * (n* = min, m* = max) suggested in Section 5 and the error of each
 * against the exact chain.
 */

#include "bench_common.hh"

#include <algorithm>

#include "analytic/memprio.hh"

namespace {

constexpr int kSizes[4] = {2, 4, 6, 8};
constexpr double kPaper[4][4] = {
    {1.417, 1.625, 1.694, 1.729},
    {1.729, 2.392, 2.653, 2.792},
    {1.807, 2.778, 3.305, 3.570},
    {1.827, 2.987, 3.692, 4.178},
};

void
printReproduction()
{
    using namespace sbn;
    using namespace sbn::bench;

    banner("Table 2",
           "EBW approximate (combinational) values, priority to "
           "memory modules, r = min(n,m)+7. Cells: paper / ours.");

    TextTable table;
    std::vector<std::string> header{"n \\ m"};
    for (int m : kSizes)
        header.push_back(std::to_string(m));
    table.setHeader(header);

    DiffTracker diff;
    for (int i = 0; i < 4; ++i) {
        std::vector<std::string> row{std::to_string(kSizes[i])};
        for (int j = 0; j < 4; ++j) {
            const int n = kSizes[i];
            const int m = kSizes[j];
            const int r = std::min(n, m) + 7;
            const double ours = memprioApproxEbw(n, m, r);
            diff.add(kPaper[i][j], ours);
            row.push_back(TextTable::formatNumber(kPaper[i][j], 3) +
                          " / " + TextTable::formatNumber(ours, 3));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    diff.report("Table 2");

    // Section 5 remark: the exact results are symmetric, suggesting
    // the symmetrized approximation. Compare both against the exact
    // chain.
    std::printf("\nApproximation quality against the exact chain "
                "(max |rel diff| over the grid):\n");
    double worst_plain = 0.0, worst_sym = 0.0;
    for (int n : kSizes) {
        for (int m : kSizes) {
            const int r = std::min(n, m) + 7;
            const double exact = memprioExactEbw(n, m, r);
            worst_plain = std::max(
                worst_plain,
                std::abs(memprioApproxEbw(n, m, r) - exact) / exact);
            worst_sym = std::max(
                worst_sym,
                std::abs(memprioApproxSymmetricEbw(n, m, r) - exact) /
                    exact);
        }
    }
    std::printf("  non-symmetric expression: %.2f%% (paper: < 9%%)\n",
                100.0 * worst_plain);
    std::printf("  symmetrized (n*,m*):      %.2f%% (paper: 5-6%% in "
                "the r > m > n range)\n",
                100.0 * worst_sym);
}

void
BM_MemPrioApprox(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(state.range(1));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sbn::memprioApproxEbw(n, m, std::min(n, m) + 7));
    }
}
BENCHMARK(BM_MemPrioApprox)->Args({8, 8})->Args({16, 16});

} // namespace

SBN_BENCH_MAIN(printReproduction)
