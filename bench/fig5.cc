/**
 * @file
 * Reproduces paper Figure 5: EBW vs r with and without memory-module
 * buffers (n x m in {16x16, 8x16, 8x8}), against the crossbar lines
 * (16x16 and 8x8).
 *
 * Shape properties from Section 6:
 *  - buffered EBW >= unbuffered EBW everywhere;
 *  - the buffered single bus EXCEEDS the non-buffered crossbar in the
 *    mid-r range (memory interference is reduced by the buffers);
 *  - as r grows the buffered EBW decays toward the crossbar value
 *    (the bus stops being the binding resource);
 *  - the buffered system stays saturated (EBW = (r+2)/2) until r
 *    approaches min(n, m).
 */

#include "bench_common.hh"

#include "analytic/crossbar.hh"

namespace {

struct Config
{
    int n, m;
};
constexpr Config kConfigs[] = {{16, 16}, {8, 16}, {8, 8}};
constexpr int kRs[] = {2, 4, 6, 8, 10, 12, 14, 16, 20, 24};

void
printReproduction()
{
    using namespace sbn;
    using namespace sbn::bench;

    banner("Figure 5",
           "EBW vs r: buffered vs unbuffered single bus (priority to "
           "processors, p = 1)\nwith crossbar (cycle (r+2)t) lines.");

    for (const auto &[n, m] : kConfigs) {
        const double xbar = crossbarEbw(n, m);
        std::printf("%dx%d (crossbar EBW = %.3f)\n", n, m, xbar);
        std::printf("  %4s  %9s  %10s  %9s  %8s\n", "r", "buffered",
                    "unbuffered", "crossbar", "(r+2)/2");

        // One parallel streamed sweep per panel (r outer, buffering
        // inner): rows print progressively; the crossing summary
        // below reuses the same grid instead of re-simulating every
        // buffered point.
        SweepSpec spec;
        spec.base = simConfig(n, m, kRs[0],
                              ArbitrationPolicy::ProcessorPriority,
                              false);
        spec.memoryRatios.assign(std::begin(kRs), std::end(kRs));
        spec.buffering = {true, false};
        const std::vector<double> grid = sweepEbwStreamed(
            spec, 2,
            [&](std::size_t row, const std::vector<double> &cells) {
                std::printf("  %4d  %9.3f  %10.3f  %9.3f  %8.1f\n",
                            kRs[row], cells[0], cells[1], xbar,
                            (kRs[row] + 2) / 2.0);
                std::fflush(stdout);
            });

        // Crossing summary: where does the buffered bus beat the
        // crossbar?
        int first_beat = -1, last_beat = -1;
        for (std::size_t i = 0; i < std::size(kRs); ++i) {
            if (grid[2 * i] > xbar) {
                if (first_beat < 0)
                    first_beat = kRs[i];
                last_beat = kRs[i];
            }
        }
        if (first_beat >= 0) {
            std::printf("  buffered bus exceeds the %dx%d crossbar for "
                        "r in ~[%d, %d]\n\n",
                        n, m, first_beat, last_beat);
        } else {
            std::printf("  buffered bus never exceeds the %dx%d "
                        "crossbar on this grid\n\n",
                        n, m);
        }
    }
}

void
BM_Fig5Point(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig cfg =
            simConfig(16, 16, static_cast<int>(state.range(0)),
                      ArbitrationPolicy::ProcessorPriority, true);
        cfg.warmupCycles = 1000;
        cfg.measureCycles = 50000;
        cfg.seed = seed++;
        benchmark::DoNotOptimize(runEbw(cfg));
    }
}
BENCHMARK(BM_Fig5Point)->Arg(8)->Arg(24)->Unit(benchmark::kMillisecond);

} // namespace

SBN_BENCH_MAIN(printReproduction)
