/**
 * @file
 * Reproduces paper Table 4: EBW with priority to processors in the
 * BUFFERED system (Section 6), n = 8, m = 4..16, r = 6..24.
 *
 * Two Table 4 cells are OCR-damaged in the source text and restored
 * by row/column consistency: m=14 r=10 ("I867" -> 5.867) and m=14
 * r=12 ("6A78" -> 6.178).
 */

#include "bench_common.hh"

#include <algorithm>

namespace {

constexpr int kMs[7] = {4, 6, 8, 10, 12, 14, 16};
constexpr int kRs[10] = {6, 8, 10, 12, 14, 16, 18, 20, 22, 24};

constexpr double kPaper[7][10] = {
    {3.915, 3.938, 3.815, 3.731, 3.661, 3.617, 3.575, 3.541, 3.523, 3.499},
    {3.997, 4.747, 4.795, 4.734, 4.674, 4.630, 4.588, 4.560, 4.529, 4.506},
    {4.000, 4.943, 5.312, 5.312, 5.275, 5.239, 5.206, 5.180, 5.155, 5.136},
    {4.000, 4.984, 5.608, 5.724, 5.725, 5.709, 5.685, 5.666, 5.647, 5.633},
    {4.000, 4.994, 5.778, 5.987, 6.020, 6.019, 6.010, 5.997, 5.983, 5.970},
    {4.000, 4.998, 5.867, 6.178, 6.237, 6.246, 6.245, 6.232, 6.223, 6.217},
    {4.000, 4.999, 5.912, 6.325, 6.405, 6.428, 6.429, 6.421, 6.414, 6.410},
};

void
printReproduction()
{
    using namespace sbn;
    using namespace sbn::bench;

    banner("Table 4",
           "EBW, priority to processors, BUFFERED memory modules, "
           "n = 8, p = 1. Cells: paper / ours.");

    std::printf("  %-6s", "m \\ r");
    for (int r : kRs)
        std::printf("  %11d", r);
    std::printf("   (rows stream as they complete)\n");

    // One parallel streamed sweep over the m x r grid (modules outer,
    // ratios inner): each m row prints as soon as it and its
    // predecessors finish; the shape checks reuse the same grid.
    DiffTracker diff;
    SweepSpec spec;
    spec.base = simConfig(8, kMs[0], kRs[0],
                          ArbitrationPolicy::ProcessorPriority, true);
    spec.modules.assign(std::begin(kMs), std::end(kMs));
    spec.memoryRatios.assign(std::begin(kRs), std::end(kRs));
    const std::vector<double> grid = sweepEbwStreamed(
        spec, 10,
        [&](std::size_t i, const std::vector<double> &cells) {
            std::printf("  %-6d", kMs[i]);
            for (int j = 0; j < 10; ++j) {
                diff.add(kPaper[i][j], cells[j]);
                std::printf("  %5.3f/%5.3f", kPaper[i][j], cells[j]);
            }
            std::printf("\n");
            std::fflush(stdout);
        });
    diff.report("Table 4");

    std::printf("\nShape checks from Section 6:\n");
    // Look the cells up by their axis values so edits to kMs/kRs
    // cannot silently shift the check onto a different grid point.
    const auto cell = [&](int m, int r) {
        const auto mi = std::find(spec.modules.begin(),
                                  spec.modules.end(), m) -
                        spec.modules.begin();
        const auto ri = std::find(spec.memoryRatios.begin(),
                                  spec.memoryRatios.end(), r) -
                        spec.memoryRatios.begin();
        return grid[mi * spec.memoryRatios.size() + ri];
    };
    const double peak_r_small = cell(16, 12);
    const double tail_r_large = cell(16, 24);
    std::printf("  buffered EBW peaks at moderate r then decays toward"
                " the crossbar: ebw(r=12)=%.3f > ebw(r=24)=%.3f\n",
                peak_r_small, tail_r_large);
}

void
BM_BufferedSimulation(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    const int m = static_cast<int>(state.range(0));
    const int r = static_cast<int>(state.range(1));
    std::uint64_t cycles = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig cfg = simConfig(
            8, m, r, ArbitrationPolicy::ProcessorPriority, true);
        cfg.warmupCycles = 1000;
        cfg.measureCycles = 100000;
        cfg.seed = seed++;
        benchmark::DoNotOptimize(runEbw(cfg));
        cycles += cfg.warmupCycles + cfg.measureCycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BufferedSimulation)
    ->Args({4, 6})
    ->Args({16, 24})
    ->Unit(benchmark::kMillisecond);

} // namespace

SBN_BENCH_MAIN(printReproduction)
