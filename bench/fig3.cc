/**
 * @file
 * Reproduces paper Figure 3: processor utilization EBW/(n*p) vs the
 * request probability p, for n = 8, m = 16 systems (unbuffered,
 * priority to processors) at several memory/bus ratios r.
 *
 * Shape properties: utilization decreases as p grows (more
 * contention) and increases with r (more bus capacity per processor
 * cycle); at light load EBW/(n*p) -> 1.
 */

#include "bench_common.hh"

namespace {

constexpr int kRs[] = {4, 8, 12, 16};
constexpr double kPs[] = {0.1, 0.2, 0.3, 0.4, 0.5,
                          0.6, 0.7, 0.8, 0.9, 1.0};

void
printReproduction()
{
    using namespace sbn;
    using namespace sbn::bench;

    banner("Figure 3",
           "Processor utilization EBW/(n*p) vs p; n = 8, m = 16, "
           "unbuffered, priority to processors.");

    TextTable table;
    std::vector<std::string> header{"p"};
    for (int r : kRs)
        header.push_back("r=" + std::to_string(r));
    table.setHeader(header);

    // The whole r x p grid runs as one adaptive-precision sweep
    // (r outer, p inner in the materialized order): shorter
    // replications per point, grown per point until the EBW CI
    // half-width is within 1% of the mean or the cap. Every number is
    // bit-identical at any thread count.
    SweepSpec spec;
    spec.base = simConfig(8, 16, kRs[0],
                          ArbitrationPolicy::ProcessorPriority, false);
    spec.base.warmupCycles = 5000;
    spec.base.measureCycles = 100000;
    spec.memoryRatios.assign(std::begin(kRs), std::end(kRs));
    spec.requestProbabilities.assign(std::begin(kPs), std::end(kPs));

    PrecisionTarget target;
    target.relative = 0.01;
    RoundSchedule schedule;
    schedule.initial = 2;
    schedule.cap = 8;
    const std::vector<AdaptiveEstimate> grid =
        adaptiveSweepEbw(spec, target, schedule);

    const std::size_t num_ps = std::size(kPs);
    for (std::size_t i = 0; i < num_ps; ++i) {
        std::vector<double> row;
        for (std::size_t j = 0; j < std::size(kRs); ++j)
            row.push_back(grid[j * num_ps + i].estimate.mean /
                          (8.0 * kPs[i]));
        table.addNumericRow(TextTable::formatNumber(kPs[i], 1), row);
    }
    table.print(std::cout);

    reportAdaptivity(grid);
    std::printf("shape: columns decrease in p and increase in r; "
                "p=0.1 row ~ 1.0 (no contention).\n");
}

void
BM_Fig3Point(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig cfg =
            simConfig(8, 16, 8, ArbitrationPolicy::ProcessorPriority,
                      false, 0.5);
        cfg.warmupCycles = 1000;
        cfg.measureCycles = 50000;
        cfg.seed = seed++;
        benchmark::DoNotOptimize(runEbw(cfg));
    }
}
BENCHMARK(BM_Fig3Point)->Unit(benchmark::kMillisecond);

} // namespace

SBN_BENCH_MAIN(printReproduction)
