/**
 * @file
 * Reproduces paper Figure 6: processor utilization EBW/(n*p) vs p for
 * the BUFFERED system, n = 8, m = 16, several r values, alongside the
 * unbuffered utilization so the buffering benefit under partial load
 * is visible (Section 7: the benefit shrinks as p decreases).
 */

#include "bench_common.hh"

namespace {

constexpr int kRs[] = {4, 8, 12, 16};
constexpr double kPs[] = {0.1, 0.3, 0.5, 0.7, 0.9, 1.0};

void
printReproduction()
{
    using namespace sbn;
    using namespace sbn::bench;

    banner("Figure 6",
           "Processor utilization EBW/(n*p) vs p for the buffered "
           "system; n = 8, m = 16,\npriority to processors. Cells: "
           "buffered (unbuffered).");

    TextTable table;
    std::vector<std::string> header{"p"};
    for (int r : kRs)
        header.push_back("r=" + std::to_string(r));
    table.setHeader(header);

    for (double p : kPs) {
        std::vector<std::string> row{TextTable::formatNumber(p, 1)};
        for (int r : kRs) {
            const double buf =
                ebw(8, 16, r, ArbitrationPolicy::ProcessorPriority,
                    true, p) /
                (8.0 * p);
            const double plain =
                ebw(8, 16, r, ArbitrationPolicy::ProcessorPriority,
                    false, p) /
                (8.0 * p);
            row.push_back(TextTable::formatNumber(buf, 3) + " (" +
                          TextTable::formatNumber(plain, 3) + ")");
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::printf("shape: buffered >= unbuffered everywhere; the gap "
                "narrows as p decreases\n(less interference to "
                "remove), matching Section 7.\n");
}

void
BM_Fig6Point(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig cfg = simConfig(
            8, 16, 12, ArbitrationPolicy::ProcessorPriority, true, 0.5);
        cfg.warmupCycles = 1000;
        cfg.measureCycles = 50000;
        cfg.seed = seed++;
        benchmark::DoNotOptimize(runEbw(cfg));
    }
}
BENCHMARK(BM_Fig6Point)->Unit(benchmark::kMillisecond);

} // namespace

SBN_BENCH_MAIN(printReproduction)
