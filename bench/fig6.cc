/**
 * @file
 * Reproduces paper Figure 6: processor utilization EBW/(n*p) vs p for
 * the BUFFERED system, n = 8, m = 16, several r values, alongside the
 * unbuffered utilization so the buffering benefit under partial load
 * is visible (Section 7: the benefit shrinks as p decreases).
 */

#include "bench_common.hh"

namespace {

constexpr int kRs[] = {4, 8, 12, 16};
constexpr double kPs[] = {0.1, 0.3, 0.5, 0.7, 0.9, 1.0};

void
printReproduction()
{
    using namespace sbn;
    using namespace sbn::bench;

    banner("Figure 6",
           "Processor utilization EBW/(n*p) vs p for the buffered "
           "system; n = 8, m = 16,\npriority to processors. Cells: "
           "buffered (unbuffered).");

    TextTable table;
    std::vector<std::string> header{"p"};
    for (int r : kRs)
        header.push_back("r=" + std::to_string(r));
    table.setHeader(header);

    // One adaptive-precision sweep over the full r x p x buffering
    // grid (materialized order: r, then p, then buffering
    // true/false): per-point replication counts grow until the CI
    // half-width is within 1% of the mean or the cap.
    SweepSpec spec;
    spec.base = simConfig(8, 16, kRs[0],
                          ArbitrationPolicy::ProcessorPriority, false);
    spec.base.warmupCycles = 5000;
    spec.base.measureCycles = 100000;
    spec.memoryRatios.assign(std::begin(kRs), std::end(kRs));
    spec.requestProbabilities.assign(std::begin(kPs), std::end(kPs));
    spec.buffering = {true, false};

    PrecisionTarget target;
    target.relative = 0.01;
    RoundSchedule schedule;
    schedule.initial = 2;
    schedule.cap = 8;
    const std::vector<AdaptiveEstimate> grid =
        adaptiveSweepEbw(spec, target, schedule);

    const std::size_t num_ps = std::size(kPs);
    for (std::size_t i = 0; i < num_ps; ++i) {
        std::vector<std::string> row{TextTable::formatNumber(kPs[i], 1)};
        for (std::size_t j = 0; j < std::size(kRs); ++j) {
            const std::size_t cell = 2 * (j * num_ps + i);
            const double scale = 8.0 * kPs[i];
            row.push_back(
                TextTable::formatNumber(
                    grid[cell].estimate.mean / scale, 3) +
                " (" +
                TextTable::formatNumber(
                    grid[cell + 1].estimate.mean / scale, 3) +
                ")");
        }
        table.addRow(row);
    }
    table.print(std::cout);

    reportAdaptivity(grid);

    std::printf("shape: buffered >= unbuffered everywhere; the gap "
                "narrows as p decreases\n(less interference to "
                "remove), matching Section 7.\n");
}

void
BM_Fig6Point(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig cfg = simConfig(
            8, 16, 12, ArbitrationPolicy::ProcessorPriority, true, 0.5);
        cfg.warmupCycles = 1000;
        cfg.measureCycles = 50000;
        cfg.seed = seed++;
        benchmark::DoNotOptimize(runEbw(cfg));
    }
}
BENCHMARK(BM_Fig6Point)->Unit(benchmark::kMillisecond);

} // namespace

SBN_BENCH_MAIN(printReproduction)
