/**
 * @file
 * Hot-spot workload scenario (extension beyond paper hypothesis (e)):
 * saturation bandwidth vs the hot-spot fraction h.
 *
 * One module absorbs an extra fraction h of all memory traffic
 * (workload pattern HotSpot: the hot module's total share is
 * h + (1-h)/m); the rest of the system is the paper's saturated
 * baseline (p = 1). As h grows the hot module serializes the machine
 * and EBW collapses toward the single-module bound, buffered or not -
 * the classic hot-spot result for bus-based multiprocessors.
 *
 * The h sweep is a SweepSpec workload axis, so --shard=i/N (and the
 * rest of the bench shard flags) work here exactly as for the paper
 * figures; merged shard output is byte-identical to the serial run.
 *
 * A small-(n, m) cross-check column pins the simulator against the
 * generalized occupancy-chain model (workload/analytic.hh) under the
 * chain's hypotheses (memory priority, p = 1).
 */

#include "bench_common.hh"

#include "workload/analytic.hh"

namespace {

constexpr double kHs[] = {0.0, 0.1, 0.2, 0.3, 0.4,
                          0.5, 0.6, 0.7, 0.8, 0.9};

void
printSaturationCurve()
{
    using namespace sbn;
    using namespace sbn::bench;

    TextTable table("\nSaturation EBW vs hot-spot fraction h "
                    "(p = 1, r = 8, priority to processors)");
    // The hot module's total share h + (1-h)/m depends on m: print
    // it per system width.
    table.setHeader({"h", "share% m=8", "n=8 m=8", "n=8 m=8 buf",
                     "share% m=16", "n=16 m=16"});

    // One grid: (n, buffered) x h, h innermost.
    SweepSpec spec;
    spec.base = simConfig(8, 8, 8,
                          ArbitrationPolicy::ProcessorPriority, false);
    spec.hotFractions.assign(std::begin(kHs), std::end(kHs));
    spec.buffering = {false, true};
    const std::vector<double> small = sweepEbw(spec);

    SweepSpec wide = spec;
    wide.base.numProcessors = 16;
    wide.base.numModules = 16;
    wide.buffering = {};
    const std::vector<double> large = sweepEbw(wide);

    const std::size_t num_hs = std::size(kHs);
    for (std::size_t i = 0; i < num_hs; ++i) {
        const auto share = [&](int m) {
            return 100.0 * (kHs[i] + (1.0 - kHs[i]) / m);
        };
        table.addNumericRow(
            TextTable::formatNumber(kHs[i], 1),
            {share(8), small[i], small[num_hs + i], share(16),
             large[i]});
    }
    table.print(std::cout);
    std::printf("shape: h = 0 is the uniform baseline; EBW falls "
                "monotonically toward the\nsingle-module bound as the "
                "hot module serializes the machine. Buffers keep\n"
                "an edge but cannot remove the serialization.\n");
}

void
printLatencyTails()
{
    using namespace sbn;
    using namespace sbn::bench;

    if (shardMode().active)
        return; // serial add-on column, cheap enough to skip sharding

    std::printf("\nPer-request wait-time distribution vs h (n=8, m=8, "
                "r=8, p=1, unbuffered):\nquantiles in bus cycles from "
                "latency histograms merged over 4 replications\n"
                "(config.collectLatency; see docs/observability.md).\n");
    TextTable table;
    table.setHeader({"h", "mean", "p50", "p90", "p99", "max"});

    for (const double h : {0.0, 0.4, 0.8}) {
        Histogram wait = makeLatencyHistogram();
        for (std::uint64_t rep = 0; rep < 4; ++rep) {
            SystemConfig cfg = simConfig(
                8, 8, 8, ArbitrationPolicy::ProcessorPriority, false);
            cfg.workload.pattern = ReferencePattern::HotSpot;
            cfg.workload.hotFraction = h;
            cfg.measureCycles = 100000;
            cfg.collectLatency = true;
            cfg.seed += rep;
            const Metrics m = runOnce(cfg);
            wait.merge(*m.latencyWait);
        }
        table.addNumericRow(TextTable::formatNumber(h, 1),
                            {wait.mean(), wait.quantile(0.50),
                             wait.quantile(0.90), wait.quantile(0.99),
                             wait.maxSample()});
    }
    table.print(std::cout);
    std::printf("shape: the mean hides the damage - as h grows the "
                "p99/max tail stretches far\nfaster than the median "
                "while non-hot requests still complete quickly.\n");
}

void
printAnalyticCrossCheck()
{
    using namespace sbn;
    using namespace sbn::bench;

    std::printf("\nAnalytic cross-check (n=4, m=4, r=4, memory "
                "priority, p=1): simulator vs the\ngeneralized "
                "occupancy chain over module-selection probabilities "
                "(docs/workloads.md).\n");
    TextTable table;
    table.setHeader({"h", "sim EBW", "chain EBW", "sim/chain"});

    DiffTracker diff;
    for (const double h : {0.0, 0.2, 0.4, 0.6, 0.8}) {
        SystemConfig cfg = simConfig(
            4, 4, 4, ArbitrationPolicy::MemoryPriority, false);
        cfg.workload.pattern = ReferencePattern::HotSpot;
        cfg.workload.hotFraction = h;

        WorkloadConfig workload = cfg.workload;
        const double sim = sbn::bench::shardMode().active
                               ? std::numeric_limits<double>::quiet_NaN()
                               : runEbw(cfg);
        const double chain =
            workloadExactMemprioEbw(4, 4, 4, workload);
        table.addNumericRow(TextTable::formatNumber(h, 1),
                            {sim, chain, sim / chain});
        diff.add(chain, sim);
    }
    table.print(std::cout);
    diff.report("sim vs generalized chain");
}

void
printReproduction()
{
    using namespace sbn::bench;
    banner("Hot-spot workload",
           "Scenario study (not a paper artifact): saturation "
           "bandwidth vs hot-spot fraction h,\nwith an exact "
           "generalized-occupancy-chain cross-check at small (n, m).");
    printSaturationCurve();
    printLatencyTails();
    printAnalyticCrossCheck();
}

void
BM_HotSpotSim(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    const double h = static_cast<double>(state.range(0)) / 10.0;
    std::uint64_t cycles = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig cfg = simConfig(
            8, 8, 8, ArbitrationPolicy::ProcessorPriority, false);
        cfg.workload.pattern = ReferencePattern::HotSpot;
        cfg.workload.hotFraction = h;
        cfg.warmupCycles = 0;
        cfg.measureCycles = 200000;
        cfg.seed = seed++;
        benchmark::DoNotOptimize(runEbw(cfg));
        cycles += cfg.measureCycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HotSpotSim)->Arg(0)->Arg(5)->Arg(9)->Unit(
    benchmark::kMillisecond);

} // namespace

SBN_BENCH_MAIN(printReproduction)
