/**
 * @file
 * Reproduces paper Table 1: EBW exact values via the Section 3.1.1
 * Markov chain, priority to memory modules, p = 1, r = min(n, m) + 7,
 * n and m in {2, 4, 6, 8}.
 */

#include "bench_common.hh"

#include <algorithm>

#include "analytic/memprio.hh"

namespace {

constexpr int kSizes[4] = {2, 4, 6, 8};
constexpr double kPaper[4][4] = {
    {1.417, 1.625, 1.694, 1.729},
    {1.625, 2.308, 2.603, 2.761},
    {1.694, 2.603, 3.164, 3.469},
    {1.729, 2.761, 3.469, 3.988},
};

void
printReproduction()
{
    using namespace sbn;
    using namespace sbn::bench;

    banner("Table 1",
           "EBW exact values, priority to memory modules, "
           "r = min(n,m)+7 (paper p.420). Cells: paper / ours.");

    TextTable table;
    std::vector<std::string> header{"n \\ m"};
    for (int m : kSizes)
        header.push_back(std::to_string(m));
    table.setHeader(header);

    DiffTracker diff;
    for (int i = 0; i < 4; ++i) {
        std::vector<std::string> row{std::to_string(kSizes[i])};
        for (int j = 0; j < 4; ++j) {
            const int n = kSizes[i];
            const int m = kSizes[j];
            const int r = std::min(n, m) + 7;
            const double ours = memprioExactEbw(n, m, r);
            diff.add(kPaper[i][j], ours);
            row.push_back(TextTable::formatNumber(kPaper[i][j], 3) +
                          " / " + TextTable::formatNumber(ours, 3));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    diff.report("Table 1");
}

void
BM_MemPrioExactChain(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(state.range(1));
    const int r = std::min(n, m) + 7;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sbn::memprioExactEbw(n, m, r));
    }
}
BENCHMARK(BM_MemPrioExactChain)
    ->Args({2, 2})
    ->Args({4, 4})
    ->Args({8, 8})
    ->Args({8, 16})
    ->Unit(benchmark::kMillisecond);

} // namespace

SBN_BENCH_MAIN(printReproduction)
