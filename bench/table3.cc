/**
 * @file
 * Reproduces paper Table 3: EBW with priority to processors, n = 8,
 * m = 4..16, r = 2..12.
 *
 *   (a) simulation        -> our cycle-accurate simulator
 *   (b) approximate model -> our Section 4 reduced Markov chain
 *
 * The chain's P1/P2 formulas are re-derived from their verbal
 * definitions (the printed expressions are OCR-degraded); DESIGN.md
 * explains and tests/test_procprio.cc pins the validation bands.
 */

#include "bench_common.hh"

#include "analytic/procprio.hh"

namespace {

constexpr int kMs[7] = {4, 6, 8, 10, 12, 14, 16};
constexpr int kRs[6] = {2, 4, 6, 8, 10, 12};

// Paper Table 3a (simulation). The m=4, r=8 cell (3.287) is
// inconsistent with its own row neighbours; kept as printed.
constexpr double kPaper3a[7][6] = {
    {1.998, 2.867, 3.155, 3.287, 3.205, 3.220},
    {2.000, 2.986, 3.766, 4.033, 4.083, 4.117},
    {2.000, 2.999, 3.934, 4.523, 4.650, 4.722},
    {2.000, 3.000, 3.983, 4.766, 5.102, 5.144},
    {2.000, 3.000, 3.996, 4.878, 5.367, 5.464},
    {2.000, 3.000, 4.000, 4.947, 5.569, 5.732},
    {2.000, 3.000, 4.000, 4.977, 5.698, 5.959},
};

// Paper Table 3b (approximate model; the printed m=6, r=8 cell 2.854
// is an evident typo for 3.854).
constexpr double kPaper3b[7][6] = {
    {1.994, 2.727, 2.992, 3.089, 3.133, 3.156},
    {1.999, 2.956, 3.582, 3.854, 3.973, 4.033},
    {2.000, 2.994, 3.848, 4.344, 4.577, 4.692},
    {2.000, 2.999, 3.947, 4.633, 5.000, 5.184},
    {2.000, 2.999, 3.981, 4.794, 5.288, 5.546},
    {2.000, 3.000, 3.992, 4.880, 5.480, 5.810},
    {2.000, 3.000, 3.997, 4.927, 5.608, 6.000},
};

void
printReproduction()
{
    using namespace sbn;
    using namespace sbn::bench;

    banner("Table 3",
           "EBW with priority to processors, n = 8, p = 1.\n"
           "(a) simulation; (b) reduced Markov chain. "
           "Cells: paper / ours.");

    std::vector<std::string> header{"m \\ r"};
    for (int r : kRs)
        header.push_back(std::to_string(r));

    {
        std::printf("(a) simulation (rows stream as they complete)\n");
        std::printf("  %-6s", "m \\ r");
        for (int r : kRs)
            std::printf("  %13d", r);
        std::printf("\n");

        // The whole m x r simulation grid as one parallel streamed
        // sweep (modules outer, ratios inner): each m row prints as
        // soon as its six cells - and all earlier rows - finish.
        DiffTracker diff;
        SweepSpec spec;
        spec.base = simConfig(8, kMs[0], kRs[0],
                              ArbitrationPolicy::ProcessorPriority,
                              false);
        spec.modules.assign(std::begin(kMs), std::end(kMs));
        spec.memoryRatios.assign(std::begin(kRs), std::end(kRs));
        sweepEbwStreamed(
            spec, 6,
            [&](std::size_t i, const std::vector<double> &cells) {
                std::printf("  %-6d", kMs[i]);
                for (int j = 0; j < 6; ++j) {
                    diff.add(kPaper3a[i][j], cells[j]);
                    std::printf("  %6.3f/%6.3f", kPaper3a[i][j],
                                cells[j]);
                }
                std::printf("\n");
                std::fflush(stdout);
            });
        diff.report("Table 3a");
    }

    std::printf("\n");
    {
        TextTable table("(b) approximate model (reduced Markov chain)");
        table.setHeader(header);
        DiffTracker diff;

        // Chain solves are independent too; fan them out by index.
        const std::vector<double> model = runner().map<double>(
            7 * 6, [](std::size_t cell) {
                ProcPrioChain chain(8, kMs[cell / 6], kRs[cell % 6]);
                return chain.ebw();
            });

        for (int i = 0; i < 7; ++i) {
            std::vector<std::string> row{std::to_string(kMs[i])};
            for (int j = 0; j < 6; ++j) {
                diff.add(kPaper3b[i][j], model[i * 6 + j]);
                row.push_back(
                    TextTable::formatNumber(kPaper3b[i][j], 3) + " / " +
                    TextTable::formatNumber(model[i * 6 + j], 3));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        diff.report("Table 3b");
        std::printf("note: the worst 3b cells are the m=4 tail, where "
                    "the paper's own model deviates 5-7%% from its\n"
                    "simulation in the opposite direction; against "
                    "Table 3a our chain stays within 7%% everywhere.\n");
    }
}

void
BM_SingleBusSimulation(benchmark::State &state)
{
    using namespace sbn;
    using namespace sbn::bench;
    const int m = static_cast<int>(state.range(0));
    const int r = static_cast<int>(state.range(1));
    std::uint64_t cycles = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        SystemConfig cfg = simConfig(
            8, m, r, ArbitrationPolicy::ProcessorPriority, false);
        cfg.warmupCycles = 1000;
        cfg.measureCycles = 100000;
        cfg.seed = seed++;
        benchmark::DoNotOptimize(runEbw(cfg));
        cycles += cfg.warmupCycles + cfg.measureCycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SingleBusSimulation)
    ->Args({4, 2})
    ->Args({16, 12})
    ->Unit(benchmark::kMillisecond);

void
BM_ProcPrioChainSolve(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sbn::ProcPrioChain chain(8, m, 12);
        benchmark::DoNotOptimize(chain.ebw());
    }
}
BENCHMARK(BM_ProcPrioChainSolve)->Arg(4)->Arg(16);

} // namespace

SBN_BENCH_MAIN(printReproduction)
