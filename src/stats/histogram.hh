/**
 * @file
 * Fixed-bin histogram for latency/waiting-time distributions.
 */

#ifndef SBN_STATS_HISTOGRAM_HH
#define SBN_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sbn {

/**
 * Histogram over [lo, hi) with uniform bins plus underflow/overflow
 * counters. Also tracks exact mean via an Accumulator-style running
 * sum so the histogram can double as a summary statistic.
 */
class Histogram
{
  public:
    /**
     * @param lo    inclusive lower bound of the tracked range
     * @param hi    exclusive upper bound
     * @param bins  number of uniform bins (>= 1)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one sample. */
    void add(double sample);

    /** Total samples including under/overflow. */
    std::uint64_t count() const { return count_; }

    /** Mean of all samples. */
    double mean() const;

    /** Count in bin i. */
    std::uint64_t binCount(std::size_t i) const { return bins_.at(i); }

    /** Number of bins. */
    std::size_t numBins() const { return bins_.size(); }

    /** Inclusive lower edge of bin i. */
    double binLow(std::size_t i) const;

    /** Samples below lo / at-or-above hi. */
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /**
     * Smallest x such that at least quantile*count samples are < x
     * (resolved to bin granularity; under/overflow map to range ends).
     */
    double quantile(double q) const;

    /** Multi-line ASCII rendering (one row per non-empty bin). */
    std::string render(std::size_t width = 50) const;

    /** Drop all samples. */
    void reset();

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

} // namespace sbn

#endif // SBN_STATS_HISTOGRAM_HH
