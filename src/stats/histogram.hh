/**
 * @file
 * Fixed-bin histogram for latency/waiting-time distributions.
 */

#ifndef SBN_STATS_HISTOGRAM_HH
#define SBN_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sbn {

/** How a Histogram spaces its bin edges over [lo, hi). */
enum class HistogramScale
{
    Linear, //!< uniform bin width (hi - lo) / bins
    Log,    //!< geometric bins: edge i = lo * (hi/lo)^(i/bins)
};

/**
 * Histogram over [lo, hi) with uniform or logarithmic bins plus
 * underflow/overflow counters. Also tracks exact mean via a running
 * sum so the histogram can double as a summary statistic.
 *
 * Bin counts and the sample count are integers, and the running sum
 * of integer-valued samples is exact in a double far past any
 * realistic sample volume, so two histograms built from the same
 * multiset of samples are identical regardless of insertion order -
 * which is what makes renderFlatJson() byte-stable across thread
 * counts and shard/serial execution.
 */
class Histogram
{
  public:
    /**
     * @param lo    inclusive lower bound of the tracked range
     * @param hi    exclusive upper bound
     * @param bins  number of uniform bins (>= 1)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /**
     * A histogram with @p bins geometrically spaced bins over
     * [lo, hi); requires 0 < lo < hi. Samples below lo (e.g. a
     * zero-cycle wait when lo is one cycle) land in underflow.
     */
    static Histogram logScale(double lo, double hi, std::size_t bins);

    /** Record one sample. */
    void add(double sample);

    /** Total samples including under/overflow. */
    std::uint64_t count() const { return count_; }

    /** Mean of all samples. */
    double mean() const;

    /** Count in bin i. */
    std::uint64_t binCount(std::size_t i) const { return bins_.at(i); }

    /** Number of bins. */
    std::size_t numBins() const { return bins_.size(); }

    /** Inclusive lower edge of bin i. */
    double binLow(std::size_t i) const;

    /** Bin-edge spacing rule. */
    HistogramScale scale() const { return scale_; }

    /** Tracked range. */
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Largest sample seen (NaN before any sample). */
    double maxSample() const;

    /** Samples below lo / at-or-above hi. */
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /**
     * Smallest x such that at least quantile*count samples are < x
     * (resolved to bin granularity; underflow maps to lo, and a
     * quantile that falls in the overflow mass maps to hi). NaN when
     * the histogram is empty.
     */
    double quantile(double q) const;

    /** True if @p other has the identical bin layout (scale, range,
     *  bin count), i.e. the two may be merged. */
    bool compatibleWith(const Histogram &other) const;

    /**
     * Fold @p other's samples into this histogram. Incompatible bin
     * layouts are a fatal error: silently re-binning would corrupt
     * the distribution.
     */
    void merge(const Histogram &other);

    /** Multi-line ASCII rendering (one row per non-empty bin). */
    std::string render(std::size_t width = 50) const;

    /**
     * One-line flat JSON rendering (sbn.hist.v1) that
     * parseFlatJsonObject round-trips. Key order is fixed and doubles
     * use the canonical exact %.17g form, so two histograms holding
     * the same samples render byte-identically. Bin counts are a
     * sparse "index:count" list; empty bins are omitted.
     */
    std::string renderFlatJson() const;

    /** Drop all samples. */
    void reset();

  private:
    Histogram(HistogramScale scale, double lo, double hi,
              std::size_t bins);

    HistogramScale scale_;
    double lo_, hi_, width_;
    double logLo_ = 0.0, logStep_ = 0.0; //!< cached for Log scale
    std::vector<std::uint64_t> bins_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double maxSample_ = 0.0;
};

} // namespace sbn

#endif // SBN_STATS_HISTOGRAM_HH
