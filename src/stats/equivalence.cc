#include "stats/equivalence.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace sbn {

CiSummary
summarizeSamples(const std::vector<double> &values, double level)
{
    sbn_assert(values.size() >= 2,
               "a CI summary needs at least two replications");
    Accumulator acc;
    for (double v : values)
        acc.add(v);
    CiSummary out;
    out.count = acc.count();
    out.mean = acc.mean();
    out.variance = acc.variance();
    out.halfWidth = acc.confidenceHalfWidth(level);
    out.level = level;
    return out;
}

std::string
EquivalenceResult::describe() const
{
    char buffer[256];
    std::snprintf(buffer, sizeof buffer,
                  "%.6g [%.6g, %.6g] vs %.6g [%.6g, %.6g], "
                  "Welch t=%.3f (dof %.1f)",
                  a.mean, a.lo(), a.hi(), b.mean, b.lo(), b.hi(),
                  tStatistic, dof);
    return buffer;
}

EquivalenceResult
ciOverlapTest(const std::vector<double> &a,
              const std::vector<double> &b, double level)
{
    EquivalenceResult out;
    out.a = summarizeSamples(a, level);
    out.b = summarizeSamples(b, level);
    out.overlap = out.a.lo() <= out.b.hi() && out.b.lo() <= out.a.hi();

    const double na = static_cast<double>(out.a.count);
    const double nb = static_cast<double>(out.b.count);
    const double va = out.a.variance / na;
    const double vb = out.b.variance / nb;
    const double se = std::sqrt(va + vb);
    out.tStatistic =
        se > 0.0 ? (out.a.mean - out.b.mean) / se
                 : (out.a.mean == out.b.mean ? 0.0 : HUGE_VAL);
    const double denom = (va * va) / (na - 1.0) + (vb * vb) / (nb - 1.0);
    out.dof = denom > 0.0 ? (va + vb) * (va + vb) / denom : na + nb - 2.0;
    return out;
}

bool
ciContains(const std::vector<double> &values, double reference,
           double level, double slack)
{
    const CiSummary s = summarizeSamples(values, level);
    const double pad = std::abs(reference) * slack;
    return s.lo() - pad <= reference && reference <= s.hi() + pad;
}

} // namespace sbn
