/**
 * @file
 * Statistical-equivalence tests between two simulation kernels.
 *
 * The FastStat kernel is deliberately not bit-compatible with the
 * exact CycleSkip kernel (core/faststat.hh), so its regression net
 * cannot be golden equality. Instead it is statistical: K independent
 * replications of each kernel at the same configuration estimate the
 * same population mean, and the two confidence intervals must
 * overlap. With fixed replication seeds the whole procedure is
 * deterministic - an equivalence test either always passes or always
 * fails for a given build, which is what makes it a ctest citizen.
 *
 * The layer also reports the Welch t-statistic (unequal variances,
 * Welch-Satterthwaite dof) as a graded measure: CI overlap is the
 * pass criterion, the t value is what a failure message prints so a
 * drift shows its magnitude, not just a boolean.
 */

#ifndef SBN_STATS_EQUIVALENCE_HH
#define SBN_STATS_EQUIVALENCE_HH

#include <string>
#include <vector>

#include "stats/accumulator.hh"

namespace sbn {

/** Mean / CI summary of one kernel's replication sample. */
struct CiSummary
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double variance = 0.0;
    double halfWidth = 0.0; //!< Student-t CI half-width at `level`
    double level = 0.95;

    double lo() const { return mean - halfWidth; }
    double hi() const { return mean + halfWidth; }
};

/** Summarize replication values at a confidence level. @pre size >= 2 */
CiSummary summarizeSamples(const std::vector<double> &values,
                           double level = 0.95);

/** One CI-overlap equivalence verdict between two samples. */
struct EquivalenceResult
{
    CiSummary a;
    CiSummary b;
    bool overlap = false;   //!< the pass/fail criterion
    double tStatistic = 0.0; //!< Welch t (magnitude of the drift)
    double dof = 0.0;        //!< Welch-Satterthwaite degrees of freedom

    /** "mean_a [lo, hi] vs mean_b [lo, hi], t=..." for messages. */
    std::string describe() const;
};

/**
 * CI-overlap test: summarize both samples at @p level and check
 * whether the intervals intersect. Two estimators of the same mean
 * overlap at 95%/95% with probability well above the individual
 * levels, so a non-overlap is strong evidence of a real difference.
 */
EquivalenceResult ciOverlapTest(const std::vector<double> &a,
                                const std::vector<double> &b,
                                double level = 0.95);

/**
 * Whether a sample's CI (optionally widened by @p slack on each side,
 * as a fraction of the reference value) contains @p reference. Used
 * against analytic anchors, where a small finite-window simulation
 * bias is expected and quantified by the slack.
 */
bool ciContains(const std::vector<double> &values, double reference,
                double level = 0.95, double slack = 0.0);

} // namespace sbn

#endif // SBN_STATS_EQUIVALENCE_HH
