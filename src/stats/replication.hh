/**
 * @file
 * Independent-replications estimator.
 *
 * Runs a seeded experiment K times with derived seeds and reports a
 * Student-t confidence interval across the replication results. This
 * complements BatchMeans: replications remove initialization bias
 * concerns at the cost of repeated warmups.
 */

#ifndef SBN_STATS_REPLICATION_HH
#define SBN_STATS_REPLICATION_HH

#include <cstdint>
#include <functional>

#include "stats/batch_means.hh"

namespace sbn {

/**
 * Run @p experiment once per replication with a deterministic derived
 * seed and summarize the scalar results.
 *
 * A single replication (replications == 1) is accepted: the estimate
 * then carries the lone result as its mean with halfWidth 0 (no
 * confidence interval - use >= 2 replications for one) and samples
 * always reports the replication count actually run.
 *
 * Execution is delegated to the exec layer: replications run on
 * defaultExecThreads() workers (serial unless configured), with
 * results bit-identical to serial execution at any worker count.
 *
 * @param experiment    callable mapping a seed to a scalar result;
 *                      must be safe to call concurrently when the
 *                      default worker count is raised above 1
 * @param replications  number of independent runs (>= 1)
 * @param master_seed   seed for the seed-derivation stream
 * @param level         confidence level for the interval
 */
Estimate runReplications(
    const std::function<double(std::uint64_t)> &experiment,
    unsigned replications, std::uint64_t master_seed = 1,
    double level = 0.95);

} // namespace sbn

#endif // SBN_STATS_REPLICATION_HH
