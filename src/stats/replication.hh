/**
 * @file
 * Independent-replications estimator.
 *
 * Runs a seeded experiment K times with derived seeds and reports a
 * Student-t confidence interval across the replication results. This
 * complements BatchMeans: replications remove initialization bias
 * concerns at the cost of repeated warmups.
 */

#ifndef SBN_STATS_REPLICATION_HH
#define SBN_STATS_REPLICATION_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "stats/batch_means.hh"
#include "util/random.hh"

namespace sbn {

/**
 * Round-based replication accumulation that reuses prior
 * replications.
 *
 * Adaptive-precision runs grow a replication count in rounds: each
 * round extends the same experiment with a few more replications and
 * re-evaluates the confidence interval over *all* replications so
 * far, never discarding earlier work. This class owns the per-round
 * bookkeeping:
 *
 *  - the seed stream: seedsForExtension(k) hands out the seeds for
 *    replications [completed, k) from the master derivation stream,
 *    so replication i receives the *same* seed whether the run grows
 *    in rounds or derives all k seeds in one shot (the
 *    runReplications stream);
 *  - the accumulator: accept() folds the extension's results in, in
 *    replication order, so the running estimate after k replications
 *    is bit-identical to a one-shot k-replication run.
 *
 * The caller supplies the execution: derive seeds, map them to values
 * (serially or on a pool - order of evaluation does not matter, only
 * the order of the values handed back), then accept().
 */
class ReplicationRounds
{
  public:
    /** @param level confidence level for estimate(). */
    explicit ReplicationRounds(std::uint64_t master_seed,
                               double level = 0.95);

    /** Replications accumulated so far. */
    unsigned completed() const
    {
        return static_cast<unsigned>(acc_.count());
    }

    /**
     * Seeds for extending the run to @p target replications: the
     * derivation-stream seeds for replications [completed, target),
     * in replication order (empty when target <= completed). Every
     * call must be followed by the matching accept() before the next
     * extension.
     */
    std::vector<std::uint64_t> seedsForExtension(unsigned target);

    /**
     * Fold in the results for the last handed-out extension, in the
     * same order as the seeds. @p values must have exactly one entry
     * per outstanding seed.
     */
    void accept(const std::vector<double> &values);

    /**
     * Estimate over every replication accepted so far; matches the
     * runReplications() conventions (halfWidth 0 with fewer than two
     * replications).
     */
    Estimate estimate() const;

  private:
    RandomGenerator seeder_;
    Accumulator acc_;
    unsigned derived_ = 0; //!< seeds handed out so far
    double level_;
};

/**
 * Run @p experiment once per replication with a deterministic derived
 * seed and summarize the scalar results.
 *
 * A single replication (replications == 1) is accepted: the estimate
 * then carries the lone result as its mean with halfWidth 0 (no
 * confidence interval - use >= 2 replications for one) and samples
 * always reports the replication count actually run.
 *
 * Execution is delegated to the exec layer: replications run on
 * defaultExecThreads() workers (serial unless configured), with
 * results bit-identical to serial execution at any worker count.
 *
 * @param experiment    callable mapping a seed to a scalar result;
 *                      must be safe to call concurrently when the
 *                      default worker count is raised above 1
 * @param replications  number of independent runs (>= 1)
 * @param master_seed   seed for the seed-derivation stream
 * @param level         confidence level for the interval
 */
Estimate runReplications(
    const std::function<double(std::uint64_t)> &experiment,
    unsigned replications, std::uint64_t master_seed = 1,
    double level = 0.95);

} // namespace sbn

#endif // SBN_STATS_REPLICATION_HH
