#include "stats/replication.hh"

#include "stats/accumulator.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace sbn {

Estimate
runReplications(const std::function<double(std::uint64_t)> &experiment,
                unsigned replications, std::uint64_t master_seed,
                double level)
{
    sbn_assert(replications >= 1, "need at least one replication");

    RandomGenerator seeder(master_seed);
    Accumulator acc;
    for (unsigned i = 0; i < replications; ++i)
        acc.add(experiment(seeder.deriveSeed()));

    Estimate e;
    e.mean = acc.mean();
    e.halfWidth = replications >= 2 ? acc.confidenceHalfWidth(level) : 0.0;
    e.samples = acc.count();
    return e;
}

} // namespace sbn
