#include "stats/replication.hh"

#include "exec/parallel_runner.hh"
#include "util/logging.hh"

namespace sbn {

ReplicationRounds::ReplicationRounds(std::uint64_t master_seed,
                                     double level)
    : seeder_(master_seed), level_(level)
{}

std::vector<std::uint64_t>
ReplicationRounds::seedsForExtension(unsigned target)
{
    sbn_assert(derived_ == completed(),
               "previous extension not accepted yet");
    std::vector<std::uint64_t> seeds;
    if (target <= derived_)
        return seeds;
    seeds.reserve(target - derived_);
    while (derived_ < target) {
        seeds.push_back(seeder_.deriveSeed());
        ++derived_;
    }
    return seeds;
}

void
ReplicationRounds::accept(const std::vector<double> &values)
{
    sbn_assert(completed() + values.size() == derived_,
               "extension result count does not match the seeds "
               "handed out");
    for (double value : values)
        acc_.add(value);
}

Estimate
ReplicationRounds::estimate() const
{
    Estimate e;
    e.mean = acc_.mean();
    e.halfWidth =
        acc_.count() >= 2 ? acc_.confidenceHalfWidth(level_) : 0.0;
    e.samples = acc_.count();
    return e;
}

Estimate
runReplications(const std::function<double(std::uint64_t)> &experiment,
                unsigned replications, std::uint64_t master_seed,
                double level)
{
    sbn_assert(replications >= 1, "need at least one replication");

    // Route through the execution layer. The default worker count is 1
    // unless configured (SBN_THREADS / setDefaultExecThreads), which
    // preserves strict serial semantics - results are bit-identical at
    // any worker count, but side effects inside @p experiment observe
    // replication order only when serial.
    return sharedParallelRunner(defaultExecThreads())
        .runReplications(experiment, replications, master_seed, level);
}

} // namespace sbn
