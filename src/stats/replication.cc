#include "stats/replication.hh"

#include "exec/parallel_runner.hh"
#include "util/logging.hh"

namespace sbn {

Estimate
runReplications(const std::function<double(std::uint64_t)> &experiment,
                unsigned replications, std::uint64_t master_seed,
                double level)
{
    sbn_assert(replications >= 1, "need at least one replication");

    // Route through the execution layer. The default worker count is 1
    // unless configured (SBN_THREADS / setDefaultExecThreads), which
    // preserves strict serial semantics - results are bit-identical at
    // any worker count, but side effects inside @p experiment observe
    // replication order only when serial.
    return sharedParallelRunner(defaultExecThreads())
        .runReplications(experiment, replications, master_seed, level);
}

} // namespace sbn
