#include "stats/accumulator.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace sbn {

void
Accumulator::reset()
{
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

void
Accumulator::add(double sample)
{
    ++count_;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
}

Accumulator
Accumulator::fromMoments(std::uint64_t count, double mean, double m2,
                         double min, double max)
{
    Accumulator out;
    if (count == 0)
        return out;
    out.count_ = count;
    out.mean_ = mean;
    out.m2_ = std::max(m2, 0.0); // guard tiny negative round-off
    out.min_ = min;
    out.max_ = max;
    return out;
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

double
Accumulator::stderror() const
{
    if (count_ < 1)
        return 0.0;
    return stddev() / std::sqrt(static_cast<double>(count_));
}

double
Accumulator::confidenceHalfWidth(double level) const
{
    if (count_ < 2)
        return std::numeric_limits<double>::infinity();
    return studentTQuantile(count_ - 1, level) * stderror();
}

namespace {

// Two-sided Student-t critical values for dof 1..30, then selected
// larger dofs; indexed by [level][dof bucket].
constexpr double kT90[] = {
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
    1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
    1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
constexpr double kT95[] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
constexpr double kT99[] = {
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
    3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
    2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750};

} // namespace

double
studentTQuantile(std::uint64_t dof, double level)
{
    sbn_assert(dof >= 1, "t quantile needs dof >= 1");
    const double *table = nullptr;
    double asymptote = 0.0;
    if (level <= 0.901) {
        table = kT90;
        asymptote = 1.645;
    } else if (level <= 0.951) {
        table = kT95;
        asymptote = 1.960;
    } else {
        table = kT99;
        asymptote = 2.576;
    }
    if (dof <= 30)
        return table[dof - 1];
    if (dof <= 40)
        return table[29] - (table[29] - asymptote) * 0.25;
    if (dof <= 60)
        return table[29] - (table[29] - asymptote) * 0.50;
    if (dof <= 120)
        return table[29] - (table[29] - asymptote) * 0.75;
    return asymptote;
}

} // namespace sbn
