#include "stats/batch_means.hh"

#include <cmath>

#include "util/logging.hh"

namespace sbn {

bool
Estimate::covers(double value, double slack) const
{
    return std::abs(value - mean) <= halfWidth + slack;
}

BatchMeans::BatchMeans(std::uint64_t batch_size) : batchSize_(batch_size)
{
    sbn_assert(batch_size >= 1, "batch size must be >= 1");
}

void
BatchMeans::add(double sample)
{
    batchSum_ += sample;
    if (++inBatch_ == batchSize_) {
        batchStats_.add(batchSum_ / static_cast<double>(batchSize_));
        batchSum_ = 0.0;
        inBatch_ = 0;
    }
}

Estimate
BatchMeans::estimate(double level) const
{
    Estimate e;
    e.mean = batchStats_.mean();
    e.halfWidth = batchStats_.confidenceHalfWidth(level);
    e.samples = batchStats_.count();
    return e;
}

void
BatchMeans::reset()
{
    inBatch_ = 0;
    batchSum_ = 0.0;
    batchStats_.reset();
}

} // namespace sbn
