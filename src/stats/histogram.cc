#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace sbn {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins, 0)
{
    sbn_assert(hi > lo, "histogram range must be non-empty");
    sbn_assert(bins >= 1, "histogram needs at least one bin");
}

void
Histogram::add(double sample)
{
    ++count_;
    sum_ += sample;
    if (sample < lo_) {
        ++underflow_;
    } else if (sample >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((sample - lo_) / width_);
        idx = std::min(idx, bins_.size() - 1);
        ++bins_[idx];
    }
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::quantile(double q) const
{
    sbn_assert(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
    if (count_ == 0)
        return lo_;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    std::uint64_t seen = underflow_;
    if (seen >= target)
        return lo_;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        seen += bins_[i];
        if (seen >= target)
            return binLow(i) + width_;
    }
    return hi_;
}

std::string
Histogram::render(std::size_t width) const
{
    std::uint64_t peak = 1;
    for (auto c : bins_)
        peak = std::max(peak, c);

    std::ostringstream os;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (!bins_[i])
            continue;
        const auto bar = static_cast<std::size_t>(
            static_cast<double>(bins_[i]) / static_cast<double>(peak) *
            static_cast<double>(width));
        os << '[' << binLow(i) << ", " << binLow(i) + width_ << ") "
           << std::string(std::max<std::size_t>(bar, 1), '#') << ' '
           << bins_[i] << '\n';
    }
    if (underflow_)
        os << "underflow " << underflow_ << '\n';
    if (overflow_)
        os << "overflow " << overflow_ << '\n';
    return os.str();
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = 0.0;
}

} // namespace sbn
