#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "core/fingerprint.hh"
#include "util/logging.hh"

namespace sbn {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : Histogram(HistogramScale::Linear, lo, hi, bins)
{
}

Histogram::Histogram(HistogramScale scale, double lo, double hi,
                     std::size_t bins)
    : scale_(scale), lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(bins)), bins_(bins, 0)
{
    sbn_assert(hi > lo, "histogram range must be non-empty");
    sbn_assert(bins >= 1, "histogram needs at least one bin");
    if (scale_ == HistogramScale::Log) {
        sbn_assert(lo > 0.0, "log-scale histogram requires lo > 0");
        logLo_ = std::log(lo_);
        logStep_ = (std::log(hi_) - logLo_) / static_cast<double>(bins);
    }
}

Histogram
Histogram::logScale(double lo, double hi, std::size_t bins)
{
    return Histogram(HistogramScale::Log, lo, hi, bins);
}

void
Histogram::add(double sample)
{
    ++count_;
    sum_ += sample;
    if (count_ == 1 || sample > maxSample_)
        maxSample_ = sample;
    if (sample < lo_) {
        ++underflow_;
    } else if (sample >= hi_) {
        ++overflow_;
    } else if (scale_ == HistogramScale::Log) {
        // Rounding in log() can push a sample fractionally across a
        // bin edge but never outside [0, bins): clamp both ends.
        const double t = (std::log(sample) - logLo_) / logStep_;
        auto idx = static_cast<std::size_t>(std::max(t, 0.0));
        idx = std::min(idx, bins_.size() - 1);
        ++bins_[idx];
    } else {
        auto idx = static_cast<std::size_t>((sample - lo_) / width_);
        idx = std::min(idx, bins_.size() - 1);
        ++bins_[idx];
    }
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::binLow(std::size_t i) const
{
    if (scale_ == HistogramScale::Log)
        return std::exp(logLo_ + logStep_ * static_cast<double>(i));
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::maxSample() const
{
    return count_ ? maxSample_
                  : std::numeric_limits<double>::quiet_NaN();
}

double
Histogram::quantile(double q) const
{
    sbn_assert(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
    if (count_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    std::uint64_t seen = underflow_;
    if (seen >= target)
        return lo_;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        seen += bins_[i];
        if (seen >= target)
            return binLow(i + 1);
    }
    // Only overflow mass remains (including the all-overflow case).
    return hi_;
}

bool
Histogram::compatibleWith(const Histogram &other) const
{
    return scale_ == other.scale_ && lo_ == other.lo_ &&
           hi_ == other.hi_ && bins_.size() == other.bins_.size();
}

void
Histogram::merge(const Histogram &other)
{
    if (!compatibleWith(other)) {
        sbn_fatal("histogram merge with incompatible bin layout: ",
                  "[", lo_, ", ", hi_, ") x", bins_.size(),
                  (scale_ == HistogramScale::Log ? " log" : " linear"),
                  " vs [", other.lo_, ", ", other.hi_, ") x",
                  other.bins_.size(),
                  (other.scale_ == HistogramScale::Log ? " log"
                                                       : " linear"));
    }
    for (std::size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    if (other.count_ &&
        (count_ == 0 || other.maxSample_ > maxSample_)) {
        maxSample_ = other.maxSample_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

std::string
Histogram::render(std::size_t width) const
{
    std::uint64_t peak = 1;
    for (auto c : bins_)
        peak = std::max(peak, c);

    std::ostringstream os;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (!bins_[i])
            continue;
        os << '[' << binLow(i) << ", " << binLow(i + 1) << ") "
           << std::string(
                  std::max<std::size_t>(
                      static_cast<std::size_t>(
                          static_cast<double>(bins_[i]) /
                          static_cast<double>(peak) *
                          static_cast<double>(width)),
                      1),
                  '#')
           << ' ' << bins_[i] << '\n';
    }
    if (underflow_)
        os << "underflow " << underflow_ << '\n';
    if (overflow_)
        os << "overflow " << overflow_ << '\n';
    return os.str();
}

std::string
Histogram::renderFlatJson() const
{
    std::ostringstream os;
    os << "{\"type\":\"sbn.hist.v1\",\"scale\":\""
       << (scale_ == HistogramScale::Log ? "log" : "linear")
       << "\",\"lo\":" << formatExactDouble(lo_)
       << ",\"hi\":" << formatExactDouble(hi_)
       << ",\"bins\":" << bins_.size() << ",\"count\":" << count_
       << ",\"underflow\":" << underflow_
       << ",\"overflow\":" << overflow_
       << ",\"sum\":" << formatExactDouble(sum_) << ",\"counts\":\"";
    bool first = true;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (!bins_[i])
            continue;
        if (!first)
            os << ' ';
        os << i << ':' << bins_[i];
        first = false;
    }
    os << "\"}";
    return os.str();
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = 0.0;
    maxSample_ = 0.0;
}

} // namespace sbn
