/**
 * @file
 * Batch-means estimator for steady-state simulation output analysis.
 *
 * Correlated per-cycle observations are grouped into fixed-size
 * batches; batch averages are approximately independent for large
 * batches, so a Student-t confidence interval on their mean is a
 * defensible steady-state interval (law of large numbers for
 * regenerative-ish processes). This is the classical method used for
 * single-run steady-state estimation.
 */

#ifndef SBN_STATS_BATCH_MEANS_HH
#define SBN_STATS_BATCH_MEANS_HH

#include <cstdint>

#include "stats/accumulator.hh"

namespace sbn {

/** Confidence interval summary produced by estimators. */
struct Estimate
{
    double mean = 0.0;      //!< point estimate
    double halfWidth = 0.0; //!< CI half width at the requested level
    std::uint64_t samples = 0;

    double lower() const { return mean - halfWidth; }
    double upper() const { return mean + halfWidth; }

    /** True if |other - mean| <= halfWidth + slack. */
    bool covers(double value, double slack = 0.0) const;
};

/** Fixed-batch-size batch-means accumulator. */
class BatchMeans
{
  public:
    /** @param batch_size observations per batch (>= 1). */
    explicit BatchMeans(std::uint64_t batch_size);

    /** Add one raw (possibly autocorrelated) observation. */
    void add(double sample);

    /** Number of completed batches. */
    std::uint64_t batches() const { return batchStats_.count(); }

    /** Grand mean over completed batches. */
    double mean() const { return batchStats_.mean(); }

    /** Confidence interval over batch averages. */
    Estimate estimate(double level = 0.95) const;

    /** Drop all state. */
    void reset();

  private:
    std::uint64_t batchSize_;
    std::uint64_t inBatch_ = 0;
    double batchSum_ = 0.0;
    Accumulator batchStats_;
};

} // namespace sbn

#endif // SBN_STATS_BATCH_MEANS_HH
