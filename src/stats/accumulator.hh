/**
 * @file
 * Online statistics accumulator (Welford's algorithm).
 */

#ifndef SBN_STATS_ACCUMULATOR_HH
#define SBN_STATS_ACCUMULATOR_HH

#include <cstdint>
#include <limits>

namespace sbn {

/**
 * Numerically stable accumulator for count / mean / variance / extrema
 * of a stream of samples. Suitable both for per-run metrics and for
 * across-replication summaries.
 */
class Accumulator
{
  public:
    Accumulator() { reset(); }

    /** Forget all samples. */
    void reset();

    /** Add one sample. */
    void add(double sample);

    /** Merge another accumulator (parallel Welford combine). */
    void merge(const Accumulator &other);

    /**
     * Build an accumulator from precomputed moments: @p m2 is the sum
     * of squared deviations from @p mean (n * population variance).
     * For callers that accumulate exact integer sums in a hot loop
     * (e.g. the FastStat kernel's tick-valued waits) and summarize
     * once at the end.
     */
    static Accumulator fromMoments(std::uint64_t count, double mean,
                                   double m2, double min, double max);

    /** Number of samples added. */
    std::uint64_t count() const { return count_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sum of samples. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Standard error of the mean: stddev / sqrt(count). */
    double stderror() const;

    /** Smallest sample seen; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample seen; -inf when empty. */
    double max() const { return max_; }

    /**
     * Half-width of the two-sided confidence interval on the mean at
     * the given level (0.90, 0.95 or 0.99), using the Student-t
     * quantile for count-1 degrees of freedom. Returns +inf with fewer
     * than two samples.
     */
    double confidenceHalfWidth(double level = 0.95) const;

  private:
    std::uint64_t count_;
    double mean_;
    double m2_;
    double min_;
    double max_;
};

/**
 * Two-sided Student-t quantile t_{(1+level)/2, dof} for the confidence
 * levels 0.90 / 0.95 / 0.99 (tabulated for small dof, normal
 * approximation above 120 dof).
 */
double studentTQuantile(std::uint64_t dof, double level);

} // namespace sbn

#endif // SBN_STATS_ACCUMULATOR_HH
