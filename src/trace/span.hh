/**
 * @file
 * Cross-process span tracing for the sweep orchestration fleet.
 *
 * The in-simulator TraceSink (desim/trace.hh) answers "what did the
 * kernel do at tick T"; this layer answers "when did anything happen
 * across the job fleet": daemon job lifecycle, supervised shard
 * attempts, retries, backoff waits, hang kills, steal slices, merges
 * and adaptive rounds. It is the orchestration-level analogue of
 * gem5-style event tracing the desim header cites.
 *
 * Model: every process appends complete spans - closed intervals with
 * monotonic-clock microsecond timestamps - as one-line sbn.trace.v1
 * JSONL records to its own shard file `$SBN_TRACE_DIR/trace-<pid>.jsonl`
 * (O_APPEND, one unbuffered write per span, so shards from concurrent
 * processes never interleave mid-line and a killed process loses at
 * most its line in flight). `tools/sbn_trace` merges the shards into
 * one Perfetto-loadable Chrome trace JSON.
 *
 * Identity: a *trace* (one submitted job / one CLI invocation) is a
 * 64-bit trace id; every span gets a process-unique 64-bit span id
 * and names its parent span, forming the cross-process tree. Context
 * flows parent -> child process via two environment variables:
 *
 *   SBN_TRACE_DIR  shard directory; set = tracing enabled
 *   SBN_TRACE_CTX  "<trace>:<span>" - the forked child's root parent
 *
 * Both are inherited by fork, so the daemon's runner, the runner's
 * supervisor and the supervisor's workers all join one tree without
 * any new IPC. Everything is disabled (and cost-free beyond one
 * getenv) when SBN_TRACE_DIR is unset.
 *
 * Clock comparability: timestamps are CLOCK_MONOTONIC, which every
 * process of one host shares, so spans from different processes order
 * correctly in one merged timeline. Cross-host merging would need an
 * offset pass; the fleet is single-host today.
 */

#ifndef SBN_TRACE_SPAN_HH
#define SBN_TRACE_SPAN_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sbn {

/** The (trace, parent span) coordinates a process was launched under. */
struct TraceContext
{
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;

    bool valid() const { return traceId != 0; }
};

/** Environment variable naming the trace shard directory. */
extern const char *const kTraceDirEnvVar;

/** Environment variable carrying the inherited "<trace>:<span>". */
extern const char *const kTraceCtxEnvVar;

/** True when SBN_TRACE_DIR is set (tracing armed for this process). */
bool traceEnabled();

/** The shard directory (empty when tracing is off). */
std::string traceShardDir();

/** Monotonic-clock timestamp in microseconds. */
std::uint64_t traceNowMicros();

/**
 * This process's inherited context (parsed from SBN_TRACE_CTX once),
 * or an invalid context when unset/malformed.
 */
TraceContext inheritedTraceContext();

/** Serialize @p ctx to the SBN_TRACE_CTX "<trace>:<span>" form. */
std::string formatTraceContext(const TraceContext &ctx);

/** Parse the "<trace>:<span>" form; false on malformed input. */
bool parseTraceContext(const std::string &text, TraceContext &out);

/**
 * setenv(SBN_TRACE_CTX) for processes about to be forked (or just
 * forked): the canonical propagation step. Call only from
 * single-threaded contexts (post-fork child, or a parent that forks
 * from its main thread), like every setenv.
 */
void exportTraceContext(const TraceContext &ctx);

/**
 * A freshly allocated trace id (for a root process with no inherited
 * context): unique per call within and across processes of one host.
 */
std::uint64_t newTraceId();

/** One "key":"value" span attribute (values JSON-escaped on write). */
using TraceAttr = std::pair<std::string, std::string>;

/**
 * Append one complete span to this process's trace shard and return
 * its span id (0 when tracing is off). @p start_us/@p end_us are
 * traceNowMicros() readings; instants pass start == end. @p parent is
 * the parent span id (0 = root of this trace). Fork-safe: the writer
 * detects a pid change and reopens the per-pid shard file, so a
 * child forked mid-run never appends to its parent's shard.
 */
std::uint64_t traceEmitSpan(const TraceContext &trace,
                            const std::string &kind,
                            const std::string &name,
                            std::uint64_t parent,
                            std::uint64_t start_us,
                            std::uint64_t end_us,
                            const std::vector<TraceAttr> &attrs = {});

/**
 * Pre-allocate a span id without emitting anything, for spans whose
 * id must be propagated to children before the interval closes (a
 * supervisor's run span, a daemon's job span). Emit later with
 * traceEmitSpanWithId(). Returns 0 when tracing is off.
 */
std::uint64_t traceAllocSpanId();

/** traceEmitSpan() with a pre-allocated id (see traceAllocSpanId). */
void traceEmitSpanWithId(const TraceContext &trace, std::uint64_t span,
                         const std::string &kind,
                         const std::string &name, std::uint64_t parent,
                         std::uint64_t start_us, std::uint64_t end_us,
                         const std::vector<TraceAttr> &attrs = {});

} // namespace sbn

#endif // SBN_TRACE_SPAN_HH
