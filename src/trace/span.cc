#include "trace/span.hh"

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "core/fingerprint.hh"
#include "util/logging.hh"

namespace sbn {

const char *const kTraceDirEnvVar = "SBN_TRACE_DIR";
const char *const kTraceCtxEnvVar = "SBN_TRACE_CTX";

namespace {

/**
 * Per-process span-id source: pid and a nanosecond startup stamp mix
 * into every id, so two processes (even with a recycled pid) never
 * collide, and ids stay nonzero (0 means "no span").
 */
std::uint64_t
idSalt()
{
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    const auto ns = static_cast<std::uint64_t>(ts.tv_sec) *
                        1000000000ull +
                    static_cast<std::uint64_t>(ts.tv_nsec);
    return fingerprintMix(
        fingerprintMix(0x53424e5452414345ull,
                       static_cast<std::uint64_t>(::getpid())),
        ns);
}

std::uint64_t
nextSpanId()
{
    static std::mutex mutex;
    static std::uint64_t salt = 0;
    static pid_t saltPid = -1;
    static std::uint64_t counter = 0;
    std::lock_guard<std::mutex> lock(mutex);
    // Fork safety: a child inherits these statics, and replaying the
    // parent's (salt, counter) sequence would collide with ids the
    // parent allocates after the fork. A pid change re-salts (the
    // salt mixes pid and a fresh clock reading), so the sequences
    // diverge even though the counter carries over.
    const pid_t pid = ::getpid();
    if (salt == 0 || pid != saltPid) {
        salt = idSalt();
        saltPid = pid;
    }
    std::uint64_t id = 0;
    while (id == 0)
        id = fingerprintMix(salt, ++counter);
    return id;
}

/** JSON string escaping for span names and attribute values. */
std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * The per-process shard appender. One unbuffered write per span line;
 * O_APPEND keeps concurrent processes' lines intact. Fork safety: the
 * open descriptor remembers which pid opened it, and any caller in a
 * different pid (a forked child inheriting the parent's state)
 * reopens its own trace-<pid>.jsonl first.
 */
class TraceWriter
{
  public:
    void write(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const pid_t pid = ::getpid();
        if (fd_ < 0 || pid != ownerPid_) {
            if (fd_ >= 0)
                ::close(fd_);
            const std::string path = traceShardDir() + "/trace-" +
                                     std::to_string(pid) + ".jsonl";
            fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                         0666);
            if (fd_ < 0) {
                // Tracing is an observer: a shard that cannot open
                // (bad dir, permissions) warns once and stays dark
                // rather than failing the traced work.
                if (!warned_) {
                    sbn_warn("cannot open trace shard '", path,
                             "': ", std::strerror(errno),
                             " - span tracing disabled in this "
                             "process");
                    warned_ = true;
                }
                ownerPid_ = pid;
                return;
            }
            ownerPid_ = pid;
        }
        std::size_t done = 0;
        while (done < line.size()) {
            const ssize_t wrote = ::write(fd_, line.data() + done,
                                          line.size() - done);
            if (wrote < 0) {
                if (errno == EINTR)
                    continue;
                return; // best effort; never fail the traced work
            }
            done += static_cast<std::size_t>(wrote);
        }
    }

  private:
    std::mutex mutex_;
    int fd_ = -1;
    pid_t ownerPid_ = -1;
    bool warned_ = false;
};

TraceWriter &
writer()
{
    static TraceWriter instance;
    return instance;
}

bool
parseHex64(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || text.size() > 16 ||
        text.find_first_not_of("0123456789abcdef") != std::string::npos)
        return false;
    out = std::strtoull(text.c_str(), nullptr, 16);
    return true;
}

std::string
formatHex64(std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

} // namespace

bool
traceEnabled()
{
    const char *dir = std::getenv(kTraceDirEnvVar);
    return dir != nullptr && *dir != '\0';
}

std::string
traceShardDir()
{
    const char *dir = std::getenv(kTraceDirEnvVar);
    return dir != nullptr ? dir : "";
}

std::uint64_t
traceNowMicros()
{
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000ull;
}

TraceContext
inheritedTraceContext()
{
    const char *env = std::getenv(kTraceCtxEnvVar);
    TraceContext ctx;
    if (env != nullptr && *env != '\0' &&
        !parseTraceContext(env, ctx)) {
        sbn_warn("malformed ", kTraceCtxEnvVar, " '", env,
                 "' - starting a fresh trace context");
        ctx = TraceContext{};
    }
    return ctx;
}

std::string
formatTraceContext(const TraceContext &ctx)
{
    return formatHex64(ctx.traceId) + ":" + formatHex64(ctx.spanId);
}

bool
parseTraceContext(const std::string &text, TraceContext &out)
{
    const std::size_t colon = text.find(':');
    if (colon == std::string::npos)
        return false;
    std::uint64_t trace = 0, span = 0;
    if (!parseHex64(text.substr(0, colon), trace) ||
        !parseHex64(text.substr(colon + 1), span) || trace == 0)
        return false;
    out.traceId = trace;
    out.spanId = span;
    return true;
}

void
exportTraceContext(const TraceContext &ctx)
{
    ::setenv(kTraceCtxEnvVar, formatTraceContext(ctx).c_str(), 1);
}

std::uint64_t
newTraceId()
{
    return nextSpanId();
}

std::uint64_t
traceAllocSpanId()
{
    if (!traceEnabled())
        return 0;
    return nextSpanId();
}

std::uint64_t
traceEmitSpan(const TraceContext &trace, const std::string &kind,
              const std::string &name, std::uint64_t parent,
              std::uint64_t start_us, std::uint64_t end_us,
              const std::vector<TraceAttr> &attrs)
{
    if (!traceEnabled())
        return 0;
    const std::uint64_t span = nextSpanId();
    traceEmitSpanWithId(trace, span, kind, name, parent, start_us,
                        end_us, attrs);
    return span;
}

void
traceEmitSpanWithId(const TraceContext &trace, std::uint64_t span,
                    const std::string &kind, const std::string &name,
                    std::uint64_t parent, std::uint64_t start_us,
                    std::uint64_t end_us,
                    const std::vector<TraceAttr> &attrs)
{
    if (!traceEnabled() || span == 0)
        return;
    std::string line;
    line.reserve(256);
    line += "{\"type\":\"sbn.trace.v1\",\"trace\":\"";
    line += formatHex64(trace.traceId);
    line += "\",\"span\":\"";
    line += formatHex64(span);
    line += "\",\"parent\":\"";
    line += formatHex64(parent);
    line += "\",\"kind\":\"";
    line += escapeJson(kind);
    line += "\",\"name\":\"";
    line += escapeJson(name);
    line += "\",\"pid\":";
    line += std::to_string(::getpid());
    line += ",\"start_us\":";
    line += std::to_string(start_us);
    line += ",\"end_us\":";
    line += std::to_string(end_us);
    for (const TraceAttr &attr : attrs) {
        line += ",\"a_";
        line += escapeJson(attr.first);
        line += "\":\"";
        line += escapeJson(attr.second);
        line += '"';
    }
    line += "}\n";
    writer().write(line);
}

} // namespace sbn
