#include "desim/simulation.hh"

namespace sbn {

std::uint64_t
Simulation::run(Tick limit)
{
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.nextTick() < limit) {
        queue_.runOne();
        ++executed;
    }
    return executed;
}

std::uint64_t
Simulation::runAll()
{
    std::uint64_t executed = 0;
    while (!queue_.empty()) {
        queue_.runOne();
        ++executed;
    }
    return executed;
}

bool
Simulation::step()
{
    if (queue_.empty())
        return false;
    queue_.runOne();
    return true;
}

} // namespace sbn
