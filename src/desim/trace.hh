/**
 * @file
 * Lightweight event tracing for simulator debugging, in the spirit of
 * gem5's DPRINTF categories.
 *
 * A TraceSink collects (tick, category, message) records into a
 * bounded ring and optionally streams them to an ostream as they
 * arrive. Components guard emission on category enablement so tracing
 * costs nothing when the category is off.
 */

#ifndef SBN_DESIM_TRACE_HH
#define SBN_DESIM_TRACE_HH

#include <deque>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "desim/event.hh"

namespace sbn {

/** One trace record. */
struct TraceRecord
{
    Tick tick;
    std::string category;
    std::string message;
};

/** How a TraceSink's stream renders records. */
enum class TraceFormat
{
    Text,  //!< "tick: [category] message" - human-first (default)
    Jsonl, //!< one flat JSON object per line - machine-first
};

/**
 * Collector for trace records with per-category filtering.
 *
 * By default every category is enabled; enableOnly() narrows the set.
 * The ring keeps the most recent @p capacity records so a long run
 * cannot exhaust memory.
 */
class TraceSink
{
  public:
    /**
     * @param stream    if non-null, records are also written there as
     *                  they arrive, rendered per @p format
     * @param capacity  maximum records retained (oldest dropped)
     * @param format    stream rendering; Jsonl emits
     *                  {"tick":N,"category":"...","message":"..."}
     *                  lines that parseFlatJsonObject round-trips
     */
    explicit TraceSink(std::ostream *stream = nullptr,
                       std::size_t capacity = 65536,
                       TraceFormat format = TraceFormat::Text);

    /**
     * Restrict tracing to the given categories. A pattern ending in
     * '*' enables every category with that prefix ("bus*" matches
     * "bus" and "bus.arb"); a bare "*" enables everything while
     * keeping the filter active. Other positions of '*' are not
     * special - patterns are exact matches.
     */
    void enableOnly(std::set<std::string> categories);

    /** Re-enable all categories. */
    void enableAll();

    /** True if records of this category are collected. */
    bool wants(const std::string &category) const;

    /** Append a record (no-op when the category is filtered out). */
    void record(Tick tick, const std::string &category,
                std::string message);

    /** Retained records, oldest first. */
    const std::deque<TraceRecord> &records() const { return records_; }

    /** Total records emitted (including ones the ring dropped). */
    std::uint64_t emitted() const { return emitted_; }

    /** Drop retained records (counters keep running). */
    void clear() { records_.clear(); }

  private:
    std::ostream *stream_;
    std::size_t capacity_;
    TraceFormat format_;
    bool filterActive_ = false;
    std::set<std::string> enabled_;
    std::vector<std::string> enabledPrefixes_; //!< trailing-'*' stems
    std::deque<TraceRecord> records_;
    std::uint64_t emitted_ = 0;
};

} // namespace sbn

#endif // SBN_DESIM_TRACE_HH
