#include "desim/event_queue.hh"

#include <algorithm>

#include "util/logging.hh"

namespace sbn {

void
EventQueue::placeEntry(std::size_t idx, const Entry &entry)
{
    heap_[idx] = entry;
    if (entry.event != nullptr)
        entry.event->heapIndex_ = idx;
}

void
EventQueue::schedule(Event &event, Tick when)
{
    sbn_assert(!event.scheduled_, "event '", event.name(),
               "' already scheduled");
    sbn_assert(when >= now_, "scheduling event '", event.name(),
               "' in the past: ", when, " < now ", now_);

    event.scheduled_ = true;
    event.when_ = when;
    event.sequence_ = nextSequence_++;

    heap_.push_back(Entry{when, event.priority(), event.sequence_, &event});
    event.heapIndex_ = heap_.size() - 1;
    siftUp(heap_.size() - 1);
    ++live_;
}

void
EventQueue::deschedule(Event &event)
{
    sbn_assert(event.scheduled_, "descheduling unscheduled event '",
               event.name(), "'");
    const std::size_t idx = event.heapIndex_;
    sbn_assert(idx < heap_.size() && heap_[idx].event == &event &&
                   heap_[idx].sequence == event.sequence_,
               "scheduled event '", event.name(),
               "' missing from its recorded heap slot");

    // Tombstone in place; heap order over (when, priority, sequence)
    // is unaffected, so no sift is needed. The entry is reclaimed when
    // it surfaces at the root or by compaction below.
    event.scheduled_ = false;
    heap_[idx].event = nullptr;
    --live_;
    ++dead_;
    compactIfWorthwhile();
}

void
EventQueue::compactIfWorthwhile()
{
    if (dead_ <= kCompactionFloor || dead_ <= live_)
        return;

    heap_.erase(std::remove_if(
                    heap_.begin(), heap_.end(),
                    [](const Entry &e) { return e.event == nullptr; }),
                heap_.end());
    dead_ = 0;

    // Restore slot bookkeeping, then heapify bottom-up.
    for (std::size_t i = 0; i < heap_.size(); ++i)
        heap_[i].event->heapIndex_ = i;
    if (heap_.size() > 1) {
        for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;)
            siftDown(i);
    }
}

void
EventQueue::advanceTo(Tick when)
{
    sbn_assert(when >= now_, "advanceTo moving time backwards: ", when,
               " < now ", now_);
    sbn_assert(live_ == 0 || nextTick() >= when,
               "advanceTo skipping over a pending event");
    now_ = when;
}

const EventQueue::Entry &
EventQueue::top() const
{
    sbn_assert(!heap_.empty(), "peeking an empty event queue");
    return heap_.front();
}

void
EventQueue::popTop()
{
    const Entry moved = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        placeEntry(0, moved);
        siftDown(0);
    }
}

void
EventQueue::purgeDead()
{
    while (!heap_.empty() && heap_.front().event == nullptr) {
        popTop();
        --dead_;
    }
}

Tick
EventQueue::nextTick()
{
    sbn_assert(live_ > 0, "nextTick on an empty event queue");
    purgeDead();
    return top().when;
}

Tick
EventQueue::runOne()
{
    sbn_assert(live_ > 0, "running an empty event queue");
    purgeDead();
    Entry entry = top();
    popTop();
    Event &event = *entry.event;
    event.scheduled_ = false;
    --live_;
    now_ = entry.when;
    ++executed_;
    event.process();
    return entry.when;
}

void
EventQueue::siftUp(std::size_t idx)
{
    const Entry entry = heap_[idx];
    while (idx > 0) {
        const std::size_t parent = (idx - 1) / kArity;
        if (!(heap_[parent] > entry))
            break;
        placeEntry(idx, heap_[parent]);
        idx = parent;
    }
    placeEntry(idx, entry);
}

void
EventQueue::siftDown(std::size_t idx)
{
    const std::size_t n = heap_.size();
    const Entry entry = heap_[idx];
    while (true) {
        const std::size_t first = kArity * idx + 1;
        if (first >= n)
            break;
        const std::size_t last = std::min(first + kArity, n);
        std::size_t smallest = first;
        for (std::size_t child = first + 1; child < last; ++child) {
            if (heap_[smallest] > heap_[child])
                smallest = child;
        }
        if (!(entry > heap_[smallest]))
            break;
        placeEntry(idx, heap_[smallest]);
        idx = smallest;
    }
    placeEntry(idx, entry);
}

} // namespace sbn
