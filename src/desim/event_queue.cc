#include "desim/event_queue.hh"

#include "util/logging.hh"

namespace sbn {

void
EventQueue::schedule(Event &event, Tick when)
{
    sbn_assert(!event.scheduled_, "event '", event.name(),
               "' already scheduled");
    sbn_assert(when >= now_, "scheduling event '", event.name(),
               "' in the past: ", when, " < now ", now_);

    event.scheduled_ = true;
    event.when_ = when;
    event.sequence_ = nextSequence_++;

    heap_.push_back(Entry{when, event.priority(), event.sequence_, &event});
    siftUp(heap_.size() - 1);
    ++live_;
}

void
EventQueue::deschedule(Event &event)
{
    sbn_assert(event.scheduled_, "descheduling unscheduled event '",
               event.name(), "'");
    event.scheduled_ = false;
    // Lazy removal: find the heap entry and null it; it is skipped on
    // pop. Linear scan is acceptable because deschedule is rare in the
    // bus models (only used when draining a simulation early).
    for (auto &entry : heap_) {
        if (entry.event == &event && entry.sequence == event.sequence_) {
            entry.event = nullptr;
            --live_;
            return;
        }
    }
    sbn_panic("scheduled event '", event.name(), "' missing from heap");
}

const EventQueue::Entry &
EventQueue::top() const
{
    sbn_assert(!heap_.empty(), "peeking an empty event queue");
    return heap_.front();
}

void
EventQueue::popTop()
{
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
}

void
EventQueue::purgeDead()
{
    while (!heap_.empty() && heap_.front().event == nullptr)
        popTop();
}

Tick
EventQueue::nextTick()
{
    sbn_assert(live_ > 0, "nextTick on an empty event queue");
    purgeDead();
    return top().when;
}

Tick
EventQueue::runOne()
{
    sbn_assert(live_ > 0, "running an empty event queue");
    purgeDead();
    Entry entry = top();
    popTop();
    Event &event = *entry.event;
    event.scheduled_ = false;
    --live_;
    now_ = entry.when;
    ++executed_;
    event.process();
    return entry.when;
}

void
EventQueue::siftUp(std::size_t idx)
{
    while (idx > 0) {
        const std::size_t parent = (idx - 1) / 2;
        if (!(heap_[parent] > heap_[idx]))
            break;
        std::swap(heap_[parent], heap_[idx]);
        idx = parent;
    }
}

void
EventQueue::siftDown(std::size_t idx)
{
    const std::size_t n = heap_.size();
    while (true) {
        const std::size_t left = 2 * idx + 1;
        const std::size_t right = left + 1;
        std::size_t smallest = idx;
        if (left < n && heap_[smallest] > heap_[left])
            smallest = left;
        if (right < n && heap_[smallest] > heap_[right])
            smallest = right;
        if (smallest == idx)
            break;
        std::swap(heap_[idx], heap_[smallest]);
        idx = smallest;
    }
}

} // namespace sbn
