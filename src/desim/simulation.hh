/**
 * @file
 * Simulation driver: owns an EventQueue and runs it to a limit.
 */

#ifndef SBN_DESIM_SIMULATION_HH
#define SBN_DESIM_SIMULATION_HH

#include <cstdint>

#include "desim/event_queue.hh"

namespace sbn {

/**
 * Thin driver around EventQueue providing run-to-tick and run-to-empty
 * loops. Simulator models hold a Simulation and schedule against its
 * queue; tests drive it directly.
 */
class Simulation
{
  public:
    Simulation() = default;

    /** The underlying pending-event set. */
    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }

    /** Current simulated tick. */
    Tick now() const { return queue_.now(); }

    /**
     * Execute events until the queue drains or the next event would
     * fire at or after @p limit. Events exactly at limit are NOT run,
     * so consecutive run(limit) calls partition time into [a, b)
     * windows.
     *
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit);

    /** Execute until the queue is empty. @return events executed. */
    std::uint64_t runAll();

    /** Execute exactly one event if available. @return true if run. */
    bool step();

  private:
    EventQueue queue_;
};

} // namespace sbn

#endif // SBN_DESIM_SIMULATION_HH
