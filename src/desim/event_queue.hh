/**
 * @file
 * Priority queue of events ordered by (tick, priority, schedule order).
 */

#ifndef SBN_DESIM_EVENT_QUEUE_HH
#define SBN_DESIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "desim/event.hh"

namespace sbn {

/**
 * The kernel's pending-event set.
 *
 * A 4-ary heap keyed by (when, priority, sequence). The sequence
 * number makes ordering total and deterministic: two events scheduled
 * for the same tick and priority fire in the order they were
 * scheduled, so simulations are exactly reproducible. The wider node
 * fan-out halves the tree depth of the binary heap, trading a few
 * extra comparisons per level for markedly fewer cache-missing levels
 * on the schedule/pop hot path.
 *
 * Events are referenced, not owned; a scheduled event must outlive its
 * execution or be descheduled first. Each scheduled event remembers
 * its heap slot (maintained on every sift), so deschedule is O(1): the
 * entry is tombstoned in place and skipped on pop. Tombstones are
 * reclaimed eagerly at the root and, to bound memory and sift cost in
 * deschedule-heavy runs, the heap is compacted outright whenever dead
 * entries outnumber live ones (beyond a small fixed floor).
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Insert @p event to fire at tick @p when.
     * @pre !event.scheduled() and when >= now()
     */
    void schedule(Event &event, Tick when);

    /** Remove a scheduled event without running it. O(1). */
    void deschedule(Event &event);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-descheduled) events. */
    std::uint64_t size() const { return live_; }

    /** Tick of the earliest live event. @pre !empty() */
    Tick nextTick();

    /**
     * Pop and run the earliest event; advances now() to its tick.
     * @return the tick that was serviced. @pre !empty()
     */
    Tick runOne();

    /** Current simulated time (tick of the last serviced event). */
    Tick now() const { return now_; }

    /**
     * Advance now() to @p when without running anything. Used by
     * hybrid drivers that process some work (e.g. batched processor
     * think spans) outside the heap but still schedule follow-up
     * events against it. @pre when >= now() and no live event is
     * pending before @p when.
     */
    void advanceTo(Tick when);

    /** Total events executed (for perf reporting). */
    std::uint64_t executed() const { return executed_; }

  private:
    /** Heap fan-out; 4 wide keeps sifts shallow and cache-friendly. */
    static constexpr std::size_t kArity = 4;

    /** Dead-entry floor below which compaction is never attempted. */
    static constexpr std::uint64_t kCompactionFloor = 64;

    struct Entry
    {
        Tick when;
        EventPriority priority;
        std::uint64_t sequence;
        Event *event; // nullptr once descheduled (tombstone)

        bool operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return sequence > o.sequence;
        }
    };

    void placeEntry(std::size_t idx, const Entry &entry);
    void siftUp(std::size_t idx);
    void siftDown(std::size_t idx);
    const Entry &top() const;
    void popTop();
    void purgeDead();
    void compactIfWorthwhile();

    std::vector<Entry> heap_;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t live_ = 0;
    std::uint64_t dead_ = 0;
    std::uint64_t executed_ = 0;
    Tick now_ = 0;
};

} // namespace sbn

#endif // SBN_DESIM_EVENT_QUEUE_HH
