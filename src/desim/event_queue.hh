/**
 * @file
 * Priority queue of events ordered by (tick, priority, schedule order).
 */

#ifndef SBN_DESIM_EVENT_QUEUE_HH
#define SBN_DESIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "desim/event.hh"

namespace sbn {

/**
 * The kernel's pending-event set.
 *
 * A binary heap keyed by (when, priority, sequence). The sequence
 * number makes ordering total and deterministic: two events scheduled
 * for the same tick and priority fire in the order they were
 * scheduled, so simulations are exactly reproducible.
 *
 * Events are referenced, not owned; a scheduled event must outlive its
 * execution or be descheduled first. Descheduling is lazy: the entry
 * is invalidated and skipped on pop, which keeps deschedule O(1).
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Insert @p event to fire at tick @p when.
     * @pre !event.scheduled() and when >= now()
     */
    void schedule(Event &event, Tick when);

    /** Remove a scheduled event without running it. */
    void deschedule(Event &event);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-descheduled) events. */
    std::uint64_t size() const { return live_; }

    /** Tick of the earliest live event. @pre !empty() */
    Tick nextTick();

    /**
     * Pop and run the earliest event; advances now() to its tick.
     * @return the tick that was serviced. @pre !empty()
     */
    Tick runOne();

    /** Current simulated time (tick of the last serviced event). */
    Tick now() const { return now_; }

    /** Total events executed (for perf reporting). */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        EventPriority priority;
        std::uint64_t sequence;
        Event *event; // nullptr once descheduled

        bool operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return sequence > o.sequence;
        }
    };

    void siftUp(std::size_t idx);
    void siftDown(std::size_t idx);
    const Entry &top() const;
    void popTop();
    void purgeDead();

    std::vector<Entry> heap_;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t live_ = 0;
    std::uint64_t executed_ = 0;
    Tick now_ = 0;
};

} // namespace sbn

#endif // SBN_DESIM_EVENT_QUEUE_HH
