#include "desim/trace.hh"

namespace sbn {

TraceSink::TraceSink(std::ostream *stream, std::size_t capacity)
    : stream_(stream), capacity_(capacity)
{
}

void
TraceSink::enableOnly(std::set<std::string> categories)
{
    filterActive_ = true;
    enabled_ = std::move(categories);
}

void
TraceSink::enableAll()
{
    filterActive_ = false;
    enabled_.clear();
}

bool
TraceSink::wants(const std::string &category) const
{
    return !filterActive_ || enabled_.count(category) > 0;
}

void
TraceSink::record(Tick tick, const std::string &category,
                  std::string message)
{
    if (!wants(category))
        return;
    ++emitted_;
    if (stream_) {
        *stream_ << tick << ": [" << category << "] " << message
                 << '\n';
    }
    records_.push_back(TraceRecord{tick, category, std::move(message)});
    if (records_.size() > capacity_)
        records_.pop_front();
}

} // namespace sbn
