#include "desim/trace.hh"

namespace sbn {

namespace {

/** Minimal JSON string escaping for the Jsonl stream format. Kept
 *  local: desim must not depend on the service layer's jsonEscape,
 *  but the escapes match it, so service/protocol.hh's
 *  parseFlatJsonObject round-trips these lines. */
std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            out += c;
        }
    }
    return out;
}

} // namespace

TraceSink::TraceSink(std::ostream *stream, std::size_t capacity,
                     TraceFormat format)
    : stream_(stream), capacity_(capacity), format_(format)
{
}

void
TraceSink::enableOnly(std::set<std::string> categories)
{
    filterActive_ = true;
    enabled_.clear();
    enabledPrefixes_.clear();
    for (const std::string &pattern : categories) {
        if (!pattern.empty() && pattern.back() == '*')
            enabledPrefixes_.push_back(
                pattern.substr(0, pattern.size() - 1));
        else
            enabled_.insert(pattern);
    }
}

void
TraceSink::enableAll()
{
    filterActive_ = false;
    enabled_.clear();
    enabledPrefixes_.clear();
}

bool
TraceSink::wants(const std::string &category) const
{
    if (!filterActive_ || enabled_.count(category) > 0)
        return true;
    for (const std::string &prefix : enabledPrefixes_) {
        if (category.compare(0, prefix.size(), prefix) == 0)
            return true;
    }
    return false;
}

void
TraceSink::record(Tick tick, const std::string &category,
                  std::string message)
{
    if (!wants(category))
        return;
    ++emitted_;
    if (stream_) {
        if (format_ == TraceFormat::Jsonl) {
            *stream_ << "{\"tick\":" << tick << ",\"category\":\""
                     << escapeJson(category) << "\",\"message\":\""
                     << escapeJson(message) << "\"}\n";
        } else {
            *stream_ << tick << ": [" << category << "] " << message
                     << '\n';
        }
    }
    records_.push_back(TraceRecord{tick, category, std::move(message)});
    if (records_.size() > capacity_)
        records_.pop_front();
}

} // namespace sbn
