/**
 * @file
 * Event types for the discrete-event simulation kernel.
 *
 * Ticks are integral (the paper's systems are synchronous to the bus
 * cycle t, so one tick == one bus cycle in the bus simulators; the
 * kernel itself is agnostic). Events scheduled at the same tick fire
 * in (priority, insertion-order) sequence, which components use to
 * guarantee that, e.g., all state-updating events of a cycle run
 * before that cycle's arbitration decision.
 */

#ifndef SBN_DESIM_EVENT_HH
#define SBN_DESIM_EVENT_HH

#include <cstdint>
#include <functional>

#include "util/logging.hh"

namespace sbn {

/** Simulated time in kernel ticks. */
using Tick = std::uint64_t;

/** Scheduling priority inside one tick; lower runs earlier. */
using EventPriority = std::int32_t;

/** Well-known priorities used by the bus simulators. */
namespace event_priority {

/** State updates: transfer completions, memory completions, wakeups. */
constexpr EventPriority kUpdate = 0;

/** Decisions that must observe all same-tick updates (arbitration). */
constexpr EventPriority kDecide = 100;

} // namespace event_priority

/**
 * A scheduled piece of work. Events are owned by the scheduler from
 * schedule() until they fire or are descheduled; components normally
 * use EventFunction (a callback wrapper) rather than subclassing.
 */
class Event
{
  public:
    explicit Event(EventPriority priority = event_priority::kUpdate,
                   const char *name = "event")
        : priority_(priority), name_(name)
    {}

    virtual ~Event() = default;

    /** Invoked by the kernel when simulated time reaches the event. */
    virtual void process() = 0;

    /** Priority within a tick (lower first). */
    EventPriority priority() const { return priority_; }

    /** Diagnostic name (a string literal; never owned). */
    const char *name() const { return name_; }

    /** True while the event sits in an EventQueue. */
    bool scheduled() const { return scheduled_; }

    /** Tick the event is scheduled for (valid while scheduled()). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    EventPriority priority_;
    const char *name_;
    bool scheduled_ = false;
    Tick when_ = 0;
    std::uint64_t sequence_ = 0;
    std::size_t heapIndex_ = 0; //!< slot in the owning queue's heap
};

/** Event that runs a std::function; convenient for tests and tools. */
class EventFunction : public Event
{
  public:
    EventFunction(std::function<void()> callback,
                  EventPriority priority = event_priority::kUpdate,
                  const char *name = "lambda-event")
        : Event(priority, name), callback_(std::move(callback))
    {}

    void process() override { callback_(); }

  private:
    std::function<void()> callback_;
};

/**
 * Intrusive event dispatching straight to a member function with a
 * bound integer argument (a processor or module index). Compared to
 * EventFunction this removes the std::function indirection and its
 * potential allocation, so simulators can embed their events by value
 * and construct systems without any per-event heap traffic.
 *
 * Default-constructed instances are inert placeholders; bind() them
 * before scheduling. The target object must outlive the event.
 */
template <typename T>
class MemberEvent final : public Event
{
  public:
    using Handler = void (T::*)(int);

    MemberEvent() = default;

    MemberEvent(T &target, Handler handler, int index,
                EventPriority priority = event_priority::kUpdate,
                const char *name = "member-event")
        : Event(priority, name), target_(&target), handler_(handler),
          index_(index)
    {}

    /** (Re)point the event; only valid while not scheduled. */
    void
    bind(T &target, Handler handler, int index,
         EventPriority priority = event_priority::kUpdate,
         const char *name = "member-event")
    {
        sbn_assert(!scheduled(),
                   "rebinding a scheduled event would corrupt the "
                   "queue's bookkeeping");
        *this = MemberEvent(target, handler, index, priority, name);
    }

    void process() override { (target_->*handler_)(index_); }

  private:
    T *target_ = nullptr;
    Handler handler_ = nullptr;
    int index_ = 0;
};

} // namespace sbn

#endif // SBN_DESIM_EVENT_HH
