#include "exec/adaptive.hh"

#include <cmath>

#include "stats/replication.hh"
#include "telemetry/telemetry.hh"
#include "trace/span.hh"
#include "util/logging.hh"

namespace sbn {

bool
PrecisionTarget::met(const Estimate &e) const
{
    if (e.samples < 2)
        return false;
    if (relative > 0.0 && e.halfWidth <= relative * std::abs(e.mean))
        return true;
    if (absolute > 0.0 && e.halfWidth <= absolute)
        return true;
    return false;
}

unsigned
RoundSchedule::targetAfterRound(unsigned round) const
{
    sbn_assert(initial >= 2, "first round needs >= 2 replications");
    sbn_assert(growth > 1.0, "round growth factor must exceed 1");
    sbn_assert(cap >= initial, "replication cap below the first round");

    // Walk the geometric sequence instead of using pow(): every round
    // must add at least one replication even when the factor rounds
    // to a no-op at small counts.
    double exact = initial;
    unsigned target = initial;
    for (unsigned j = 0; j < round; ++j) {
        exact *= growth;
        const auto grown = static_cast<unsigned>(
            std::min(exact, static_cast<double>(cap)));
        target = std::max(target + 1, grown);
        if (target >= cap)
            return cap;
    }
    return std::min(target, cap);
}

AdaptiveReplicator::AdaptiveReplicator(ParallelRunner &runner,
                                       PrecisionTarget target,
                                       RoundSchedule schedule)
    : runner_(runner), target_(target), schedule_(schedule)
{
    // Validate the schedule eagerly so a bad configuration fails at
    // construction, not in the middle of a sweep.
    (void)schedule_.targetAfterRound(0);
}

AdaptiveEstimate
AdaptiveReplicator::run(
    const std::function<double(std::uint64_t)> &experiment,
    std::uint64_t master_seed) const
{
    ReplicationRounds rounds(master_seed, target_.level);
    AdaptiveEstimate out;
    for (unsigned round = 0;; ++round) {
        const unsigned target = schedule_.targetAfterRound(round);
        const std::vector<std::uint64_t> seeds =
            rounds.seedsForExtension(target);
        rounds.accept(runner_.map<double>(
            seeds.size(),
            [&](std::size_t i) { return experiment(seeds[i]); }));
        out.rounds = round + 1;
        out.estimate = rounds.estimate();
        out.converged = target_.met(out.estimate);
        if (out.converged || rounds.completed() >= schedule_.cap) {
            // Grown rounds are decided serially per point, so the
            // count is invariant to the worker thread partition.
            telemetryAdd(TelemetryCounter::AdaptiveRoundsGrown,
                         out.rounds - 1);
            return out;
        }
    }
}

std::vector<AdaptiveEstimate>
AdaptiveReplicator::sweep(
    const SweepSpec &spec,
    const std::function<double(const SystemConfig &, std::uint64_t)>
        &experiment,
    const PointCallback &onPoint) const
{
    return runPoints(spec.materialize(), experiment, onPoint);
}

std::vector<AdaptiveEstimate>
AdaptiveReplicator::runPoints(
    const std::vector<SystemConfig> &points,
    const std::function<double(const SystemConfig &, std::uint64_t)>
        &experiment,
    const PointCallback &onPoint) const
{
    const std::size_t count = points.size();
    std::vector<AdaptiveEstimate> results(count);
    if (count == 0)
        return results;

    struct PointState
    {
        ReplicationRounds rounds;
        bool final = false;
    };
    std::vector<PointState> states;
    states.reserve(count);
    for (const SystemConfig &point : points)
        states.push_back({ReplicationRounds(point.seed, target_.level),
                          false});

    // One flat work item per new replication this round; grouped by
    // point in grid order so the post-round accumulation below walks
    // values in replication order per point.
    struct Item
    {
        std::size_t point;
        std::uint64_t seed;
    };

    const TraceContext traceCtx = inheritedTraceContext();
    std::size_t emit_cursor = 0;
    std::size_t open_points = count;
    for (unsigned round = 0; open_points != 0; ++round) {
        const std::uint64_t roundStartUs = traceNowMicros();
        const unsigned target = schedule_.targetAfterRound(round);

        std::vector<Item> items;
        std::vector<std::size_t> ext_begin(count, 0);
        std::vector<std::size_t> ext_size(count, 0);
        for (std::size_t i = 0; i < count; ++i) {
            if (states[i].final)
                continue;
            ext_begin[i] = items.size();
            for (std::uint64_t seed :
                 states[i].rounds.seedsForExtension(target))
                items.push_back({i, seed});
            ext_size[i] = items.size() - ext_begin[i];
        }

        // The parallel phase: map (point, seed) -> value by slot.
        std::vector<double> values = runner_.map<double>(
            items.size(), [&](std::size_t k) {
                return experiment(points[items[k].point],
                                  items[k].seed);
            });

        // Serial phase, grid order: fold each point's extension in,
        // decide convergence, and stream out every prefix of newly
        // finalized points.
        for (std::size_t i = 0; i < count; ++i) {
            if (states[i].final)
                continue;
            PointState &state = states[i];
            const auto begin =
                values.begin() +
                static_cast<std::ptrdiff_t>(ext_begin[i]);
            state.rounds.accept(std::vector<double>(
                begin, begin + static_cast<std::ptrdiff_t>(
                                   ext_size[i])));

            AdaptiveEstimate &out = results[i];
            out.rounds = round + 1;
            out.estimate = state.rounds.estimate();
            out.converged = target_.met(out.estimate);
            if (out.converged ||
                state.rounds.completed() >= schedule_.cap) {
                state.final = true;
                --open_points;
                // Counted at finalization in the serial phase, so the
                // total never depends on the thread partition.
                telemetryAdd(TelemetryCounter::AdaptiveRoundsGrown,
                             out.rounds - 1);
            }
        }

        while (emit_cursor < count && states[emit_cursor].final) {
            if (onPoint)
                onPoint(emit_cursor, points[emit_cursor],
                        results[emit_cursor]);
            ++emit_cursor;
        }

        // One span per grown round: the timeline shows how the work
        // tapers as points converge.
        traceEmitSpan(traceCtx, "adaptive_round",
                      "adaptive round " + std::to_string(round),
                      traceCtx.spanId, roundStartUs, traceNowMicros(),
                      {{"round", std::to_string(round)},
                       {"replications", std::to_string(items.size())},
                       {"open_points",
                        std::to_string(open_points)}});
    }
    return results;
}

std::vector<AdaptiveEstimate>
AdaptiveReplicator::runPointsSubset(
    const std::vector<SystemConfig> &points,
    const std::vector<std::size_t> &subset,
    const std::function<double(const SystemConfig &, std::uint64_t)>
        &experiment,
    const PointCallback &onPoint) const
{
    std::vector<SystemConfig> selected;
    selected.reserve(subset.size());
    for (std::size_t k = 0; k < subset.size(); ++k) {
        sbn_assert(subset[k] < points.size(),
                   "shard subset index out of range");
        sbn_assert(k == 0 || subset[k - 1] < subset[k],
                   "shard subset indices must be strictly increasing");
        selected.push_back(points[subset[k]]);
    }
    PointCallback remapped;
    if (onPoint)
        remapped = [&](std::size_t local, const SystemConfig &cfg,
                       const AdaptiveEstimate &estimate) {
            onPoint(subset[local], cfg, estimate);
        };
    return runPoints(selected, experiment, remapped);
}

} // namespace sbn
