/**
 * @file
 * Fixed-size worker thread pool for the execution layer.
 *
 * The pool is deliberately minimal: a shared FIFO of type-erased
 * tasks drained by a fixed set of workers. Scheduling order carries no
 * semantic weight anywhere in the library - every parallel construct
 * built on top (ParallelRunner) derives its inputs up front and
 * collects results by index, so task interleaving never changes
 * results.
 */

#ifndef SBN_EXEC_THREAD_POOL_HH
#define SBN_EXEC_THREAD_POOL_HH

#include <sys/types.h>

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sbn {

/**
 * Fixed set of worker threads draining a shared task queue.
 *
 * Destruction drains every task already posted, then joins the
 * workers; post() after shutdown began is a programming error.
 */
class ThreadPool
{
  public:
    /** Spawn @p threads workers. @pre threads >= 1 */
    explicit ThreadPool(unsigned threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Runs all posted tasks to completion, then joins the workers. */
    ~ThreadPool();

    /** Enqueue a task for execution on some worker. */
    void post(std::function<void()> task);

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Hardware concurrency, never reported as less than 1. */
    static unsigned hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    pid_t ownerPid_; //!< fork detection; see ~ThreadPool()
};

} // namespace sbn

#endif // SBN_EXEC_THREAD_POOL_HH
