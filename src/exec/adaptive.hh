/**
 * @file
 * Adaptive-precision replication on top of the execution layer.
 *
 * An AdaptiveReplicator grows the replication count of a seeded
 * experiment in deterministic rounds until the Student-t confidence
 * half-width meets a relative/absolute precision target or a
 * replication cap is reached. The sweep form runs one adaptive
 * estimate per grid point, schedules every round's extra replications
 * on the shared pool, and surfaces finished points through an ordered
 * streaming callback in flat-grid order.
 *
 * Determinism contract (same as the rest of src/exec/, see
 * docs/performance.md): for a fixed RoundSchedule the estimates are
 * bit-identical to serial execution at any thread count. Seeds come
 * from the per-point master derivation stream regardless of round
 * boundaries (ReplicationRounds), values are collected by slot, and
 * every accumulation and convergence decision runs on the calling
 * thread in grid order at round barriers.
 */

#ifndef SBN_EXEC_ADAPTIVE_HH
#define SBN_EXEC_ADAPTIVE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/config.hh"
#include "exec/parallel_runner.hh"
#include "exec/sweep.hh"
#include "stats/batch_means.hh"

namespace sbn {

/**
 * Confidence-interval precision target. A criterion with value 0 is
 * disabled; the target is met when *any* enabled criterion holds (and
 * at least two replications have run, so a half-width exists). With
 * both criteria disabled the target is never met and an adaptive run
 * always proceeds to its replication cap.
 */
struct PrecisionTarget
{
    double relative = 0.05; //!< halfWidth <= relative * |mean|
    double absolute = 0.0;  //!< halfWidth <= absolute
    double level = 0.95;    //!< confidence level of the interval

    /** True once @p e satisfies an enabled criterion. */
    bool met(const Estimate &e) const;
};

/**
 * Fixed geometric round schedule: the cumulative replication count
 * after round j is initial * growth^j (each round at least one new
 * replication), clamped to cap. The schedule is a pure function of
 * its three parameters - never of observed results - which is what
 * keeps adaptive runs bit-reproducible: two runs that stop after the
 * same round have executed exactly the same replications.
 */
struct RoundSchedule
{
    unsigned initial = 4; //!< replications in the first round (>= 2)
    double growth = 2.0;  //!< cumulative growth factor per round (> 1)
    unsigned cap = 64;    //!< replication ceiling (>= initial)

    /** Cumulative replication target after 0-based round @p round. */
    unsigned targetAfterRound(unsigned round) const;
};

/** Result of one adaptive-precision estimate. */
struct AdaptiveEstimate
{
    Estimate estimate;      //!< over every replication actually run
    unsigned rounds = 0;    //!< rounds executed
    bool converged = false; //!< target met (false: cap reached first)
};

/**
 * Grows replication counts in rounds until a PrecisionTarget is met
 * or the RoundSchedule cap is reached, fanning each round's new
 * replications across a ParallelRunner.
 */
class AdaptiveReplicator
{
  public:
    /** The runner must outlive the replicator. */
    explicit AdaptiveReplicator(ParallelRunner &runner,
                                PrecisionTarget target = {},
                                RoundSchedule schedule = {});

    const PrecisionTarget &target() const { return target_; }
    const RoundSchedule &schedule() const { return schedule_; }

    /**
     * Adaptive estimate of one experiment: replications use the same
     * seed-derivation stream as runReplications(master_seed), so the
     * final estimate equals a one-shot run with the same replication
     * count, bit for bit, at any thread count.
     */
    AdaptiveEstimate
    run(const std::function<double(std::uint64_t)> &experiment,
        std::uint64_t master_seed = 1) const;

    /**
     * Ordered streaming callback for sweep()/runPoints(): invoked
     * once per grid point, in flat-index order, as soon as the point
     * and all its predecessors have finalized (converged or capped).
     * Points finalize at round barriers, so callbacks fire on the
     * calling thread between rounds.
     */
    using PointCallback = std::function<void(
        std::size_t, const SystemConfig &, const AdaptiveEstimate &)>;

    /**
     * One adaptive estimate per materialized grid point of @p spec.
     * Each point's replication seeds derive from that point's
     * config.seed; @p experiment receives the point configuration and
     * the derived per-replication seed. Every round fans the still-
     * unconverged points' new replications across the pool as one
     * flat work list, so late-converging points keep all workers
     * busy. Result i corresponds to point i of spec.materialize().
     */
    std::vector<AdaptiveEstimate>
    sweep(const SweepSpec &spec,
          const std::function<double(const SystemConfig &,
                                     std::uint64_t)> &experiment,
          const PointCallback &onPoint = {}) const;

    /** sweep() over an explicit, already-materialized point list. */
    std::vector<AdaptiveEstimate>
    runPoints(const std::vector<SystemConfig> &points,
              const std::function<double(const SystemConfig &,
                                         std::uint64_t)> &experiment,
              const PointCallback &onPoint = {}) const;

    /**
     * Shard-aware form of runPoints(): adaptively estimate only the
     * points whose global flat indices are in @p subset (strictly
     * increasing), invoking @p onPoint with global indices. Result
     * slot k corresponds to subset[k].
     *
     * A point's round schedule, seed stream and convergence decision
     * depend only on that point's own config (seeds derive from
     * config.seed, the schedule is fixed), never on which other
     * points share the batch - so each subset estimate is
     * bit-identical to the same point's estimate in the full run, at
     * any thread count. The sharded-sweep merge layer relies on this.
     */
    std::vector<AdaptiveEstimate>
    runPointsSubset(const std::vector<SystemConfig> &points,
                    const std::vector<std::size_t> &subset,
                    const std::function<double(const SystemConfig &,
                                               std::uint64_t)> &experiment,
                    const PointCallback &onPoint = {}) const;

  private:
    ParallelRunner &runner_;
    PrecisionTarget target_;
    RoundSchedule schedule_;
};

} // namespace sbn

#endif // SBN_EXEC_ADAPTIVE_HH
