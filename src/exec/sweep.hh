/**
 * @file
 * Parameter-grid sweep specification over SystemConfig axes.
 *
 * A SweepSpec names a base configuration plus per-axis value lists;
 * materialize() expands the cross product in a fixed, documented
 * order so sweep results can be indexed back to their grid cell
 * regardless of how (or whether) the points were run in parallel.
 */

#ifndef SBN_EXEC_SWEEP_HH
#define SBN_EXEC_SWEEP_HH

#include <cstddef>
#include <vector>

#include "core/config.hh"

namespace sbn {

/**
 * Cross-product grid over the axes of SystemConfig the paper's
 * figures and tables sweep. An empty axis means "use the base value";
 * a non-empty axis overrides it with each listed value in turn.
 *
 * Expansion order (outermost to innermost loop): processors, modules,
 * memoryRatios, requestProbabilities, policies, buffering, then the
 * workload axes (hotFractions, favoriteFractions). The point at grid
 * coordinates (i_n, i_m, i_r, i_p, i_g, i_b, i_h, i_f) therefore
 * lands at a deterministic flat index, independent of execution
 * order.
 */
struct SweepSpec
{
    SystemConfig base;

    std::vector<int> processors;               //!< n axis
    std::vector<int> modules;                  //!< m axis
    std::vector<int> memoryRatios;             //!< r axis
    std::vector<double> requestProbabilities;  //!< p axis
    std::vector<ArbitrationPolicy> policies;   //!< g' / g'' axis
    std::vector<bool> buffering;               //!< Section-6 axis

    /**
     * Workload scenario axes (see docs/workloads.md). A non-empty
     * hotFractions axis forces workload.pattern = HotSpot at each
     * point and overrides workload.hotFraction with the listed value;
     * favoriteFractions does the same for the Favorite pattern. At
     * most one of the two may be non-empty (they select conflicting
     * patterns); an empty axis leaves base.workload untouched.
     */
    std::vector<double> hotFractions;      //!< HotSpot h axis
    std::vector<double> favoriteFractions; //!< Favorite f axis

    /** Number of grid points the spec expands to (>= 1). */
    std::size_t size() const;

    /**
     * Fatal-diagnose malformed grids before any point runs:
     *  - a repeated value inside one axis (the same grid point would
     *    run twice, and the duplicate flat indices would collide in
     *    sharded record files);
     *  - per-axis values outside the simulator's domain (processors /
     *    modules / ratio < 1, p outside [0, 1]);
     *  - an invalid base configuration (delegates to base.validate()).
     * An *empty* axis is not an error - it is the documented "use the
     * base value" convention. materialize() validates implicitly, so
     * every sweep/shard entry point rejects bad specs up front.
     */
    void validate() const;

    /**
     * Expand the grid into concrete configurations, in the documented
     * nested-loop order (validate()s first). Every point inherits
     * everything else (seed, cycle counts, weights, ...) from @p base.
     */
    std::vector<SystemConfig> materialize() const;
};

} // namespace sbn

#endif // SBN_EXEC_SWEEP_HH
