/**
 * @file
 * Deterministic parallel execution of independent experiments.
 *
 * ParallelRunner fans independent work items (replications, sweep
 * grid points) across a fixed-size ThreadPool and collects results
 * *by index*, so every reduction happens in the same order as the
 * serial code path. Combined with pre-derived per-replication seeds,
 * results are bit-identical to serial execution at any thread count
 * and under any scheduling interleaving (the determinism contract;
 * see docs/performance.md).
 */

#ifndef SBN_EXEC_PARALLEL_RUNNER_HH
#define SBN_EXEC_PARALLEL_RUNNER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.hh"
#include "exec/sweep.hh"
#include "exec/thread_pool.hh"
#include "stats/batch_means.hh"

namespace sbn {

/**
 * Process-wide default worker count used by runReplications() and the
 * replicate() helpers when no explicit count is given. Resolution:
 * the last setDefaultExecThreads() value if set, else the SBN_THREADS
 * environment variable, else 1 (serial). The serial default keeps
 * single-threaded semantics - including callback invocation order -
 * for existing callers; opt into parallelism per call site or via the
 * environment.
 */
unsigned defaultExecThreads();

/** Override the default; 0 restores "resolve from environment". */
void setDefaultExecThreads(unsigned threads);

/**
 * Runs independent work items across a worker pool, deterministically.
 *
 * A runner with T threads uses T-1 pool workers plus the calling
 * thread; T = 1 degenerates to plain inline loops with no pool and no
 * synchronization. Runner methods must not be re-entered from inside
 * a work item (no nested parallelism).
 */
class ParallelRunner
{
  public:
    /** @param threads worker count; 0 means all hardware threads. */
    explicit ParallelRunner(unsigned threads = 0);

    ~ParallelRunner();

    ParallelRunner(const ParallelRunner &) = delete;
    ParallelRunner &operator=(const ParallelRunner &) = delete;

    /** Total worker count (pool workers + calling thread). */
    unsigned threads() const { return threads_; }

    /**
     * Invoke fn(i) once for every i in [0, count), spread across the
     * workers. Blocks until all invocations finish. The first
     * exception thrown by any item is rethrown here (remaining items
     * may be skipped).
     */
    void forEachIndex(std::size_t count,
                      const std::function<void(std::size_t)> &fn);

    /** forEachIndex collecting fn(i) into slot i of the result. */
    template <typename R>
    std::vector<R>
    map(std::size_t count, const std::function<R(std::size_t)> &fn)
    {
        std::vector<R> results(count);
        forEachIndex(count,
                     [&](std::size_t i) { results[i] = fn(i); });
        return results;
    }

    /**
     * Parallel independent replications, bit-identical to the serial
     * runReplications() path: the per-replication seeds are derived
     * from @p master_seed up front (same derivation stream as serial),
     * experiments run concurrently, and the accumulator consumes the
     * results in replication order.
     *
     * With one replication the half-width is reported as 0 (no CI).
     */
    Estimate runReplications(
        const std::function<double(std::uint64_t)> &experiment,
        unsigned replications, std::uint64_t master_seed = 1,
        double level = 0.95);

    /**
     * Evaluate @p evaluate on every materialized point of @p spec
     * concurrently; result i corresponds to point i of
     * spec.materialize() (the documented grid order).
     */
    std::vector<double>
    sweep(const SweepSpec &spec,
          const std::function<double(const SystemConfig &)> &evaluate);

    /** sweep() over an explicit, already-materialized point list. */
    std::vector<double> mapConfigs(
        const std::vector<SystemConfig> &points,
        const std::function<double(const SystemConfig &)> &evaluate);

  private:
    unsigned threads_;
    std::unique_ptr<ThreadPool> pool_; // null when threads_ == 1
};

/**
 * Process-wide shared runner with @p threads workers (0 = hardware),
 * created on first use and kept for the process lifetime. The stats-
 * and core-layer replication helpers route through this so repeated
 * calls at the same worker count reuse one pool instead of spawning
 * and joining threads per call. Safe for concurrent top-level use
 * (callers share the pool); the no-nesting rule still applies.
 */
ParallelRunner &sharedParallelRunner(unsigned threads);

} // namespace sbn

#endif // SBN_EXEC_PARALLEL_RUNNER_HH
