/**
 * @file
 * Deterministic parallel execution of independent experiments.
 *
 * ParallelRunner fans independent work items (replications, sweep
 * grid points) across a fixed-size ThreadPool and collects results
 * *by index*, so every reduction happens in the same order as the
 * serial code path. Combined with pre-derived per-replication seeds,
 * results are bit-identical to serial execution at any thread count
 * and under any scheduling interleaving (the determinism contract;
 * see docs/performance.md).
 */

#ifndef SBN_EXEC_PARALLEL_RUNNER_HH
#define SBN_EXEC_PARALLEL_RUNNER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/config.hh"
#include "exec/sweep.hh"
#include "exec/thread_pool.hh"
#include "stats/batch_means.hh"

namespace sbn {

/**
 * Process-wide default worker count used by runReplications() and the
 * replicate() helpers when no explicit count is given. Resolution:
 * the last setDefaultExecThreads() value if set, else the SBN_THREADS
 * environment variable, else 1 (serial). The serial default keeps
 * single-threaded semantics - including callback invocation order -
 * for existing callers; opt into parallelism per call site or via the
 * environment.
 */
unsigned defaultExecThreads();

/** Override the default; 0 restores "resolve from environment". */
void setDefaultExecThreads(unsigned threads);

/**
 * Parse an SBN_THREADS-style worker-count spec. Accepts a positive
 * decimal integer (surrounding whitespace allowed), capped at 4096;
 * "0" means "all hardware threads" and resolves to 0. Anything else
 * (empty, non-numeric, negative, trailing junk) is a configuration
 * error and calls sbn_fatal with a message naming the bad value --
 * a typo must not silently degrade a sweep to serial execution.
 */
unsigned parseThreadsSpec(const char *spec);

/**
 * Runs independent work items across a worker pool, deterministically.
 *
 * A runner with T threads uses T-1 pool workers plus the calling
 * thread; T = 1 degenerates to plain inline loops with no pool and no
 * synchronization. Runner methods must not be re-entered from inside
 * a work item (no nested parallelism).
 */
class ParallelRunner
{
  public:
    /** @param threads worker count; 0 means all hardware threads. */
    explicit ParallelRunner(unsigned threads = 0);

    ~ParallelRunner();

    ParallelRunner(const ParallelRunner &) = delete;
    ParallelRunner &operator=(const ParallelRunner &) = delete;

    /** Total worker count (pool workers + calling thread). */
    unsigned threads() const { return threads_; }

    /**
     * Invoke fn(i) once for every i in [0, count), spread across the
     * workers. Blocks until all invocations finish. The first
     * exception thrown by any item is rethrown here (remaining items
     * may be skipped).
     */
    void forEachIndex(std::size_t count,
                      const std::function<void(std::size_t)> &fn);

    /** forEachIndex collecting fn(i) into slot i of the result. */
    template <typename R>
    std::vector<R>
    map(std::size_t count, const std::function<R(std::size_t)> &fn)
    {
        std::vector<R> results(count);
        forEachIndex(count,
                     [&](std::size_t i) { results[i] = fn(i); });
        return results;
    }

    /**
     * map() with an ordered completion callback: emit(i, result) is
     * invoked exactly once per index, in increasing index order, as
     * soon as item i *and every lower-indexed item* have finished -
     * results stream out progressively instead of arriving only after
     * the full fan-out.
     *
     * With multiple workers the callback runs on whichever worker
     * closed the gap at the emission cursor, serialized by an internal
     * lock (never two emits at once, never out of order). The emitted
     * sequence is therefore identical at any thread count. Callbacks
     * must not re-enter the runner; if fn or emit throws, the
     * exception propagates to the caller, no index is emitted twice,
     * and once an emit has thrown no further index is emitted.
     */
    template <typename R>
    std::vector<R>
    stream(std::size_t count, const std::function<R(std::size_t)> &fn,
           const std::function<void(std::size_t, const R &)> &emit)
    {
        std::vector<R> results(count);
        std::vector<unsigned char> ready(count, 0);
        std::mutex gate;
        std::size_t cursor = 0;
        bool emit_failed = false;
        forEachIndex(count, [&](std::size_t i) {
            results[i] = fn(i);
            std::lock_guard<std::mutex> lock(gate);
            ready[i] = 1;
            // Advance the cursor before each emit and latch failures:
            // workers that were already mid-item when an emit threw
            // must neither re-emit that index nor emit past it.
            while (!emit_failed && cursor < count && ready[cursor]) {
                const std::size_t at = cursor++;
                try {
                    emit(at, results[at]);
                } catch (...) {
                    emit_failed = true;
                    throw;
                }
            }
        });
        return results;
    }

    /**
     * Parallel independent replications, bit-identical to the serial
     * runReplications() path: the per-replication seeds are derived
     * from @p master_seed up front (same derivation stream as serial),
     * experiments run concurrently, and the accumulator consumes the
     * results in replication order.
     *
     * With one replication the half-width is reported as 0 (no CI).
     */
    Estimate runReplications(
        const std::function<double(std::uint64_t)> &experiment,
        unsigned replications, std::uint64_t master_seed = 1,
        double level = 0.95);

    /**
     * Evaluate @p evaluate on every materialized point of @p spec
     * concurrently; result i corresponds to point i of
     * spec.materialize() (the documented grid order).
     */
    std::vector<double>
    sweep(const SweepSpec &spec,
          const std::function<double(const SystemConfig &)> &evaluate);

    /** sweep() over an explicit, already-materialized point list. */
    std::vector<double> mapConfigs(
        const std::vector<SystemConfig> &points,
        const std::function<double(const SystemConfig &)> &evaluate);

    /**
     * Ordered streaming callback invoked once per grid point with its
     * flat index, configuration, and result. See stream() for the
     * ordering and threading guarantees.
     */
    using SweepCallback = std::function<void(
        std::size_t, const SystemConfig &, double)>;

    /**
     * sweep() that additionally surfaces each grid point through
     * @p onPoint in flat-index order as soon as it and all its
     * predecessors finish, so callers can render results
     * progressively. The returned vector is identical to sweep().
     */
    std::vector<double> sweepStreamed(
        const SweepSpec &spec,
        const std::function<double(const SystemConfig &)> &evaluate,
        const SweepCallback &onPoint);

    /** sweepStreamed() over an explicit point list. */
    std::vector<double> mapConfigsStreamed(
        const std::vector<SystemConfig> &points,
        const std::function<double(const SystemConfig &)> &evaluate,
        const SweepCallback &onPoint);

    /**
     * Shard-aware streaming entry point: evaluate only the points
     * whose *global* flat indices are listed in @p subset (strictly
     * increasing, all < points.size()), streaming them through
     * @p onPoint with their global indices in increasing order.
     * Result slot k corresponds to subset[k].
     *
     * Because every point is an independent seeded run, the value
     * computed for global index i here is bit-identical to the value
     * the full mapConfigsStreamed() run computes for i - this is the
     * property the sharded-sweep merge layer (src/shard/) rests on.
     */
    std::vector<double> mapConfigsStreamedSubset(
        const std::vector<SystemConfig> &points,
        const std::vector<std::size_t> &subset,
        const std::function<double(const SystemConfig &)> &evaluate,
        const SweepCallback &onPoint);

  private:
    unsigned threads_;
    std::unique_ptr<ThreadPool> pool_; // null when threads_ == 1
};

/**
 * Process-wide shared runner with @p threads workers (0 = hardware),
 * created on first use and kept for the process lifetime. The stats-
 * and core-layer replication helpers route through this so repeated
 * calls at the same worker count reuse one pool instead of spawning
 * and joining threads per call. Safe for concurrent top-level use
 * (callers share the pool); the no-nesting rule still applies.
 */
ParallelRunner &sharedParallelRunner(unsigned threads);

} // namespace sbn

#endif // SBN_EXEC_PARALLEL_RUNNER_HH
