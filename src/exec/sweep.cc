#include "exec/sweep.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace sbn {

namespace {

/** Axis length with the "empty means base value" convention. */
template <typename T>
std::size_t
axisSize(const std::vector<T> &axis)
{
    return axis.empty() ? 1 : axis.size();
}

} // namespace

namespace {

/** Fatal if @p axis repeats a value (the same grid point twice). */
template <typename T>
void
rejectDuplicates(const std::vector<T> &axis, const char *name)
{
    for (std::size_t i = 0; i < axis.size(); ++i)
        for (std::size_t j = i + 1; j < axis.size(); ++j)
            if (axis[i] == axis[j])
                sbn_fatal("SweepSpec: axis '", name,
                          "' lists the same value twice (entries ", i,
                          " and ", j,
                          ") - the grid point would run twice and its "
                          "flat index would be ambiguous");
}

} // namespace

void
SweepSpec::validate() const
{
    rejectDuplicates(processors, "processors");
    rejectDuplicates(modules, "modules");
    rejectDuplicates(memoryRatios, "memoryRatios");
    rejectDuplicates(requestProbabilities, "requestProbabilities");
    rejectDuplicates(policies, "policies");
    rejectDuplicates(buffering, "buffering");
    rejectDuplicates(hotFractions, "hotFractions");
    rejectDuplicates(favoriteFractions, "favoriteFractions");

    if (!hotFractions.empty() && !favoriteFractions.empty())
        sbn_fatal("SweepSpec: hotFractions and favoriteFractions "
                  "cannot both be swept (they select conflicting "
                  "reference patterns)");
    for (double h : hotFractions)
        if (!(h >= 0.0 && h <= 1.0))
            sbn_fatal("SweepSpec: hotFractions axis value ", h,
                      " (must be in [0,1])");
    for (double f : favoriteFractions)
        if (!(f >= 0.0 && f <= 1.0))
            sbn_fatal("SweepSpec: favoriteFractions axis value ", f,
                      " (must be in [0,1])");

    for (int n : processors)
        if (n < 1)
            sbn_fatal("SweepSpec: processors axis value ", n,
                      " (must be >= 1)");
    for (int m : modules)
        if (m < 1)
            sbn_fatal("SweepSpec: modules axis value ", m,
                      " (must be >= 1)");
    for (int r : memoryRatios)
        if (r < 1)
            sbn_fatal("SweepSpec: memoryRatios axis value ", r,
                      " (must be >= 1)");
    for (double p : requestProbabilities)
        if (!(p >= 0.0 && p <= 1.0))
            sbn_fatal("SweepSpec: requestProbabilities axis value ", p,
                      " (must be in [0,1])");

    base.validate();
}

std::size_t
SweepSpec::size() const
{
    return axisSize(processors) * axisSize(modules) *
           axisSize(memoryRatios) * axisSize(requestProbabilities) *
           axisSize(policies) * axisSize(buffering) *
           axisSize(hotFractions) * axisSize(favoriteFractions);
}

std::vector<SystemConfig>
SweepSpec::materialize() const
{
    validate();

    std::vector<SystemConfig> points;
    points.reserve(size());

    const auto each = [](const auto &axis, auto base_value,
                         const auto &visit) {
        if (axis.empty()) {
            visit(base_value);
            return;
        }
        for (const auto &value : axis)
            visit(value);
    };

    // The workload axes expand innermost; emit() applies whichever
    // one is active (validate() rejects both at once) before the
    // point is recorded.
    const auto emit = [&](SystemConfig cfg) {
        if (hotFractions.empty() && favoriteFractions.empty()) {
            points.push_back(cfg);
            return;
        }
        if (!hotFractions.empty()) {
            cfg.workload.pattern = ReferencePattern::HotSpot;
            for (double h : hotFractions) {
                cfg.workload.hotFraction = h;
                points.push_back(cfg);
            }
            return;
        }
        cfg.workload.pattern = ReferencePattern::Favorite;
        for (double f : favoriteFractions) {
            cfg.workload.favoriteFraction = f;
            points.push_back(cfg);
        }
    };

    each(processors, base.numProcessors, [&](int n) {
        each(modules, base.numModules, [&](int m) {
            each(memoryRatios, base.memoryRatio, [&](int r) {
                each(requestProbabilities, base.requestProbability,
                     [&](double p) {
                         each(policies, base.policy,
                              [&](ArbitrationPolicy g) {
                                  each(buffering, base.buffered,
                                       [&](bool b) {
                                           SystemConfig cfg = base;
                                           cfg.numProcessors = n;
                                           cfg.numModules = m;
                                           cfg.memoryRatio = r;
                                           cfg.requestProbability = p;
                                           cfg.policy = g;
                                           cfg.buffered = b;
                                           emit(cfg);
                                       });
                              });
                     });
            });
        });
    });
    return points;
}

} // namespace sbn
