#include "exec/sweep.hh"

namespace sbn {

namespace {

/** Axis length with the "empty means base value" convention. */
template <typename T>
std::size_t
axisSize(const std::vector<T> &axis)
{
    return axis.empty() ? 1 : axis.size();
}

} // namespace

std::size_t
SweepSpec::size() const
{
    return axisSize(processors) * axisSize(modules) *
           axisSize(memoryRatios) * axisSize(requestProbabilities) *
           axisSize(policies) * axisSize(buffering);
}

std::vector<SystemConfig>
SweepSpec::materialize() const
{
    std::vector<SystemConfig> points;
    points.reserve(size());

    const auto each = [](const auto &axis, auto base_value,
                         const auto &visit) {
        if (axis.empty()) {
            visit(base_value);
            return;
        }
        for (const auto &value : axis)
            visit(value);
    };

    each(processors, base.numProcessors, [&](int n) {
        each(modules, base.numModules, [&](int m) {
            each(memoryRatios, base.memoryRatio, [&](int r) {
                each(requestProbabilities, base.requestProbability,
                     [&](double p) {
                         each(policies, base.policy,
                              [&](ArbitrationPolicy g) {
                                  each(buffering, base.buffered,
                                       [&](bool b) {
                                           SystemConfig cfg = base;
                                           cfg.numProcessors = n;
                                           cfg.numModules = m;
                                           cfg.memoryRatio = r;
                                           cfg.requestProbability = p;
                                           cfg.policy = g;
                                           cfg.buffered = b;
                                           points.push_back(cfg);
                                       });
                              });
                     });
            });
        });
    });
    return points;
}

} // namespace sbn
