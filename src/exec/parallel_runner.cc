#include "exec/parallel_runner.hh"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <map>
#include <mutex>

#include "stats/accumulator.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace sbn {

namespace {

std::atomic<unsigned> g_default_threads_override{0};

unsigned
threadsFromEnvironment()
{
    static const unsigned cached = [] {
        const char *env = std::getenv("SBN_THREADS");
        if (env == nullptr)
            return 1u;
        const unsigned parsed = parseThreadsSpec(env);
        return parsed != 0 ? parsed : ThreadPool::hardwareThreads();
    }();
    return cached;
}

} // namespace

unsigned
parseThreadsSpec(const char *spec)
{
    if (spec == nullptr)
        sbn_fatal("SBN_THREADS: null thread-count spec");

    const char *cursor = spec;
    while (*cursor == ' ' || *cursor == '\t')
        ++cursor;
    if (*cursor == '\0')
        sbn_fatal("SBN_THREADS: empty value (expected a thread count)");

    char *end = nullptr;
    errno = 0;
    const long parsed = std::strtol(cursor, &end, 10);
    while (end != nullptr && (*end == ' ' || *end == '\t'))
        ++end;
    if (end == cursor || end == nullptr || *end != '\0')
        sbn_fatal("SBN_THREADS: '", spec,
                  "' is not a number (expected a decimal thread count)");
    if (errno == ERANGE || parsed > 4096)
        sbn_fatal("SBN_THREADS: '", spec,
                  "' is out of range (max 4096 worker threads)");
    if (parsed < 0)
        sbn_fatal("SBN_THREADS: '", spec,
                  "' is negative (expected >= 0; 0 = all hardware "
                  "threads)");
    return static_cast<unsigned>(parsed);
}

unsigned
defaultExecThreads()
{
    const unsigned override_value =
        g_default_threads_override.load(std::memory_order_relaxed);
    return override_value != 0 ? override_value
                               : threadsFromEnvironment();
}

void
setDefaultExecThreads(unsigned threads)
{
    g_default_threads_override.store(threads,
                                     std::memory_order_relaxed);
}

ParallelRunner::ParallelRunner(unsigned threads)
    : threads_(threads != 0 ? threads : ThreadPool::hardwareThreads())
{
    if (threads_ > 1)
        pool_ = std::make_unique<ThreadPool>(threads_ - 1);
}

ParallelRunner::~ParallelRunner() = default;

void
ParallelRunner::forEachIndex(std::size_t count,
                             const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (threads_ == 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // Shared fan-out state: workers (pool + calling thread) claim
    // indices from an atomic cursor; the calling thread then waits for
    // the posted drainers to retire.
    struct FanOut
    {
        std::atomic<std::size_t> next{0};
        std::atomic<bool> failed{false};
        std::mutex mutex;
        std::condition_variable done;
        std::size_t pending = 0;
        std::exception_ptr error;
    } state;

    auto drain = [&] {
        while (!state.failed.load(std::memory_order_relaxed)) {
            const std::size_t i =
                state.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state.mutex);
                if (!state.error)
                    state.error = std::current_exception();
                state.failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    const std::size_t helpers =
        std::min<std::size_t>(threads_ - 1, count - 1);
    state.pending = helpers;
    for (std::size_t w = 0; w < helpers; ++w) {
        pool_->post([&] {
            drain();
            std::lock_guard<std::mutex> lock(state.mutex);
            if (--state.pending == 0)
                state.done.notify_one();
        });
    }

    drain();

    std::unique_lock<std::mutex> lock(state.mutex);
    state.done.wait(lock, [&] { return state.pending == 0; });
    if (state.error)
        std::rethrow_exception(state.error);
}

Estimate
ParallelRunner::runReplications(
    const std::function<double(std::uint64_t)> &experiment,
    unsigned replications, std::uint64_t master_seed, double level)
{
    sbn_assert(replications >= 1, "need at least one replication");

    // Derive every replication seed up front, in the exact stream
    // order the serial path uses; the parallel phase then only maps
    // seed[i] -> value[i], and the reduction below runs in index
    // order. This is what makes results thread-count invariant.
    RandomGenerator seeder(master_seed);
    std::vector<std::uint64_t> seeds(replications);
    for (auto &seed : seeds)
        seed = seeder.deriveSeed();

    const std::vector<double> values = map<double>(
        replications,
        [&](std::size_t i) { return experiment(seeds[i]); });

    Accumulator acc;
    for (double value : values)
        acc.add(value);

    Estimate e;
    e.mean = acc.mean();
    e.halfWidth =
        replications >= 2 ? acc.confidenceHalfWidth(level) : 0.0;
    e.samples = acc.count();
    return e;
}

std::vector<double>
ParallelRunner::sweep(
    const SweepSpec &spec,
    const std::function<double(const SystemConfig &)> &evaluate)
{
    return mapConfigs(spec.materialize(), evaluate);
}

std::vector<double>
ParallelRunner::mapConfigs(
    const std::vector<SystemConfig> &points,
    const std::function<double(const SystemConfig &)> &evaluate)
{
    return map<double>(points.size(), [&](std::size_t i) {
        return evaluate(points[i]);
    });
}

std::vector<double>
ParallelRunner::sweepStreamed(
    const SweepSpec &spec,
    const std::function<double(const SystemConfig &)> &evaluate,
    const SweepCallback &onPoint)
{
    return mapConfigsStreamed(spec.materialize(), evaluate, onPoint);
}

std::vector<double>
ParallelRunner::mapConfigsStreamed(
    const std::vector<SystemConfig> &points,
    const std::function<double(const SystemConfig &)> &evaluate,
    const SweepCallback &onPoint)
{
    if (!onPoint)
        return mapConfigs(points, evaluate);
    return stream<double>(
        points.size(),
        [&](std::size_t i) { return evaluate(points[i]); },
        [&](std::size_t i, const double &value) {
            onPoint(i, points[i], value);
        });
}

std::vector<double>
ParallelRunner::mapConfigsStreamedSubset(
    const std::vector<SystemConfig> &points,
    const std::vector<std::size_t> &subset,
    const std::function<double(const SystemConfig &)> &evaluate,
    const SweepCallback &onPoint)
{
    for (std::size_t k = 0; k < subset.size(); ++k) {
        sbn_assert(subset[k] < points.size(),
                   "shard subset index out of range");
        sbn_assert(k == 0 || subset[k - 1] < subset[k],
                   "shard subset indices must be strictly increasing");
    }
    return stream<double>(
        subset.size(),
        [&](std::size_t k) { return evaluate(points[subset[k]]); },
        [&](std::size_t k, const double &value) {
            if (onPoint)
                onPoint(subset[k], points[subset[k]], value);
        });
}

ParallelRunner &
sharedParallelRunner(unsigned threads)
{
    static std::mutex registry_mutex;
    static std::map<unsigned, std::unique_ptr<ParallelRunner>> registry;

    const unsigned resolved =
        threads != 0 ? threads : ThreadPool::hardwareThreads();
    std::lock_guard<std::mutex> lock(registry_mutex);
    auto &slot = registry[resolved];
    if (!slot)
        slot = std::make_unique<ParallelRunner>(resolved);
    return *slot;
}

} // namespace sbn
