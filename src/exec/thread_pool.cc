#include "exec/thread_pool.hh"

#include <unistd.h>

#include <exception>

#include "util/logging.hh"

namespace sbn {

ThreadPool::ThreadPool(unsigned threads) : ownerPid_(getpid())
{
    sbn_assert(threads >= 1, "thread pool needs at least one worker");
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    // Fork safety: in a forked child (shard --spawn workers, death
    // tests) the worker threads do not exist - only the forking
    // thread survives fork() - and the mutex/condvar state is
    // whatever the parent's threads left mid-flight. Touching either
    // or joining the phantom std::thread handles would deadlock the
    // child's exit path, so detach the handles and walk away; the
    // parent still owns and joins the real threads.
    if (getpid() != ownerPid_) {
        for (auto &worker : workers_)
            worker.detach();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sbn_assert(!stopping_, "post on a stopping thread pool");
        tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stopping and drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        // A raw posted task must not take the worker (and with it the
        // whole process) down: constructs that need failure reporting
        // catch inside the task and propagate to their waiter
        // (ParallelRunner does). Anything escaping to here is logged
        // and dropped so the pool stays usable.
        try {
            task();
        } catch (const std::exception &e) {
            sbn_warn("thread-pool task threw: ", e.what());
        } catch (...) {
            sbn_warn("thread-pool task threw a non-std exception");
        }
    }
}

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

} // namespace sbn
