#include "service/protocol.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sbn {

namespace {

/** Cursor over one line being parsed. */
struct Cursor
{
    const std::string &text;
    std::size_t pos = 0;

    bool atEnd() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    void skipSpace()
    {
        while (!atEnd() && (text[pos] == ' ' || text[pos] == '\t'))
            ++pos;
    }

    bool consume(char c)
    {
        if (atEnd() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }
};

bool
parseJsonString(Cursor &cur, std::string &out, std::string &error)
{
    if (!cur.consume('"')) {
        error = "expected '\"' at offset " + std::to_string(cur.pos);
        return false;
    }
    out.clear();
    while (!cur.atEnd()) {
        const char c = cur.text[cur.pos++];
        if (c == '"')
            return true;
        if (static_cast<unsigned char>(c) < 0x20) {
            error = "raw control character inside string";
            return false;
        }
        if (c != '\\') {
            out += c;
            continue;
        }
        if (cur.atEnd()) {
            error = "dangling escape at end of string";
            return false;
        }
        const char esc = cur.text[cur.pos++];
        switch (esc) {
        case '"':
            out += '"';
            break;
        case '\\':
            out += '\\';
            break;
        case '/':
            out += '/';
            break;
        case 'n':
            out += '\n';
            break;
        case 't':
            out += '\t';
            break;
        case 'r':
            out += '\r';
            break;
        default:
            // \b, \f and \uXXXX never appear in the values this
            // protocol carries (flag strings, paths, state names);
            // rejecting them keeps the parser honest about what it
            // round-trips.
            error = std::string("unsupported escape '\\") + esc +
                    "' in string";
            return false;
        }
    }
    error = "unterminated string";
    return false;
}

bool
parseJsonScalar(Cursor &cur, JsonScalar &out, std::string &error)
{
    cur.skipSpace();
    if (cur.atEnd()) {
        error = "missing value";
        return false;
    }
    const char c = cur.peek();
    if (c == '"') {
        out.kind = JsonScalar::Kind::String;
        return parseJsonString(cur, out.text, error);
    }
    if (c == '{' || c == '[') {
        error = "nested values are not part of this protocol";
        return false;
    }
    // Literal: true / false / null / number.
    const std::size_t start = cur.pos;
    while (!cur.atEnd() && cur.peek() != ',' && cur.peek() != '}' &&
           cur.peek() != ' ' && cur.peek() != '\t')
        ++cur.pos;
    const std::string token =
        cur.text.substr(start, cur.pos - start);
    if (token == "true" || token == "false") {
        out.kind = JsonScalar::Kind::Bool;
        out.boolean = token == "true";
        return true;
    }
    if (token == "null") {
        out.kind = JsonScalar::Kind::Null;
        return true;
    }
    char *end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size() ||
        !std::isfinite(value)) {
        error = "malformed value '" + token + "'";
        return false;
    }
    out.kind = JsonScalar::Kind::Number;
    out.number = value;
    out.text = token;
    return true;
}

/** Fetch a required/optional key with a required type, erroring with
 *  the command name for context. */
const JsonScalar *
findKey(const JsonObject &object, const std::string &key)
{
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

bool
takeJob(const JsonObject &object, Request &request, std::string &error)
{
    const JsonScalar *job = findKey(object, "job");
    if (job == nullptr)
        return true;
    if (job->kind != JsonScalar::Kind::Number ||
        job->number < 0 ||
        job->number != std::floor(job->number)) {
        error = "\"job\" must be a non-negative integer";
        return false;
    }
    request.hasJob = true;
    request.job = static_cast<std::uint64_t>(job->number);
    return true;
}

std::string
formatNumber(double value)
{
    // Job ids and byte counts are integral; timeouts are not. %g
    // keeps both readable and round-trippable at protocol scale.
    char buffer[32];
    if (value == std::floor(value) && std::fabs(value) < 1e15)
        std::snprintf(buffer, sizeof buffer, "%.0f", value);
    else
        std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

} // namespace

bool
parseFlatJsonObject(const std::string &line, JsonObject &out,
                    std::string &error)
{
    out.clear();
    Cursor cur{line};
    cur.skipSpace();
    if (!cur.consume('{')) {
        error = "a request is one flat JSON object per line";
        return false;
    }
    cur.skipSpace();
    if (cur.consume('}')) {
        cur.skipSpace();
        if (!cur.atEnd()) {
            error = "trailing bytes after the object";
            return false;
        }
        return true;
    }
    for (;;) {
        cur.skipSpace();
        std::string key;
        if (!parseJsonString(cur, key, error))
            return false;
        cur.skipSpace();
        if (!cur.consume(':')) {
            error = "expected ':' after key \"" + key + "\"";
            return false;
        }
        JsonScalar value;
        if (!parseJsonScalar(cur, value, error))
            return false;
        if (!out.emplace(key, std::move(value)).second) {
            error = "duplicate key \"" + key + "\"";
            return false;
        }
        cur.skipSpace();
        if (cur.consume(','))
            continue;
        if (cur.consume('}'))
            break;
        error = "expected ',' or '}' after the value of \"" + key +
                "\"";
        return false;
    }
    cur.skipSpace();
    if (!cur.atEnd()) {
        error = "trailing bytes after the object";
        return false;
    }
    return true;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            out += c;
        }
    }
    return out;
}

const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
    case RequestKind::Submit:
        return "submit";
    case RequestKind::Status:
        return "status";
    case RequestKind::Cancel:
        return "cancel";
    case RequestKind::Results:
        return "results";
    case RequestKind::Drain:
        return "drain";
    case RequestKind::Metrics:
        return "metrics";
    }
    return "unknown";
}

bool
parseRequest(const std::string &line, Request &out, std::string &error)
{
    JsonObject object;
    if (!parseFlatJsonObject(line, object, error))
        return false;

    const JsonScalar *cmd = findKey(object, "cmd");
    if (cmd == nullptr || cmd->kind != JsonScalar::Kind::String) {
        error = "every request needs a string \"cmd\" key";
        return false;
    }

    Request request;
    if (cmd->text == "submit") {
        request.kind = RequestKind::Submit;
        const JsonScalar *spec = findKey(object, "spec");
        if (spec == nullptr ||
            spec->kind != JsonScalar::Kind::String ||
            spec->text.empty()) {
            error = "submit needs a non-empty string \"spec\" "
                    "(sbn_sweep-style flags)";
            return false;
        }
        request.spec = spec->text;
        if (const JsonScalar *timeout =
                findKey(object, "timeout_s")) {
            if (timeout->kind != JsonScalar::Kind::Number ||
                timeout->number < 0) {
                error = "\"timeout_s\" must be a non-negative number";
                return false;
            }
            request.timeoutSeconds = timeout->number;
        }
    } else if (cmd->text == "status" || cmd->text == "metrics") {
        // Both take an optional job id: bare = whole-daemon summary
        // or metrics snapshot, with "job" = one job's view.
        request.kind = cmd->text == "status" ? RequestKind::Status
                                             : RequestKind::Metrics;
        if (!takeJob(object, request, error))
            return false;
    } else if (cmd->text == "cancel" || cmd->text == "results") {
        request.kind = cmd->text == "cancel" ? RequestKind::Cancel
                                             : RequestKind::Results;
        if (!takeJob(object, request, error))
            return false;
        if (!request.hasJob) {
            error = cmd->text + " needs a \"job\" id";
            return false;
        }
    } else if (cmd->text == "drain") {
        request.kind = RequestKind::Drain;
    } else {
        error = "unknown cmd \"" + cmd->text + "\"";
        return false;
    }
    out = request;
    return true;
}

std::string
formatRequest(const Request &request)
{
    std::string line = "{\"cmd\":\"";
    line += requestKindName(request.kind);
    line += '"';
    if (request.kind == RequestKind::Submit) {
        line += ",\"spec\":\"" + jsonEscape(request.spec) + "\"";
        if (request.timeoutSeconds > 0)
            line += ",\"timeout_s\":" +
                    formatNumber(request.timeoutSeconds);
    }
    if (request.hasJob)
        line += ",\"job\":" +
                formatNumber(static_cast<double>(request.job));
    line += '}';
    return line;
}

std::string
errorResponse(const std::string &code, const std::string &message)
{
    return "{\"ok\":false,\"error\":\"" + jsonEscape(code) +
           "\",\"message\":\"" + jsonEscape(message) + "\"}";
}

} // namespace sbn
