#include "service/metrics.hh"

#include <cstdio>

namespace sbn {

namespace {

std::string
formatSeconds(double value)
{
    // Millisecond resolution is plenty for uptime; fixed-point keeps
    // the field regular for line-oriented consumers (no exponents).
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.3f", value);
    return buffer;
}

} // namespace

std::string
formatDaemonMetricsFields(const DaemonMetricsSnapshot &m)
{
    std::string out;
    out += "\"uptime_s\":" + formatSeconds(m.uptimeSeconds);
    out += ",\"queued\":" + std::to_string(m.queued);
    out += ",\"running\":" + std::to_string(m.running);
    out += ",\"done\":" + std::to_string(m.done);
    out += ",\"failed\":" + std::to_string(m.failed);
    out += ",\"cancelled\":" + std::to_string(m.cancelled);
    out += ",\"jobs_total\":" + std::to_string(m.jobsTotal);
    out += ",\"queue_depth\":" + std::to_string(m.queueDepth);
    out += ",\"draining\":";
    out += m.draining ? "true" : "false";
    out += ",\"journal_appends\":" + std::to_string(m.journalAppends);
    out += ",\"journal_fsyncs\":" + std::to_string(m.journalFsyncs);
    out += ",\"results_bytes_served\":" +
           std::to_string(m.resultsBytesServed);
    out += ",\"runner_relaunches\":" +
           std::to_string(m.runnerRelaunches);
    out += ",\"active_job\":";
    out += m.hasActiveJob ? std::to_string(m.activeJob) : "null";
    return out;
}

std::string
formatDaemonMetricsResponse(const DaemonMetricsSnapshot &m)
{
    return "{\"ok\":true,\"type\":\"sbn.metrics.v1\"," +
           formatDaemonMetricsFields(m) + "}";
}

std::string
formatHeartbeatV2(const DaemonMetricsSnapshot &m, long long ts_unix)
{
    return "{\"type\":\"sbn.heartbeat.v2\",\"ts_unix\":" +
           std::to_string(ts_unix) + "," +
           formatDaemonMetricsFields(m) + "}\n";
}

} // namespace sbn
