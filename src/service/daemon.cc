#include "service/daemon.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <deque>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "service/journal.hh"
#include "service/metrics.hh"
#include "service/protocol.hh"
#include "service/sweeprun.hh"
#include "shard/fault.hh"
#include "shard/result_io.hh"
#include "shard/supervisor.hh"
#include "trace/span.hh"
#include "util/exit_codes.hh"
#include "util/logging.hh"

namespace sbn {

namespace {

using Clock = std::chrono::steady_clock;

volatile std::sig_atomic_t g_terminateSignal = 0;

void
onTerminateSignal(int sig)
{
    g_terminateSignal = sig;
}

/** write() the whole buffer, riding out EINTR; false on error. */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t written = 0;
    while (written < size) {
        const ssize_t got = ::write(fd, data + written, size - written);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        written += static_cast<std::size_t>(got);
    }
    return true;
}

/** Atomic small-file publish: temp + fsync + rename. */
void
atomicWriteFile(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp." +
                            std::to_string(static_cast<long>(::getpid()));
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        sbn_fatal("cannot create '", tmp,
                  "': ", std::strerror(errno));
    if (!writeAll(fd, content.data(), content.size()) ||
        ::fsync(fd) != 0) {
        ::close(fd);
        sbn_fatal("cannot write '", tmp, "': ", std::strerror(errno));
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0)
        sbn_fatal("cannot publish '", path,
                  "': ", std::strerror(errno));
}

void
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST)
        return;
    sbn_fatal("cannot create directory '", path,
              "': ", std::strerror(errno));
}

/** One job as the daemon tracks it. */
struct Job
{
    JobJournalEntry entry; //!< latest durable state + submit fields
    pid_t runnerPid = -1;
    int statusPipe = -1;       //!< read end; -1 = none
    unsigned launches = 0;     //!< runner processes forked (this daemon)
    bool cancelRequested = false;
    bool hasDeadline = false;
    Clock::time_point deadline{};    //!< job timeout
    bool killPending = false;
    Clock::time_point killDeadline{}; //!< SIGTERM -> SIGKILL escalation
    /** CPU seconds (user+system) of every reaped runner of this job,
     *  workers included - wait4's rusage covers the descendants the
     *  runner's supervisor waited for. This-incarnation only. */
    double cpuSeconds = 0;
    /** Wall-clock (unix) when the job went terminal under this
     *  daemon; 0 while live or for journal-recovered terminals. */
    double finishedUnix = 0;

    // Span tracing (all zero when the daemon runs without
    // SBN_TRACE_DIR): one trace per job, rooted at a "job" span that
    // closes when the job goes terminal; queued/running/merging state
    // intervals nest under it, and every runner launch inherits the
    // job span as its parent context.
    std::uint64_t traceId = 0;
    std::uint64_t jobSpanId = 0;
    std::uint64_t submitUs = 0;     //!< root span start
    std::uint64_t queuedUs = 0;     //!< current queued-interval start
    std::uint64_t runStartUs = 0;   //!< current running-interval start
    std::uint64_t mergeStartUs = 0; //!< current merging-interval start
};

/** One connected client. */
struct Client
{
    int fd = -1;           //!< O_NONBLOCK; -1 = dropped, reap pending
    std::string inbox;     //!< bytes received, not yet a full line
    std::string outbox;    //!< reply bytes not yet accepted by send()
    std::size_t outboxSent = 0; //!< prefix of outbox already sent
};

class Daemon
{
  public:
    explicit Daemon(const DaemonConfig &config)
        : config_(config),
          journal_(daemonJournalPath(config.stateDir))
    {
    }

    int run();

  private:
    // --- journal / state ---------------------------------------------
    void recover();
    void appendState(Job &job, JobState state, int exit_code,
                     const std::string &reason);

    // --- sockets -----------------------------------------------------
    void openListenSocket();
    void acceptClients();
    void serviceClient(Client &client);
    void handleRequest(Client &client, const std::string &line);
    void respond(Client &client, const std::string &line);
    void queueOutput(Client &client, const std::string &bytes);
    void flushClient(Client &client);
    void dropClient(Client &client);

    // --- request handlers --------------------------------------------
    void handleSubmit(Client &client, const Request &request);
    void handleStatus(Client &client, const Request &request);
    void handleCancel(Client &client, const Request &request);
    void handleResults(Client &client, const Request &request);
    void handleDrain(Client &client);
    void handleMetrics(Client &client, const Request &request);

    // --- runners -----------------------------------------------------
    void startPendingJobs();
    void launchRunner(Job &job);
    void runJobInRunner(const Job &job, int status_write_fd);
    void reapRunners();
    void runnerExited(Job &job, int status);
    void enforceDeadlines();
    void killJobRunner(Job &job);
    void readStatusPipe(Job &job);

    // --- misc --------------------------------------------------------
    void writeHeartbeat();
    DaemonMetricsSnapshot collectMetrics() const;
    std::size_t queuedCount() const;
    std::size_t runningCount() const;
    Job *findJob(std::uint64_t id);

    DaemonConfig config_;
    JobJournal journal_;
    std::map<std::uint64_t, Job> jobs_;
    std::deque<std::uint64_t> pending_; //!< job ids awaiting a runner
    std::uint64_t nextJobId_ = 0;
    int listenFd_ = -1;
    std::vector<Client> clients_;
    bool draining_ = false;
    Clock::time_point lastHeartbeat_{};
    bool heartbeatEver_ = false;

    // Metrics state (service/metrics.hh): in-memory only, anchored at
    // this incarnation's start.
    Clock::time_point startTime_ = Clock::now();
    std::uint64_t resultsBytesServed_ = 0;
    std::uint64_t runnerRelaunches_ = 0;
};

void
Daemon::appendState(Job &job, JobState state, int exit_code,
                    const std::string &reason)
{
    // The journal invariant the replay relies on: nothing follows a
    // terminal entry for a job (last-write-wins would resurrect it).
    sbn_assert(!jobStateTerminal(job.entry.state),
               "journal append after terminal state");
    JobJournalEntry entry = job.entry;
    entry.state = state;
    entry.exitCode = exit_code;
    entry.reason = reason;
    journal_.append(entry); // durable (+ crash_after_journal window)
    job.entry = entry;
    if (jobStateTerminal(state)) {
        job.finishedUnix = static_cast<double>(std::time(nullptr));
        if (job.jobSpanId != 0) {
            traceEmitSpanWithId(
                {job.traceId, job.jobSpanId}, job.jobSpanId, "job",
                "job " + std::to_string(entry.job), 0, job.submitUs,
                traceNowMicros(),
                {{"state", jobStateName(state)},
                 {"exit", std::to_string(exit_code)},
                 {"launches", std::to_string(job.launches)}});
            job.jobSpanId = 0;
        }
    }
}

void
Daemon::recover()
{
    const std::vector<JobJournalEntry> replayed =
        replayJobJournal(journal_.path());
    for (const JobJournalEntry &entry : replayed) {
        Job job;
        job.entry = entry;
        if (entry.job >= nextJobId_)
            nextJobId_ = entry.job + 1;
        const bool interrupted = entry.state == JobState::Running ||
                                 entry.state == JobState::Merging;
        jobs_.emplace(entry.job, std::move(job));
        if (entry.state == JobState::Submitted || interrupted)
            pending_.push_back(entry.job);
        if (interrupted)
            sbn_warn("recovering job ", entry.job, " from state '",
                     jobStateName(entry.state),
                     "': relaunching with resume from its shard "
                     "records");
    }
    if (!replayed.empty())
        std::fprintf(stderr,
                     "sbn_sweepd: journal replayed %zu job(s), %zu to "
                     "(re)run\n",
                     replayed.size(), pending_.size());
}

void
Daemon::openListenSocket()
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        sbn_fatal("cannot create listen socket: ",
                  std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        sbn_fatal("cannot bind 127.0.0.1:", config_.port, ": ",
                  std::strerror(errno));
    if (::listen(listenFd_, 16) != 0)
        sbn_fatal("cannot listen: ", std::strerror(errno));

    socklen_t len = sizeof addr;
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        sbn_fatal("cannot read bound port: ", std::strerror(errno));
    const int port = ntohs(addr.sin_port);

    const int flags = ::fcntl(listenFd_, F_GETFL, 0);
    ::fcntl(listenFd_, F_SETFL, flags | O_NONBLOCK);

    // Publish the port only after listen(): a reader that sees the
    // file can connect.
    atomicWriteFile(daemonPortFilePath(config_.stateDir),
                    std::to_string(port) + "\n");
    std::fprintf(stderr, "sbn_sweepd: listening on 127.0.0.1:%d\n",
                 port);
}

int
Daemon::run()
{
    std::signal(SIGPIPE, SIG_IGN);
    struct sigaction action{};
    action.sa_handler = onTerminateSignal;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);

    recover();
    openListenSocket();
    writeHeartbeat();

    for (;;) {
        if (g_terminateSignal != 0) {
            // Runners also hold PDEATHSIG(SIGTERM) against us, so
            // their fleets shut down even if this TERM is lost. The
            // journal's running entries drive recovery next start.
            for (auto &pair : jobs_)
                if (pair.second.runnerPid > 0)
                    ::kill(pair.second.runnerPid, SIGTERM);
            std::fprintf(stderr,
                         "sbn_sweepd: terminated by signal %d\n",
                         static_cast<int>(g_terminateSignal));
            return exitCodeForSignal(g_terminateSignal);
        }

        reapRunners();
        enforceDeadlines();
        startPendingJobs();

        const auto now = Clock::now();
        if (!heartbeatEver_ ||
            now - lastHeartbeat_ >=
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        config_.heartbeatSeconds)))
            writeHeartbeat();

        if (draining_ && pending_.empty() && runningCount() == 0) {
            std::fprintf(stderr,
                         "sbn_sweepd: drained, all jobs journaled "
                         "terminal\n");
            return kExitOk;
        }

        // fds layout: [0] listen, [1 .. polledClients] the clients_
        // snapshot taken HERE, then one slot per runner status pipe.
        // acceptClients() below appends to clients_, so every index
        // into fds must use this snapshot count, never a live
        // clients_.size().
        std::vector<pollfd> fds;
        fds.push_back({listenFd_, POLLIN, 0});
        const std::size_t polledClients = clients_.size();
        for (const Client &client : clients_) {
            short events = POLLIN;
            if (client.outboxSent < client.outbox.size())
                events |= POLLOUT;
            fds.push_back({client.fd, events, 0});
        }
        std::vector<std::uint64_t> pipeJobs;
        for (auto &pair : jobs_) {
            if (pair.second.statusPipe >= 0) {
                fds.push_back({pair.second.statusPipe, POLLIN, 0});
                pipeJobs.push_back(pair.first);
            }
        }

        const int got = ::poll(fds.data(),
                               static_cast<nfds_t>(fds.size()), 50);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            sbn_fatal("poll failed: ", std::strerror(errno));
        }
        if (got == 0)
            continue;

        if ((fds[0].revents & POLLIN) != 0)
            acceptClients();
        for (std::size_t i = 0; i < polledClients; ++i) {
            Client &client = clients_[i];
            if ((fds[1 + i].revents & POLLOUT) != 0)
                flushClient(client);
            if (client.fd >= 0 &&
                (fds[1 + i].revents &
                 (POLLIN | POLLHUP | POLLERR)) != 0)
                serviceClient(client);
        }
        for (std::size_t i = 0; i < pipeJobs.size(); ++i)
            if ((fds[1 + polledClients + i].revents &
                 (POLLIN | POLLHUP | POLLERR)) != 0)
                if (Job *job = findJob(pipeJobs[i]))
                    readStatusPipe(*job);
        clients_.erase(
            std::remove_if(clients_.begin(), clients_.end(),
                           [](const Client &c) { return c.fd < 0; }),
            clients_.end());
    }
}

void
Daemon::acceptClients()
{
    // The stall_accept fault wedges exactly here: the daemon process
    // stays alive (heartbeats already written stay on disk, new ones
    // stop) but never serves again.
    faultMaybeStallAccept();
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                return;
            sbn_warn("accept failed: ", std::strerror(errno));
            return;
        }
        // Non-blocking from birth: all client I/O runs in the single
        // poll() thread, so a peer that stops reading must cost us an
        // EAGAIN and a buffered outbox, never a blocked write that
        // wedges every other client, runner reap and heartbeat.
        const int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        Client client;
        client.fd = fd;
        clients_.push_back(std::move(client));
    }
}

void
Daemon::serviceClient(Client &client)
{
    char buffer[4096];
    const ssize_t got = ::read(client.fd, buffer, sizeof buffer);
    if (got <= 0) {
        if (got < 0 && (errno == EINTR || errno == EAGAIN))
            return;
        dropClient(client);
        return;
    }
    client.inbox.append(buffer, static_cast<std::size_t>(got));
    if (client.inbox.size() > 1 << 20) {
        // A line this long is not a protocol request; cut the peer
        // off rather than buffer without bound.
        dropClient(client);
        return;
    }
    std::size_t newline;
    while (client.fd >= 0 &&
           (newline = client.inbox.find('\n')) != std::string::npos) {
        std::string line = client.inbox.substr(0, newline);
        client.inbox.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        handleRequest(client, line);
    }
}

void
Daemon::handleRequest(Client &client, const std::string &line)
{
    Request request;
    std::string error;
    if (!parseRequest(line, request, error)) {
        respond(client, errorResponse("bad_request", error));
        return;
    }
    switch (request.kind) {
    case RequestKind::Submit:
        handleSubmit(client, request);
        break;
    case RequestKind::Status:
        handleStatus(client, request);
        break;
    case RequestKind::Cancel:
        handleCancel(client, request);
        break;
    case RequestKind::Results:
        handleResults(client, request);
        break;
    case RequestKind::Drain:
        handleDrain(client);
        break;
    case RequestKind::Metrics:
        handleMetrics(client, request);
        break;
    }
}

void
Daemon::respond(Client &client, const std::string &line)
{
    queueOutput(client, line + "\n");
}

void
Daemon::queueOutput(Client &client, const std::string &bytes)
{
    if (client.fd < 0)
        return;
    // A peer that keeps sending requests without reading replies
    // (results payloads, typically) gets cut off rather than growing
    // the outbox without bound.
    constexpr std::size_t kMaxOutbox = std::size_t(256) << 20;
    if (client.outbox.size() - client.outboxSent + bytes.size() >
        kMaxOutbox) {
        sbn_warn("client outbox over ", kMaxOutbox >> 20,
                 " MiB (peer not reading); dropping it");
        dropClient(client);
        return;
    }
    client.outbox += bytes;
    flushClient(client); // opportunistic: common case drains here
}

void
Daemon::flushClient(Client &client)
{
    while (client.fd >= 0 &&
           client.outboxSent < client.outbox.size()) {
        const ssize_t got =
            ::write(client.fd, client.outbox.data() + client.outboxSent,
                    client.outbox.size() - client.outboxSent);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return; // poll()'s POLLOUT resumes the flush
            dropClient(client);
            return;
        }
        client.outboxSent += static_cast<std::size_t>(got);
    }
    client.outbox.clear();
    client.outboxSent = 0;
}

void
Daemon::dropClient(Client &client)
{
    if (client.fd >= 0)
        ::close(client.fd);
    client.fd = -1; // reaped by the main loop's erase pass
    client.outbox.clear();
    client.outboxSent = 0;
}

void
Daemon::handleSubmit(Client &client, const Request &request)
{
    if (draining_) {
        respond(client,
                errorResponse("draining",
                              "daemon is draining; not accepting "
                              "new jobs"));
        return;
    }
    if (queuedCount() >= config_.queueLimit) {
        respond(client,
                errorResponse("queue_full",
                              "job queue is at its limit of " +
                                  std::to_string(config_.queueLimit)));
        return;
    }
    if (!specParsesCleanly(request.spec)) {
        respond(client,
                errorResponse("bad_spec",
                              "spec does not parse as sbn_sweep "
                              "flags (daemon stderr has the exact "
                              "complaint)"));
        return;
    }

    const std::uint64_t id = nextJobId_++;
    Job &job = jobs_[id];
    job.entry.job = id;
    job.entry.state = JobState::Submitted;
    job.entry.spec = request.spec;
    job.entry.timeoutSeconds = request.timeoutSeconds;
    if (traceEnabled()) {
        // The job's root span opens at submit; it closes (and is
        // emitted) when the job goes terminal.
        job.traceId = newTraceId();
        job.jobSpanId = traceAllocSpanId();
        job.submitUs = job.queuedUs = traceNowMicros();
    }

    // Durability before acknowledgment: the submit line is fsync()ed
    // (and the crash_after_journal=submitted window passed) before
    // the client hears its job id. An acknowledged job is never
    // forgotten.
    journal_.append(job.entry);
    pending_.push_back(id);

    respond(client, "{\"ok\":true,\"job\":" + std::to_string(id) +
                        ",\"state\":\"submitted\"}");
}

void
Daemon::handleStatus(Client &client, const Request &request)
{
    if (!request.hasJob) {
        std::size_t done = 0, failed = 0, cancelled = 0;
        for (const auto &pair : jobs_) {
            switch (pair.second.entry.state) {
            case JobState::Done:
                ++done;
                break;
            case JobState::Failed:
                ++failed;
                break;
            case JobState::Cancelled:
                ++cancelled;
                break;
            default:
                break;
            }
        }
        respond(client,
                "{\"ok\":true,\"queued\":" +
                    std::to_string(queuedCount()) + ",\"running\":" +
                    std::to_string(runningCount()) + ",\"done\":" +
                    std::to_string(done) + ",\"failed\":" +
                    std::to_string(failed) + ",\"cancelled\":" +
                    std::to_string(cancelled) + ",\"draining\":" +
                    (draining_ ? "true" : "false") + "}");
        return;
    }
    const Job *job = findJob(request.job);
    if (job == nullptr) {
        respond(client, errorResponse("unknown_job",
                                      "no job " +
                                          std::to_string(request.job)));
        return;
    }
    respond(client,
            "{\"ok\":true,\"job\":" + std::to_string(request.job) +
                ",\"state\":\"" + jobStateName(job->entry.state) +
                "\",\"exit\":" + std::to_string(job->entry.exitCode) +
                ",\"reason\":\"" + jsonEscape(job->entry.reason) +
                "\"}");
}

void
Daemon::handleCancel(Client &client, const Request &request)
{
    Job *job = findJob(request.job);
    if (job == nullptr) {
        respond(client, errorResponse("unknown_job",
                                      "no job " +
                                          std::to_string(request.job)));
        return;
    }
    if (jobStateTerminal(job->entry.state)) {
        respond(client,
                errorResponse("terminal_job",
                              "job " + std::to_string(request.job) +
                                  " is already " +
                                  jobStateName(job->entry.state)));
        return;
    }

    // Durability first: the cancel is journaled (and fsync()ed)
    // before any signal flies, so a daemon crash right here still
    // recovers to "cancelled" and never relaunches the job.
    appendState(*job, JobState::Cancelled, 0,
                job->runnerPid > 0 ? "cancelled while running"
                                   : "cancelled while queued");
    job->cancelRequested = true;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (*it == request.job) {
            pending_.erase(it);
            break;
        }
    }
    if (job->runnerPid > 0)
        killJobRunner(*job);

    respond(client, "{\"ok\":true,\"job\":" +
                        std::to_string(request.job) +
                        ",\"state\":\"cancelled\"}");
}

void
Daemon::handleResults(Client &client, const Request &request)
{
    const Job *job = findJob(request.job);
    if (job == nullptr) {
        respond(client, errorResponse("unknown_job",
                                      "no job " +
                                          std::to_string(request.job)));
        return;
    }
    if (job->entry.state != JobState::Done) {
        respond(client,
                errorResponse("not_ready",
                              "job " + std::to_string(request.job) +
                                  " is " +
                                  jobStateName(job->entry.state) +
                                  ", results need state done"));
        return;
    }
    const std::string path = daemonMergedPath(
        daemonJobDir(config_.stateDir, request.job));
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        respond(client,
                errorResponse("not_ready",
                              "merged result file is missing: " +
                                  path));
        return;
    }
    std::ostringstream payload;
    payload << in.rdbuf();
    const std::string bytes = payload.str();
    const std::string header =
        "{\"ok\":true,\"job\":" + std::to_string(request.job) +
        ",\"exit\":" + std::to_string(job->entry.exitCode) +
        ",\"bytes\":" + std::to_string(bytes.size()) + "}\n";
    queueOutput(client, header);
    queueOutput(client, bytes);
    // Counted when queued, not when the peer drains it: the metric
    // answers "how much result data has this daemon served", and a
    // peer that hangs up mid-payload still cost us the read+queue.
    resultsBytesServed_ += bytes.size();
}

void
Daemon::handleDrain(Client &client)
{
    draining_ = true;
    respond(client, "{\"ok\":true,\"draining\":true}");
}

void
Daemon::handleMetrics(Client &client, const Request &request)
{
    // Everything below reads in-memory daemon state only - never a
    // file, never a blocking call - so a metrics poll during an
    // active job costs the poll loop one formatted line and nothing
    // else.
    if (!request.hasJob) {
        respond(client,
                formatDaemonMetricsResponse(collectMetrics()));
        return;
    }
    const Job *job = findJob(request.job);
    if (job == nullptr) {
        respond(client, errorResponse("unknown_job",
                                      "no job " +
                                          std::to_string(request.job)));
        return;
    }
    // Wall clock: submit-to-now while live, submit-to-terminal once
    // finished under this daemon. A journal-recovered terminal job
    // has no finish stamp (the line records state, not duration) -
    // report 0 rather than a number that counts daemon downtime.
    double wall = 0;
    if (job->entry.startedUnix > 0) {
        if (job->finishedUnix > 0)
            wall = job->finishedUnix - job->entry.startedUnix;
        else if (!jobStateTerminal(job->entry.state))
            wall = static_cast<double>(std::time(nullptr)) -
                   job->entry.startedUnix;
        wall = std::max(0.0, wall);
    }
    char wallText[32];
    std::snprintf(wallText, sizeof wallText, "%.3f", wall);
    char cpuText[32];
    std::snprintf(cpuText, sizeof cpuText, "%.3f", job->cpuSeconds);
    respond(client,
            "{\"ok\":true,\"type\":\"sbn.metrics.v1\",\"job\":" +
                std::to_string(request.job) + ",\"state\":\"" +
                jobStateName(job->entry.state) +
                "\",\"launches\":" + std::to_string(job->launches) +
                ",\"wall_s\":" + wallText + ",\"cpu_s\":" + cpuText +
                ",\"exit\":" + std::to_string(job->entry.exitCode) +
                "}");
}

DaemonMetricsSnapshot
Daemon::collectMetrics() const
{
    DaemonMetricsSnapshot m;
    m.uptimeSeconds =
        std::chrono::duration<double>(Clock::now() - startTime_)
            .count();
    m.draining = draining_;
    m.queued = queuedCount();
    m.running = runningCount();
    for (const auto &pair : jobs_) {
        switch (pair.second.entry.state) {
        case JobState::Done:
            ++m.done;
            break;
        case JobState::Failed:
            ++m.failed;
            break;
        case JobState::Cancelled:
            ++m.cancelled;
            break;
        default:
            break;
        }
        if (pair.second.runnerPid > 0 && !m.hasActiveJob) {
            // jobs_ iterates in id order, so this is the lowest-id
            // job with a live runner.
            m.hasActiveJob = true;
            m.activeJob = pair.first;
        }
    }
    m.jobsTotal = jobs_.size();
    m.queueDepth = m.queued;
    m.journalAppends = journal_.appends();
    m.journalFsyncs = journal_.fsyncs();
    m.resultsBytesServed = resultsBytesServed_;
    m.runnerRelaunches = runnerRelaunches_;
    return m;
}

void
Daemon::startPendingJobs()
{
    while (!pending_.empty() && runningCount() < config_.maxRunning) {
        const std::uint64_t id = pending_.front();
        pending_.pop_front();
        Job *job = findJob(id);
        if (job == nullptr || jobStateTerminal(job->entry.state))
            continue; // cancelled while queued
        launchRunner(*job);
    }
}

void
Daemon::launchRunner(Job &job)
{
    // Relaunch detection must look before startedUnix is stamped
    // below: a nonzero launches count is a relaunch within this
    // incarnation, and a journaled startedUnix on a job this
    // incarnation has never launched means a previous daemon
    // launched it - recovery is relaunching it now. Both count in
    // runner_relaunches, so the metric reflects crash recoveries
    // even across a daemon kill-and-restart.
    const bool relaunch =
        job.launches > 0 || job.entry.startedUnix > 0;

    // First launch ever (not per incarnation): stamp the wall-clock
    // start the timeout deadline is measured from. Recovered jobs
    // carry theirs in from the journal.
    if (job.entry.startedUnix <= 0)
        job.entry.startedUnix =
            static_cast<double>(std::time(nullptr));

    // Journal the transition BEFORE the fork: a crash between the
    // two recovers to "running" and relaunches with resume, which is
    // idempotent; the reverse order could run a job the journal
    // never heard of.
    appendState(job, JobState::Running, 0, "");

    // Trace: jobs recovered from the journal (or submitted before
    // tracing was armed) get their trace lazily here; the queued
    // interval that ends with this launch is emitted, and the running
    // interval starts.
    if (traceEnabled() && job.traceId == 0) {
        job.traceId = newTraceId();
        job.jobSpanId = traceAllocSpanId();
        job.submitUs = job.queuedUs = traceNowMicros();
    }
    if (job.jobSpanId != 0) {
        const std::uint64_t nowUs = traceNowMicros();
        traceEmitSpan({job.traceId, job.jobSpanId}, "queued",
                      "job " + std::to_string(job.entry.job) +
                          " queued",
                      job.jobSpanId, job.queuedUs, nowUs,
                      {{"launch", std::to_string(job.launches)}});
        job.runStartUs = nowUs;
    }

    int pipeFds[2];
    if (::pipe(pipeFds) != 0)
        sbn_fatal("cannot create runner status pipe: ",
                  std::strerror(errno));

    const pid_t daemonPid = ::getpid();
    const pid_t pid = ::fork();
    if (pid < 0)
        sbn_fatal("cannot fork job runner: ", std::strerror(errno));
    if (pid == 0) {
#ifdef __linux__
        // Daemon death must take the runner's fleet down with it:
        // TERM here makes the runner's supervisor kill and reap its
        // workers (which additionally hold PDEATHSIG(SIGKILL)
        // against the runner). The getppid() check closes the race
        // where the daemon died before prctl took effect.
        ::prctl(PR_SET_PDEATHSIG, SIGTERM);
        if (::getppid() != daemonPid)
            ::_exit(kExitFatal);
#else
        (void)daemonPid;
#endif
        ::close(pipeFds[0]);
        // fd hygiene: the runner must not hold the daemon's sockets
        // (a held listen fd would keep the port alive after daemon
        // death) or the journal (single-writer invariant).
        ::close(listenFd_);
        for (const Client &client : clients_)
            if (client.fd >= 0)
                ::close(client.fd);
        ::close(journal_.fd());
        for (const auto &pair : jobs_)
            if (pair.second.statusPipe >= 0)
                ::close(pair.second.statusPipe);
        // The runner (and everything it forks) parents its spans
        // under this job's span - submit-to-merge becomes one tree.
        if (job.jobSpanId != 0)
            exportTraceContext({job.traceId, job.jobSpanId});
        runJobInRunner(job, pipeFds[1]);
        ::_exit(kExitFatal); // not reached
    }
    ::close(pipeFds[1]);
    job.runnerPid = pid;
    job.statusPipe = pipeFds[0];
    if (relaunch)
        ++runnerRelaunches_; // crash recovery, not steady state
    if (!job.hasDeadline && job.entry.timeoutSeconds > 0) {
        // The deadline is anchored at the journaled first-launch
        // wall-clock time, not at this launch: a job recovered after
        // a daemon restart resumes whatever budget it had left
        // instead of getting a fresh full timeout per incarnation.
        // (Within one incarnation, relaunches keep the armed
        // deadline and never re-enter this branch.)
        const double elapsed = std::max(
            0.0, static_cast<double>(std::time(nullptr)) -
                     job.entry.startedUnix);
        job.hasDeadline = true;
        job.deadline = Clock::now() +
                       std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(std::max(
                               0.0, job.entry.timeoutSeconds -
                                        elapsed)));
    }
    ++job.launches;
}

void
Daemon::runJobInRunner(const Job &job, int status_write_fd)
{
    // Fault identity: the runner is not a shard worker; its attempt
    // number is how many runner launches this job has had, so
    // crash_in_merge (attempt=0 by default) kills the first launch's
    // merge and lets the relaunch publish.
    setFaultProcessScope(kFaultNoShard, job.launches);

    const SweepRunOptions opt = parseSweepSpecString(job.entry.spec);
    const std::size_t shards = opt.spawnShards != 0
                                   ? opt.spawnShards
                                   : config_.defaultShards;
    const std::string dir =
        daemonJobDir(config_.stateDir, job.entry.job);

    // A spec carrying --trace arms tracing for this runner tree with
    // the job directory as the shard dir; a daemon already running
    // under SBN_TRACE_DIR wins (all shards in one place).
    armSweepTracing(opt, dir);

    // Always resume: a first launch on an empty directory is a
    // no-op, and a relaunch (crash retry or daemon recovery) keeps
    // every record the previous fleet flushed - that reuse is what
    // makes recovered output byte-identical.
    const SupervisedSweepOutcome outcome =
        runSupervisedSweep(opt, shards, dir, /*resume=*/true);

    if (outcome.report.interruptSignal != 0)
        ::_exit(exitCodeForSignal(outcome.report.interruptSignal));

    // Entering the merge/publish phase: tell the daemon (journal
    // "merging"), then give the fault plane its window. A kill
    // between here and the rename below loses nothing: merged.jsonl
    // is absent-or-complete, the shard records persist.
    (void)writeAll(status_write_fd, "merging\n", 8);
    faultMaybeCrashInMerge();

    rewriteRecordsAtomic(daemonMergedPath(dir),
                         outcome.merged.records);

    if (!outcome.report.complete) {
        writeMissingPointsManifest(missingManifestPath(dir),
                                   outcome.check,
                                   outcome.report.missingPoints);
        std::fprintf(stderr,
                     "job %llu: incomplete, %zu point(s) missing; "
                     "partial merged stream published\n",
                     static_cast<unsigned long long>(job.entry.job),
                     outcome.report.missingPoints.size());
        ::_exit(kPartialResultExit);
    }
    ::_exit(kExitOk);
}

void
Daemon::reapRunners()
{
    for (;;) {
        int status = 0;
        // wait4, not waitpid: the rusage that rides along is the
        // runner's OWN usage plus every descendant its supervisor
        // waited for - i.e. the whole fleet's CPU time, for free.
        struct rusage usage{};
        const pid_t pid = ::wait4(-1, &status, WNOHANG, &usage);
        if (pid <= 0)
            return;
        for (auto &pair : jobs_) {
            if (pair.second.runnerPid == pid) {
                pair.second.cpuSeconds +=
                    static_cast<double>(usage.ru_utime.tv_sec) +
                    static_cast<double>(usage.ru_utime.tv_usec) / 1e6 +
                    static_cast<double>(usage.ru_stime.tv_sec) +
                    static_cast<double>(usage.ru_stime.tv_usec) / 1e6;
                runnerExited(pair.second, status);
                break;
            }
        }
    }
}

void
Daemon::runnerExited(Job &job, int status)
{
    job.runnerPid = -1;
    job.killPending = false;
    if (job.jobSpanId != 0 && job.runStartUs != 0) {
        const std::uint64_t nowUs = traceNowMicros();
        traceEmitSpan({job.traceId, job.jobSpanId}, "running",
                      "job " + std::to_string(job.entry.job) +
                          " running",
                      job.jobSpanId, job.runStartUs, nowUs,
                      {{"launch", std::to_string(job.launches)},
                       {"status", describeWaitStatus(status)}});
        if (job.mergeStartUs != 0)
            traceEmitSpan({job.traceId, job.jobSpanId}, "merging",
                          "job " + std::to_string(job.entry.job) +
                              " merging",
                          job.jobSpanId, job.mergeStartUs, nowUs);
        job.runStartUs = 0;
        job.mergeStartUs = 0;
        job.queuedUs = nowUs; // in case a relaunch re-queues it
    }
    if (job.statusPipe >= 0)
        readStatusPipe(job); // drain a final "merging" report
    if (job.statusPipe >= 0) {
        ::close(job.statusPipe);
        job.statusPipe = -1;
    }

    if (jobStateTerminal(job.entry.state))
        return; // cancelled or timed out: already journaled

    const bool exited = WIFEXITED(status);
    const int code = exited ? WEXITSTATUS(status) : 0;
    if (exited && (code == kExitOk || code == kPartialResultExit)) {
        appendState(job, JobState::Done, code,
                    code == kPartialResultExit
                        ? "partial: see missing-points manifest"
                        : "");
        return;
    }

    // A runner killed by a signal is a crash (machine trouble, fault
    // injection, OOM): relaunch with resume within the retry budget.
    // A nonzero *exit* is deterministic (bad spec, fatal) - retrying
    // would just repeat it.
    if (!exited && job.launches <= config_.jobRetries) {
        sbn_warn("job ", job.entry.job, " runner died (",
                 describeWaitStatus(status), "); relaunch ",
                 job.launches, "/", config_.jobRetries,
                 " with resume");
        pending_.push_front(job.entry.job);
        return;
    }
    appendState(job, JobState::Failed, exited ? code : 0,
                "runner " + describeWaitStatus(status));
}

void
Daemon::enforceDeadlines()
{
    const auto now = Clock::now();
    for (auto &pair : jobs_) {
        Job &job = pair.second;
        if (job.killPending && job.runnerPid > 0 &&
            now >= job.killDeadline) {
            ::kill(job.runnerPid, SIGKILL);
            job.killPending = false; // reap does the rest
        }
        if (job.hasDeadline && !jobStateTerminal(job.entry.state) &&
            now >= job.deadline) {
            job.hasDeadline = false;
            // Same durability-first order as cancel.
            appendState(job, JobState::Failed, 0,
                        "timeout after " +
                            std::to_string(job.entry.timeoutSeconds) +
                            "s");
            job.cancelRequested = true;
            for (auto it = pending_.begin(); it != pending_.end();
                 ++it) {
                if (*it == job.entry.job) {
                    pending_.erase(it);
                    break;
                }
            }
            if (job.runnerPid > 0)
                killJobRunner(job);
        }
    }
}

void
Daemon::killJobRunner(Job &job)
{
    // TERM first: the runner's supervisor kills and reaps its
    // workers, so the whole tree winds down cleanly. KILL after the
    // grace period; the workers' PDEATHSIG(SIGKILL) then takes them
    // down with the runner.
    ::kill(job.runnerPid, SIGTERM);
    job.killPending = true;
    job.killDeadline = Clock::now() +
                       std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               config_.killGraceSeconds));
}

void
Daemon::readStatusPipe(Job &job)
{
    char buffer[64];
    const ssize_t got =
        ::read(job.statusPipe, buffer, sizeof buffer);
    if (got < 0 && (errno == EINTR || errno == EAGAIN))
        return;
    if (got <= 0) {
        ::close(job.statusPipe);
        job.statusPipe = -1;
        return;
    }
    // The runner's only message is the merge-phase report. Journal
    // it only from a live Running state: after cancel/timeout the
    // job is terminal and the journal must stay that way.
    if (std::string(buffer, static_cast<std::size_t>(got))
                .find("merging") != std::string::npos &&
        job.entry.state == JobState::Running) {
        job.mergeStartUs = traceNowMicros();
        appendState(job, JobState::Merging, 0, "");
    }
}

void
Daemon::writeHeartbeat()
{
    lastHeartbeat_ = Clock::now();
    heartbeatEver_ = true;
    // v2 = v1 (ts_unix/queued/running/draining, same meanings) plus
    // the full metrics snapshot; a watchdog gets the whole health
    // picture from the file alone, no socket round trip.
    atomicWriteFile(
        daemonHeartbeatPath(config_.stateDir),
        formatHeartbeatV2(
            collectMetrics(),
            static_cast<long long>(std::time(nullptr))));
}

std::size_t
Daemon::queuedCount() const
{
    // pending_ can transiently hold ids whose jobs already went
    // terminal (startPendingJobs skips them); they must not count
    // against the queue cap or show up in status/heartbeat.
    std::size_t count = 0;
    for (const std::uint64_t id : pending_) {
        const auto it = jobs_.find(id);
        if (it != jobs_.end() &&
            !jobStateTerminal(it->second.entry.state))
            ++count;
    }
    return count;
}

std::size_t
Daemon::runningCount() const
{
    std::size_t count = 0;
    for (const auto &pair : jobs_)
        if (pair.second.runnerPid > 0)
            ++count;
    return count;
}

Job *
Daemon::findJob(std::uint64_t id)
{
    const auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : &it->second;
}

} // namespace

std::string
daemonJournalPath(const std::string &state_dir)
{
    return state_dir + "/jobs.jsonl";
}

std::string
daemonPortFilePath(const std::string &state_dir)
{
    return state_dir + "/port";
}

std::string
daemonHeartbeatPath(const std::string &state_dir)
{
    return state_dir + "/heartbeat";
}

std::string
daemonJobDir(const std::string &state_dir, std::uint64_t job)
{
    return state_dir + "/job-" + std::to_string(job);
}

std::string
daemonMergedPath(const std::string &job_dir)
{
    return job_dir + "/merged.jsonl";
}

int
runSweepDaemon(const DaemonConfig &config)
{
    if (config.stateDir.empty())
        sbn_fatal("the daemon needs --state=DIR");
    if (config.queueLimit < 1)
        sbn_fatal("--queue-limit must be >= 1");
    if (config.maxRunning < 1)
        sbn_fatal("--max-running must be >= 1");
    ensureDir(config.stateDir);
    Daemon daemon(config);
    return daemon.run();
}

} // namespace sbn
