/**
 * @file
 * Shared sweep-run plumbing between the sbn_sweep CLI and the
 * sbn_sweepd job runner.
 *
 * Both front ends execute the same thing - an EBW sweep over the
 * paper's parameter grid, optionally under ShardSupervisor - so the
 * option grammar, the worker bodies and the supervised-run core live
 * here once. A daemon job's "spec" is literally an sbn_sweep flag
 * string (`--n=8 --m=16 --p=0.2,0.6 --spawn=2 ...`), tokenized and
 * parsed by the same code path that parses the CLI, which is what
 * guarantees a submitted job computes byte-for-byte what the
 * equivalent local command would.
 *
 * A spec deliberately has no say over *where* results land: --dir,
 * --resume and the stage selectors (--merge/--shard/--spawn-as-mode)
 * stay with the front ends (the daemon assigns each job its own
 * directory under the state dir). --spawn inside a spec names the
 * worker count the job wants; the daemon honors it.
 */

#ifndef SBN_SERVICE_SWEEPRUN_HH
#define SBN_SERVICE_SWEEPRUN_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "exec/adaptive.hh"
#include "exec/sweep.hh"
#include "shard/merge.hh"
#include "shard/plan.hh"
#include "shard/runner.hh"
#include "shard/supervisor.hh"

namespace sbn {

/** Everything a sweep run needs to know about WHAT to compute and
 *  how to supervise it - nothing about where the files go. */
struct SweepRunOptions
{
    SweepSpec spec;
    bool adaptive = false;
    PrecisionTarget target;
    RoundSchedule schedule;
    unsigned threads = 0; //!< 0 = defaultExecThreads()
    ShardLayout layout = ShardLayout::Contiguous;

    // Supervision policy (--spawn fleets).
    unsigned retries = 2;         //!< respawns allowed per shard
    double hangTimeout = 0.0;     //!< seconds; 0 = liveness off
    double backoffInitial = 0.25; //!< first-retry backoff seconds
    bool steal = true;            //!< work stealing on by default

    /** --spawn=K worker count; 0 = the flag was not given. */
    std::size_t spawnShards = 0;

    /**
     * --telemetry[=FILE]: collect run telemetry (src/telemetry) for
     * this sweep. Shard workers append per-launch JSONL sidecars
     * (telemetry-shard-*.jsonl) next to their record files; the CLI
     * front end additionally dumps a whole-process snapshot at exit
     * to @c telemetryDump ("-" = stderr).
     */
    bool telemetry = false;
    std::string telemetryDump = "-";

    /**
     * --latency: collect per-request wait/residence histograms in
     * every point run (config.collectLatency) and carry their
     * p50/p90/p99/max summary in plain-sweep point records. Passive:
     * EBW values and record fingerprints are unchanged. Adaptive
     * records do not carry latency (their value is a replication
     * aggregate, not one run).
     */
    bool latency = false;

    /**
     * --trace[=DIR]: cross-process span tracing (trace/span.hh).
     * Every process of the run appends sbn.trace.v1 spans to its own
     * shard under DIR; bare --trace lets the front end pick the
     * directory (the sweep's --dir, or the daemon job's directory).
     * Arm with armSweepTracing() once the directory is known.
     */
    bool trace = false;
    std::string traceDir;
};

class CommandLine;

/**
 * Help text for every flag parseSweepRunOptions() understands - the
 * vocabulary legal inside a submitted job spec. Front ends merge
 * their own stage/transport flags on top.
 */
const std::map<std::string, std::string> &sweepFlagHelp();

/** Parse the sweep portion of a command line. Fatal (sbn_fatal) on
 *  malformed values, like every CLI entry point. */
SweepRunOptions parseSweepRunOptions(const CommandLine &cli);

/**
 * Split a spec string into argv-style tokens on runs of whitespace.
 * No quoting: sweep flags never need embedded spaces, and rejecting
 * quote characters keeps the daemon's input surface boring. Fatal on
 * quote or backslash characters.
 */
std::vector<std::string> tokenizeSpecString(const std::string &spec);

/**
 * Parse a full spec string ("--n=8 --m=16 --spawn=2 ...") as the
 * daemon's job runner does: tokenize, then parse with exactly the
 * sweepFlagHelp() vocabulary. Fatal on unknown flags or bad values -
 * callers that must survive a bad spec (the daemon validating a
 * submit) run this in a throwaway forked child and inspect its exit
 * status (specParsesCleanly()).
 */
SweepRunOptions parseSweepSpecString(const std::string &spec);

/**
 * True when @p spec parses cleanly, decided in a forked child so the
 * fatal-on-error parser can never take the calling process down.
 * This is how the daemon rejects a malformed submit with a
 * `bad_spec` error instead of dying on it.
 */
bool specParsesCleanly(const std::string &spec);

/**
 * Arm span tracing for this process when @p opt asked for it: sets
 * SBN_TRACE_DIR to opt.traceDir (or @p default_dir for a bare
 * --trace) unless tracing is already armed - an inherited
 * SBN_TRACE_DIR from a parent process always wins, so a supervised
 * worker or daemon runner never re-points the shard directory. Call
 * from single-threaded front-end context, like every setenv.
 */
void armSweepTracing(const SweepRunOptions &opt,
                     const std::string &default_dir);

/** The MergeCheck matching @p opt's mode - plain-sweep or adaptive
 *  fingerprints over @p points. */
MergeCheck sweepRunMergeCheck(const SweepRunOptions &opt,
                              const std::vector<SystemConfig> &points);

/** Run one full shard of @p opt's sweep into its canonical file under
 *  @p dir, reporting stats on stderr (the worker body and --shard
 *  mode share this). */
ShardRunStats runSweepShard(const SweepRunOptions &opt,
                            const ShardSpec &shard,
                            const std::string &dir, bool resume);

/** The one-seeded-run-per-point evaluator (plain sweeps). */
double evaluateSweepPoint(const SystemConfig &cfg);

/** evaluateSweepPoint() returning the full PointSample (EBW +
 *  latency summary when cfg.collectLatency). */
PointSample evaluateSweepPointSample(const SystemConfig &cfg);

/** The per-replication evaluator (adaptive sweeps). */
double evaluateSweepReplication(const SystemConfig &cfg,
                                std::uint64_t seed);

/**
 * The WorkerBody a supervised sweep forks per shard: full shards run
 * with resume semantics on respawn, steal slices compute an explicit
 * point list. @p points must outlive the returned body.
 */
WorkerBody makeSweepWorkerBody(const SweepRunOptions &opt,
                               const std::vector<SystemConfig> &points,
                               const std::string &dir,
                               bool resume_first_launch);

/** What a supervised sweep run produced. */
struct SupervisedSweepOutcome
{
    SupervisorReport report;
    MergeCheck check;
    /** Tolerant-tail collection of every record the fleet wrote, in
     *  flat order. Empty when the run was interrupted by a signal
     *  (an interrupted fleet's output is not a result). */
    PartialMerge merged;
};

/**
 * Run a @p shard_count-worker supervised fleet of @p opt's sweep
 * into @p dir (created/probed first), then collect the records.
 * Forks; call before creating any thread pool in this process.
 */
SupervisedSweepOutcome runSupervisedSweep(const SweepRunOptions &opt,
                                          std::size_t shard_count,
                                          const std::string &dir,
                                          bool resume_first_launch);

} // namespace sbn

#endif // SBN_SERVICE_SWEEPRUN_HH
