/**
 * @file
 * The sbn_sweepd metrics snapshot: one flat-JSON view of daemon
 * health, shared verbatim by the `metrics` protocol verb and the
 * heartbeat file (docs/observability.md).
 *
 * The snapshot is assembled from in-memory daemon state only - no
 * file reads, no blocking calls - so the poll loop can answer a
 * metrics request while a job is running without ever stalling on
 * it. Formatting lives here, outside the daemon, so tests can pin
 * the exact wire shape without standing a daemon up.
 */

#ifndef SBN_SERVICE_METRICS_HH
#define SBN_SERVICE_METRICS_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace sbn {

/** Everything the daemon reports about itself at one instant. */
struct DaemonMetricsSnapshot
{
    double uptimeSeconds = 0; //!< since this daemon incarnation
    bool draining = false;

    // Jobs by state (terminal counts include journal-replayed jobs
    // from previous incarnations - they stay queryable, so they are
    // part of this daemon's view).
    std::size_t queued = 0;
    std::size_t running = 0;
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t cancelled = 0;
    std::size_t jobsTotal = 0; //!< every job the daemon knows about

    /** Jobs awaiting a runner: the queue's instantaneous depth (same
     *  quantity as `queued`, named for what it measures). */
    std::size_t queueDepth = 0;

    std::uint64_t journalAppends = 0; //!< durable lines this writer
    std::uint64_t journalFsyncs = 0;
    std::uint64_t resultsBytesServed = 0; //!< payload bytes of results
    /** Runner processes forked beyond each job's first launch of this
     *  incarnation - crash recoveries, not steady state. */
    std::uint64_t runnerRelaunches = 0;

    bool hasActiveJob = false; //!< at least one runner is alive
    std::uint64_t activeJob = 0; //!< lowest-id running job when so
};

/**
 * The snapshot's fields as `"key":value` pairs joined by commas - no
 * surrounding braces, so callers can splice them into their own
 * envelope: the metrics response prepends `"ok":true,"type":...`,
 * the heartbeat prepends `"type":...,"ts_unix":...`. `active_job` is
 * a number, or null when no runner is alive. Key order is fixed and
 * documented; consumers may rely on it.
 */
std::string formatDaemonMetricsFields(const DaemonMetricsSnapshot &m);

/** The full `metrics` response line (no newline):
 *  `{"ok":true,"type":"sbn.metrics.v1",<fields>}`. */
std::string formatDaemonMetricsResponse(const DaemonMetricsSnapshot &m);

/**
 * The heartbeat file body (one line, trailing newline included):
 * `{"type":"sbn.heartbeat.v2","ts_unix":<now>,<fields>}`. Every
 * sbn.heartbeat.v1 key (ts_unix, queued, running, draining) is still
 * present with its v1 meaning, so v1 consumers keep working; only
 * the type tag and the extra fields are new.
 */
std::string formatHeartbeatV2(const DaemonMetricsSnapshot &m,
                              long long ts_unix);

} // namespace sbn

#endif // SBN_SERVICE_METRICS_HH
