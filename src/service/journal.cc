#include "service/journal.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "service/protocol.hh"
#include "shard/fault.hh"
#include "util/logging.hh"

namespace sbn {

const char *
jobStateName(JobState state)
{
    switch (state) {
    case JobState::Submitted:
        return "submitted";
    case JobState::Running:
        return "running";
    case JobState::Merging:
        return "merging";
    case JobState::Done:
        return "done";
    case JobState::Failed:
        return "failed";
    case JobState::Cancelled:
        return "cancelled";
    }
    return "unknown";
}

bool
parseJobState(const std::string &text, JobState &out)
{
    static constexpr JobState kStates[] = {
        JobState::Submitted, JobState::Running, JobState::Merging,
        JobState::Done,      JobState::Failed,  JobState::Cancelled,
    };
    for (const JobState state : kStates) {
        if (text == jobStateName(state)) {
            out = state;
            return true;
        }
    }
    return false;
}

bool
jobStateTerminal(JobState state)
{
    return state == JobState::Done || state == JobState::Failed ||
           state == JobState::Cancelled;
}

std::string
formatJournalEntry(const JobJournalEntry &entry)
{
    // Fixed key order, every key always present: the same strictness
    // discipline as the point-record format, so parsing never has to
    // guess and the bytes of a given transition are deterministic.
    char timeout[32];
    std::snprintf(timeout, sizeof timeout, "%.17g",
                  entry.timeoutSeconds);
    char started[32];
    std::snprintf(started, sizeof started, "%.17g",
                  entry.startedUnix);
    std::string line = "{\"type\":\"sbn.job.v1\",\"job\":";
    line += std::to_string(entry.job);
    line += ",\"state\":\"";
    line += jobStateName(entry.state);
    line += "\",\"spec\":\"";
    line += jsonEscape(entry.spec);
    line += "\",\"timeout_s\":";
    line += timeout;
    line += ",\"started_unix\":";
    line += started;
    line += ",\"exit\":";
    line += std::to_string(entry.exitCode);
    line += ",\"reason\":\"";
    line += jsonEscape(entry.reason);
    line += "\"}";
    return line;
}

bool
parseJournalEntry(const std::string &line, JobJournalEntry &out,
                  std::string &error)
{
    JsonObject object;
    if (!parseFlatJsonObject(line, object, error))
        return false;

    const auto string = [&](const char *key,
                            std::string &value) -> bool {
        const auto it = object.find(key);
        if (it == object.end() ||
            it->second.kind != JsonScalar::Kind::String) {
            error = std::string("missing string key \"") + key + '"';
            return false;
        }
        value = it->second.text;
        return true;
    };
    const auto number = [&](const char *key, double &value) -> bool {
        const auto it = object.find(key);
        if (it == object.end() ||
            it->second.kind != JsonScalar::Kind::Number) {
            error = std::string("missing number key \"") + key + '"';
            return false;
        }
        value = it->second.number;
        return true;
    };

    std::string type;
    if (!string("type", type))
        return false;
    if (type != "sbn.job.v1") {
        error = "not a job journal line (type \"" + type + "\")";
        return false;
    }
    if (object.size() != 8) {
        error = "a journal line carries exactly 8 keys";
        return false;
    }

    JobJournalEntry entry;
    double job = 0;
    if (!number("job", job))
        return false;
    if (job < 0 || job != std::floor(job)) {
        error = "\"job\" must be a non-negative integer";
        return false;
    }
    entry.job = static_cast<std::uint64_t>(job);

    std::string state;
    if (!string("state", state))
        return false;
    if (!parseJobState(state, entry.state)) {
        error = "unknown job state \"" + state + "\"";
        return false;
    }
    if (!string("spec", entry.spec))
        return false;
    if (!number("timeout_s", entry.timeoutSeconds))
        return false;
    if (!number("started_unix", entry.startedUnix))
        return false;
    double exitCode = 0;
    if (!number("exit", exitCode))
        return false;
    entry.exitCode = static_cast<int>(exitCode);
    if (!string("reason", entry.reason))
        return false;
    out = entry;
    return true;
}

JobJournal::JobJournal(const std::string &path) : path_(path)
{
    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (fd_ < 0)
        sbn_fatal("cannot open job journal '", path,
                  "' for appending: ", std::strerror(errno));
}

JobJournal::~JobJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
JobJournal::append(const JobJournalEntry &entry)
{
    const std::string line = formatJournalEntry(entry) + "\n";
    std::size_t written = 0;
    while (written < line.size()) {
        const ssize_t got = ::write(fd_, line.data() + written,
                                    line.size() - written);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            sbn_fatal("job journal '", path_,
                      "': write failed: ", std::strerror(errno));
        }
        written += static_cast<std::size_t>(got);
    }
    if (::fsync(fd_) != 0)
        sbn_fatal("job journal '", path_,
                  "': fsync failed: ", std::strerror(errno));
    ++appends_;
    ++fsyncs_;
    // The durability point: the transition is on disk. This is
    // exactly where kill-anywhere testing wants its crash.
    faultAfterJournalState(jobStateName(entry.state));
}

std::vector<JobJournalEntry>
replayJobJournal(const std::string &path)
{
    std::ifstream in(path);
    if (!in.is_open()) {
        struct stat info;
        if (::stat(path.c_str(), &info) == 0)
            sbn_fatal("job journal '", path,
                      "' exists but cannot be opened - refusing to "
                      "silently forget jobs");
        return {}; // fresh daemon, no journal yet
    }

    // job id -> folded latest entry (submit spec + latest state).
    std::map<std::uint64_t, JobJournalEntry> jobs;
    std::string line;
    std::size_t lineno = 0;
    std::uint64_t goodBytes = 0; //!< file offset past the last good line
    bool pendingTail = false;
    std::string tailError;
    while (std::getline(in, line)) {
        ++lineno;
        if (pendingTail)
            sbn_fatal("job journal '", path, "' line ", lineno - 1,
                      ": ", tailError,
                      " (only the final line may be torn)");
        JobJournalEntry entry;
        std::string error;
        if (!parseJournalEntry(line, entry, error)) {
            // Tolerate only as a torn tail: remember and fail if any
            // line follows.
            pendingTail = true;
            tailError = error;
            continue;
        }
        // Every good line is followed by more bytes (at worst the
        // torn tail itself), so its terminating '\n' is on disk and
        // this offset is exact.
        goodBytes += line.size() + 1;
        const auto it = jobs.find(entry.job);
        if (entry.state == JobState::Submitted) {
            if (it != jobs.end())
                sbn_fatal("job journal '", path, "' line ", lineno,
                          ": job ", entry.job, " submitted twice");
            jobs.emplace(entry.job, entry);
            continue;
        }
        if (it == jobs.end())
            sbn_fatal("job journal '", path, "' line ", lineno,
                      ": job ", entry.job, " reaches state '",
                      jobStateName(entry.state),
                      "' without a submitted entry");
        // Fold: keep the submit description, take the new state.
        entry.spec = it->second.spec;
        entry.timeoutSeconds = it->second.timeoutSeconds;
        it->second = entry;
    }
    if (pendingTail) {
        sbn_warn("job journal '", path,
                 "': dropped torn final line (", tailError,
                 ") - the artifact of a kill mid-append");
        // Dropping the tail from the replay is not enough: the
        // journal writer appends with O_APPEND, so leaving the torn
        // bytes on disk would glue the next entry onto them -
        // producing a malformed MID-file line that turns the next
        // restart fatal. Truncate to the last good line now.
        in.close();
        const int fd = ::open(path.c_str(), O_WRONLY);
        if (fd < 0 ||
            ::ftruncate(fd, static_cast<off_t>(goodBytes)) != 0 ||
            ::fsync(fd) != 0)
            sbn_fatal("job journal '", path,
                      "': cannot truncate torn tail: ",
                      std::strerror(errno));
        ::close(fd);
    }

    std::vector<JobJournalEntry> result;
    result.reserve(jobs.size());
    for (const auto &pair : jobs)
        result.push_back(pair.second);
    return result;
}

} // namespace sbn
