/**
 * @file
 * sbn_sweepd: the crash-safe sweep job daemon.
 *
 * One single-threaded poll() loop accepts line-delimited JSON
 * requests (service/protocol.hh) on a 127.0.0.1 TCP socket, keeps a
 * bounded queue of sweep jobs, and runs each job in a forked *runner*
 * process that drives the existing ShardSupervisor fleet
 * (service/sweeprun.hh). The daemon is the ONLY writer of the job
 * journal (service/journal.hh); every state transition is fsync()ed
 * before its effect becomes visible, which is what makes
 * kill-anywhere recovery work:
 *
 *   submit   journal submitted  -> then acknowledge the client
 *   start    journal running    -> then fork the runner
 *   merging  runner reports the phase over a status pipe ->
 *            journal merging
 *   reap     journal done/failed with the runner's disposition
 *   cancel   journal cancelled  -> then SIGTERM (SIGKILL after a
 *            grace period) the runner
 *
 * On startup the daemon replays the journal: submitted jobs re-queue,
 * running/merging jobs relaunch with resume (their shard record
 * files survived in the job directory, so the recovered merged
 * output is byte-identical - shard/result_io.hh's contract), and
 * terminal jobs stay queryable. merged.jsonl is published via atomic
 * temp+rename, so it is absent or complete, never torn.
 *
 * No orphans: the runner arms PR_SET_PDEATHSIG(SIGTERM), so if the
 * daemon dies the runner's supervisor catches the TERM, kills and
 * reaps its workers, and exits; supervisor workers additionally arm
 * PDEATHSIG(SIGKILL) against the runner. Cancel and daemon shutdown
 * ride the same path.
 *
 * Liveness is observable without the socket: every heartbeat period
 * the daemon rewrites <state-dir>/heartbeat (atomic temp+rename)
 * with its counters, so a watchdog can tell "daemon wedged"
 * (SBN_FAULT=stall_accept keeps serving nothing but the process
 * alive) from "daemon busy". The bound port is published to
 * <state-dir>/port the same way once listening.
 */

#ifndef SBN_SERVICE_DAEMON_HH
#define SBN_SERVICE_DAEMON_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace sbn {

/** Daemon policy knobs (tools/sbn_sweepd.cc flags). */
struct DaemonConfig
{
    std::string stateDir; //!< journal, job dirs, port + heartbeat files
    int port = 0;         //!< TCP port; 0 = kernel-assigned ephemeral
    /** Cap on jobs queued awaiting a runner (running jobs are capped
     *  separately by maxRunning); submits beyond it get the
     *  machine-readable queue_full rejection. */
    std::size_t queueLimit = 8;
    std::size_t maxRunning = 1; //!< concurrent runner processes
    double heartbeatSeconds = 1.0;
    /** Relaunches allowed when a runner dies on a signal (a crash,
     *  not a deterministic failure); each relaunch resumes from the
     *  job's surviving shard records. */
    unsigned jobRetries = 2;
    /** Worker count for specs that carry no --spawn. */
    std::size_t defaultShards = 1;
    /** Seconds between cancel's SIGTERM and the SIGKILL escalation. */
    double killGraceSeconds = 2.0;
};

/** <state-dir>/jobs.jsonl - the job journal. */
std::string daemonJournalPath(const std::string &state_dir);

/** <state-dir>/port - the bound TCP port, one decimal line. */
std::string daemonPortFilePath(const std::string &state_dir);

/** <state-dir>/heartbeat - one flat JSON liveness line. */
std::string daemonHeartbeatPath(const std::string &state_dir);

/** <state-dir>/job-<id>/ - one job's shard files and outputs. */
std::string daemonJobDir(const std::string &state_dir,
                         std::uint64_t job);

/** <job-dir>/merged.jsonl - the published result stream. */
std::string daemonMergedPath(const std::string &job_dir);

/**
 * Run the daemon until drained (exit 0), fatally misconfigured
 * (exit 1), or terminated by SIGINT/SIGTERM (exit 128+signal; live
 * runners shut their fleets down via PDEATHSIG and the journal's
 * running entries drive recovery on the next start). Blocks; the
 * returned value is the process exit code.
 */
int runSweepDaemon(const DaemonConfig &config);

} // namespace sbn

#endif // SBN_SERVICE_DAEMON_HH
