#include "service/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "service/daemon.hh"
#include "util/exit_codes.hh"
#include "util/logging.hh"

namespace sbn {

namespace {

/** "service unavailable" death: structured stderr + kExitUnavailable,
 *  so scripts can branch on "daemon not up" without text matching. */
[[noreturn]] void
dieUnavailable(const std::string &what)
{
    std::fprintf(stderr, "sbn_sweepd-client: unavailable: %s\n",
                 what.c_str());
    std::exit(kExitUnavailable);
}

bool
allDigits(const std::string &text)
{
    if (text.empty())
        return false;
    for (const char c : text)
        if (c < '0' || c > '9')
            return false;
    return true;
}

} // namespace

bool
ClientResponse::ok() const
{
    const auto it = fields.find("ok");
    return it != fields.end() &&
           it->second.kind == JsonScalar::Kind::Bool &&
           it->second.boolean;
}

std::string
ClientResponse::errorCode() const
{
    if (ok())
        return "";
    const auto it = fields.find("error");
    return it == fields.end() ? "" : it->second.text;
}

std::string
ClientResponse::text(const std::string &key) const
{
    const auto it = fields.find(key);
    return it == fields.end() ? "" : it->second.text;
}

double
ClientResponse::number(const std::string &key, double def) const
{
    const auto it = fields.find(key);
    if (it == fields.end() ||
        it->second.kind != JsonScalar::Kind::Number)
        return def;
    return it->second.number;
}

int
resolveDaemonPort(const std::string &endpoint)
{
    std::string portText = endpoint;
    if (const std::size_t colon = endpoint.rfind(':');
        colon != std::string::npos) {
        const std::string host = endpoint.substr(0, colon);
        if (host != "127.0.0.1" && host != "localhost")
            dieUnavailable("the daemon only listens on loopback; "
                           "cannot reach host '" +
                           host + "'");
        portText = endpoint.substr(colon + 1);
    }
    if (!allDigits(portText)) {
        // Not a port: treat the endpoint as a daemon state dir and
        // read the published port file.
        const std::string path = daemonPortFilePath(endpoint);
        std::ifstream in(path);
        if (!in.is_open())
            dieUnavailable("no port file at " + path +
                           " (daemon not started, or wrong "
                           "--connect)");
        in >> portText;
        if (!allDigits(portText))
            dieUnavailable("malformed port file " + path);
    }
    const long port = std::strtol(portText.c_str(), nullptr, 10);
    if (port < 1 || port > 65535)
        dieUnavailable("port " + portText + " out of range");
    return static_cast<int>(port);
}

DaemonClient::DaemonClient(const std::string &endpoint)
{
    const int port = resolveDaemonPort(endpoint);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        dieUnavailable(std::string("cannot create socket: ") +
                       std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0)
        dieUnavailable("cannot connect to 127.0.0.1:" +
                       std::to_string(port) + ": " +
                       std::strerror(errno));
}

DaemonClient::~DaemonClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::string
DaemonClient::readLine()
{
    std::string line;
    char c;
    for (;;) {
        const ssize_t got = ::read(fd_, &c, 1);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            sbn_fatal("daemon connection read failed: ",
                      std::strerror(errno));
        }
        if (got == 0)
            sbn_fatal("daemon closed the connection mid-response "
                      "(it may have been killed; restart it and "
                      "retry - acknowledged jobs are journaled)");
        if (c == '\n')
            return line;
        line += c;
        if (line.size() > 1 << 20)
            sbn_fatal("daemon response line exceeds 1 MiB; protocol "
                      "violation");
    }
}

ClientResponse
DaemonClient::call(const Request &request)
{
    const std::string line = formatRequest(request) + "\n";
    std::size_t written = 0;
    while (written < line.size()) {
        const ssize_t got = ::write(fd_, line.data() + written,
                                    line.size() - written);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            sbn_fatal("daemon connection write failed: ",
                      std::strerror(errno));
        }
        written += static_cast<std::size_t>(got);
    }

    ClientResponse response;
    const std::string header = readLine();
    std::string error;
    if (!parseFlatJsonObject(header, response.fields, error))
        sbn_fatal("malformed daemon response '", header,
                  "': ", error);

    if (request.kind == RequestKind::Results && response.ok()) {
        const double bytes = response.number("bytes", -1);
        if (bytes < 0 || bytes != std::floor(bytes))
            sbn_fatal("results response carries no byte count: ",
                      header);
        std::size_t remaining = static_cast<std::size_t>(bytes);
        response.payload.reserve(remaining);
        char buffer[65536];
        while (remaining > 0) {
            const std::size_t want =
                remaining < sizeof buffer ? remaining : sizeof buffer;
            const ssize_t got = ::read(fd_, buffer, want);
            if (got < 0) {
                if (errno == EINTR)
                    continue;
                sbn_fatal("daemon payload read failed: ",
                          std::strerror(errno));
            }
            if (got == 0)
                sbn_fatal("daemon closed the connection ",
                          remaining, " byte(s) short of the "
                          "promised results payload");
            response.payload.append(buffer,
                                    static_cast<std::size_t>(got));
            remaining -= static_cast<std::size_t>(got);
        }
    }
    return response;
}

} // namespace sbn
