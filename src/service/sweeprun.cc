#include "service/sweeprun.hh"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hh"
#include "exec/parallel_runner.hh"
#include "shard/result_io.hh"
#include "telemetry/telemetry.hh"
#include "trace/span.hh"
#include "util/cli.hh"
#include "util/logging.hh"

namespace sbn {

namespace {

/**
 * Append this process's telemetry snapshot as one JSONL record next
 * to @p record_path: "dir/shard-1-of-4.jsonl" gains a sibling
 * "dir/telemetry-shard-1-of-4.jsonl". The "telemetry-" prefix keeps
 * sidecars invisible to merge and resume, which open exact shard
 * paths and never glob the directory. Appending (not truncating)
 * means a respawned worker adds a second record instead of erasing
 * the crashed attempt's numbers. Best effort: a sidecar write
 * failure must not fail the shard whose records already landed.
 */
void
appendTelemetrySidecar(const std::string &record_path)
{
    if (!telemetryEnabled())
        return;
    std::string dir;
    std::string base = record_path;
    const std::size_t slash = record_path.rfind('/');
    if (slash != std::string::npos) {
        dir = record_path.substr(0, slash + 1);
        base = record_path.substr(slash + 1);
    }
    const std::string path = dir + "telemetry-" + base;
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (!f) {
        std::fprintf(stderr,
                     "warning: cannot append telemetry sidecar %s\n",
                     path.c_str());
        return;
    }
    const std::string line = formatTelemetrySnapshot(
        telemetrySnapshot(), /*include_timers=*/true);
    std::fprintf(f, "%s\n", line.c_str());
    std::fclose(f);
}

std::vector<ArbitrationPolicy>
parsePolicyList(const std::vector<std::string> &names)
{
    std::vector<ArbitrationPolicy> policies;
    for (const std::string &name : names) {
        if (name == "proc")
            policies.push_back(ArbitrationPolicy::ProcessorPriority);
        else if (name == "mem")
            policies.push_back(ArbitrationPolicy::MemoryPriority);
        else
            sbn_fatal("--policy: unknown policy '", name,
                      "' (expected 'proc' or 'mem')");
    }
    return policies;
}

/**
 * The trace coordinates this process's spans live under: the
 * inherited context when a parent exported one, else a fresh trace
 * rooted here (a standalone --shard worker, a serial CLI run).
 */
TraceContext
currentTraceContext()
{
    TraceContext ctx = inheritedTraceContext();
    if (traceEnabled() && !ctx.valid())
        ctx.traceId = newTraceId();
    return ctx;
}

} // namespace

const std::map<std::string, std::string> &
sweepFlagHelp()
{
    static const std::map<std::string, std::string> help{
        {"n", "processor-count axis, e.g. 8 or 4,8,16"},
        {"m", "memory-module axis"},
        {"r", "memory/bus ratio axis"},
        {"p", "request-probability axis, e.g. 0.1,0.5,1.0"},
        {"policy", "arbitration axis: proc, mem or proc,mem"},
        {"buffered", "Section-6 buffering axis: 0, 1 or 0,1"},
        {"hot", "hot-spot workload axis: fraction h values, e.g. "
                "0.0,0.2,0.4 (forces the HotSpot pattern)"},
        {"favorite", "favorite-module workload axis: fraction f "
                     "values (forces the Favorite pattern)"},
        {"kernel", "simulation kernel: cycleskip (exact, default) or "
                   "faststat (statistically equivalent, faster)"},
        {"seed", "base RNG seed (per-point seeds derive from it)"},
        {"warmup", "warmup bus cycles per run"},
        {"measure", "measured bus cycles per run"},
        {"adaptive", "adaptive-precision replications per point"},
        {"rel", "adaptive: relative CI half-width target"},
        {"abs", "adaptive: absolute CI half-width target"},
        {"level", "adaptive: confidence level"},
        {"initial", "adaptive: first-round replications"},
        {"growth", "adaptive: round growth factor"},
        {"cap", "adaptive: replication cap"},
        {"threads", "worker threads (0 = all hardware threads)"},
        {"layout", "shard layout: contiguous or strided"},
        {"spawn", "run N supervised local shard workers, then merge"},
        {"retries", "spawn: respawns allowed per shard (default 2)"},
        {"hang-timeout", "spawn: seconds without record progress "
                         "before a worker is declared hung and "
                         "killed (0 = off)"},
        {"backoff", "spawn: initial retry backoff seconds (doubles "
                    "per failure, capped)"},
        {"steal", "spawn: let free workers steal missing points from "
                  "stragglers (default 1)"},
        {"telemetry", "collect run telemetry counters/timers; the "
                      "optional value names the dump file (default "
                      "'-' = stderr). Shard workers also append "
                      "telemetry-shard-*.jsonl sidecars next to "
                      "their record files"},
        {"latency", "collect per-request wait/residence latency "
                    "histograms and carry their p50/p90/p99/max in "
                    "plain-sweep point records (passive: EBW values "
                    "are unchanged)"},
        {"trace", "record cross-process sbn.trace.v1 span shards for "
                  "this run; the optional value names the shard "
                  "directory (default: the run's own directory). "
                  "Merge with sbn_trace"},
    };
    return help;
}

SweepRunOptions
parseSweepRunOptions(const CommandLine &cli)
{
    SweepRunOptions opt;

    SweepSpec &spec = opt.spec;
    spec.base.seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 20260611));
    spec.base.warmupCycles = cli.getInt("warmup", 20000);
    spec.base.measureCycles = cli.getInt("measure", 200000);

    for (std::int64_t n : cli.getIntList("n", {}))
        spec.processors.push_back(static_cast<int>(n));
    for (std::int64_t m : cli.getIntList("m", {}))
        spec.modules.push_back(static_cast<int>(m));
    for (std::int64_t r : cli.getIntList("r", {}))
        spec.memoryRatios.push_back(static_cast<int>(r));
    spec.requestProbabilities = cli.getDoubleList("p", {});
    if (cli.has("policy"))
        spec.policies =
            parsePolicyList(cli.getStringList("policy", {}));
    for (std::int64_t b : cli.getIntList("buffered", {}))
        spec.buffering.push_back(b != 0);
    spec.hotFractions = cli.getDoubleList("hot", {});
    spec.favoriteFractions = cli.getDoubleList("favorite", {});

    // Kernel selection applies to every point: materialize() copies
    // the base config, and the fingerprint's kernel marker keeps
    // FastStat records from merging into exact-kernel sweeps.
    const std::string kernel = cli.getString("kernel", "cycleskip");
    if (kernel == "cycleskip")
        spec.base.kernel = KernelKind::CycleSkip;
    else if (kernel == "faststat")
        spec.base.kernel = KernelKind::FastStat;
    else
        sbn_fatal("--kernel: unknown kernel '", kernel,
                  "' (expected 'cycleskip' or 'faststat')");

    opt.adaptive = cli.getBool("adaptive", false);
    opt.target.relative = cli.getDouble("rel", 0.05);
    opt.target.absolute = cli.getDouble("abs", 0.0);
    opt.target.level = cli.getDouble("level", 0.95);

    // Range-check the schedule here, naming the flags: a negative
    // value narrowed to unsigned would otherwise surface as an
    // unrelated internal assertion (or a ~4e9-replication round).
    const std::int64_t initial = cli.getInt("initial", 4);
    if (initial < 2)
        sbn_fatal("--initial must be >= 2 (got ", initial,
                  "); the first round needs a confidence interval");
    const std::int64_t cap = cli.getInt("cap", 64);
    if (cap < initial)
        sbn_fatal("--cap must be >= --initial (got cap=", cap,
                  ", initial=", initial, ")");
    opt.schedule.initial = static_cast<unsigned>(initial);
    opt.schedule.growth = cli.getDouble("growth", 2.0);
    if (!(opt.schedule.growth > 1.0))
        sbn_fatal("--growth must be > 1 (got ", opt.schedule.growth,
                  "); rounds must add replications");
    opt.schedule.cap = static_cast<unsigned>(cap);

    if (cli.has("threads")) {
        opt.threads =
            parseThreadsSpec(cli.getString("threads", "1").c_str());
        // parseThreadsSpec keeps "0 = all hardware threads" symbolic;
        // resolve it here so 0 never reaches the runShard*/runner
        // plumbing, where 0 means "defaultExecThreads()" (serial
        // unless SBN_THREADS is set) instead.
        if (opt.threads == 0)
            opt.threads = ThreadPool::hardwareThreads();
    }
    opt.layout =
        parseShardLayout(cli.getString("layout", "contiguous"));

    const std::int64_t retries = cli.getInt("retries", 2);
    if (retries < 0)
        sbn_fatal("--retries must be >= 0 (got ", retries, ")");
    opt.retries = static_cast<unsigned>(retries);
    opt.hangTimeout = cli.getDouble("hang-timeout", 0.0);
    if (opt.hangTimeout < 0.0)
        sbn_fatal("--hang-timeout must be >= 0 seconds (got ",
                  opt.hangTimeout, ")");
    opt.backoffInitial = cli.getDouble("backoff", 0.25);
    if (opt.backoffInitial < 0.0)
        sbn_fatal("--backoff must be >= 0 seconds (got ",
                  opt.backoffInitial, ")");
    opt.steal = cli.getBool("steal", true);

    const std::int64_t spawn = cli.getInt("spawn", 0);
    if (cli.has("spawn") && spawn < 1)
        sbn_fatal("--spawn=K needs K >= 1 worker processes");
    opt.spawnShards = static_cast<std::size_t>(spawn);

    if (cli.has("telemetry")) {
        // Bare --telemetry (the parser stores "true") and the boolean
        // spellings toggle collection; any other value names the dump
        // file for front ends that dump at exit.
        const std::string value = cli.getString("telemetry", "");
        if (value == "0" || value == "false") {
            opt.telemetry = false;
        } else {
            opt.telemetry = true;
            if (value != "true" && value != "1" && !value.empty())
                opt.telemetryDump = value;
        }
    }
    // Enabling here - not in the front ends - is what makes a daemon
    // job spec carrying --telemetry behave exactly like the local
    // command: every path that parses sweep options gets collection
    // armed before any work runs.
    if (opt.telemetry)
        setTelemetryEnabled(true);

    // Folding into the base config makes every materialized point
    // collect; collectLatency stays out of the config fingerprint, so
    // latency-on and latency-off runs stay merge/resume compatible.
    opt.latency = cli.getBool("latency", false);
    spec.base.collectLatency = opt.latency;

    if (cli.has("trace")) {
        // Same grammar as --telemetry: bare/boolean spellings toggle,
        // any other value names the shard directory.
        const std::string value = cli.getString("trace", "");
        if (value == "0" || value == "false") {
            opt.trace = false;
        } else {
            opt.trace = true;
            if (value != "true" && value != "1" && !value.empty())
                opt.traceDir = value;
        }
    }

    spec.validate();
    return opt;
}

void
armSweepTracing(const SweepRunOptions &opt,
                const std::string &default_dir)
{
    if (!traceEnabled()) {
        if (!opt.trace)
            return;
        const std::string dir =
            opt.traceDir.empty() ? default_dir : opt.traceDir;
        if (dir.empty())
            return;
        ::setenv(kTraceDirEnvVar, dir.c_str(), 1);
    }
    // Root context: without this, each traced component of one run
    // (supervisor, merge, adaptive rounds) would invent its own
    // trace id. An inherited context (the daemon's job span) wins.
    if (!inheritedTraceContext().valid())
        exportTraceContext({newTraceId(), 0});
}

std::vector<std::string>
tokenizeSpecString(const std::string &spec)
{
    std::vector<std::string> tokens;
    std::string current;
    for (const char c : spec) {
        if (c == '"' || c == '\'' || c == '\\')
            sbn_fatal("spec strings carry no quoting (found '", c,
                      "'); sweep flags never need embedded spaces");
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
            continue;
        }
        current += c;
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

SweepRunOptions
parseSweepSpecString(const std::string &spec)
{
    const std::vector<std::string> tokens = tokenizeSpecString(spec);
    std::vector<const char *> argv;
    argv.reserve(tokens.size() + 1);
    argv.push_back("sbn_sweepd-spec");
    for (const std::string &token : tokens)
        argv.push_back(token.c_str());
    const CommandLine cli(static_cast<int>(argv.size()), argv.data(),
                          sweepFlagHelp());
    return parseSweepRunOptions(cli);
}

bool
specParsesCleanly(const std::string &spec)
{
    // The CLI parser is fatal-on-error by design; a daemon that must
    // answer `bad_spec` instead of dying runs it in a throwaway
    // child. The child's stderr is the daemon's stderr, so the
    // precise parse complaint still lands in the daemon log.
    const pid_t pid = ::fork();
    if (pid < 0)
        sbn_fatal("cannot fork spec validator");
    if (pid == 0) {
        parseSweepSpecString(spec);
        ::_exit(0);
    }
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR)
            sbn_fatal("cannot wait for spec validator");
    }
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

double
evaluateSweepPoint(const SystemConfig &cfg)
{
    return runEbw(cfg);
}

PointSample
evaluateSweepPointSample(const SystemConfig &cfg)
{
    return runPointSample(cfg);
}

double
evaluateSweepReplication(const SystemConfig &cfg, std::uint64_t seed)
{
    SystemConfig c = cfg;
    c.seed = seed;
    return runEbw(c);
}

MergeCheck
sweepRunMergeCheck(const SweepRunOptions &opt,
                   const std::vector<SystemConfig> &points)
{
    return opt.adaptive
               ? adaptiveMergeCheck(points, opt.target, opt.schedule)
               : sweepMergeCheck(points);
}

ShardRunStats
runSweepShard(const SweepRunOptions &opt, const ShardSpec &shard,
              const std::string &dir, bool resume)
{
    const std::string path = shardFilePath(dir, shard);
    const TraceContext ctx = currentTraceContext();
    const std::uint64_t startUs = traceNowMicros();
    ShardRunStats stats;
    if (opt.adaptive)
        stats = runShardAdaptive(opt.spec, shard, opt.layout,
                                 opt.target, opt.schedule,
                                 evaluateSweepReplication, path,
                                 resume, opt.threads);
    else
        stats = runShardSweep(
            opt.spec, shard, opt.layout,
            std::function<PointSample(const SystemConfig &)>(
                evaluateSweepPointSample),
            path, resume, opt.threads);
    // The worker's own view of the attempt: emitted from inside the
    // (possibly forked) worker process, so a supervised run's merged
    // timeline shows spans from every process of the fleet.
    traceEmitSpan(ctx, "shard_run",
                  "shard " + shard.toString() + " run", ctx.spanId,
                  startUs, traceNowMicros(),
                  {{"owned", std::to_string(stats.owned)},
                   {"resumed", std::to_string(stats.skipped)},
                   {"computed", std::to_string(stats.computed)},
                   {"adaptive", opt.adaptive ? "1" : "0"}});
    std::fprintf(stderr,
                 "shard %s (%s): %zu point(s) owned, %zu resumed, "
                 "%zu computed -> %s\n",
                 shard.toString().c_str(),
                 shardLayoutName(opt.layout), stats.owned,
                 stats.skipped, stats.computed, path.c_str());
    appendTelemetrySidecar(path);
    return stats;
}

WorkerBody
makeSweepWorkerBody(const SweepRunOptions &opt,
                    const std::vector<SystemConfig> &points,
                    const std::string &dir, bool resume_first_launch)
{
    // Workers are forked before the calling process creates any
    // thread pool, so each child owns a clean single-threaded image
    // and builds its own. Each worker defaults to one thread.
    SweepRunOptions worker = opt;
    if (worker.threads == 0)
        worker.threads = 1;
    return [worker, &points, dir,
            resume_first_launch](const WorkerTask &task) {
        if (task.steal) {
            const TraceContext ctx = currentTraceContext();
            const std::uint64_t startUs = traceNowMicros();
            if (worker.adaptive)
                runStolenPointsAdaptive(
                    points, task.points, worker.target,
                    worker.schedule, evaluateSweepReplication,
                    task.outPath, worker.threads);
            else
                runStolenPointsSweep(
                    points, task.points,
                    std::function<PointSample(const SystemConfig &)>(
                        evaluateSweepPointSample),
                    task.outPath, worker.threads);
            traceEmitSpan(ctx, "steal_run", "steal slice run",
                          ctx.spanId, startUs, traceNowMicros(),
                          {{"points",
                            std::to_string(task.points.size())}});
            appendTelemetrySidecar(task.outPath);
        } else {
            // A respawn must keep the dead worker's flushed records;
            // first launches honor the caller's resume choice.
            runSweepShard(worker, task.shard, dir,
                          resume_first_launch || task.attempt > 0);
        }
    };
}

SupervisedSweepOutcome
runSupervisedSweep(const SweepRunOptions &opt, std::size_t shard_count,
                   const std::string &dir, bool resume_first_launch)
{
    ensureWritableShardDir(dir);

    const std::vector<SystemConfig> points = opt.spec.materialize();
    MergeCheck check = sweepRunMergeCheck(opt, points);
    check.shardCount = shard_count;
    check.layout = opt.layout;
    check.dir = dir;

    SupervisorConfig config;
    config.shardCount = shard_count;
    config.dir = dir;
    config.layout = opt.layout;
    config.expectedRunFp = check.expectedRunFp;
    config.maxRetries = opt.retries;
    config.backoffInitialSeconds = opt.backoffInitial;
    config.hangTimeoutSeconds = opt.hangTimeout;
    config.workStealing = opt.steal;

    ShardSupervisor supervisor(
        config,
        makeSweepWorkerBody(opt, points, dir, resume_first_launch));

    SupervisedSweepOutcome outcome;
    outcome.report = supervisor.run();
    outcome.check = check;
    // An interrupted fleet's output is not a result, partial or
    // otherwise; leave outcome.merged empty in that case.
    if (outcome.report.interruptSignal == 0) {
        const TraceContext ctx = currentTraceContext();
        const std::uint64_t startUs = traceNowMicros();
        outcome.merged =
            collectRecordFiles(outcome.report.recordFiles, check,
                               /*tolerate_partial_tail=*/true);
        traceEmitSpan(
            ctx, "merge", "collect shard records", ctx.spanId,
            startUs, traceNowMicros(),
            {{"files",
              std::to_string(outcome.report.recordFiles.size())},
             {"grid", std::to_string(check.gridSize)}});
    }
    return outcome;
}

} // namespace sbn
