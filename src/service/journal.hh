/**
 * @file
 * Crash-safe job journal: the write-ahead log behind sbn_sweepd.
 *
 * Every job-state transition the daemon performs is appended to
 * `<state-dir>/jobs.jsonl` - one flat JSON line per transition - and
 * fsync()ed BEFORE the transition takes visible effect (before the
 * submit is acknowledged, before the runner is forked, before the
 * runner is signalled for cancel). Killing the daemon at any instant
 * therefore leaves a journal from which replay() reconstructs every
 * job exactly as far as it had durably progressed:
 *
 *   submitted -> running -> merging -> done
 *                  |  \        |
 *                  |   '------ | ---> failed
 *                  v           v
 *              cancelled   cancelled
 *
 * Replay is last-write-wins per job id: later lines supersede
 * earlier ones, and a torn final line (the artifact of a kill
 * mid-append) is dropped leniently - and truncated off the file, so
 * the next O_APPEND append starts on a clean line boundary -
 * mirroring the shard record format's crash-loss bound of "at most
 * the line being written" (shard/result_io.hh). A torn line
 * anywhere else is corruption and fatal.
 *
 * The submitted entry carries everything needed to re-run the job
 * from nothing (the spec string, the timeout); later entries carry
 * only the transition. Recovery of a running/merging job does not
 * restart it from scratch - the job's shard record files survive in
 * its job directory, so the relaunched runner resumes them and the
 * recovered merged output is byte-identical to an uninterrupted run.
 *
 * The deterministic fault plane hooks in right after each fsync
 * (faultAfterJournalState), which is how CI kills the daemon at
 * every journal state on purpose (docs/service.md).
 */

#ifndef SBN_SERVICE_JOURNAL_HH
#define SBN_SERVICE_JOURNAL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sbn {

/** Lifecycle of one sweep job under the daemon. */
enum class JobState
{
    Submitted, //!< journaled and queued; no runner yet
    Running,   //!< a runner process owns the job
    Merging,   //!< all shards complete; runner is merging/publishing
    Done,      //!< merged.jsonl published (exit 0 or partial 75)
    Failed,    //!< runner budget exhausted, or the job timed out
    Cancelled, //!< cancel requested and durably recorded
};

/** Canonical lowercase name of a JobState ("submitted", ...). */
const char *jobStateName(JobState state);

/** Parse a jobStateName() back; false on unknown text. */
bool parseJobState(const std::string &text, JobState &out);

/** True for states with no further transitions. */
bool jobStateTerminal(JobState state);

/** One journal line: a durable job-state transition. */
struct JobJournalEntry
{
    std::uint64_t job = 0;
    JobState state = JobState::Submitted;
    std::string spec;          //!< submitted: sbn_sweep-style flags
    double timeoutSeconds = 0; //!< submitted: 0 = no timeout
    /** Wall-clock seconds (unix) of the job's FIRST runner launch;
     *  0 until then. The timeout deadline is anchored here so a
     *  recovered job resumes its original budget instead of getting
     *  a fresh one per daemon incarnation. */
    double startedUnix = 0;
    int exitCode = 0;          //!< done/failed: runner disposition
    std::string reason;        //!< failed/cancelled: human cause
};

/** Serialize one entry to its canonical line (no newline). */
std::string formatJournalEntry(const JobJournalEntry &entry);

/** Strict parse of one journal line; false + @p error otherwise. */
bool parseJournalEntry(const std::string &line, JobJournalEntry &out,
                       std::string &error);

/**
 * Append-only journal writer over a raw descriptor: append() writes
 * the line and fsync()s it before returning, then gives the fault
 * plane its crash_after_journal window. Fatal on any I/O error - a
 * journal that cannot persist must stop the daemon, not let it
 * acknowledge work it would forget.
 */
class JobJournal
{
  public:
    /** Opens (creating if needed) @p path for appending. */
    explicit JobJournal(const std::string &path);
    ~JobJournal();

    JobJournal(const JobJournal &) = delete;
    JobJournal &operator=(const JobJournal &) = delete;

    /** Durably append one transition (write + fsync), then run the
     *  crash_after_journal fault hook for the entry's state. */
    void append(const JobJournalEntry &entry);

    const std::string &path() const { return path_; }

    /** The descriptor, for the daemon's close-in-child hygiene. */
    int fd() const { return fd_; }

    /** Lines durably appended by THIS writer (not replayed history);
     *  feeds the daemon's metrics surface. */
    std::uint64_t appends() const { return appends_; }

    /** fsync() calls issued; today 1:1 with appends(), but counted
     *  separately so a future group-commit cannot silently skew the
     *  metric. */
    std::uint64_t fsyncs() const { return fsyncs_; }

  private:
    std::string path_;
    int fd_ = -1;
    std::uint64_t appends_ = 0;
    std::uint64_t fsyncs_ = 0;
};

/**
 * Replay a journal file into per-job latest entries, ordered by job
 * id. The spec/timeout fields of the submitted entry are folded into
 * every later entry of that job, so callers always see the full job
 * description next to its latest state. A missing file replays to
 * empty (a fresh daemon); a torn final line is dropped with a
 * warning AND truncated off the file (so a later O_APPEND writer
 * cannot concatenate a fresh entry onto the torn bytes); any other
 * malformed line - or a transition for a job id that was never
 * submitted - is fatal, naming the line.
 */
std::vector<JobJournalEntry> replayJobJournal(const std::string &path);

} // namespace sbn

#endif // SBN_SERVICE_JOURNAL_HH
