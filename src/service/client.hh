/**
 * @file
 * Client side of the sbn_sweepd protocol: connect, send one request
 * line, read the response (and the raw results payload when there is
 * one). `sbn_sweep --connect=...` is a thin wrapper over this.
 */

#ifndef SBN_SERVICE_CLIENT_HH
#define SBN_SERVICE_CLIENT_HH

#include <cstdint>
#include <string>

#include "service/protocol.hh"

namespace sbn {

/** One parsed daemon response (+ raw results payload when present). */
struct ClientResponse
{
    JsonObject fields;   //!< the flat header/response object
    std::string payload; //!< results: the raw merged JSONL bytes

    bool ok() const;
    /** fields["error"] text, or "" when ok. */
    std::string errorCode() const;
    /** fields[key] as text ("" when absent); numbers keep their wire
     *  spelling. */
    std::string text(const std::string &key) const;
    /** fields[key] as a number (@p def when absent/not a number). */
    double number(const std::string &key, double def = 0) const;
};

/**
 * Blocking line-protocol connection to a daemon at 127.0.0.1.
 * @p endpoint is "PORT", "host:PORT", or a path to a daemon state
 * dir (the port is then read from its port file). Connection
 * failures are fatal with kExitUnavailable - the conventional
 * "service not up" exit for scripts to branch on.
 */
class DaemonClient
{
  public:
    explicit DaemonClient(const std::string &endpoint);
    ~DaemonClient();

    DaemonClient(const DaemonClient &) = delete;
    DaemonClient &operator=(const DaemonClient &) = delete;

    /**
     * Send @p request, read the one response line (strictly parsed),
     * and - for an ok "results" response - the exact `bytes` bytes
     * of payload that follow it. Fatal on transport errors or a
     * malformed response; protocol-level errors ({"ok":false,...})
     * are returned, not fatal.
     */
    ClientResponse call(const Request &request);

  private:
    std::string readLine();

    int fd_ = -1;
};

/** Resolve @p endpoint ("PORT", "host:PORT", state dir) to a port,
 *  fatally (kExitUnavailable) when a state dir has no port file. */
int resolveDaemonPort(const std::string &endpoint);

} // namespace sbn

#endif // SBN_SERVICE_CLIENT_HH
