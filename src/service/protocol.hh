/**
 * @file
 * The sbn_sweepd wire protocol: line-delimited JSON requests and
 * responses over a byte stream (TCP).
 *
 * Every request is ONE flat JSON object on ONE line; every response
 * is one flat JSON object on one line, except `results`, whose
 * header line is followed by exactly `bytes` bytes of raw merged
 * JSONL payload (the job's point records, byte-identical to the
 * serial sweep). Flat means: string / number / boolean / null
 * values only, no nesting - which keeps the parser small, strict
 * and fuzzable, in the spirit of the record format
 * (shard/result_io.hh).
 *
 * Requests (the `cmd` key selects; docs/service.md has the full
 * grammar and examples):
 *
 *   {"cmd":"submit","spec":"--n=8 --m=16 --p=0.2,0.6 --spawn=2"}
 *       optional: "timeout_s": wall-clock budget for the job.
 *   {"cmd":"status"}            daemon + per-job summary
 *   {"cmd":"status","job":3}    one job
 *   {"cmd":"cancel","job":3}
 *   {"cmd":"results","job":3}
 *   {"cmd":"metrics"}           daemon metrics snapshot
 *   {"cmd":"metrics","job":3}   one job's metrics
 *   {"cmd":"drain"}
 *
 * Responses always carry "ok" (boolean). Failures carry a
 * machine-readable "error" code (bad_request, bad_spec, queue_full,
 * draining, unknown_job, not_ready, terminal_job) plus a
 * human-readable "message". The submit acknowledgment is written
 * only after the job is durably journaled (service/journal.hh).
 */

#ifndef SBN_SERVICE_PROTOCOL_HH
#define SBN_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <map>
#include <string>

namespace sbn {

/** One scalar value of a flat JSON object. */
struct JsonScalar
{
    enum class Kind
    {
        String,
        Number,
        Bool,
        Null,
    };

    Kind kind = Kind::Null;
    std::string text;    //!< String payload (unescaped)
    double number = 0.0; //!< Number payload
    bool boolean = false;
};

/** Key -> scalar map of one flat JSON object line. */
using JsonObject = std::map<std::string, JsonScalar>;

/**
 * Parse one flat JSON object. Strict: the whole line must be a
 * single `{...}` object of string keys and scalar values (string,
 * number, true/false/null); duplicate keys, nesting, trailing bytes
 * and malformed escapes are errors. Returns false and sets @p error.
 */
bool parseFlatJsonObject(const std::string &line, JsonObject &out,
                         std::string &error);

/** JSON string escaping for the characters the protocol can carry. */
std::string jsonEscape(const std::string &text);

/** What a parsed request asks for. */
enum class RequestKind
{
    Submit,
    Status,
    Cancel,
    Results,
    Drain,
    Metrics,
};

/** Canonical wire name of a request kind ("submit", ...). */
const char *requestKindName(RequestKind kind);

/** One parsed client request. */
struct Request
{
    RequestKind kind = RequestKind::Status;
    std::string spec;          //!< submit: sbn_sweep-style flag string
    double timeoutSeconds = 0; //!< submit: 0 = no job timeout
    bool hasJob = false;       //!< a "job" key was supplied
    std::uint64_t job = 0;
};

/**
 * Parse one request line. Returns false with a human-readable
 * @p error on anything malformed: unknown cmd, missing/extra keys
 * for that cmd, wrong types, negative or non-integral job ids.
 */
bool parseRequest(const std::string &line, Request &out,
                  std::string &error);

/** Serialize @p request back to its canonical wire line (no
 *  newline). Inverse of parseRequest for valid requests. */
std::string formatRequest(const Request &request);

/** `{"ok":false,"error":code,"message":...}` (no newline). */
std::string errorResponse(const std::string &code,
                          const std::string &message);

} // namespace sbn

#endif // SBN_SERVICE_PROTOCOL_HH
