/**
 * @file
 * Crossbar memory-bandwidth models (the paper's comparison baseline).
 *
 * The paper compares the multiplexed single-bus EBW against a
 * non-multiplexed n x m crossbar whose basic cycle equals the
 * processor cycle (r+2)t. Such a crossbar services, per cycle, one
 * request at every module with pending requests, so its EBW equals
 * the classical memory-bandwidth figure and is independent of r.
 */

#ifndef SBN_ANALYTIC_CROSSBAR_HH
#define SBN_ANALYTIC_CROSSBAR_HH

namespace sbn {

/**
 * Exact crossbar bandwidth E[x] (expected busy modules per cycle) via
 * the Bhandarkar occupancy Markov chain. Symmetric in n and m.
 *
 * @param n processors, @param m memory modules
 */
double crossbarExactBandwidth(int n, int m);

/**
 * Strecker's memoryless approximation m * (1 - (1 - 1/m)^n), i.e. the
 * expected number of distinct modules hit by n uniform requests.
 */
double crossbarStreckerBandwidth(int n, int m);

/**
 * The same approximation computed from the distinct-target pmf
 * (sum_x x * P(x)); equal to the Strecker closed form, exposed for
 * cross-validation.
 */
double crossbarApproxBandwidth(int n, int m);

/**
 * Crossbar EBW in the paper's figures: requests serviced per
 * processor cycle with the crossbar clocked at (r+2)t. Identical to
 * crossbarExactBandwidth; named for clarity at call sites.
 */
inline double
crossbarEbw(int n, int m)
{
    return crossbarExactBandwidth(n, m);
}

} // namespace sbn

#endif // SBN_ANALYTIC_CROSSBAR_HH
