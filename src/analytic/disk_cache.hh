/**
 * @file
 * Disk-persistent cache for analytic solves (ROADMAP open item).
 *
 * The occupancy-chain solvers memoize per process, but repeated bench
 * invocations re-enumerate the same transition systems from scratch.
 * When the SBN_CACHE_DIR environment variable names a directory,
 * solved results are also persisted there and reloaded by later
 * processes.
 *
 * Entries are versioned and fingerprint-keyed: the file name carries
 * a 64-bit fingerprint of (format version, solver identity, every
 * parameter), and the file body repeats it, so a stale or foreign
 * file can never satisfy a lookup - it is discarded with a warning
 * and re-solved. Values are serialized as %.17g decimal plus the
 * IEEE-754 bit pattern (the same convention as the sharded-sweep
 * records); the bits are authoritative, so a reloaded solve is
 * bit-identical to the original.
 *
 * Writes are atomic (unique temp file + rename) and best-effort: an
 * unwritable cache directory degrades to a warning, never an error -
 * the cache accelerates, it does not gate.
 *
 * The cache is garbage-collected: when SBN_CACHE_MAX_BYTES is set,
 * every store that pushes the directory's entry total over the cap
 * evicts entries oldest-modification-first until the total fits.
 * Eviction is a plain unlink, which POSIX keeps invisible to any
 * reader that already has the file open - a concurrent loadCachedSolve
 * either validates the complete old file or misses cleanly; it never
 * sees a torn entry.
 */

#ifndef SBN_ANALYTIC_DISK_CACHE_HH
#define SBN_ANALYTIC_DISK_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sbn {

/**
 * The analytic cache directory (SBN_CACHE_DIR), or "" when the cache
 * is disabled. Read from the environment on each call (solves are
 * rare and tests toggle the variable); created on first store.
 */
std::string analyticCacheDir();

/**
 * Load the cached value vector keyed by (@p stem, @p fingerprint).
 * Returns false - after a warning if a file existed but did not
 * validate - when the caller must solve; @p expected_count != 0
 * additionally requires that many values.
 */
bool loadCachedSolve(const std::string &stem, std::uint64_t fingerprint,
                     std::size_t expected_count,
                     std::vector<double> &values);

/**
 * Persist @p values under (@p stem, @p fingerprint), atomically.
 * No-op when the cache is disabled; warns (only) on I/O failure.
 * Enforces the SBN_CACHE_MAX_BYTES cap afterwards.
 */
void storeCachedSolve(const std::string &stem,
                      std::uint64_t fingerprint,
                      const std::vector<double> &values);

/**
 * The cache size cap in bytes (SBN_CACHE_MAX_BYTES), or 0 when
 * unlimited. Fatal on a malformed value - a typo must not silently
 * turn off eviction.
 */
std::uint64_t analyticCacheMaxBytes();

/**
 * Evict cache entries oldest-modification-first until the directory's
 * entry total fits the SBN_CACHE_MAX_BYTES cap. No-op when the cache
 * or the cap is disabled. Returns the number of entries removed.
 * Called by storeCachedSolve(); exposed for tests.
 */
std::size_t enforceCacheSizeCap();

} // namespace sbn

#endif // SBN_ANALYTIC_DISK_CACHE_HH
