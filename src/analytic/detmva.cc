#include "analytic/detmva.hh"

#include <algorithm>

#include "util/logging.hh"

namespace sbn {

MvaResult
mvaBufferedBusDeterministic(int n, int m, int r, double p)
{
    sbn_assert(n >= 1 && m >= 1 && r >= 1, "detmva needs n, m, r >= 1");
    sbn_assert(p > 0.0 && p <= 1.0, "detmva needs p in (0, 1]");

    const double s_bus = 1.0;
    const double v_bus = 2.0;
    const double s_mem = static_cast<double>(r);
    const double v_mem = 1.0 / static_cast<double>(m);
    const double think = (1.0 - p) / p * static_cast<double>(r + 2);

    // Deterministic capacity ceilings on the transaction throughput.
    const double x_cap = std::min(
        1.0 / (v_bus * s_bus),
        static_cast<double>(m) / (static_cast<double>(m) * v_mem * s_mem));

    double q_bus = 0.0, u_bus = 0.0;
    double q_mem = 0.0, u_mem = 0.0;

    double x = 0.0;
    double resp = 0.0;
    for (int k = 1; k <= n; ++k) {
        const double r_bus =
            s_bus * (1.0 + q_bus) - 0.5 * s_bus * u_bus;
        const double r_mem =
            s_mem * (1.0 + q_mem) - 0.5 * s_mem * u_mem;
        resp = v_bus * r_bus + static_cast<double>(m) * v_mem * r_mem;
        x = static_cast<double>(k) / (think + resp);
        x = std::min(x, x_cap);
        q_bus = x * v_bus * r_bus;
        q_mem = x * v_mem * r_mem;
        u_bus = std::min(x * v_bus * s_bus, 1.0);
        u_mem = std::min(x * v_mem * s_mem, 1.0);
    }

    MvaResult result;
    result.throughput = x;
    result.ebw = x * static_cast<double>(r + 2);
    result.busUtilization = u_bus;
    result.moduleUtilization = u_mem;
    result.busQueueLength = q_bus;
    result.moduleQueueLength = q_mem;
    result.responseTime = resp;
    return result;
}

} // namespace sbn
