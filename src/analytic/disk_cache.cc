#include "analytic/disk_cache.hh"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "core/fingerprint.hh"
#include "util/logging.hh"

namespace sbn {

namespace {

constexpr const char *kHeader = "# sbn analytic solve cache v1";

std::string
cachePath(const std::string &stem, std::uint64_t fingerprint)
{
    return analyticCacheDir() + "/" + stem + "-" +
           formatFingerprint(fingerprint) + ".txt";
}

} // namespace

std::string
analyticCacheDir()
{
    const char *env = std::getenv("SBN_CACHE_DIR");
    return std::string(env != nullptr ? env : "");
}

bool
loadCachedSolve(const std::string &stem, std::uint64_t fingerprint,
                std::size_t expected_count,
                std::vector<double> &values)
{
    if (analyticCacheDir().empty())
        return false;
    const std::string path = cachePath(stem, fingerprint);
    std::ifstream in(path);
    if (!in.good())
        return false; // not cached yet - the common cold-start case

    const auto reject = [&](const char *why) {
        sbn_warn("ignoring analytic cache file '", path, "': ", why,
                 " - re-solving");
        return false;
    };

    std::string line;
    if (!std::getline(in, line) || line != kHeader)
        return reject("unrecognized header");
    if (!std::getline(in, line) ||
        line.rfind("fingerprint ", 0) != 0)
        return reject("missing fingerprint line");
    std::uint64_t stored_fp = 0;
    if (!parseFingerprint(line.substr(12), stored_fp) ||
        stored_fp != fingerprint)
        return reject("fingerprint mismatch");
    if (!std::getline(in, line) || line.rfind("count ", 0) != 0)
        return reject("missing count line");
    char *end = nullptr;
    const unsigned long long count =
        std::strtoull(line.c_str() + 6, &end, 10);
    if (end == nullptr || *end != '\0')
        return reject("malformed count");
    if (expected_count != 0 && count != expected_count)
        return reject("value count mismatch");

    std::vector<double> loaded;
    loaded.reserve(count);
    for (unsigned long long i = 0; i < count; ++i) {
        if (!std::getline(in, line))
            return reject("truncated value list");
        // "<%.17g> 0x<bits>": the bits are authoritative; the decimal
        // must re-serialize to them (tamper/corruption check).
        const std::size_t space = line.rfind(' ');
        if (space == std::string::npos)
            return reject("malformed value line");
        std::uint64_t bits = 0;
        if (!parseFingerprint(line.substr(space + 1), bits))
            return reject("malformed bit pattern");
        errno = 0;
        end = nullptr;
        const double decimal =
            std::strtod(line.c_str(), &end);
        if (end != line.c_str() + space)
            return reject("malformed decimal value");
        if (doubleFingerprintBits(decimal) != bits)
            return reject("decimal/bits disagreement");
        loaded.push_back(doubleFromFingerprintBits(bits));
    }
    if (std::getline(in, line))
        return reject("trailing data");

    values = std::move(loaded);
    return true;
}

void
storeCachedSolve(const std::string &stem, std::uint64_t fingerprint,
                 const std::vector<double> &values)
{
    const std::string dir = analyticCacheDir();
    if (dir.empty())
        return;
    if (mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
        sbn_warn("cannot create analytic cache directory '", dir,
                 "' - solve not persisted");
        return;
    }

    const std::string path = cachePath(stem, fingerprint);
    // Unique temp name per process: concurrent solvers of the same
    // shape each write their own file and the last rename wins with
    // identical (deterministic) contents.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp);
        if (!out.good()) {
            sbn_warn("cannot write analytic cache file '", tmp,
                     "' - solve not persisted");
            return;
        }
        out << kHeader << '\n'
            << "fingerprint " << formatFingerprint(fingerprint) << '\n'
            << "count " << values.size() << '\n';
        for (const double value : values) {
            out << formatExactDouble(value) << ' '
                << formatFingerprint(doubleFingerprintBits(value))
                << '\n';
        }
        out.flush();
        if (!out.good()) {
            sbn_warn("write error on analytic cache file '", tmp, "'");
            std::remove(tmp.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        sbn_warn("cannot rename analytic cache file '", tmp,
                 "' over '", path, "'");
        std::remove(tmp.c_str());
        return;
    }
    enforceCacheSizeCap();
}

std::uint64_t
analyticCacheMaxBytes()
{
    const char *env = std::getenv("SBN_CACHE_MAX_BYTES");
    if (env == nullptr || *env == '\0')
        return 0;
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE ||
        std::strchr(env, '-') != nullptr)
        sbn_fatal("SBN_CACHE_MAX_BYTES must be a byte count, got '",
                  env, "'");
    return parsed;
}

std::size_t
enforceCacheSizeCap()
{
    const std::uint64_t cap = analyticCacheMaxBytes();
    const std::string dir = analyticCacheDir();
    if (cap == 0 || dir.empty())
        return 0;

    struct Entry
    {
        std::string path;
        std::uint64_t size = 0;
        std::time_t mtime = 0;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;

    DIR *handle = ::opendir(dir.c_str());
    if (handle == nullptr)
        return 0; // nothing stored yet, or unreadable: best-effort
    while (const dirent *item = ::readdir(handle)) {
        const std::string name = item->d_name;
        // Cache entries only: "<stem>-<fp>.txt". In-flight ".tmp.<pid>"
        // files belong to a concurrent writer, never evict those.
        if (name.size() < 4 ||
            name.compare(name.size() - 4, 4, ".txt") != 0)
            continue;
        Entry entry;
        entry.path = dir + "/" + name;
        struct stat info;
        if (::stat(entry.path.c_str(), &info) != 0 ||
            !S_ISREG(info.st_mode))
            continue;
        entry.size = static_cast<std::uint64_t>(info.st_size);
        entry.mtime = info.st_mtime;
        total += entry.size;
        entries.push_back(std::move(entry));
    }
    ::closedir(handle);
    if (total <= cap)
        return 0;

    // Oldest first; ties broken by path so concurrent evictors make
    // the same choice.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });

    std::size_t evicted = 0;
    for (const Entry &entry : entries) {
        if (total <= cap)
            break;
        // unlink, not truncate: a reader that already opened this
        // entry keeps its complete contents; new lookups miss cleanly.
        if (std::remove(entry.path.c_str()) != 0 && errno != ENOENT)
            continue; // lost a race or unwritable; skip it
        total -= entry.size;
        ++evicted;
    }
    if (evicted != 0)
        sbn_warn("analytic cache over SBN_CACHE_MAX_BYTES; evicted ",
                 evicted, " oldest entr",
                 evicted == 1 ? "y" : "ies", " from '", dir, "'");
    return evicted;
}

} // namespace sbn
