/**
 * @file
 * Approximate Markov chain for the multiplexed single bus with
 * priority to processors and p = 1 (paper Section 4).
 *
 * The full state space (request vector + per-module service stage) is
 * intractable, so the paper lumps it into (i, c, e, b):
 *
 *   i - modules still performing their access,
 *   c - distinct modules demanded (busy or with queued requests),
 *   e - modules holding a completed response waiting for the bus,
 *   b - bus status: 0 response transfer, 1 request transfer, 2 idle.
 *
 * Four reachable state classes (time step = one bus cycle):
 *
 *   class 0: (i, c, 0, 2), i = c        bus idle
 *   class 1: (i, c, e, 0), 1+i+e = c    response on the bus
 *   class 2: (i, c, e, 1), 1+i+e = c    request on the bus, no other
 *                                       eligible request waiting
 *   class 3: (i, c, e, 1), 1+i+e < c    request on the bus, more
 *                                       eligible requests waiting
 *
 * Transition structure uses four approximate probabilities:
 *
 *   P1 = i/r                       some access completes this cycle
 *                                  (accesses start in distinct bus
 *                                  cycles, so at most one completes
 *                                  per cycle; each lasts exactly r)
 *   P2 = S(c-1) / (S(c-1) + S(c))  the just-served request was alone
 *                                  at its module, with
 *                                  S(k) = Surj(n-1, k)
 *   P3 = (c-1)/m                   new request hits one of the other
 *                                  c-1 demanded modules
 *   P4 = c/m                       new request hits one of the c
 *                                  demanded modules
 *
 * P2 is re-derived from its verbal definition (the printed formula is
 * OCR-degraded); see DESIGN.md section 4. The class-3 completion
 * transition is likewise re-derived to respect processor priority;
 * Options::literal_class3 switches back to the literal printed target
 * for comparison.
 */

#ifndef SBN_ANALYTIC_PROCPRIO_HH
#define SBN_ANALYTIC_PROCPRIO_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbn {

/** Lumped state of the reduced chain. */
struct ProcPrioState
{
    int i; //!< modules mid-access
    int c; //!< distinct demanded modules
    int e; //!< modules holding a waiting response
    int b; //!< bus: 0 response, 1 request, 2 idle

    bool operator<(const ProcPrioState &o) const;
    bool operator==(const ProcPrioState &o) const;
};

/** Reduced Markov chain model (Section 4). */
class ProcPrioChain
{
  public:
    struct Options
    {
        /**
         * Use the literally printed class-3 completion target
         * (i,c,e,0) instead of the priority-consistent (i,c,e+1,1).
         * Kept for sensitivity analysis; Table 3b is validated against
         * the default.
         */
        bool literal_class3 = false;

        /**
         * Use P1 = 1/r (for i > 0) instead of P1 = i/r. The printed
         * text reads "Pi is approximately equal to I/r", which OCR
         * leaves ambiguous between i/r and 1/r; the numerical
         * validation against Table 3b selects the default.
         */
        bool constant_p1 = false;
    };

    /**
     * @param n processors, @param m modules, @param r memory/bus
     * cycle ratio (>= 1). Assumes p = 1.
     */
    ProcPrioChain(int n, int m, int r, Options options);

    /** Same with default options. */
    ProcPrioChain(int n, int m, int r)
        : ProcPrioChain(n, m, r, Options())
    {}

    /** Effective bandwidth: (r+2)/2 * P(bus busy). */
    double ebw() const { return ebw_; }

    /** Stationary bus utilization P(b != 2). */
    double busUtilization() const { return busUtilization_; }

    /** Reachable states (BFS order from the cold-start state). */
    const std::vector<ProcPrioState> &states() const { return states_; }

    /** Stationary law aligned with states(). */
    const std::vector<double> &stationary() const { return pi_; }

    /** Number of reachable states. */
    std::size_t numStates() const { return states_.size(); }

    /**
     * The paper's closed-form state count S = (3v^2+3v-2)/2 with
     * v = min(n, m), quoted for r > min(n, m). Our reachable
     * enumeration may differ slightly (see DESIGN.md); exposed so
     * tests can document the relation.
     */
    static std::size_t paperStateCount(int n, int m);

  private:
    struct Transition
    {
        ProcPrioState to;
        double prob;
    };

    std::vector<Transition> transitionsFrom(const ProcPrioState &s) const;
    double p1(int i) const;
    double p2(int c) const;
    double p3(int c) const;
    double p4(int c) const;

    int n_, m_, r_;
    Options options_;
    std::vector<ProcPrioState> states_;
    std::vector<double> pi_;
    double ebw_ = 0.0;
    double busUtilization_ = 0.0;
};

} // namespace sbn

#endif // SBN_ANALYTIC_PROCPRIO_HH
