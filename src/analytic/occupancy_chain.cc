#include "analytic/occupancy_chain.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <tuple>

#include "analytic/disk_cache.hh"
#include "core/fingerprint.hh"
#include "util/combinatorics.hh"
#include "util/logging.hh"

namespace sbn {

OccupancyChain::OccupancyChain(int n, int m, int cap)
    : n_(n), m_(m), cap_(cap), dtmc_(1)
{
    sbn_assert(n >= 1, "occupancy chain needs n >= 1 processors");
    sbn_assert(m >= 1, "occupancy chain needs m >= 1 modules");
    sbn_assert(cap >= 1, "occupancy chain needs service cap >= 1");
    buildStates();
    dtmc_ = Dtmc(states_.size());
}

void
OccupancyChain::buildStates()
{
    forEachPartition(n_, m_, [this](const std::vector<int> &parts) {
        index_[parts] = states_.size();
        states_.push_back(parts);
    });
    sbn_assert(!states_.empty(), "no occupancy states enumerated");
}

std::size_t
OccupancyChain::stateIndex(const std::vector<int> &state) const
{
    const auto it = index_.find(state);
    sbn_assert(it != index_.end(), "unknown occupancy state");
    return it->second;
}

void
OccupancyChain::forEachServicedSplit(
    const std::vector<std::pair<int, int>> &groups, int k,
    const std::function<void(const std::vector<int> &, double)> &visit)
    const
{
    // Choose s_g serviced modules from each equal-value group so that
    // sum(s_g) = k; weight = prod C(count_g, s_g) / C(x, k) where x is
    // the total busy count (uniform random subset of size k).
    int x = 0;
    for (const auto &[value, count] : groups)
        x += count;
    const double denom = binomial(x, k);

    std::vector<int> split(groups.size(), 0);
    std::function<void(std::size_t, int, double)> rec =
        [&](std::size_t g, int left, double ways) {
            if (g == groups.size()) {
                if (left == 0)
                    visit(split, ways / denom);
                return;
            }
            const int count = groups[g].second;
            for (int s = 0; s <= std::min(count, left); ++s) {
                split[g] = s;
                rec(g + 1, left - s, ways * binomial(count, s));
            }
            split[g] = 0;
        };
    rec(0, k, 1.0);
}

void
OccupancyChain::forEachRedistribution(
    const std::vector<std::pair<int, int>> &cell_groups, int k,
    const std::function<void(const std::vector<std::vector<int>> &, double)>
        &visit) const
{
    // Distribute k distinguishable requests over m distinguishable
    // modules, aggregated by equal-value cell groups. For group g
    // receiving the positive-additions multiset mu_g over cells_g
    // cells, the number of underlying (module, request) assignments is
    //
    //   A(mu_g, cells_g) * k! / prod(parts!)
    //
    // summed over groups, normalized by m^k total assignments.
    const double norm = factorial(k) / std::pow(static_cast<double>(m_), k);

    std::vector<std::vector<int>> pattern(cell_groups.size());
    std::function<void(std::size_t, int, double)> rec =
        [&](std::size_t g, int left, double weight) {
            if (g == cell_groups.size()) {
                if (left == 0)
                    visit(pattern, weight * norm);
                return;
            }
            const int cells = cell_groups[g].second;
            // Last group must absorb the remainder; others choose.
            for (int kg = 0; kg <= left; ++kg) {
                forEachBoundedPartition(
                    kg, cells, kg, [&](const std::vector<int> &mu) {
                        pattern[g] = mu;
                        double w = assignmentsOntoCells(mu, cells);
                        for (int part : mu)
                            w /= factorial(part);
                        rec(g + 1, left - kg, weight * w);
                    });
            }
            pattern[g].clear();
        };
    rec(0, k, 1.0);
}

void
OccupancyChain::buildTransitions()
{
    for (std::size_t s = 0; s < states_.size(); ++s) {
        const auto &v = states_[s];

        // Group the busy modules by occupancy value.
        std::vector<std::pair<int, int>> busy_groups; // (value, count)
        for (int value : v) {
            if (!busy_groups.empty() && busy_groups.back().first == value)
                ++busy_groups.back().second;
            else
                busy_groups.emplace_back(value, 1);
        }
        const int x = static_cast<int>(v.size());
        const int k = std::min(x, cap_);

        double row_total = 0.0;

        forEachServicedSplit(
            busy_groups, k,
            [&](const std::vector<int> &split, double w_split) {
                // Intermediate occupancy after servicing: s_g modules
                // of each group drop from value to value-1.
                std::map<int, int, std::greater<int>> cells;
                for (std::size_t g = 0; g < busy_groups.size(); ++g) {
                    const auto [value, count] = busy_groups[g];
                    if (count - split[g] > 0)
                        cells[value] += count - split[g];
                    if (split[g] > 0)
                        cells[value - 1] += split[g];
                }
                cells[0] += m_ - x; // idle modules

                std::vector<std::pair<int, int>> cell_groups;
                for (const auto &[value, count] : cells)
                    if (count > 0)
                        cell_groups.emplace_back(value, count);

                forEachRedistribution(
                    cell_groups, k,
                    [&](const std::vector<std::vector<int>> &pattern,
                        double w_redist) {
                        // Materialize the canonical successor state.
                        std::vector<int> next;
                        next.reserve(v.size() + 1);
                        for (std::size_t g = 0; g < cell_groups.size();
                             ++g) {
                            const auto [value, count] = cell_groups[g];
                            const auto &mu = pattern[g];
                            for (int part : mu)
                                if (value + part > 0)
                                    next.push_back(value + part);
                            const int untouched =
                                count - static_cast<int>(mu.size());
                            for (int u = 0; u < untouched; ++u)
                                if (value > 0)
                                    next.push_back(value);
                        }
                        std::sort(next.begin(), next.end(),
                                  std::greater<int>());
                        const double prob = w_split * w_redist;
                        row_total += prob;
                        dtmc_.addTransition(s, stateIndex(next), prob);
                    });
            });

        sbn_assert(std::abs(row_total - 1.0) < 1e-9,
                   "transition row ", s, " sums to ", row_total);
    }
    dtmc_.validate();
    built_ = true;
}

const Dtmc &
OccupancyChain::chain()
{
    if (!built_)
        buildTransitions();
    return dtmc_;
}

OccupancyChainResult
OccupancyChain::solve()
{
    chain(); // ensure built

    OccupancyChainResult result;
    result.states = states_;
    result.pi = dtmc_.stationaryDirect();

    const int x_max = std::min(n_, m_);
    result.busyPmf.assign(x_max + 1, 0.0);
    for (std::size_t s = 0; s < states_.size(); ++s) {
        const int x = static_cast<int>(states_[s].size());
        result.busyPmf[x] += result.pi[s];
        result.meanBusy += result.pi[s] * x;
        result.meanServiced += result.pi[s] * std::min(x, cap_);
    }
    return result;
}

namespace {

std::uint64_t
occupancyChainFingerprint(int n, int m, int cap)
{
    // Version tag first: bump on any change to the chain's dynamics
    // or the cached payload layout.
    std::uint64_t state =
        fingerprintMix(0xcbf29ce484222325ull, 0x4f43432e76303100ull);
    state = fingerprintMix(state, static_cast<std::uint64_t>(n));
    state = fingerprintMix(state, static_cast<std::uint64_t>(m));
    state = fingerprintMix(state, static_cast<std::uint64_t>(cap));
    return state;
}

/**
 * Solve (n, m, cap) through the SBN_CACHE_DIR disk cache
 * (analytic/disk_cache.hh): state enumeration is cheap and rebuilt
 * either way; the transition enumeration and the linear solve - the
 * expensive parts - are skipped on a disk hit. Payload layout:
 * meanBusy, meanServiced, busyPmf, pi.
 */
OccupancyChainResult
solveWithDiskCache(int n, int m, int cap)
{
    OccupancyChain chain(n, m, cap);
    const std::size_t pmf_size =
        static_cast<std::size_t>(std::min(n, m)) + 1;
    const std::size_t payload_size =
        2 + pmf_size + chain.numStates();
    const std::uint64_t fp = occupancyChainFingerprint(n, m, cap);

    std::vector<double> payload;
    if (loadCachedSolve("occ", fp, payload_size, payload)) {
        OccupancyChainResult result;
        result.states = chain.states();
        result.meanBusy = payload[0];
        result.meanServiced = payload[1];
        result.busyPmf.assign(
            payload.begin() + 2,
            payload.begin() + 2 + static_cast<std::ptrdiff_t>(pmf_size));
        result.pi.assign(payload.begin() + 2 +
                             static_cast<std::ptrdiff_t>(pmf_size),
                         payload.end());
        return result;
    }

    OccupancyChainResult result = chain.solve();
    payload.clear();
    payload.push_back(result.meanBusy);
    payload.push_back(result.meanServiced);
    payload.insert(payload.end(), result.busyPmf.begin(),
                   result.busyPmf.end());
    payload.insert(payload.end(), result.pi.begin(), result.pi.end());
    storeCachedSolve("occ", fp, payload);
    return result;
}

} // namespace

const OccupancyChainResult &
solveOccupancyChainCached(int n, int m, int cap)
{
    using Key = std::tuple<int, int, int>;
    static std::mutex cache_mutex;
    static std::map<Key, std::unique_ptr<OccupancyChainResult>> cache;

    const Key key{n, m, cap};
    {
        std::lock_guard<std::mutex> lock(cache_mutex);
        const auto it = cache.find(key);
        if (it != cache.end())
            return *it->second;
    }

    // Build and solve outside the lock so distinct shapes can be
    // solved concurrently; a losing racer on the same key discards
    // its (identical, deterministic) copy.
    auto solved = std::make_unique<OccupancyChainResult>(
        solveWithDiskCache(n, m, cap));

    std::lock_guard<std::mutex> lock(cache_mutex);
    const auto [it, inserted] = cache.emplace(key, std::move(solved));
    return *it->second;
}

} // namespace sbn
