/**
 * @file
 * Multiple-bus interconnection bandwidth models (Valero, Llaberia et
 * al., SIGMETRICS 1983 - reference [5] of the paper).
 *
 * n processors and m modules connected by b parallel buses: per memory
 * cycle at most b of the busy modules can be serviced. The paper's
 * Section 3.1.1 exact single-bus model reuses exactly this machinery
 * with b = r + 1, and its conclusions compare the single-bus design
 * against a 4-bus multiple-bus network.
 */

#ifndef SBN_ANALYTIC_MULTIBUS_HH
#define SBN_ANALYTIC_MULTIBUS_HH

namespace sbn {

/**
 * Exact bandwidth E[min(x, b)] (requests serviced per memory cycle)
 * of an n x m system with b buses, via the occupancy Markov chain.
 */
double multibusExactBandwidth(int n, int m, int b);

/**
 * Memoryless combinational approximation:
 * sum_x min(x, b) * P(x) with P(x) the distinct-target pmf.
 */
double multibusApproxBandwidth(int n, int m, int b);

} // namespace sbn

#endif // SBN_ANALYTIC_MULTIBUS_HH
