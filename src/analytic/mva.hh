/**
 * @file
 * Exact Mean Value Analysis of the product-form model of the buffered
 * system (paper Section 6).
 *
 * If bus and memory service times were exponential, the buffered
 * single-bus system would be a closed BCMP network (Baskett et al.
 * [18]) solvable with standard algorithms (Buzen [19], Reiser &
 * Lavenberg MVA [20]). The paper evaluates that model to show it
 * mispredicts the constant-service system by more than 25%
 * (pessimistically). This module implements the exact MVA solution of
 * that network so the discrepancy experiment can be reproduced:
 *
 *   - one FIFO bus station, mean service 1 bus cycle, visited twice
 *     per memory transaction (request + response transfer);
 *   - m identical FIFO memory stations, mean service r, visit ratio
 *     1/m each (uniform addressing);
 *   - a delay (think) stage Z = (1-p)/p * (r+2) modelling internal
 *     processing cycles (Z = 0 at p = 1);
 *   - n circulating customers (one outstanding request per processor).
 */

#ifndef SBN_ANALYTIC_MVA_HH
#define SBN_ANALYTIC_MVA_HH

namespace sbn {

/** Solved network metrics (all times in bus cycles). */
struct MvaResult
{
    double throughput = 0.0;      //!< transactions per bus cycle
    double ebw = 0.0;             //!< throughput * (r+2)
    double busUtilization = 0.0;  //!< 2 * throughput
    double moduleUtilization = 0.0; //!< r * throughput / m, per module
    double busQueueLength = 0.0;  //!< mean customers at the bus
    double moduleQueueLength = 0.0; //!< mean customers per module
    double responseTime = 0.0;    //!< mean cycle residence (no think)
};

/**
 * Exact MVA for the exponential buffered-bus network.
 *
 * @param n processors (customers), @param m modules, @param r memory
 * service mean in bus cycles, @param p re-request probability (think
 * stage (1-p)/p*(r+2); p in (0, 1]).
 */
MvaResult mvaBufferedBus(int n, int m, int r, double p = 1.0);

} // namespace sbn

#endif // SBN_ANALYTIC_MVA_HH
