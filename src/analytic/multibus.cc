#include "analytic/multibus.hh"

#include <algorithm>

#include "analytic/occupancy_chain.hh"
#include "util/combinatorics.hh"
#include "util/logging.hh"

namespace sbn {

double
multibusExactBandwidth(int n, int m, int b)
{
    sbn_assert(b >= 1, "multiple-bus model needs b >= 1");
    return solveOccupancyChainCached(n, m, b).meanServiced;
}

double
multibusApproxBandwidth(int n, int m, int b)
{
    sbn_assert(b >= 1, "multiple-bus model needs b >= 1");
    const auto pmf = distinctTargetPmf(n, m);
    double bw = 0.0;
    for (std::size_t x = 0; x < pmf.size(); ++x)
        bw += std::min(static_cast<int>(x), b) * pmf[x];
    return bw;
}

} // namespace sbn
