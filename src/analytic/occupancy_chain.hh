/**
 * @file
 * Exact memory-interference Markov chain over request-occupancy
 * states, with a per-cycle service cap.
 *
 * This is the shared analytical engine behind three models:
 *
 *  - crossbar (Bhandarkar [1]):       cap b >= min(n, m) - never binds;
 *  - multiple-bus (Valero et al [5]): cap b = number of buses;
 *  - multiplexed single-bus with priority to memory modules and p = 1
 *    (the paper's Section 3.1.1):     cap b = r + 1, because the bus
 *    can inject at most r+1 requests before the first response is due
 *    back, i.e. it behaves like an (r+1)-bus network per processor
 *    cycle.
 *
 * Model dynamics (one transition == one processor cycle):
 *
 *  1. The system state is the multiset {n_1..n_m} of per-module
 *     pending-request counts (sum = n, processors blocked on one
 *     request each, p = 1). States that are permutations of each other
 *     are lumped: the canonical state is the descending partition.
 *  2. With x busy (requested) modules, K = min(x, b) of them complete
 *     one service; when x > b the serviced subset is chosen uniformly
 *     at random (random arbitration, paper hypothesis (h)).
 *  3. Each serviced processor immediately issues a fresh request to a
 *     uniformly random module (paper hypothesis (e)-(f) with p = 1).
 *
 * Transition probabilities are computed exactly by enumerating
 * serviced-subset choices and redistribution patterns grouped by
 * equal-valued module classes, which keeps the enumeration polynomial
 * for the paper-scale systems (n, m <= 16).
 */

#ifndef SBN_ANALYTIC_OCCUPANCY_CHAIN_HH
#define SBN_ANALYTIC_OCCUPANCY_CHAIN_HH

#include <cstddef>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "markov/dtmc.hh"

namespace sbn {

/** Solved occupancy chain: states, stationary law, busy-count pmf. */
struct OccupancyChainResult
{
    /**
     * Canonical states: descending positive occupancies (implicit
     * zeros up to m modules). states[s] sums to n.
     */
    std::vector<std::vector<int>> states;

    /** Stationary probability of each state. */
    std::vector<double> pi;

    /**
     * Stationary distribution of the number of busy modules:
     * busyPmf[x] = P(x modules have >= 1 pending request),
     * x = 0..min(n, m). Entry 0 is 0 for n >= 1.
     */
    std::vector<double> busyPmf;

    /** E[number of busy modules]. */
    double meanBusy = 0.0;

    /** E[min(x, cap)] - requests serviced per cycle (bandwidth). */
    double meanServiced = 0.0;
};

/**
 * Builder/solver for the occupancy chain.
 */
class OccupancyChain
{
  public:
    /**
     * @param n    number of processors (outstanding requests, p = 1)
     * @param m    number of memory modules
     * @param cap  per-cycle service cap b (buses / r+1); >= 1
     */
    OccupancyChain(int n, int m, int cap);

    /** Number of canonical states (partitions of n into <= m parts). */
    std::size_t numStates() const { return states_.size(); }

    /** Canonical state list, in enumeration order. */
    const std::vector<std::vector<int>> &states() const { return states_; }

    /** The underlying transition matrix (built on first access). */
    const Dtmc &chain();

    /** Solve for the stationary law and summary statistics. */
    OccupancyChainResult solve();

  private:
    void buildStates();
    void buildTransitions();

    /** Enumerate serviced-count splits across equal-value groups. */
    void forEachServicedSplit(
        const std::vector<std::pair<int, int>> &groups, int k,
        const std::function<void(const std::vector<int> &, double)> &visit)
        const;

    /** Enumerate redistribution patterns over grouped cells. */
    void forEachRedistribution(
        const std::vector<std::pair<int, int>> &cell_groups, int k,
        const std::function<void(const std::vector<std::vector<int>> &,
                                 double)> &visit) const;

    std::size_t stateIndex(const std::vector<int> &state) const;

    int n_;
    int m_;
    int cap_;
    std::vector<std::vector<int>> states_;
    std::map<std::vector<int>, std::size_t> index_;
    Dtmc dtmc_;
    bool built_ = false;
};

/**
 * Solve the (n, m, cap) chain once per process and hand out the
 * cached result thereafter. Chain construction enumerates every
 * transition (the expensive part); sweeps and model cross-checks hit
 * the same handful of shapes over and over, so the analytic model
 * entry points route through this cache.
 *
 * When SBN_CACHE_DIR is set the solve also persists to disk
 * (analytic/disk_cache.hh), so repeated bench *invocations* skip the
 * transition enumeration and linear solve too.
 *
 * Thread-safe; the returned reference lives for the process.
 */
const OccupancyChainResult &solveOccupancyChainCached(int n, int m,
                                                      int cap);

} // namespace sbn

#endif // SBN_ANALYTIC_OCCUPANCY_CHAIN_HH
