#include "analytic/crossbar.hh"

#include <algorithm>
#include <cmath>

#include "analytic/occupancy_chain.hh"
#include "util/combinatorics.hh"

namespace sbn {

double
crossbarExactBandwidth(int n, int m)
{
    // With a full crossbar every busy module services one request per
    // cycle: the cap never binds at b = min(n, m) (x <= min(n, m)).
    return solveOccupancyChainCached(n, m, std::min(n, m)).meanBusy;
}

double
crossbarStreckerBandwidth(int n, int m)
{
    const double miss = std::pow(1.0 - 1.0 / static_cast<double>(m), n);
    return static_cast<double>(m) * (1.0 - miss);
}

double
crossbarApproxBandwidth(int n, int m)
{
    const auto pmf = distinctTargetPmf(n, m);
    double bw = 0.0;
    for (std::size_t x = 0; x < pmf.size(); ++x)
        bw += static_cast<double>(x) * pmf[x];
    return bw;
}

} // namespace sbn
