#include "analytic/procprio.hh"

#include <cmath>
#include <map>
#include <tuple>

#include "markov/dtmc.hh"
#include "util/combinatorics.hh"
#include "util/logging.hh"

namespace sbn {

bool
ProcPrioState::operator<(const ProcPrioState &o) const
{
    return std::tie(i, c, e, b) < std::tie(o.i, o.c, o.e, o.b);
}

bool
ProcPrioState::operator==(const ProcPrioState &o) const
{
    return std::tie(i, c, e, b) == std::tie(o.i, o.c, o.e, o.b);
}

double
ProcPrioChain::p1(int i) const
{
    if (i == 0)
        return 0.0;
    if (options_.constant_p1)
        return 1.0 / static_cast<double>(r_);
    return static_cast<double>(i) / static_cast<double>(r_);
}

double
ProcPrioChain::p2(int c) const
{
    // Probability that the just-served request was the only one
    // directed to its module, given c distinct demanded modules and
    // n-1 other outstanding requests covering either the other c-1
    // modules only (served module had 1 request) or all c.
    const double alone = surjections(n_ - 1, c - 1);
    const double shared = surjections(n_ - 1, c);
    const double denom = alone + shared;
    sbn_assert(denom > 0.0, "P2 undefined for n=", n_, " c=", c);
    return alone / denom;
}

double
ProcPrioChain::p3(int c) const
{
    return static_cast<double>(c - 1) / static_cast<double>(m_);
}

double
ProcPrioChain::p4(int c) const
{
    return static_cast<double>(c) / static_cast<double>(m_);
}

std::vector<ProcPrioChain::Transition>
ProcPrioChain::transitionsFrom(const ProcPrioState &s) const
{
    std::vector<Transition> out;
    auto add = [&](int i, int c, int e, int b, double prob) {
        if (prob <= 0.0)
            return;
        sbn_assert(i >= 0 && c >= 1 && e >= 0, "negative lumped state");
        sbn_assert(c <= std::min(n_, m_), "c exceeded min(n, m)");
        out.push_back(Transition{ProcPrioState{i, c, e, b}, prob});
    };

    const double P1 = p1(s.i);

    if (s.b == 2) {
        // Class 0: bus idle, all demanded modules mid-access (i = c).
        add(s.i - 1, s.c, 0, 0, P1);
        add(s.i, s.c, 0, 2, 1.0 - P1);
        return out;
    }

    if (s.b == 0) {
        // Class 1: a response transfer completes this cycle; the
        // served processor immediately re-issues (p = 1).
        const double P2 = p2(s.c);
        const double P3 = p3(s.c);
        const double P4 = p4(s.c);

        // Probability that the next bus tenant is a request: either
        // the served module empties and the fresh request targets an
        // idle module, or the served module still has queued requests
        // (one becomes eligible as it falls idle).
        const double to_request = P2 * (1.0 - P3) + (1.0 - P2) * P4;

        // A completion also occurred (P1 branches): the completing
        // module's response joins the waiting pool.
        add(s.i - 1, s.c - 1, s.e, 0, P1 * P2 * P3);
        add(s.i - 1, s.c, s.e + 1, 1, P1 * to_request);
        add(s.i - 1, s.c + 1, s.e + 1, 1,
            P1 * (1.0 - P2) * (1.0 - P4));

        // No completion (1-P1 branches).
        if (s.e > 0)
            add(s.i, s.c - 1, s.e - 1, 0, (1.0 - P1) * P2 * P3);
        else
            add(s.i, s.c - 1, 0, 2, (1.0 - P1) * P2 * P3);
        add(s.i, s.c, s.e, 1, (1.0 - P1) * to_request);
        add(s.i, s.c + 1, s.e, 1,
            (1.0 - P1) * (1.0 - P2) * (1.0 - P4));
        return out;
    }

    // b == 1: request transfer; its target module starts its access
    // next cycle.
    const bool extra_eligible = (1 + s.i + s.e) < s.c;

    if (!extra_eligible) {
        // Class 2: no other eligible request is waiting.
        add(s.i, s.c, s.e, 0, P1);
        if (s.e > 0)
            add(s.i + 1, s.c, s.e - 1, 0, 1.0 - P1);
        else
            add(s.i + 1, s.c, 0, 2, 1.0 - P1);
        return out;
    }

    // Class 3: further eligible requests wait for the bus. Under
    // processor priority they take the bus ahead of any response.
    if (options_.literal_class3) {
        add(s.i, s.c, s.e, 0, P1);
    } else {
        add(s.i, s.c, s.e + 1, 1, P1);
    }
    add(s.i + 1, s.c, s.e, 1, 1.0 - P1);
    return out;
}

ProcPrioChain::ProcPrioChain(int n, int m, int r, Options options)
    : n_(n), m_(m), r_(r), options_(options)
{
    sbn_assert(n >= 1 && m >= 1 && r >= 1,
               "procprio chain needs n, m, r >= 1");

    // Breadth-first reachability from the cold-start state: all
    // processors have just issued; the first request wins the bus
    // with one module demanded.
    const ProcPrioState start{0, 1, 0, 1};
    std::map<ProcPrioState, std::size_t> index;
    states_.push_back(start);
    index[start] = 0;

    for (std::size_t head = 0; head < states_.size(); ++head) {
        const ProcPrioState s = states_[head];
        for (const auto &t : transitionsFrom(s)) {
            if (!index.count(t.to)) {
                index[t.to] = states_.size();
                states_.push_back(t.to);
            }
        }
    }

    Dtmc dtmc(states_.size());
    for (std::size_t si = 0; si < states_.size(); ++si) {
        double total = 0.0;
        for (const auto &t : transitionsFrom(states_[si])) {
            dtmc.addTransition(si, index.at(t.to), t.prob);
            total += t.prob;
        }
        sbn_assert(std::abs(total - 1.0) < 1e-9,
                   "procprio row ", si, " sums to ", total);
    }
    dtmc.validate();
    pi_ = dtmc.stationaryDirect();

    for (std::size_t si = 0; si < states_.size(); ++si)
        if (states_[si].b != 2)
            busUtilization_ += pi_[si];
    ebw_ = busUtilization_ * static_cast<double>(r_ + 2) / 2.0;
}

std::size_t
ProcPrioChain::paperStateCount(int n, int m)
{
    const auto v = static_cast<std::size_t>(std::min(n, m));
    return (3 * v * v + 3 * v - 2) / 2;
}

} // namespace sbn
