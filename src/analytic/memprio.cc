#include "analytic/memprio.hh"

#include <algorithm>

#include "analytic/occupancy_chain.hh"
#include "util/combinatorics.hh"
#include "util/logging.hh"

namespace sbn {

double
memprioUsefulEbw(int x, int r)
{
    sbn_assert(x >= 0 && r >= 1, "usefulEbw needs x >= 0, r >= 1");
    if (x == 0)
        return 0.0;
    const double cycle = static_cast<double>(r + 2);
    if (x <= r + 1)
        return static_cast<double>(x) * cycle /
               static_cast<double>(r + 1 + x);
    return cycle / 2.0;
}

double
memprioExactEbw(int n, int m, int r)
{
    sbn_assert(r >= 1, "memory/bus cycle ratio r must be >= 1");
    const auto &result = solveOccupancyChainCached(n, m, r + 1);

    double ebw = 0.0;
    for (std::size_t x = 0; x < result.busyPmf.size(); ++x)
        ebw += result.busyPmf[x] * memprioUsefulEbw(static_cast<int>(x), r);
    return ebw;
}

double
memprioApproxEbw(int n, int m, int r)
{
    sbn_assert(r >= 1, "memory/bus cycle ratio r must be >= 1");
    const auto pmf = distinctTargetPmf(n, m);
    double ebw = 0.0;
    for (std::size_t x = 0; x < pmf.size(); ++x)
        ebw += pmf[x] * memprioUsefulEbw(static_cast<int>(x), r);
    return ebw;
}

double
memprioApproxSymmetricEbw(int n, int m, int r)
{
    return memprioApproxEbw(std::min(n, m), std::max(n, m), r);
}

} // namespace sbn
