/**
 * @file
 * Analytical EBW models for the multiplexed single bus with priority
 * to memory modules and p = 1 (paper Sections 3.1.1 and 3.2).
 *
 * Under memory priority the request-occupancy vector n fully defines
 * the system state, and the bus can inject at most r+1 new requests
 * per processor cycle, so the occupancy chain with cap b = r+1
 * applies. The EBW weights each state by the useful-cycle fraction:
 * with x busy modules and x <= r+1, a service round spans r+1+x bus
 * cycles (x request transfers pipelined under the first access's r
 * cycles, then x response transfers), servicing x requests; for
 * x > r+1 the bus saturates at one service per 2 cycles.
 */

#ifndef SBN_ANALYTIC_MEMPRIO_HH
#define SBN_ANALYTIC_MEMPRIO_HH

namespace sbn {

/**
 * Per-state EBW contribution for x busy modules and memory-cycle
 * ratio r:
 *
 *   x <= r+1 :  x * (r+2) / (r+1+x)
 *   x >  r+1 :  (r+2) / 2          (bus saturated)
 */
double memprioUsefulEbw(int x, int r);

/**
 * Exact EBW of the memory-priority multiplexed single bus (Section
 * 3.1.1): occupancy chain with cap r+1, EBW = E[usefulEbw(x, r)].
 * Requests serviced per processor cycle; symmetric in n and m.
 */
double memprioExactEbw(int n, int m, int r);

/**
 * Combinational approximation (Section 3.2): memoryless request
 * pattern, EBW = sum_x P(x) * usefulEbw(x, r).
 */
double memprioApproxEbw(int n, int m, int r);

/**
 * Symmetrized approximation suggested by the exact model's n/m
 * symmetry (Section 5): evaluate the approximation at
 * n* = min(n, m), m* = max(n, m).
 */
double memprioApproxSymmetricEbw(int n, int m, int r);

} // namespace sbn

#endif // SBN_ANALYTIC_MEMPRIO_HH
