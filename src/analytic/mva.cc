#include "analytic/mva.hh"

#include "util/logging.hh"

namespace sbn {

MvaResult
mvaBufferedBus(int n, int m, int r, double p)
{
    sbn_assert(n >= 1 && m >= 1 && r >= 1, "mva needs n, m, r >= 1");
    sbn_assert(p > 0.0 && p <= 1.0, "mva needs p in (0, 1]");

    const double s_bus = 1.0;                 // bus mean service
    const double v_bus = 2.0;                 // visits per transaction
    const double s_mem = static_cast<double>(r);
    const double v_mem = 1.0 / static_cast<double>(m);
    const double think =
        (1.0 - p) / p * static_cast<double>(r + 2);

    double q_bus = 0.0; // mean queue at the bus
    double q_mem = 0.0; // mean queue at one memory station

    double x = 0.0;
    double resp = 0.0;
    for (int k = 1; k <= n; ++k) {
        const double r_bus = s_bus * (1.0 + q_bus);
        const double r_mem = s_mem * (1.0 + q_mem);
        // Residence = visits * per-visit response, summed over the
        // bus and the m identical memory stations.
        resp = v_bus * r_bus + static_cast<double>(m) * v_mem * r_mem;
        x = static_cast<double>(k) / (think + resp);
        q_bus = x * v_bus * r_bus;
        q_mem = x * v_mem * r_mem;
    }

    MvaResult result;
    result.throughput = x;
    result.ebw = x * static_cast<double>(r + 2);
    result.busUtilization = x * v_bus * s_bus;
    result.moduleUtilization = x * v_mem * s_mem;
    result.busQueueLength = q_bus;
    result.moduleQueueLength = q_mem;
    result.responseTime = resp;
    return result;
}

} // namespace sbn
