/**
 * @file
 * Approximate analytical model of the BUFFERED system with the real
 * constant (deterministic) service times - the open problem the paper
 * leaves in Section 6 ("Exact or approximate analytical models are
 * not constructed so far").
 *
 * The buffered system is the closed network of mva.hh, but its bus
 * and memory services are constants, which breaks the BCMP product
 * form. This module solves the network with an MVA recursion whose
 * per-station response uses the deterministic-service residual
 * correction: an arriving customer that finds the server busy waits
 * only s/2 on average for the in-service customer (vs s in the
 * exponential model):
 *
 *     R_i(k) = s_i * (1 + Q_i(k-1)) - (s_i / 2) * U_i(k-1)
 *
 * This is the classical FCFS/D residual adjustment applied within the
 * exact-MVA population recursion. Throughput is additionally clamped
 * to the deterministic capacity bounds X <= 1/2 (bus) and X <= m/r
 * (aggregate memory), which the corrected recursion can otherwise
 * overshoot near saturation.
 *
 * Validation (tests/test_detmva.cc, bench/expo_vs_const): against the
 * constant-service simulation this model stays within a few percent
 * over the paper's Table 4 grid, where the exponential product-form
 * model is 15-25% pessimistic.
 */

#ifndef SBN_ANALYTIC_DETMVA_HH
#define SBN_ANALYTIC_DETMVA_HH

#include "analytic/mva.hh"

namespace sbn {

/**
 * Approximate MVA with deterministic-service residual correction for
 * the buffered multiplexed bus.
 *
 * @param n processors, @param m modules, @param r memory service in
 * bus cycles, @param p re-request probability (think stage
 * (1-p)/p*(r+2)).
 */
MvaResult mvaBufferedBusDeterministic(int n, int m, int r,
                                      double p = 1.0);

} // namespace sbn

#endif // SBN_ANALYTIC_DETMVA_HH
