/**
 * @file
 * Reassembly of shard record files into the flat-grid ordered stream.
 *
 * The merge layer reads every shard's JSONL file, validates the
 * records against the sweep they claim to belong to, and returns them
 * sorted by flat index - the same order, and (because records
 * serialize deterministically) the same bytes, as the single-process
 * streamed run would have produced. Validation is strict:
 *
 *  - every flat index in [0, gridSize) must be present exactly once;
 *    a missing point names the holes, a duplicated point is accepted
 *    only if the copies are bit-identical (two shards may legally
 *    recompute the same point - determinism makes the copies equal);
 *  - when per-point run fingerprints are supplied, every record must
 *    carry the expected fingerprint for its index, so records from a
 *    different grid, seed, or adaptive setup are rejected instead of
 *    silently merged.
 */

#ifndef SBN_SHARD_MERGE_HH
#define SBN_SHARD_MERGE_HH

#include <ostream>
#include <string>
#include <vector>

#include "shard/plan.hh"
#include "shard/result_io.hh"

namespace sbn {

/** What a merge validates incoming records against. */
struct MergeCheck
{
    std::size_t gridSize = 0;
    /** Per-point expected run fingerprints (empty = structure-only
     *  validation: indices, completeness, duplicate consistency). */
    std::vector<std::uint64_t> expectedRunFp;

    /**
     * Optional shard-plan attribution: when shardCount != 0,
     * missing-point diagnostics name the shard file expected to own
     * each hole (dir + ShardPlan::owner), not just the index.
     */
    std::size_t shardCount = 0;
    ShardLayout layout = ShardLayout::Contiguous;
    std::string dir;
};

/** Full-validation check for a plain sweep over @p points. */
MergeCheck sweepMergeCheck(const std::vector<SystemConfig> &points);

/** Full-validation check for an adaptive sweep over @p points. */
MergeCheck adaptiveMergeCheck(const std::vector<SystemConfig> &points,
                              const PrecisionTarget &target,
                              const RoundSchedule &schedule);

/** Structure-only check when the spec is not at hand. */
MergeCheck structuralMergeCheck(std::size_t grid_size);

/** Canonical shard file name: dir/shard-<i>-of-<N>.jsonl. */
std::string shardFilePath(const std::string &dir,
                          const ShardSpec &shard);

/** The canonical file paths of every shard of an N-shard run. */
std::vector<std::string> shardFilePaths(const std::string &dir,
                                        std::size_t shard_count);

/**
 * A merge that tolerates holes: the records found (flat order) plus
 * the grid indices with no record (ascending).
 */
struct PartialMerge
{
    std::vector<PointRecord> records;
    std::vector<std::size_t> missing;

    bool complete() const { return missing.empty(); }
};

/**
 * Read, validate and order the records of @p paths under @p check,
 * tolerating missing points (reported in the result, not fatal).
 * Everything else - foreign fingerprints, conflicting duplicates,
 * out-of-grid indices - is still fatal with the offending file
 * named. With @p tolerate_partial_tail, a torn final line per file
 * (the kill artifact) is dropped instead of fatal, which is what the
 * supervisor's degraded merge needs after a worker ran out of
 * retries mid-append.
 */
PartialMerge
collectRecordFiles(const std::vector<std::string> &paths,
                   const MergeCheck &check,
                   bool tolerate_partial_tail = false);

/**
 * Human-readable accounting of @p missing grid indices under
 * @p check: exact indices grouped by the shard file expected to own
 * them (when the check carries shard attribution), capped per group.
 */
std::string describeMissingPoints(const MergeCheck &check,
                                  const std::vector<std::size_t> &missing);

/**
 * Read, validate and order the records of @p paths under @p check.
 * Fatal (with the offending file/index named, and holes grouped by
 * their expected owner shard file) on any validation failure; the
 * result holds exactly gridSize records in flat order.
 */
std::vector<PointRecord>
mergeRecordFiles(const std::vector<std::string> &paths,
                 const MergeCheck &check);

/** Serialize @p records (one line each) in the given order. */
void writeRecords(std::ostream &os,
                  const std::vector<PointRecord> &records);

} // namespace sbn

#endif // SBN_SHARD_MERGE_HH
