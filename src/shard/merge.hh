/**
 * @file
 * Reassembly of shard record files into the flat-grid ordered stream.
 *
 * The merge layer reads every shard's JSONL file, validates the
 * records against the sweep they claim to belong to, and returns them
 * sorted by flat index - the same order, and (because records
 * serialize deterministically) the same bytes, as the single-process
 * streamed run would have produced. Validation is strict:
 *
 *  - every flat index in [0, gridSize) must be present exactly once;
 *    a missing point names the holes, a duplicated point is accepted
 *    only if the copies are bit-identical (two shards may legally
 *    recompute the same point - determinism makes the copies equal);
 *  - when per-point run fingerprints are supplied, every record must
 *    carry the expected fingerprint for its index, so records from a
 *    different grid, seed, or adaptive setup are rejected instead of
 *    silently merged.
 */

#ifndef SBN_SHARD_MERGE_HH
#define SBN_SHARD_MERGE_HH

#include <ostream>
#include <string>
#include <vector>

#include "shard/plan.hh"
#include "shard/result_io.hh"

namespace sbn {

/** What a merge validates incoming records against. */
struct MergeCheck
{
    std::size_t gridSize = 0;
    /** Per-point expected run fingerprints (empty = structure-only
     *  validation: indices, completeness, duplicate consistency). */
    std::vector<std::uint64_t> expectedRunFp;
};

/** Full-validation check for a plain sweep over @p points. */
MergeCheck sweepMergeCheck(const std::vector<SystemConfig> &points);

/** Full-validation check for an adaptive sweep over @p points. */
MergeCheck adaptiveMergeCheck(const std::vector<SystemConfig> &points,
                              const PrecisionTarget &target,
                              const RoundSchedule &schedule);

/** Structure-only check when the spec is not at hand. */
MergeCheck structuralMergeCheck(std::size_t grid_size);

/** Canonical shard file name: dir/shard-<i>-of-<N>.jsonl. */
std::string shardFilePath(const std::string &dir,
                          const ShardSpec &shard);

/** The canonical file paths of every shard of an N-shard run. */
std::vector<std::string> shardFilePaths(const std::string &dir,
                                        std::size_t shard_count);

/**
 * Read, validate and order the records of @p paths under @p check.
 * Fatal (with the offending file/index named) on any validation
 * failure; the result holds exactly gridSize records in flat order.
 */
std::vector<PointRecord>
mergeRecordFiles(const std::vector<std::string> &paths,
                 const MergeCheck &check);

/** Serialize @p records (one line each) in the given order. */
void writeRecords(std::ostream &os,
                  const std::vector<PointRecord> &records);

} // namespace sbn

#endif // SBN_SHARD_MERGE_HH
