/**
 * @file
 * Deterministic partitioning of a sweep grid across shards.
 *
 * A ShardSpec names one shard of N ("i/N" addressing); a ShardPlan
 * maps every shard to the set of flat grid indices it owns. The
 * assignment is a pure function of (grid size, shard count, layout) -
 * never of execution timing or host identity - so any process
 * anywhere can compute which points shard i runs, and the union over
 * all shards is exactly [0, gridSize) with no overlap.
 *
 * Two layouts are offered:
 *  - Contiguous: balanced consecutive ranges (shard i of N gets
 *    ~gridSize/N adjacent indices; the first gridSize%N shards get
 *    one extra). Best when neighboring grid points cost similar time.
 *  - Strided: shard i gets indices i, i+N, i+2N, ... Best when cost
 *    varies systematically along the grid (e.g. the p axis), since
 *    every shard samples the whole range.
 *
 * Per-point seed derivation lives in the point configs themselves
 * (each materialized point carries its own config.seed), so a shard
 * computes exactly the replications the single-process run would -
 * the partition only chooses *where* a point runs, never *what* it
 * computes.
 */

#ifndef SBN_SHARD_PLAN_HH
#define SBN_SHARD_PLAN_HH

#include <cstddef>
#include <string>
#include <vector>

namespace sbn {

/** How a ShardPlan lays grid indices onto shards. */
enum class ShardLayout
{
    Contiguous,
    Strided,
};

/** Parse "contiguous" / "strided"; fatal on anything else. */
ShardLayout parseShardLayout(const std::string &text);

/** Canonical name of a layout ("contiguous" / "strided"). */
const char *shardLayoutName(ShardLayout layout);

/** One shard of N, in "i/N" addressing (i is 0-based, i < N). */
struct ShardSpec
{
    std::size_t index = 0;
    std::size_t count = 1;

    /**
     * Parse the "i/N" form (e.g. "2/4"). Fatal with a diagnostic on
     * malformed text, N == 0 or i >= N.
     */
    static ShardSpec parse(const std::string &text);

    /** Render back to the canonical "i/N" form. */
    std::string toString() const;
};

/**
 * The full deterministic assignment of a gridSize-point sweep to
 * shardCount shards under a layout.
 */
class ShardPlan
{
  public:
    /** @param shard_count number of shards (>= 1). */
    ShardPlan(std::size_t grid_size, std::size_t shard_count,
              ShardLayout layout = ShardLayout::Contiguous);

    std::size_t gridSize() const { return gridSize_; }
    std::size_t shardCount() const { return shardCount_; }
    ShardLayout layout() const { return layout_; }

    /** Number of points shard @p shard owns. */
    std::size_t shardSize(std::size_t shard) const;

    /**
     * The flat grid indices shard @p shard owns, strictly increasing.
     * Suitable for the exec-layer subset entry points
     * (ParallelRunner::mapConfigsStreamedSubset,
     * AdaptiveReplicator::runPointsSubset).
     */
    std::vector<std::size_t> indices(std::size_t shard) const;

    /** Which shard owns flat index @p index. */
    std::size_t owner(std::size_t index) const;

  private:
    std::size_t gridSize_;
    std::size_t shardCount_;
    ShardLayout layout_;
};

} // namespace sbn

#endif // SBN_SHARD_PLAN_HH
