#include "shard/plan.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "util/logging.hh"

namespace sbn {

ShardLayout
parseShardLayout(const std::string &text)
{
    if (text == "contiguous")
        return ShardLayout::Contiguous;
    if (text == "strided")
        return ShardLayout::Strided;
    sbn_fatal("shard layout '", text,
              "' is not recognized (expected 'contiguous' or "
              "'strided')");
}

const char *
shardLayoutName(ShardLayout layout)
{
    return layout == ShardLayout::Contiguous ? "contiguous" : "strided";
}

ShardSpec
ShardSpec::parse(const std::string &text)
{
    const auto bad = [&]() -> ShardSpec {
        sbn_fatal("shard spec '", text,
                  "' is malformed (expected 'i/N' with 0 <= i < N, "
                  "e.g. '0/4')");
    };

    const std::size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size())
        return bad();

    const auto parseField = [&](const std::string &field,
                                std::size_t &out) {
        errno = 0;
        char *end = nullptr;
        const unsigned long long value =
            std::strtoull(field.c_str(), &end, 10);
        if (end == field.c_str() || *end != '\0' || errno == ERANGE ||
            field[0] == '-' || field[0] == '+')
            return false;
        out = static_cast<std::size_t>(value);
        return true;
    };

    ShardSpec spec;
    if (!parseField(text.substr(0, slash), spec.index) ||
        !parseField(text.substr(slash + 1), spec.count))
        return bad();
    if (spec.count == 0)
        sbn_fatal("shard spec '", text, "': shard count must be >= 1");
    if (spec.index >= spec.count)
        sbn_fatal("shard spec '", text, "': shard index ", spec.index,
                  " is out of range for ", spec.count, " shard(s)");
    return spec;
}

std::string
ShardSpec::toString() const
{
    return std::to_string(index) + "/" + std::to_string(count);
}

ShardPlan::ShardPlan(std::size_t grid_size, std::size_t shard_count,
                     ShardLayout layout)
    : gridSize_(grid_size), shardCount_(shard_count), layout_(layout)
{
    sbn_assert(shardCount_ >= 1, "a plan needs at least one shard");
}

std::size_t
ShardPlan::shardSize(std::size_t shard) const
{
    sbn_assert(shard < shardCount_, "shard index out of range");
    const std::size_t base = gridSize_ / shardCount_;
    const std::size_t extra = gridSize_ % shardCount_;
    // Both layouts spread the remainder over the first `extra`
    // shards, so sizes match across layouts for the same (size, N).
    return base + (shard < extra ? 1 : 0);
}

std::vector<std::size_t>
ShardPlan::indices(std::size_t shard) const
{
    sbn_assert(shard < shardCount_, "shard index out of range");
    std::vector<std::size_t> out;
    out.reserve(shardSize(shard));
    if (layout_ == ShardLayout::Contiguous) {
        const std::size_t base = gridSize_ / shardCount_;
        const std::size_t extra = gridSize_ % shardCount_;
        const std::size_t begin =
            shard * base + std::min(shard, extra);
        const std::size_t end = begin + shardSize(shard);
        for (std::size_t i = begin; i < end; ++i)
            out.push_back(i);
    } else {
        for (std::size_t i = shard; i < gridSize_; i += shardCount_)
            out.push_back(i);
    }
    return out;
}

std::size_t
ShardPlan::owner(std::size_t index) const
{
    sbn_assert(index < gridSize_, "grid index out of range");
    if (layout_ == ShardLayout::Strided)
        return index % shardCount_;
    const std::size_t base = gridSize_ / shardCount_;
    const std::size_t extra = gridSize_ % shardCount_;
    // First `extra` shards own (base + 1) points each.
    const std::size_t fat_span = extra * (base + 1);
    if (index < fat_span)
        return index / (base + 1);
    return extra + (index - fat_span) / base;
}

} // namespace sbn
