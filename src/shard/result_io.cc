#include "shard/result_io.hh"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>

#include "core/fingerprint.hh"
#include "shard/fault.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace sbn {

namespace {

// v3: plain-sweep records may carry the latency quantile summary
// (config.collectLatency) as an optional lat_* key group. v2 added
// the workload serialization (the workload layer also bumped the
// config-fingerprint version, so v1 records are doubly stale).
constexpr const char *kRecordType = "sbn.point.v3";

// Shared with configFingerprint and the analytic disk cache so the
// decimal+bits codecs can never drift (core/fingerprint.hh).
std::uint64_t
doubleBits(double value)
{
    return doubleFingerprintBits(value);
}

double
bitsToDouble(std::uint64_t bits)
{
    return doubleFromFingerprintBits(bits);
}

std::string
formatDouble(double value)
{
    return formatExactDouble(value);
}

} // namespace

const char *
runModeName(RunMode mode)
{
    return mode == RunMode::Sweep ? "sweep" : "adaptive";
}

bool
PointRecord::bitIdentical(const PointRecord &other) const
{
    if (hasLatency != other.hasLatency)
        return false;
    if (hasLatency) {
        const LatencySummary &a = latency;
        const LatencySummary &b = other.latency;
        if (a.samples != b.samples ||
            doubleBits(a.waitP50) != doubleBits(b.waitP50) ||
            doubleBits(a.waitP90) != doubleBits(b.waitP90) ||
            doubleBits(a.waitP99) != doubleBits(b.waitP99) ||
            doubleBits(a.waitMax) != doubleBits(b.waitMax) ||
            doubleBits(a.residenceP50) != doubleBits(b.residenceP50) ||
            doubleBits(a.residenceP90) != doubleBits(b.residenceP90) ||
            doubleBits(a.residenceP99) != doubleBits(b.residenceP99) ||
            doubleBits(a.residenceMax) != doubleBits(b.residenceMax))
            return false;
    }
    return flatIndex == other.flatIndex &&
           configFp == other.configFp && runFp == other.runFp &&
           masterSeed == other.masterSeed && mode == other.mode &&
           workload == other.workload &&
           replications == other.replications &&
           rounds == other.rounds && converged == other.converged &&
           doubleBits(mean) == doubleBits(other.mean) &&
           doubleBits(halfWidth) == doubleBits(other.halfWidth);
}

std::uint64_t
sweepRunFingerprint(std::uint64_t config_fp)
{
    return fingerprintMix(config_fp, 0x53574545502e7631ull);
}

std::uint64_t
adaptiveRunFingerprint(std::uint64_t config_fp,
                       const PrecisionTarget &target,
                       const RoundSchedule &schedule)
{
    std::uint64_t state =
        fingerprintMix(config_fp, 0x41444150542e7631ull);
    state = fingerprintMix(state, doubleBits(target.relative));
    state = fingerprintMix(state, doubleBits(target.absolute));
    state = fingerprintMix(state, doubleBits(target.level));
    state = fingerprintMix(state, schedule.initial);
    state = fingerprintMix(state, doubleBits(schedule.growth));
    state = fingerprintMix(state, schedule.cap);
    return state;
}

PointRecord
makeSweepRecord(std::size_t flat_index, const SystemConfig &config,
                double value)
{
    PointRecord record;
    record.flatIndex = flat_index;
    record.configFp = configFingerprint(config);
    record.runFp = sweepRunFingerprint(record.configFp);
    record.masterSeed = config.seed;
    record.mode = RunMode::Sweep;
    record.workload = formatWorkload(config.workload);
    record.replications = 1;
    record.rounds = 0;
    record.converged = true;
    record.mean = value;
    record.halfWidth = 0.0;
    return record;
}

PointRecord
makeSweepRecord(std::size_t flat_index, const SystemConfig &config,
                const PointSample &sample)
{
    PointRecord record = makeSweepRecord(flat_index, config, sample.ebw);
    record.hasLatency = sample.hasLatency;
    if (sample.hasLatency)
        record.latency = sample.latency;
    return record;
}

PointRecord
makeAdaptiveRecord(std::size_t flat_index, const SystemConfig &config,
                   const AdaptiveEstimate &estimate,
                   const PrecisionTarget &target,
                   const RoundSchedule &schedule)
{
    PointRecord record;
    record.flatIndex = flat_index;
    record.configFp = configFingerprint(config);
    record.runFp =
        adaptiveRunFingerprint(record.configFp, target, schedule);
    record.masterSeed = config.seed;
    record.mode = RunMode::Adaptive;
    record.workload = formatWorkload(config.workload);
    record.replications = estimate.estimate.samples;
    record.rounds = estimate.rounds;
    record.converged = estimate.converged;
    record.mean = estimate.estimate.mean;
    record.halfWidth = estimate.estimate.halfWidth;
    return record;
}

std::string
formatRecord(const PointRecord &record)
{
    std::string out;
    out.reserve(256);
    out += "{\"type\":\"";
    out += kRecordType;
    out += "\",\"i\":";
    out += std::to_string(record.flatIndex);
    out += ",\"config\":\"";
    out += formatFingerprint(record.configFp);
    out += "\",\"run\":\"";
    out += formatFingerprint(record.runFp);
    out += "\",\"seed\":";
    out += std::to_string(record.masterSeed);
    out += ",\"mode\":\"";
    out += runModeName(record.mode);
    out += "\",\"workload\":\"";
    out += record.workload;
    out += "\",\"reps\":";
    out += std::to_string(record.replications);
    out += ",\"rounds\":";
    out += std::to_string(record.rounds);
    out += ",\"converged\":";
    out += record.converged ? "true" : "false";
    out += ",\"mean\":";
    out += formatDouble(record.mean);
    out += ",\"mean_bits\":\"";
    out += formatFingerprint(doubleBits(record.mean));
    out += "\",\"hw\":";
    out += formatDouble(record.halfWidth);
    out += ",\"hw_bits\":\"";
    out += formatFingerprint(doubleBits(record.halfWidth));
    out += '"';
    if (record.hasLatency) {
        const auto pair = [&](const char *key, double value) {
            out += ",\"";
            out += key;
            out += "\":";
            out += formatDouble(value);
            out += ",\"";
            out += key;
            out += "_bits\":\"";
            out += formatFingerprint(doubleBits(value));
            out += '"';
        };
        out += ",\"lat_n\":";
        out += std::to_string(record.latency.samples);
        pair("lw50", record.latency.waitP50);
        pair("lw90", record.latency.waitP90);
        pair("lw99", record.latency.waitP99);
        pair("lwmax", record.latency.waitMax);
        pair("lr50", record.latency.residenceP50);
        pair("lr90", record.latency.residenceP90);
        pair("lr99", record.latency.residenceP99);
        pair("lrmax", record.latency.residenceMax);
    }
    out += '}';
    return out;
}

namespace {

/** One parsed key/value of the flat record object. */
struct RawValue
{
    enum class Kind
    {
        String,
        Number,
        Bool
    };
    Kind kind;
    std::string text; //!< string contents / number text / "true"...
};

/**
 * Tokenize a flat one-line JSON object into key -> raw value. No
 * nesting, no escapes, no null - the record grammar is deliberately
 * tiny so validation can be airtight. Returns false + error.
 */
bool
tokenizeFlatObject(const std::string &line,
                   std::map<std::string, RawValue> &out,
                   std::string &error)
{
    std::size_t pos = 0;
    const auto skipSpace = [&] {
        while (pos < line.size() &&
               (line[pos] == ' ' || line[pos] == '\t'))
            ++pos;
    };
    const auto fail = [&](const std::string &what) {
        error = what + " at column " + std::to_string(pos + 1);
        return false;
    };
    const auto parseString = [&](std::string &text) {
        if (pos >= line.size() || line[pos] != '"')
            return false;
        ++pos;
        const std::size_t begin = pos;
        while (pos < line.size() && line[pos] != '"') {
            const char c = line[pos];
            if (c == '\\' || static_cast<unsigned char>(c) < 0x20)
                return false; // no escapes in the record grammar
            ++pos;
        }
        if (pos >= line.size())
            return false;
        text.assign(line, begin, pos - begin);
        ++pos;
        return true;
    };

    skipSpace();
    if (pos >= line.size() || line[pos] != '{')
        return fail("expected '{'");
    ++pos;

    bool first = true;
    for (;;) {
        skipSpace();
        if (pos < line.size() && line[pos] == '}') {
            ++pos;
            break;
        }
        if (!first) {
            if (pos >= line.size() || line[pos] != ',')
                return fail("expected ',' or '}'");
            ++pos;
            skipSpace();
        }
        first = false;

        std::string key;
        if (!parseString(key))
            return fail("expected a string key");
        skipSpace();
        if (pos >= line.size() || line[pos] != ':')
            return fail("expected ':'");
        ++pos;
        skipSpace();

        RawValue value;
        if (pos < line.size() && line[pos] == '"') {
            value.kind = RawValue::Kind::String;
            if (!parseString(value.text))
                return fail("unterminated string value");
        } else if (line.compare(pos, 4, "true") == 0) {
            value.kind = RawValue::Kind::Bool;
            value.text = "true";
            pos += 4;
        } else if (line.compare(pos, 5, "false") == 0) {
            value.kind = RawValue::Kind::Bool;
            value.text = "false";
            pos += 5;
        } else {
            const std::size_t begin = pos;
            while (pos < line.size() &&
                   (std::isdigit(static_cast<unsigned char>(
                        line[pos])) ||
                    line[pos] == '-' || line[pos] == '+' ||
                    line[pos] == '.' || line[pos] == 'e' ||
                    line[pos] == 'E' || line[pos] == 'n' ||
                    line[pos] == 'a' || line[pos] == 'i' ||
                    line[pos] == 'f'))
                ++pos; // digits plus nan/inf spellings
            if (pos == begin)
                return fail("expected a value");
            value.kind = RawValue::Kind::Number;
            value.text.assign(line, begin, pos - begin);
        }

        if (!out.emplace(key, value).second) {
            error = "duplicate key '" + key + "'";
            return false;
        }
    }
    skipSpace();
    if (pos != line.size()) {
        error = "trailing characters after the record object";
        return false;
    }
    return true;
}

bool
parseUnsigned(const std::string &text, std::uint64_t &out)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || errno == ERANGE)
        return false;
    out = value;
    return true;
}

bool
parseDecimalDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        return false;
    out = value;
    return true;
}

} // namespace

bool
parseRecord(const std::string &line, PointRecord &out,
            std::string &error)
{
    std::map<std::string, RawValue> fields;
    if (!tokenizeFlatObject(line, fields, error))
        return false;

    const auto take = [&](const char *key, RawValue::Kind kind,
                          std::string &text) {
        const auto it = fields.find(key);
        if (it == fields.end()) {
            error = std::string("missing key '") + key + "'";
            return false;
        }
        if (it->second.kind != kind) {
            error = std::string("key '") + key + "' has the wrong type";
            return false;
        }
        text = it->second.text;
        fields.erase(it);
        return true;
    };

    PointRecord record;
    std::string text;

    if (!take("type", RawValue::Kind::String, text))
        return false;
    if (text != kRecordType) {
        error = "unknown record type '" + text + "' (expected " +
                kRecordType + ")";
        return false;
    }

    std::uint64_t number;
    if (!take("i", RawValue::Kind::Number, text))
        return false;
    if (!parseUnsigned(text, number)) {
        error = "'i' is not an unsigned integer: " + text;
        return false;
    }
    record.flatIndex = static_cast<std::size_t>(number);

    if (!take("config", RawValue::Kind::String, text))
        return false;
    if (!parseFingerprint(text, record.configFp)) {
        error = "'config' is not a 0x fingerprint: " + text;
        return false;
    }
    if (!take("run", RawValue::Kind::String, text))
        return false;
    if (!parseFingerprint(text, record.runFp)) {
        error = "'run' is not a 0x fingerprint: " + text;
        return false;
    }

    if (!take("seed", RawValue::Kind::Number, text))
        return false;
    if (!parseUnsigned(text, record.masterSeed)) {
        error = "'seed' is not an unsigned integer: " + text;
        return false;
    }

    if (!take("mode", RawValue::Kind::String, text))
        return false;
    if (text == "sweep") {
        record.mode = RunMode::Sweep;
    } else if (text == "adaptive") {
        record.mode = RunMode::Adaptive;
    } else {
        error = "unknown mode '" + text + "'";
        return false;
    }

    if (!take("workload", RawValue::Kind::String, text))
        return false;
    if (text.empty()) {
        error = "'workload' must name the point's workload";
        return false;
    }
    record.workload = text;

    if (!take("reps", RawValue::Kind::Number, text))
        return false;
    if (!parseUnsigned(text, record.replications) ||
        record.replications == 0) {
        error = "'reps' must be a positive integer: " + text;
        return false;
    }

    if (!take("rounds", RawValue::Kind::Number, text))
        return false;
    if (!parseUnsigned(text, number) || number > 0xffffffffull) {
        error = "'rounds' is not a valid count: " + text;
        return false;
    }
    record.rounds = static_cast<std::uint32_t>(number);

    if (!take("converged", RawValue::Kind::Bool, text))
        return false;
    record.converged = text == "true";

    const auto takeDoublePair = [&](const char *dec_key,
                                    const char *bits_key,
                                    double &value) {
        std::string dec_text, bits_text;
        if (!take(dec_key, RawValue::Kind::Number, dec_text) ||
            !take(bits_key, RawValue::Kind::String, bits_text))
            return false;
        std::uint64_t bits;
        if (!parseFingerprint(bits_text, bits)) {
            error = std::string("'") + bits_key +
                    "' is not a 0x bit pattern: " + bits_text;
            return false;
        }
        double decimal;
        if (!parseDecimalDouble(dec_text, decimal)) {
            error = std::string("'") + dec_key +
                    "' is not a number: " + dec_text;
            return false;
        }
        value = bitsToDouble(bits);
        // The decimal is %.17g of the bits, which round-trips
        // exactly; any mismatch means the record was edited or
        // corrupted (NaN decimals lose their payload, so NaN==NaN is
        // the comparison there).
        const bool both_nan =
            std::isnan(decimal) && std::isnan(value);
        if (!both_nan && doubleBits(decimal) != bits) {
            error = std::string("'") + dec_key + "' (" + dec_text +
                    ") disagrees with '" + bits_key + "' (" +
                    bits_text + ")";
            return false;
        }
        return true;
    };

    if (!takeDoublePair("mean", "mean_bits", record.mean))
        return false;
    if (!takeDoublePair("hw", "hw_bits", record.halfWidth))
        return false;

    // Optional latency group: lat_n's presence commits the record to
    // the full key set, so a partially written group still fails.
    if (fields.count("lat_n") != 0) {
        record.hasLatency = true;
        if (!take("lat_n", RawValue::Kind::Number, text))
            return false;
        if (!parseUnsigned(text, record.latency.samples)) {
            error = "'lat_n' is not an unsigned integer: " + text;
            return false;
        }
        LatencySummary &lat = record.latency;
        if (!takeDoublePair("lw50", "lw50_bits", lat.waitP50) ||
            !takeDoublePair("lw90", "lw90_bits", lat.waitP90) ||
            !takeDoublePair("lw99", "lw99_bits", lat.waitP99) ||
            !takeDoublePair("lwmax", "lwmax_bits", lat.waitMax) ||
            !takeDoublePair("lr50", "lr50_bits", lat.residenceP50) ||
            !takeDoublePair("lr90", "lr90_bits", lat.residenceP90) ||
            !takeDoublePair("lr99", "lr99_bits", lat.residenceP99) ||
            !takeDoublePair("lrmax", "lrmax_bits", lat.residenceMax))
            return false;
    }

    if (!fields.empty()) {
        error = "unknown key '" + fields.begin()->first + "'";
        return false;
    }

    out = record;
    return true;
}

std::vector<PointRecord>
readRecordFile(const std::string &path, bool tolerate_partial_tail)
{
    std::ifstream in(path);
    if (!in.good()) {
        // Lenient mode forgives only a file that does not exist (a
        // fresh shard). A file that is *present* but unreadable
        // (permissions, I/O error) must fail loudly: a resume that
        // shrugged it off would rewrite the shard from scratch and
        // silently discard every finished point.
        struct stat info;
        if (tolerate_partial_tail &&
            stat(path.c_str(), &info) != 0 && errno == ENOENT)
            return {};
        sbn_fatal("cannot open shard record file '", path, "'");
    }

    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);

    std::vector<PointRecord> records;
    records.reserve(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
        PointRecord record;
        std::string error;
        if (parseRecord(lines[i], record, error)) {
            records.push_back(record);
            continue;
        }
        if (tolerate_partial_tail && i + 1 == lines.size()) {
            sbn_warn("dropping truncated final record of '", path,
                     "' (line ", i + 1, ": ", error,
                     ") - the writer was likely killed mid-append");
            break;
        }
        sbn_fatal("malformed record in '", path, "' line ", i + 1,
                  ": ", error);
    }
    return records;
}

namespace {

/** Split @p path into (parent directory, basename). */
void
splitPath(const std::string &path, std::string &dir, std::string &base)
{
    const std::size_t slash = path.rfind('/');
    if (slash == std::string::npos) {
        dir = ".";
        base = path;
    } else {
        dir = slash == 0 ? "/" : path.substr(0, slash);
        base = path.substr(slash + 1);
    }
}

/**
 * Best-effort fsync of the directory holding @p path, so the rename
 * that just published a rewrite is itself durable. Failure is not
 * fatal: some filesystems refuse O_RDONLY directory syncs, and the
 * data-file fsync already happened.
 */
void
syncParentDir(const std::string &path)
{
    std::string dir, base;
    splitPath(path, dir, base);
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0)
        return;
    (void)::fsync(fd);
    ::close(fd);
}

} // namespace

void
rewriteRecordsAtomic(const std::string &path,
                     const std::vector<PointRecord> &records)
{
    // Process-unique temp name: a supervisor respawn racing a dying
    // predecessor (or two resumes launched by hand) never write the
    // same temp file; rename() then publishes whichever finished.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        RecordWriter writer(tmp, /*append=*/false);
        for (const PointRecord &record : records)
            writer.add(record);
        // The canonical rewrite is the durability-critical write: it
        // *replaces* records that were already safe on disk, so its
        // bytes must be durable before the rename makes them the only
        // copy.
        writer.sync();
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        sbn_fatal("cannot rename '", tmp, "' over '", path, "'");
    syncParentDir(path);
}

std::size_t
removeStaleRewriteTemps(const std::string &path)
{
    std::string dir, base;
    splitPath(path, dir, base);
    const std::string prefix = base + ".tmp";

    DIR *handle = ::opendir(dir.c_str());
    if (handle == nullptr)
        return 0;
    std::vector<std::string> stale;
    while (const dirent *entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        if (name.compare(0, prefix.size(), prefix) == 0)
            stale.push_back(dir + "/" + name);
    }
    ::closedir(handle);

    std::size_t removed = 0;
    for (const std::string &victim : stale) {
        if (::unlink(victim.c_str()) == 0) {
            sbn_warn("removed stale rewrite temp '", victim,
                     "' - a previous rewrite of '", path,
                     "' was killed before its rename");
            ++removed;
        }
    }
    return removed;
}

void
ensureWritableShardDir(const std::string &dir)
{
    if (mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
        sbn_fatal("cannot create shard directory '", dir,
                  "': ", std::strerror(errno));

    struct stat info;
    if (stat(dir.c_str(), &info) != 0 || !S_ISDIR(info.st_mode))
        sbn_fatal("shard directory path '", dir,
                  "' exists but is not a directory");

    // Permission bits lie to privileged processes and say nothing
    // about read-only mounts; proving writability means writing.
    const std::string probe = dir + "/.sbn-writable-probe-" +
                              std::to_string(::getpid());
    {
        std::ofstream out(probe);
        out << '\n';
        out.flush();
        if (!out.good())
            sbn_fatal("shard directory '", dir,
                      "' is not writable - fix permissions or pass a "
                      "different --shard-dir before any point runs");
    }
    ::unlink(probe.c_str());
}

RecordWriter::RecordWriter(const std::string &path, bool append)
    : path_(path)
{
    const int flags =
        O_WRONLY | O_CREAT | (append ? O_APPEND : O_TRUNC);
    fd_ = ::open(path.c_str(), flags, 0666);
    if (fd_ < 0)
        sbn_fatal("cannot open shard record file '", path,
                  "' for writing: ", std::strerror(errno));
}

RecordWriter::~RecordWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
RecordWriter::add(const PointRecord &record)
{
    const std::size_t ordinal = written_ + 1;
    if (faultInjectWriteFailure(ordinal))
        sbn_fatal("write error on shard record file '", path_,
                  "': injected fault (", kFaultEnvVar,
                  " fail_write_at=", ordinal, ")");

    const std::string line = formatRecord(record) + '\n';
    std::size_t done = 0;
    while (done < line.size()) {
        const ssize_t wrote = ::write(fd_, line.data() + done,
                                      line.size() - done);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            sbn_fatal("write error on shard record file '", path_,
                      "': ", std::strerror(errno));
        }
        done += static_cast<std::size_t>(wrote);
    }
    ++written_;
    telemetryAdd(TelemetryCounter::ShardRecordsWritten, 1);
    // Record boundary: the line is fully on disk (unbuffered write).
    // This is where the fault plane kills, tears or wedges a worker.
    faultAtRecordBoundary(ordinal, line, fd_);
}

void
RecordWriter::sync()
{
    if (::fsync(fd_) != 0)
        sbn_fatal("cannot fsync shard record file '", path_,
                  "': ", std::strerror(errno));
}

} // namespace sbn
