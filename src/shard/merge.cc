#include "shard/merge.hh"

#include <memory>

#include "core/fingerprint.hh"
#include "util/logging.hh"

namespace sbn {

MergeCheck
sweepMergeCheck(const std::vector<SystemConfig> &points)
{
    MergeCheck check;
    check.gridSize = points.size();
    check.expectedRunFp.reserve(points.size());
    for (const SystemConfig &point : points)
        check.expectedRunFp.push_back(
            sweepRunFingerprint(configFingerprint(point)));
    return check;
}

MergeCheck
adaptiveMergeCheck(const std::vector<SystemConfig> &points,
                   const PrecisionTarget &target,
                   const RoundSchedule &schedule)
{
    MergeCheck check;
    check.gridSize = points.size();
    check.expectedRunFp.reserve(points.size());
    for (const SystemConfig &point : points)
        check.expectedRunFp.push_back(adaptiveRunFingerprint(
            configFingerprint(point), target, schedule));
    return check;
}

MergeCheck
structuralMergeCheck(std::size_t grid_size)
{
    MergeCheck check;
    check.gridSize = grid_size;
    return check;
}

std::string
shardFilePath(const std::string &dir, const ShardSpec &shard)
{
    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += "shard-" + std::to_string(shard.index) + "-of-" +
            std::to_string(shard.count) + ".jsonl";
    return path;
}

std::vector<std::string>
shardFilePaths(const std::string &dir, std::size_t shard_count)
{
    sbn_assert(shard_count >= 1, "need at least one shard file");
    std::vector<std::string> paths;
    paths.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i)
        paths.push_back(shardFilePath(dir, {i, shard_count}));
    return paths;
}

std::vector<PointRecord>
mergeRecordFiles(const std::vector<std::string> &paths,
                 const MergeCheck &check)
{
    sbn_assert(check.expectedRunFp.empty() ||
                   check.expectedRunFp.size() == check.gridSize,
               "merge check fingerprint list does not match the grid");

    std::vector<std::unique_ptr<PointRecord>> slots(check.gridSize);
    for (const std::string &path : paths) {
        const std::vector<PointRecord> records =
            readRecordFile(path, /*tolerate_partial_tail=*/false);
        for (const PointRecord &record : records) {
            if (record.flatIndex >= check.gridSize)
                sbn_fatal("merge: record in '", path,
                          "' addresses flat index ", record.flatIndex,
                          " outside the ", check.gridSize,
                          "-point grid");
            if (!check.expectedRunFp.empty() &&
                record.runFp !=
                    check.expectedRunFp[record.flatIndex])
                sbn_fatal(
                    "merge: record for flat index ", record.flatIndex,
                    " in '", path, "' carries run fingerprint ",
                    formatFingerprint(record.runFp),
                    " but the sweep expects ",
                    formatFingerprint(
                        check.expectedRunFp[record.flatIndex]),
                    " - it belongs to a different grid, seed, or "
                    "precision setup");
            auto &slot = slots[record.flatIndex];
            if (slot) {
                if (!slot->bitIdentical(record))
                    sbn_fatal(
                        "merge: flat index ", record.flatIndex,
                        " appears twice with different contents "
                        "(second copy in '", path,
                        "') - determinism guarantees duplicates are "
                        "bit-identical, so one of the files is "
                        "corrupt or from a different run");
                continue; // benign recomputation, keep the first copy
            }
            slot = std::make_unique<PointRecord>(record);
        }
    }

    std::size_t missing = 0;
    std::string examples;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (slots[i])
            continue;
        ++missing;
        if (missing <= 8) {
            if (!examples.empty())
                examples += ", ";
            examples += std::to_string(i);
        }
    }
    if (missing != 0)
        sbn_fatal("merge: ", missing, " of ", check.gridSize,
                  " grid points have no record (first missing flat "
                  "indices: ",
                  examples, missing > 8 ? ", ..." : "",
                  ") - did every shard finish?");

    std::vector<PointRecord> merged;
    merged.reserve(slots.size());
    for (const auto &slot : slots)
        merged.push_back(*slot);
    return merged;
}

void
writeRecords(std::ostream &os, const std::vector<PointRecord> &records)
{
    for (const PointRecord &record : records)
        os << formatRecord(record) << '\n';
}

} // namespace sbn
