#include "shard/merge.hh"

#include <memory>

#include "core/fingerprint.hh"
#include "shard/fault.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace sbn {

MergeCheck
sweepMergeCheck(const std::vector<SystemConfig> &points)
{
    MergeCheck check;
    check.gridSize = points.size();
    check.expectedRunFp.reserve(points.size());
    for (const SystemConfig &point : points)
        check.expectedRunFp.push_back(
            sweepRunFingerprint(configFingerprint(point)));
    return check;
}

MergeCheck
adaptiveMergeCheck(const std::vector<SystemConfig> &points,
                   const PrecisionTarget &target,
                   const RoundSchedule &schedule)
{
    MergeCheck check;
    check.gridSize = points.size();
    check.expectedRunFp.reserve(points.size());
    for (const SystemConfig &point : points)
        check.expectedRunFp.push_back(adaptiveRunFingerprint(
            configFingerprint(point), target, schedule));
    return check;
}

MergeCheck
structuralMergeCheck(std::size_t grid_size)
{
    MergeCheck check;
    check.gridSize = grid_size;
    return check;
}

std::string
shardFilePath(const std::string &dir, const ShardSpec &shard)
{
    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += "shard-" + std::to_string(shard.index) + "-of-" +
            std::to_string(shard.count) + ".jsonl";
    return path;
}

std::vector<std::string>
shardFilePaths(const std::string &dir, std::size_t shard_count)
{
    sbn_assert(shard_count >= 1, "need at least one shard file");
    std::vector<std::string> paths;
    paths.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i)
        paths.push_back(shardFilePath(dir, {i, shard_count}));
    return paths;
}

PartialMerge
collectRecordFiles(const std::vector<std::string> &paths,
                   const MergeCheck &check, bool tolerate_partial_tail)
{
    sbn_assert(check.expectedRunFp.empty() ||
                   check.expectedRunFp.size() == check.gridSize,
               "merge check fingerprint list does not match the grid");
    faultMaybeAbortInMerge();

    TelemetryTimerScope timer(TelemetryTimer::ShardMerge);
    std::uint64_t merged = 0;
    std::uint64_t deduped = 0;
    std::vector<std::unique_ptr<PointRecord>> slots(check.gridSize);
    for (const std::string &path : paths) {
        const std::vector<PointRecord> records =
            readRecordFile(path, tolerate_partial_tail);
        for (const PointRecord &record : records) {
            if (record.flatIndex >= check.gridSize)
                sbn_fatal("merge: record in '", path,
                          "' addresses flat index ", record.flatIndex,
                          " outside the ", check.gridSize,
                          "-point grid");
            if (!check.expectedRunFp.empty() &&
                record.runFp !=
                    check.expectedRunFp[record.flatIndex])
                sbn_fatal(
                    "merge: record for flat index ", record.flatIndex,
                    " in '", path, "' carries run fingerprint ",
                    formatFingerprint(record.runFp),
                    " but the sweep expects ",
                    formatFingerprint(
                        check.expectedRunFp[record.flatIndex]),
                    " - it belongs to a different grid, seed, or "
                    "precision setup");
            auto &slot = slots[record.flatIndex];
            if (slot) {
                if (!slot->bitIdentical(record))
                    sbn_fatal(
                        "merge: flat index ", record.flatIndex,
                        " appears twice with different contents "
                        "(second copy in '", path,
                        "') - determinism guarantees duplicates are "
                        "bit-identical, so one of the files is "
                        "corrupt or from a different run");
                ++deduped;
                continue; // benign recomputation, keep the first copy
            }
            slot = std::make_unique<PointRecord>(record);
            ++merged;
        }
    }
    telemetryAdd(TelemetryCounter::ShardRecordsMerged, merged);
    telemetryAdd(TelemetryCounter::ShardRecordsDeduped, deduped);

    PartialMerge result;
    result.records.reserve(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (slots[i])
            result.records.push_back(*slots[i]);
        else
            result.missing.push_back(i);
    }
    return result;
}

std::string
describeMissingPoints(const MergeCheck &check,
                      const std::vector<std::size_t> &missing)
{
    // Group the exact missing indices by the shard file expected to
    // own them, so the operator knows which worker command to rerun,
    // not just that the grid has holes. Without shard attribution
    // everything lands in one anonymous group.
    constexpr std::size_t kMaxPerGroup = 32;
    const bool attributed = check.shardCount != 0;
    const std::size_t groups = attributed ? check.shardCount : 1;
    std::vector<std::vector<std::size_t>> byOwner(groups);
    if (attributed) {
        const ShardPlan plan(check.gridSize, check.shardCount,
                             check.layout);
        for (std::size_t index : missing)
            byOwner[plan.owner(index)].push_back(index);
    } else {
        byOwner[0] = missing;
    }

    std::string out;
    for (std::size_t owner = 0; owner < groups; ++owner) {
        const std::vector<std::size_t> &holes = byOwner[owner];
        if (holes.empty())
            continue;
        if (!out.empty())
            out += "; ";
        if (attributed)
            out += shardFilePath(check.dir,
                                 {owner, check.shardCount});
        else
            out += "unattributed";
        out += ": " + std::to_string(holes.size()) +
               " missing (indices ";
        for (std::size_t k = 0; k < holes.size(); ++k) {
            if (k == kMaxPerGroup) {
                out += ", ...";
                break;
            }
            if (k != 0)
                out += ", ";
            out += std::to_string(holes[k]);
        }
        out += ")";
    }
    return out;
}

std::vector<PointRecord>
mergeRecordFiles(const std::vector<std::string> &paths,
                 const MergeCheck &check)
{
    PartialMerge collected = collectRecordFiles(
        paths, check, /*tolerate_partial_tail=*/false);
    if (!collected.missing.empty())
        sbn_fatal("merge: ", collected.missing.size(), " of ",
                  check.gridSize, " grid points have no record - ",
                  describeMissingPoints(check, collected.missing),
                  " - did every shard finish?");
    return std::move(collected.records);
}

void
writeRecords(std::ostream &os, const std::vector<PointRecord> &records)
{
    for (const PointRecord &record : records)
        os << formatRecord(record) << '\n';
}

} // namespace sbn
