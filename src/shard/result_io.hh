/**
 * @file
 * Serialized per-point sweep results: one self-describing JSONL
 * record per completed grid point.
 *
 * Records are the unit of exchange between shard workers, the merge
 * layer and resume: a worker appends one line per finished point; a
 * resumed worker skips points whose records already exist and
 * fingerprint-match; the merger reassembles shard files into the
 * flat-grid ordered stream.
 *
 * Every double is written twice: a %.17g decimal (human-readable,
 * round-trips exactly) and the raw IEEE-754 bit pattern ("0x%016x").
 * The bits are authoritative - parsing validates that the decimal
 * re-parses to the same bit pattern - which is what lets the merged
 * stream be *bit*-identical to the single-process run rather than
 * merely close. The record layout itself is deterministic (fixed key
 * order, fixed number formatting), so the same point always
 * serializes to the same bytes no matter which shard, process or host
 * computed it.
 */

#ifndef SBN_SHARD_RESULT_IO_HH
#define SBN_SHARD_RESULT_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "exec/adaptive.hh"

namespace sbn {

/** Execution mode a record was produced under. */
enum class RunMode
{
    Sweep,    //!< one seeded run per point (plain sweep)
    Adaptive, //!< adaptive-precision replications per point
};

/** Canonical record name of a mode ("sweep" / "adaptive"). */
const char *runModeName(RunMode mode);

/**
 * One completed grid point, as serialized to a shard file.
 *
 * Provenance fields: flatIndex addresses the point in the documented
 * SweepSpec grid order; configFp is configFingerprint() of the
 * materialized point (including its seed - the seed provenance);
 * runFp additionally mixes in the run mode and, for adaptive runs,
 * the PrecisionTarget/RoundSchedule, so records from a different
 * experiment setup never silently satisfy a resume or merge.
 */
struct PointRecord
{
    std::size_t flatIndex = 0;
    std::uint64_t configFp = 0;
    std::uint64_t runFp = 0;
    std::uint64_t masterSeed = 0;    //!< the point's config.seed
    RunMode mode = RunMode::Sweep;

    /**
     * Canonical workload serialization (formatWorkload) of the
     * point's config - human-readable provenance of the scenario the
     * value was computed under. The config fingerprint already binds
     * the workload cryptographically; this names it.
     */
    std::string workload = "uniform";

    std::uint64_t replications = 0;  //!< runs behind the value (>= 1)
    std::uint32_t rounds = 0;        //!< adaptive rounds (0 for sweep)
    bool converged = true;           //!< false: adaptive cap reached
    double mean = 0.0;               //!< point value / estimate mean
    double halfWidth = 0.0;          //!< CI half-width (0 for sweep)

    /**
     * Latency quantile summary (sbn.point.v3): present on plain-sweep
     * records produced with config.collectLatency. Optional in the
     * record grammar - latency-off records omit the lat_* keys
     * entirely, keeping their byte layout v2-shaped apart from the
     * type tag.
     */
    bool hasLatency = false;
    LatencySummary latency;

    /** Field-wise equality with doubles compared bit-for-bit. */
    bool bitIdentical(const PointRecord &other) const;
};

/** Run fingerprint of a plain sweep over the point with @p config_fp. */
std::uint64_t sweepRunFingerprint(std::uint64_t config_fp);

/** Run fingerprint of an adaptive run (mixes target + schedule). */
std::uint64_t adaptiveRunFingerprint(std::uint64_t config_fp,
                                     const PrecisionTarget &target,
                                     const RoundSchedule &schedule);

/** The record of one plain-sweep point (reps 1, half-width 0). */
PointRecord makeSweepRecord(std::size_t flat_index,
                            const SystemConfig &config, double value);

/** The record of one plain-sweep point evaluated to a PointSample:
 *  carries the latency summary when the sample collected one. */
PointRecord makeSweepRecord(std::size_t flat_index,
                            const SystemConfig &config,
                            const PointSample &sample);

/** The record of one adaptive-precision point. */
PointRecord makeAdaptiveRecord(std::size_t flat_index,
                               const SystemConfig &config,
                               const AdaptiveEstimate &estimate,
                               const PrecisionTarget &target,
                               const RoundSchedule &schedule);

/** Serialize to the canonical one-line JSON form (no newline). */
std::string formatRecord(const PointRecord &record);

/**
 * Parse one record line. Strict: the line must be a flat JSON object
 * carrying exactly the expected keys (any order), with types, the
 * "sbn.point.v3" type tag, a known mode, and decimal/bit double pairs
 * that agree. The lat_* latency keys are the one optional group: all
 * present (and consistent) or all absent. On failure returns false
 * and sets @p error.
 */
bool parseRecord(const std::string &line, PointRecord &out,
                 std::string &error);

/**
 * Read every record of a shard file.
 *
 * In strict mode (@p tolerate_partial_tail false) any malformed line
 * is fatal, naming the file and line number. With
 * @p tolerate_partial_tail true, a malformed *final* line is dropped
 * with a warning instead - a worker killed mid-append leaves exactly
 * that artifact, and resume must be able to pick up behind it; a
 * malformed line elsewhere is still fatal.
 *
 * A nonexistent file is fatal in strict mode and reads as empty (a
 * fresh shard has no file yet) otherwise; a file that exists but
 * cannot be opened is fatal in both modes, so a permissions or I/O
 * error can never make a resume silently restart from zero.
 */
std::vector<PointRecord> readRecordFile(const std::string &path,
                                        bool tolerate_partial_tail);

/**
 * Atomically replace @p path with exactly @p records (one line
 * each, given order): writes a process-unique temp file
 * (path+".tmp.<pid>"), fsync()s it, then rename()s it over the
 * original, so a crash mid-rewrite leaves either the old file or the
 * new one - never a half-written mix - and the new file's bytes are
 * durable before they become visible under the canonical name. Used
 * by resume's cleanup rewrites, which must not weaken the "a kill
 * loses at most the line being written" durability bound.
 */
void rewriteRecordsAtomic(const std::string &path,
                          const std::vector<PointRecord> &records);

/**
 * Remove leftover rewrite temp files of @p path (path+".tmp*"): the
 * artifact of a process killed between opening the temp and the
 * rename. Resume calls this before touching the shard file, so a
 * crashed rewrite can never accumulate stale partials beside the
 * canonical file. Best-effort; returns the number removed.
 */
std::size_t removeStaleRewriteTemps(const std::string &path);

/**
 * Create @p dir if needed and prove it is a writable directory by
 * creating (and removing) a probe file inside it. Fatal with a
 * clear diagnostic otherwise - shard runs must fail *before* any
 * point computes, not mid-run at the first record write.
 */
void ensureWritableShardDir(const std::string &dir);

/**
 * Append-style record writer: one add() = one unbuffered line write,
 * so a record is either fully on disk or (on a crash mid-write) a
 * truncated final line that lenient reads drop. Writes through a raw
 * descriptor (no stdio buffer), which is also where the fault plane
 * (shard/fault.hh) injects write failures and record-boundary kills.
 */
class RecordWriter
{
  public:
    /** Opens @p path (append when @p append, else truncate). Fatal on
     *  failure to open. */
    RecordWriter(const std::string &path, bool append);

    ~RecordWriter();

    RecordWriter(const RecordWriter &) = delete;
    RecordWriter &operator=(const RecordWriter &) = delete;

    /** Serialize + write one record. Fatal on write error. */
    void add(const PointRecord &record);

    /** fsync() the file. Fatal on failure. */
    void sync();

    const std::string &path() const { return path_; }
    std::size_t written() const { return written_; }

  private:
    std::string path_;
    int fd_ = -1;
    std::size_t written_ = 0;
};

} // namespace sbn

#endif // SBN_SHARD_RESULT_IO_HH
