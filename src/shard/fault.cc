#include "shard/fault.hh"

#include <csignal>
#include <cstdlib>
#include <unistd.h>

#include "util/logging.hh"

namespace sbn {

const char *const kFaultEnvVar = "SBN_FAULT";
const char *const kFaultAttemptEnvVar = "SBN_FAULT_ATTEMPT";

namespace {

// Process-local identity for fault targeting. Plain values, not
// atomics: scope is set once before any worker thread exists.
std::size_t g_scopeShard = kFaultNoShard;
unsigned g_scopeAttempt = 0;

bool
parseClauseValue(const std::string &value, std::uint64_t &out)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end, 10);
    if (end != value.c_str() + value.size() || errno == ERANGE)
        return false;
    out = parsed;
    return true;
}

[[noreturn]] void
dieBySigkill()
{
    // The honest crash: no atexit, no stream flushes, no destructors.
    // raise(SIGKILL) cannot be caught or ignored; the _exit is an
    // unreachable belt-and-suspenders fallback.
    ::raise(SIGKILL);
    ::_exit(137);
}

[[noreturn]] void
hangForever()
{
    // A wedged worker: alive (the supervisor sees the pid), never
    // making record progress. pause() in a loop survives stray
    // signals; only SIGKILL ends it.
    for (;;)
        ::pause();
}

bool
isKnownJournalState(const std::string &value)
{
    for (const char *state : kFaultJournalStates)
        if (value == state)
            return true;
    return false;
}

} // namespace

// Kept in sync with jobStateName() (service/journal.hh) by
// tests/test_service.cc; the shard layer must not depend on the
// service layer, so the list is duplicated here on purpose.
const char *const kFaultJournalStates[6] = {
    "submitted", "running", "merging", "done", "failed", "cancelled",
};

bool
parseFaultPlan(const std::string &text, FaultPlan &out, std::string &error)
{
    FaultPlan plan;
    if (text.empty()) {
        out = plan;
        return true;
    }
    plan.active = true;

    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string clause = text.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
        if (clause.empty()) {
            error = "empty clause (stray comma)";
            return false;
        }

        const std::size_t eq = clause.find('=');
        const std::string key = clause.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : clause.substr(eq + 1);

        std::uint64_t number = 0;
        if (key == "shard") {
            if (value == "any") {
                plan.shard = kFaultAnyShard;
            } else if (parseClauseValue(value, number)) {
                plan.shard = static_cast<std::size_t>(number);
            } else {
                error = "shard= needs an index or 'any': " + clause;
                return false;
            }
        } else if (key == "attempt") {
            if (value == "any") {
                plan.attempt = kFaultAnyAttempt;
            } else if (parseClauseValue(value, number)) {
                plan.attempt = static_cast<unsigned>(number);
            } else {
                error = "attempt= needs a number or 'any': " + clause;
                return false;
            }
        } else if (key == "kill_after_records") {
            if (!parseClauseValue(value, plan.killAfterRecords) ||
                plan.killAfterRecords == 0) {
                error = "kill_after_records= needs a positive count: " +
                        clause;
                return false;
            }
        } else if (key == "truncate_tail") {
            if (!parseClauseValue(value, plan.truncateTail) ||
                plan.truncateTail == 0) {
                error =
                    "truncate_tail= needs a positive byte count: " +
                    clause;
                return false;
            }
        } else if (key == "hang_after_records") {
            if (!parseClauseValue(value, plan.hangAfterRecords) ||
                plan.hangAfterRecords == 0) {
                error = "hang_after_records= needs a positive count: " +
                        clause;
                return false;
            }
        } else if (key == "fail_write_at") {
            if (!parseClauseValue(value, plan.failWriteAt) ||
                plan.failWriteAt == 0) {
                error = "fail_write_at= needs a positive 1-based "
                        "ordinal: " +
                        clause;
                return false;
            }
        } else if (key == "abort_in_merge") {
            if (!value.empty()) {
                error = "abort_in_merge takes no value: " + clause;
                return false;
            }
            plan.abortInMerge = true;
        } else if (key == "crash_after_journal") {
            if (!isKnownJournalState(value)) {
                error = "crash_after_journal= needs a job journal "
                        "state (submitted, running, merging, done, "
                        "failed or cancelled): " +
                        clause;
                return false;
            }
            plan.crashAfterJournal = value;
        } else if (key == "crash_in_merge") {
            if (!value.empty()) {
                error = "crash_in_merge takes no value: " + clause;
                return false;
            }
            plan.crashInMerge = true;
        } else if (key == "stall_accept") {
            if (!value.empty()) {
                error = "stall_accept takes no value: " + clause;
                return false;
            }
            plan.stallAccept = true;
        } else {
            error = "unknown fault clause '" + key + "'";
            return false;
        }
    }

    if (plan.truncateTail != 0 && plan.killAfterRecords == 0) {
        error = "truncate_tail= modifies kill_after_records=, which "
                "is missing";
        return false;
    }
    if (plan.killAfterRecords != 0 && plan.hangAfterRecords != 0) {
        error = "kill_after_records= and hang_after_records= are "
                "mutually exclusive";
        return false;
    }
    if (plan.killAfterRecords == 0 && plan.hangAfterRecords == 0 &&
        plan.failWriteAt == 0 && !plan.abortInMerge &&
        plan.crashAfterJournal.empty() && !plan.crashInMerge &&
        !plan.stallAccept) {
        error = "no fault action given (selectors only)";
        return false;
    }
    out = plan;
    return true;
}

FaultPlan
currentFaultPlan()
{
    const char *env = std::getenv(kFaultEnvVar);
    if (env == nullptr || *env == '\0')
        return {};
    FaultPlan plan;
    std::string error;
    if (!parseFaultPlan(env, plan, error))
        sbn_fatal(kFaultEnvVar, ": ", error,
                  " (a malformed fault spec must not silently run "
                  "fault-free)");
    return plan;
}

void
setFaultProcessScope(std::size_t shard_index, unsigned attempt)
{
    g_scopeShard = shard_index;
    g_scopeAttempt = attempt;
}

bool
faultArmed(const FaultPlan &plan)
{
    if (!plan.active)
        return false;
    if (plan.shard != kFaultAnyShard && plan.shard != g_scopeShard)
        return false;
    return plan.attempt == kFaultAnyAttempt ||
           plan.attempt == g_scopeAttempt;
}

bool
faultInjectWriteFailure(std::size_t ordinal)
{
    const FaultPlan plan = currentFaultPlan();
    return faultArmed(plan) && plan.failWriteAt == ordinal;
}

void
faultAtRecordBoundary(std::size_t ordinal, const std::string &line,
                      int fd)
{
    const FaultPlan plan = currentFaultPlan();
    if (!faultArmed(plan))
        return;
    if (plan.killAfterRecords == ordinal) {
        if (plan.truncateTail != 0 && fd >= 0) {
            // Tear the file the way a kill mid-append does: the first
            // truncate_tail bytes of a record, no newline. Determinism
            // comes from reusing the just-written record's serialized
            // bytes.
            const std::size_t bytes =
                plan.truncateTail < line.size()
                    ? static_cast<std::size_t>(plan.truncateTail)
                    : line.size();
            // The return value is irrelevant on the way to SIGKILL,
            // but gcc warns on ignoring write(2)'s result.
            if (::write(fd, line.data(), bytes) < 0) {
            }
        }
        dieBySigkill();
    }
    if (plan.hangAfterRecords == ordinal)
        hangForever();
}

void
faultMaybeAbortInMerge()
{
    const FaultPlan plan = currentFaultPlan();
    if (faultArmed(plan) && plan.abortInMerge)
        std::abort();
}

void
faultAfterJournalState(const char *state)
{
    const FaultPlan plan = currentFaultPlan();
    if (faultArmed(plan) && plan.crashAfterJournal == state)
        dieBySigkill();
}

void
faultMaybeCrashInMerge()
{
    const FaultPlan plan = currentFaultPlan();
    if (faultArmed(plan) && plan.crashInMerge)
        dieBySigkill();
}

void
faultMaybeStallAccept()
{
    const FaultPlan plan = currentFaultPlan();
    if (faultArmed(plan) && plan.stallAccept)
        hangForever();
}

} // namespace sbn
