/**
 * @file
 * Execution of one shard of a sweep, with resume.
 *
 * runShardSweep()/runShardAdaptive() compute the grid points a
 * ShardSpec owns under a ShardPlan and append one PointRecord per
 * finished point to the shard's JSONL file, flushing per record so a
 * killed worker loses at most the line it was writing.
 *
 * Resume (@p resume = true) first reads the existing file leniently
 * (a truncated final line - the kill artifact - is dropped), keeps
 * every record whose run fingerprint matches the point the sweep
 * expects at that index, and only computes the points still missing.
 * Records from a different grid, seed or precision setup never match
 * and are discarded with a warning, so a stale file cannot poison a
 * resumed run. A clean file (exactly the kept records, canonical
 * order - the common case) is appended to in place; when cleanup is
 * needed (dropped records, a truncated tail, or out-of-order resume
 * interleaving) the file is replaced via an atomic temp+rename
 * rewrite, so the durability bound above survives crashes at any
 * point and a finished resumed shard file is byte-identical to an
 * uninterrupted run's.
 *
 * Determinism: the values computed here are bit-identical to the
 * single-process streamed run's values for the same points (see the
 * exec-layer subset entry points), so merging shard files reproduces
 * the serial result stream exactly.
 */

#ifndef SBN_SHARD_RUNNER_HH
#define SBN_SHARD_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "exec/adaptive.hh"
#include "exec/sweep.hh"
#include "shard/plan.hh"
#include "shard/result_io.hh"

namespace sbn {

/** What one shard run did. */
struct ShardRunStats
{
    std::size_t owned = 0;    //!< points the shard is responsible for
    std::size_t skipped = 0;  //!< satisfied by resumed records
    std::size_t computed = 0; //!< freshly simulated this run
};

/**
 * Run shard @p shard of a plain sweep over @p points (one seeded
 * evaluation per point), writing records to @p out_path.
 *
 * @param evaluate point evaluator (e.g. runEbw); must be safe to
 *                 call concurrently when threads > 1
 * @param threads  worker count; 0 = defaultExecThreads()
 */
ShardRunStats runShardSweep(
    const std::vector<SystemConfig> &points, const ShardSpec &shard,
    ShardLayout layout,
    const std::function<double(const SystemConfig &)> &evaluate,
    const std::string &out_path, bool resume = false,
    unsigned threads = 0);

/** runShardSweep() over a SweepSpec (materializes, then runs). */
ShardRunStats runShardSweep(
    const SweepSpec &spec, const ShardSpec &shard, ShardLayout layout,
    const std::function<double(const SystemConfig &)> &evaluate,
    const std::string &out_path, bool resume = false,
    unsigned threads = 0);

/**
 * PointSample-typed plain sweep shard: identical planning, resume
 * and record order, but records carry the sample's latency summary
 * when present (e.g. evaluate = runPointSample under
 * config.collectLatency). EBW values are bit-identical to the
 * double-typed path for the same points.
 */
ShardRunStats runShardSweep(
    const std::vector<SystemConfig> &points, const ShardSpec &shard,
    ShardLayout layout,
    const std::function<PointSample(const SystemConfig &)> &evaluate,
    const std::string &out_path, bool resume = false,
    unsigned threads = 0);

/** PointSample-typed runShardSweep() over a SweepSpec. */
ShardRunStats runShardSweep(
    const SweepSpec &spec, const ShardSpec &shard, ShardLayout layout,
    const std::function<PointSample(const SystemConfig &)> &evaluate,
    const std::string &out_path, bool resume = false,
    unsigned threads = 0);

/**
 * Run shard @p shard of an adaptive-precision sweep: each owned point
 * replicates (seeds derived from its config.seed) until @p target or
 * the @p schedule cap, exactly as the single-process adaptive sweep
 * would for that point.
 */
ShardRunStats runShardAdaptive(
    const std::vector<SystemConfig> &points, const ShardSpec &shard,
    ShardLayout layout, const PrecisionTarget &target,
    const RoundSchedule &schedule,
    const std::function<double(const SystemConfig &, std::uint64_t)>
        &experiment,
    const std::string &out_path, bool resume = false,
    unsigned threads = 0);

/** runShardAdaptive() over a SweepSpec. */
ShardRunStats runShardAdaptive(
    const SweepSpec &spec, const ShardSpec &shard, ShardLayout layout,
    const PrecisionTarget &target, const RoundSchedule &schedule,
    const std::function<double(const SystemConfig &, std::uint64_t)>
        &experiment,
    const std::string &out_path, bool resume = false,
    unsigned threads = 0);

/**
 * Run an explicit stolen slice of a plain sweep: compute exactly the
 * flat indices in @p stolen (strictly increasing) and truncate-write
 * their records to @p out_path. Used by the shard supervisor's
 * work-stealing path; values are bit-identical to what the owning
 * shard would have produced, so overlap with the victim is safe.
 */
ShardRunStats runStolenPointsSweep(
    const std::vector<SystemConfig> &points,
    const std::vector<std::size_t> &stolen,
    const std::function<double(const SystemConfig &)> &evaluate,
    const std::string &out_path, unsigned threads = 0);

/** PointSample-typed stolen slice (see the shard overload above). */
ShardRunStats runStolenPointsSweep(
    const std::vector<SystemConfig> &points,
    const std::vector<std::size_t> &stolen,
    const std::function<PointSample(const SystemConfig &)> &evaluate,
    const std::string &out_path, unsigned threads = 0);

/** Stolen-slice variant of runShardAdaptive(). */
ShardRunStats runStolenPointsAdaptive(
    const std::vector<SystemConfig> &points,
    const std::vector<std::size_t> &stolen,
    const PrecisionTarget &target, const RoundSchedule &schedule,
    const std::function<double(const SystemConfig &, std::uint64_t)>
        &experiment,
    const std::string &out_path, unsigned threads = 0);

} // namespace sbn

#endif // SBN_SHARD_RUNNER_HH
