#include "shard/supervisor.hh"

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <thread>

#include "shard/fault.hh"
#include "telemetry/telemetry.hh"
#include "shard/result_io.hh"
#include "util/logging.hh"

namespace sbn {

namespace {

using Clock = std::chrono::steady_clock;

/** Size of @p path, or -1 when it does not exist (yet). */
long long
fileSize(const std::string &path)
{
    struct stat info;
    if (::stat(path.c_str(), &info) != 0)
        return -1;
    return static_cast<long long>(info.st_size);
}

bool
fileExists(const std::string &path)
{
    struct stat info;
    return ::stat(path.c_str(), &info) == 0;
}

/**
 * Signal caught while a supervisor's run() loop owns the fleet.
 * async-signal-safe: the handler only stores the number; the loop
 * polls it each iteration (the poll sleep is at most pollMillis, and
 * the signal interrupts it anyway).
 */
volatile sig_atomic_t g_supervisorSignal = 0;

extern "C" void
supervisorSignalHandler(int sig)
{
    g_supervisorSignal = sig;
}

/** RAII install/restore of the SIGINT/SIGTERM interrupt handlers. */
class SignalGuard
{
  public:
    SignalGuard()
    {
        g_supervisorSignal = 0;
        struct sigaction action;
        action.sa_handler = supervisorSignalHandler;
        ::sigemptyset(&action.sa_mask);
        action.sa_flags = 0; // no SA_RESTART: interrupt the poll sleep
        ::sigaction(SIGINT, &action, &previousInt_);
        ::sigaction(SIGTERM, &action, &previousTerm_);
    }

    ~SignalGuard()
    {
        ::sigaction(SIGINT, &previousInt_, nullptr);
        ::sigaction(SIGTERM, &previousTerm_, nullptr);
    }

  private:
    struct sigaction previousInt_;
    struct sigaction previousTerm_;
};

} // namespace

const char *
shardStateName(ShardState state)
{
    switch (state) {
    case ShardState::Pending:
        return "pending";
    case ShardState::Running:
        return "running";
    case ShardState::Backoff:
        return "backoff";
    case ShardState::Done:
        return "done";
    case ShardState::Exhausted:
        return "exhausted";
    }
    return "unknown";
}

double
supervisorBackoffSeconds(const SupervisorConfig &config,
                         unsigned failures)
{
    sbn_assert(failures >= 1,
               "backoff is only defined after a failure");
    return std::min(
        config.backoffCapSeconds,
        config.backoffInitialSeconds *
            std::pow(config.backoffGrowth,
                     static_cast<double>(failures - 1)));
}

/** One supervised process slot (a shard or a steal slice). */
struct ShardSupervisor::Task
{
    WorkerTask work;
    ShardState state = ShardState::Pending;
    pid_t pid = -1;
    unsigned launches = 0;
    int lastStatus = 0;
    bool everHung = false;
    Clock::time_point wakeAt;       //!< backoff deadline
    long long lastSize = -1;        //!< liveness: last seen file size
    Clock::time_point lastProgress; //!< liveness: last growth time

    // Span tracing (zero when off): the open attempt span and, while
    // the task waits in Backoff, when that wait started.
    std::uint64_t attemptSpanId = 0;
    std::uint64_t attemptStartUs = 0;
    std::uint64_t backoffStartUs = 0;
};

ShardSupervisor::ShardSupervisor(SupervisorConfig config,
                                 WorkerBody body)
    : config_(std::move(config)), body_(std::move(body))
{
    sbn_assert(config_.shardCount >= 1,
               "supervisor needs at least one shard");
    sbn_assert(!config_.expectedRunFp.empty(),
               "supervisor needs the expected run fingerprints");
    sbn_assert(config_.maxRetries < 1000,
               "retry budget is implausibly large");
    if (config_.maxStealLaunches == 0)
        config_.maxStealLaunches = 4 * config_.shardCount;

    shardTasks_.resize(config_.shardCount);
    for (std::size_t i = 0; i < config_.shardCount; ++i) {
        Task &task = shardTasks_[i];
        task.work.steal = false;
        task.work.shard = {i, config_.shardCount};
        task.work.outPath =
            shardFilePath(config_.dir, task.work.shard);
    }
}

ShardSupervisor::~ShardSupervisor() = default;

void
ShardSupervisor::spawn(Task &task)
{
    task.work.attempt = task.launches;
    const std::string what =
        task.work.steal ? "steal task"
                        : "shard " + task.work.shard.toString();
    // Trace: the attempt span's id is allocated before the fork so
    // the child can parent its own spans under it; the span itself is
    // emitted parent-side when the worker is reaped. A pending
    // backoff wait closes here - the respawn ends it.
    task.attemptSpanId = traceAllocSpanId();
    task.attemptStartUs = traceNowMicros();
    if (task.backoffStartUs != 0) {
        traceEmitSpan(trace_, "backoff", what + " backoff",
                      runSpanId_, task.backoffStartUs,
                      task.attemptStartUs,
                      {{"attempt", std::to_string(task.launches)}});
        task.backoffStartUs = 0;
    }
    const pid_t supervisorPid = ::getpid();
    const pid_t pid = ::fork();
    if (pid < 0)
        sbn_fatal("supervisor: fork failed for ", what);
    if (pid == 0) {
        // Child. Shed the supervisor's interrupt handlers first: a
        // worker inheriting them would swallow the Ctrl-C meant to
        // stop the fleet. Then declare identity for fault targeting,
        // run the body, and leave via _exit so no parent-owned stdio
        // buffer or static destructor runs twice.
        ::signal(SIGINT, SIG_DFL);
        ::signal(SIGTERM, SIG_DFL);
#ifdef __linux__
        // No-orphan hardening: if the supervisor itself dies by
        // SIGKILL (kill-anywhere testing, OOM), the kernel kills the
        // worker too - its record file needs no cleanup. The getppid
        // check closes the race where the supervisor died between
        // fork and prctl (the death signal only fires on *future*
        // parent deaths).
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);
        if (::getppid() != supervisorPid)
            ::_exit(1);
#endif
        setFaultProcessScope(task.work.steal ? kFaultNoShard
                                             : task.work.shard.index,
                             task.work.attempt);
        if (task.attemptSpanId != 0)
            exportTraceContext({trace_.traceId, task.attemptSpanId});
        try {
            body_(task.work);
        } catch (...) {
            ::_exit(1);
        }
        ::_exit(0);
    }
    task.pid = pid;
    task.state = ShardState::Running;
    ++task.launches;
    task.lastSize = fileSize(task.work.outPath);
    task.lastProgress = Clock::now();
}

void
ShardSupervisor::closeAttemptSpan(Task &task, const char *outcome,
                                  int status, bool hung)
{
    if (task.attemptSpanId == 0)
        return;
    std::vector<TraceAttr> attrs = {
        {"outcome", outcome},
        {"attempt", std::to_string(task.work.attempt)},
    };
    if (task.work.steal)
        attrs.emplace_back("steal_points",
                           std::to_string(task.work.points.size()));
    else
        attrs.emplace_back("shard", task.work.shard.toString());
    if (status != 0)
        attrs.emplace_back("status", describeWaitStatus(status));
    if (hung)
        attrs.emplace_back("hung", "1");
    traceEmitSpanWithId(
        trace_, task.attemptSpanId, "attempt",
        task.work.steal
            ? "steal attempt"
            : "shard " + task.work.shard.toString() + " attempt " +
                  std::to_string(task.work.attempt),
        runSpanId_, task.attemptStartUs, traceNowMicros(), attrs);
    task.attemptSpanId = 0;
}

void
ShardSupervisor::handleFailure(Task &task, int status, bool hung)
{
    closeAttemptSpan(task, "fail", status, hung);
    task.lastStatus = status;
    task.everHung = task.everHung || hung;
    task.pid = -1;

    if (task.work.steal) {
        // Stolen work has no budget of its own: the victim's points
        // are still tracked as missing, so losing a thief costs
        // nothing but the duplicate effort. A failing thief usually
        // means the failure is not shard-specific, though, so stop
        // stealing rather than loop on it.
        task.state = ShardState::Done;
        stealBroken_ = true;
        sbn_warn("supervisor: steal worker (",
                 describeWaitStatus(status), hung ? ", hung" : "",
                 ") failed; disabling further work stealing");
        return;
    }

    if (task.launches >= config_.maxRetries + 1) {
        task.state = ShardState::Exhausted;
        sbn_warn("supervisor: shard ", task.work.shard.toString(),
                 " exhausted its retry budget (", task.launches,
                 " launch(es), last failure: ",
                 describeWaitStatus(status), hung ? ", hung" : "",
                 ")");
        return;
    }

    // Capped exponential backoff keyed to how often this shard has
    // failed: transient causes (OOM kill, node blip) get a fast
    // retry, repeat offenders back off harder.
    const double seconds =
        supervisorBackoffSeconds(config_, task.launches);
    task.state = ShardState::Backoff;
    task.wakeAt = Clock::now() +
                  std::chrono::microseconds(
                      static_cast<long long>(seconds * 1e6));
    task.backoffStartUs = traceNowMicros();
    ++report_.respawns;
    telemetryAdd(TelemetryCounter::SupervisorRespawns, 1);
    sbn_warn("supervisor: shard ", task.work.shard.toString(),
             " worker failed (", describeWaitStatus(status),
             hung ? ", hung" : "", "); respawning with resume in ",
             seconds, "s (attempt ", task.launches + 1, " of ",
             config_.maxRetries + 1, ")");
}

void
ShardSupervisor::reapExited()
{
    const auto reap = [&](Task &task) {
        if (task.state != ShardState::Running)
            return;
        int status = 0;
        const pid_t got = ::waitpid(task.pid, &status, WNOHANG);
        if (got == 0)
            return;
        if (got < 0) {
            // Should not happen (we own the child); treat as failure
            // so supervision cannot wedge on a lost pid.
            handleFailure(task, -1, false);
            return;
        }
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            closeAttemptSpan(task, "ok", 0, false);
            task.state = ShardState::Done;
            task.pid = -1;
        } else {
            handleFailure(task, status, false);
        }
    };
    for (Task &task : shardTasks_)
        reap(task);
    for (Task &task : stealTasks_)
        reap(task);
}

void
ShardSupervisor::killHungWorkers()
{
    if (config_.hangTimeoutSeconds <= 0.0)
        return;
    const auto deadline = std::chrono::microseconds(
        static_cast<long long>(config_.hangTimeoutSeconds * 1e6));
    const auto check = [&](Task &task) {
        if (task.state != ShardState::Running)
            return;
        const long long size = fileSize(task.work.outPath);
        if (size != task.lastSize) {
            task.lastSize = size;
            task.lastProgress = Clock::now();
            return;
        }
        if (Clock::now() - task.lastProgress < deadline)
            return;
        // No record progress within the deadline: the worker is
        // declared hung. SIGKILL (not SIGTERM): a wedged process may
        // not run handlers, and the record file needs no cleanup -
        // that is the whole point of the append+flush format.
        const std::string what =
            task.work.steal ? "steal worker"
                            : "shard " + task.work.shard.toString();
        sbn_warn("supervisor: ", what,
                 " made no record progress for ",
                 config_.hangTimeoutSeconds,
                 "s; killing the hung worker (pid ", task.pid, ")");
        ::kill(task.pid, SIGKILL);
        const std::uint64_t killUs = traceNowMicros();
        traceEmitSpan(trace_, "hang_kill", what + " hang kill",
                      task.attemptSpanId, killUs, killUs,
                      {{"pid", std::to_string(task.pid)}});
        telemetryAdd(TelemetryCounter::SupervisorHangKills, 1);
        int status = 0;
        ::waitpid(task.pid, &status, 0);
        handleFailure(task, status, /*hung=*/true);
    };
    for (Task &task : shardTasks_)
        check(task);
    for (Task &task : stealTasks_)
        check(task);
}

void
ShardSupervisor::launchDueRespawns()
{
    const Clock::time_point now = Clock::now();
    for (Task &task : shardTasks_) {
        if (task.state == ShardState::Pending ||
            (task.state == ShardState::Backoff && now >= task.wakeAt))
            spawn(task);
    }
}

std::vector<std::string>
ShardSupervisor::existingRecordFiles() const
{
    std::vector<std::string> files;
    for (const Task &task : shardTasks_)
        if (fileExists(task.work.outPath))
            files.push_back(task.work.outPath);
    for (const Task &task : stealTasks_)
        if (fileExists(task.work.outPath))
            files.push_back(task.work.outPath);
    return files;
}

std::vector<bool>
ShardSupervisor::satisfiedPoints() const
{
    // A point is satisfied when any record file holds a record whose
    // run fingerprint matches what the sweep expects there - the
    // exact criterion resume and merge use, so the supervisor never
    // declares done what the merge would reject.
    std::vector<bool> satisfied(config_.expectedRunFp.size(), false);
    for (const std::string &path : existingRecordFiles()) {
        for (const PointRecord &record :
             readRecordFile(path, /*tolerate_partial_tail=*/true)) {
            if (record.flatIndex < satisfied.size() &&
                record.runFp ==
                    config_.expectedRunFp[record.flatIndex])
                satisfied[record.flatIndex] = true;
        }
    }
    return satisfied;
}

std::size_t
ShardSupervisor::runningCount() const
{
    std::size_t running = 0;
    for (const Task &task : shardTasks_)
        running += task.state == ShardState::Running;
    for (const Task &task : stealTasks_)
        running += task.state == ShardState::Running;
    return running;
}

bool
ShardSupervisor::allShardsTerminal() const
{
    for (const Task &task : shardTasks_)
        if (task.state != ShardState::Done &&
            task.state != ShardState::Exhausted)
            return false;
    return true;
}

void
ShardSupervisor::maybeSteal()
{
    if (!config_.workStealing || stealBroken_ ||
        stealLaunches() >= config_.maxStealLaunches)
        return;
    if (runningCount() >= config_.shardCount)
        return; // no free slot
    bool anyDone = false;
    bool anyNotDone = false;
    for (const Task &task : shardTasks_) {
        anyDone = anyDone || task.state == ShardState::Done;
        anyNotDone = anyNotDone || task.state != ShardState::Done;
    }
    if (!anyDone || !anyNotDone)
        return; // steal only once a worker has actually finished

    // Scanning record files is not free; do it at most a few times a
    // second, not every poll tick.
    if (!stealScanGate_.due(Clock::now()))
        return;

    const std::vector<bool> satisfied = satisfiedPoints();
    std::set<std::size_t> claimed;
    for (const Task &task : stealTasks_)
        if (task.state == ShardState::Running)
            claimed.insert(task.work.points.begin(),
                           task.work.points.end());

    // Victim: the non-Done shard with the most unclaimed missing
    // points.
    const ShardPlan plan(config_.expectedRunFp.size(),
                         config_.shardCount, config_.layout);
    std::size_t victim = config_.shardCount;
    std::vector<std::size_t> victimMissing;
    for (std::size_t i = 0; i < config_.shardCount; ++i) {
        if (shardTasks_[i].state == ShardState::Done)
            continue;
        std::vector<std::size_t> missing;
        for (std::size_t index : plan.indices(i))
            if (!satisfied[index] && claimed.count(index) == 0)
                missing.push_back(index);
        if (missing.size() > victimMissing.size()) {
            victim = i;
            victimMissing = std::move(missing);
        }
    }
    if (victim == config_.shardCount || victimMissing.empty())
        return;

    // An exhausted victim is never coming back: claim everything it
    // still owes. A live (running / backed-off) victim is resuming
    // its missing list front-to-back, so the thief takes the strided
    // complement - overlap stays possible and stays harmless (the
    // merge dedupes bit-identical recomputation), but mostly the two
    // ends meet in the middle.
    std::vector<std::size_t> slice;
    if (shardTasks_[victim].state == ShardState::Exhausted) {
        slice = victimMissing;
    } else {
        for (std::size_t k = 1; k < victimMissing.size(); k += 2)
            slice.push_back(victimMissing[k]);
    }
    if (slice.empty())
        return;
    launchSteal(slice, victim);
}

void
ShardSupervisor::launchSteal(const std::vector<std::size_t> &points,
                             std::size_t victim)
{
    stealTasks_.emplace_back();
    Task &task = stealTasks_.back();
    task.work.steal = true;
    task.work.shard = {victim < config_.shardCount ? victim : 0,
                       config_.shardCount};
    task.work.points = points;
    std::string path = config_.dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    task.work.outPath =
        path + "steal-" + std::to_string(stealSequence_++) + ".jsonl";
    report_.stolenPoints += points.size();
    ++report_.stealLaunches;
    telemetryAdd(TelemetryCounter::SupervisorSteals, 1);
    // stderr, not sbn_inform: orchestrators reserve stdout for the
    // merged record stream.
    std::fprintf(stderr,
                 "supervisor: free worker stealing %zu missing "
                 "point(s) from shard %s -> %s\n",
                 points.size(),
                 victim < config_.shardCount
                     ? shardTasks_[victim].work.shard.toString().c_str()
                     : "(unowned)",
                 task.work.outPath.c_str());
    spawn(task);
}

std::size_t
ShardSupervisor::stealLaunches() const
{
    return report_.stealLaunches;
}

void
ShardSupervisor::killAndReapAllWorkers()
{
    // SIGKILL, not SIGTERM: the fleet is being torn down and the
    // record format needs no cleanup (append + flush); a worker that
    // ignored a gentler signal would become the very orphan this
    // path exists to prevent. The blocking waitpid guarantees no
    // worker pid outlives the supervisor's return.
    const auto killOne = [&](Task &task) {
        if (task.state != ShardState::Running || task.pid < 0)
            return;
        ::kill(task.pid, SIGKILL);
        int status = 0;
        ::waitpid(task.pid, &status, 0);
        closeAttemptSpan(task, "interrupted", status, false);
        task.lastStatus = status;
        task.pid = -1;
        task.state = ShardState::Exhausted;
    };
    for (Task &task : shardTasks_)
        killOne(task);
    for (Task &task : stealTasks_)
        killOne(task);
}

SupervisorReport
ShardSupervisor::run()
{
    // Own SIGINT/SIGTERM while the fleet exists: an interrupted
    // supervisor must not orphan its forked workers. Children reset
    // the handlers after fork (spawn()), so only this process defers.
    SignalGuard guard;

    // Trace: the whole supervised run is one span, parented under
    // whatever context launched this process (the daemon's job span,
    // or nothing for a root CLI run).
    if (traceEnabled()) {
        trace_ = inheritedTraceContext();
        if (!trace_.valid())
            trace_.traceId = newTraceId();
        runSpanId_ = traceAllocSpanId();
        runStartUs_ = traceNowMicros();
    }

    for (;;) {
        if (g_supervisorSignal != 0) {
            const int sig = static_cast<int>(g_supervisorSignal);
            sbn_warn("supervisor: caught signal ", sig,
                     "; killing and reaping ", runningCount(),
                     " live worker(s) before exiting");
            killAndReapAllWorkers();
            report_.interruptSignal = sig;
            break;
        }

        reapExited();
        killHungWorkers();
        launchDueRespawns();
        maybeSteal();

        if (allShardsTerminal() && runningCount() == 0) {
            const std::vector<bool> satisfied = satisfiedPoints();
            std::vector<std::size_t> missing;
            for (std::size_t i = 0; i < satisfied.size(); ++i)
                if (!satisfied[i])
                    missing.push_back(i);
            if (missing.empty())
                break;
            // Last-chance stealing: every shard is terminal, so any
            // remaining hole belongs to an exhausted shard (or a
            // worker that lied about success). Free slots exist by
            // definition; claim the lot, bounded by the steal-launch
            // budget.
            if (!config_.workStealing || stealBroken_ ||
                stealLaunches() >= config_.maxStealLaunches)
                break;
            launchSteal(missing, config_.shardCount);
            continue;
        }

        std::this_thread::sleep_for(
            std::chrono::milliseconds(config_.pollMillis));
    }

    // Terminal accounting.
    const std::vector<bool> satisfied = satisfiedPoints();
    report_.missingPoints.clear();
    for (std::size_t i = 0; i < satisfied.size(); ++i)
        if (!satisfied[i])
            report_.missingPoints.push_back(i);
    report_.complete = report_.missingPoints.empty();
    report_.recordFiles = existingRecordFiles();
    report_.shards.clear();
    for (const Task &task : shardTasks_) {
        ShardOutcome outcome;
        outcome.state = task.state;
        outcome.launches = task.launches;
        outcome.lastStatus = task.lastStatus;
        outcome.everHung = task.everHung;
        report_.shards.push_back(outcome);
    }

    if (runSpanId_ != 0)
        traceEmitSpanWithId(
            trace_, runSpanId_, "supervise", "supervise fleet",
            trace_.spanId, runStartUs_, traceNowMicros(),
            {{"shards", std::to_string(config_.shardCount)},
             {"respawns", std::to_string(report_.respawns)},
             {"steal_launches",
              std::to_string(report_.stealLaunches)},
             {"complete", report_.complete ? "1" : "0"}});
    return report_;
}

std::string
missingManifestPath(const std::string &dir)
{
    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    return path + "missing-points.json";
}

void
writeMissingPointsManifest(const std::string &path,
                           const MergeCheck &check,
                           const std::vector<std::size_t> &missing)
{
    const bool attributed = check.shardCount != 0;
    std::string body = "{\"type\":\"sbn.missing.v1\",\"grid\":";
    body += std::to_string(check.gridSize);
    body += ",\"shards\":";
    body += std::to_string(check.shardCount);
    body += ",\"layout\":\"";
    body += attributed ? shardLayoutName(check.layout) : "unknown";
    body += "\",\"count\":";
    body += std::to_string(missing.size());
    body += ",\"missing\":[";
    const ShardPlan plan(check.gridSize,
                         attributed ? check.shardCount : 1,
                         check.layout);
    for (std::size_t k = 0; k < missing.size(); ++k) {
        if (k != 0)
            body += ',';
        body += "{\"i\":";
        body += std::to_string(missing[k]);
        if (attributed) {
            const std::size_t owner = plan.owner(missing[k]);
            body += ",\"shard\":";
            body += std::to_string(owner);
            body += ",\"file\":\"";
            body += shardFilePath(check.dir,
                                  {owner, check.shardCount});
            body += '"';
        }
        body += '}';
    }
    body += "]}\n";

    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp);
        out << body;
        out.flush();
        if (!out.good())
            sbn_fatal("cannot write missing-points manifest '", tmp,
                      "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        sbn_fatal("cannot rename '", tmp, "' over '", path, "'");
}

} // namespace sbn
