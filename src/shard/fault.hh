/**
 * @file
 * Deterministic fault injection for the sharded-sweep stack.
 *
 * The fault plane lets tests and CI kill shard workers at exact
 * record boundaries, tear JSONL tails the way a real kill does,
 * simulate write failures, wedge a worker (liveness testing), and
 * crash the merge stage - all reproducibly, from the environment:
 *
 *   SBN_FAULT=shard=1,kill_after_records=3,truncate_tail=40
 *
 * Grammar: comma-separated clauses.
 *
 *   shard=K | shard=any        which worker the fault targets. "any"
 *                              matches every process, including the
 *                              orchestrator (needed by
 *                              abort_in_merge). Default: any.
 *   attempt=A | attempt=any    which launch attempt fires the fault
 *                              (0 = the first). A supervised respawn
 *                              raises the attempt, so the default
 *                              attempt=0 kills only the first launch
 *                              and the retry runs clean; attempt=any
 *                              crashes every attempt, which is how
 *                              retry-budget exhaustion is tested.
 *   kill_after_records=K       after appending the K-th record, die
 *                              by SIGKILL (no cleanup, no flushed
 *                              buffers - the honest crash).
 *   truncate_tail=B            modifier for kill_after_records: just
 *                              before dying, append the first B bytes
 *                              of the last record as a torn extra
 *                              line, the artifact of a kill
 *                              mid-append.
 *   hang_after_records=K       after appending the K-th record, stop
 *                              making progress forever (liveness /
 *                              hang-timeout testing).
 *   fail_write_at=N            the N-th record append (1-based)
 *                              reports a simulated write error
 *                              through the normal fatal path.
 *   abort_in_merge             abort() at the start of
 *                              mergeRecordFiles().
 *
 * Service-level faults (the sbn_sweepd job plane, docs/service.md):
 *
 *   crash_after_journal=STATE  die by SIGKILL immediately after the
 *                              job journal durably records a
 *                              transition to STATE (submitted,
 *                              running, merging, done, failed,
 *                              cancelled) - the kill-anywhere probe
 *                              for daemon crash recovery. Fires in
 *                              the process that appends the journal
 *                              line (the daemon).
 *   crash_in_merge             die by SIGKILL at the start of a job
 *                              runner's merge/publish stage - after
 *                              every shard completed, before the
 *                              merged result becomes visible.
 *   stall_accept               wedge the daemon's accept loop
 *                              forever: the process stays alive but
 *                              stops serving, which is what makes
 *                              the heartbeat file go stale
 *                              (watchdog testing).
 *
 * The plane is entirely opt-in: with SBN_FAULT unset every hook is a
 * cheap no-op. Worker processes declare their identity with
 * setFaultProcessScope() (the supervisor does this in the child right
 * after fork; `sbn_sweep --shard=i/N` does it from the CLI spec), and
 * a fault clause only fires in processes whose scope it names.
 */

#ifndef SBN_SHARD_FAULT_HH
#define SBN_SHARD_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace sbn {

/** Environment variable holding the fault grammar. */
extern const char *const kFaultEnvVar;

/**
 * Environment variable a manually-launched worker can set to declare
 * its attempt number (the supervisor sets the scope directly in the
 * forked child instead). Read once by setFaultProcessScope()'s
 * default path.
 */
extern const char *const kFaultAttemptEnvVar;

/** shard=any / attempt=any wildcard values. */
constexpr std::size_t kFaultAnyShard =
    std::numeric_limits<std::size_t>::max();
constexpr unsigned kFaultAnyAttempt =
    std::numeric_limits<unsigned>::max();

/** Scope value of a process that is not a shard worker. */
constexpr std::size_t kFaultNoShard =
    std::numeric_limits<std::size_t>::max() - 1;

/** One parsed SBN_FAULT plan. Inactive default = every hook no-ops. */
struct FaultPlan
{
    bool active = false;
    std::size_t shard = kFaultAnyShard; //!< target worker, or any
    unsigned attempt = 0;               //!< target attempt, or any
    std::uint64_t killAfterRecords = 0; //!< 0 = off
    std::uint64_t truncateTail = 0;     //!< torn-line bytes at kill
    std::uint64_t hangAfterRecords = 0; //!< 0 = off
    std::uint64_t failWriteAt = 0;      //!< 1-based ordinal; 0 = off
    bool abortInMerge = false;

    // Service-level faults (sbn_sweepd).
    std::string crashAfterJournal; //!< job state name; empty = off
    bool crashInMerge = false;     //!< SIGKILL the job runner's merge
    bool stallAccept = false;      //!< wedge the daemon accept loop
};

/**
 * Parse the SBN_FAULT grammar. Returns false and sets @p error on a
 * malformed spec (unknown clause, bad number, truncate_tail without
 * kill_after_records). An empty string parses to an inactive plan.
 */
bool parseFaultPlan(const std::string &text, FaultPlan &out,
                    std::string &error);

/**
 * The process's current fault plan: SBN_FAULT parsed fresh from the
 * environment (hooks fire at record-append frequency, where a getenv
 * plus a tiny parse is noise next to the write+flush). Fatal on a
 * malformed value - a typo must not silently disable an injected
 * fault and let a test pass vacuously.
 */
FaultPlan currentFaultPlan();

/**
 * Declare what this process is, for fault targeting: shard index (or
 * kFaultNoShard) and launch attempt. The supervisor calls this in the
 * forked child; sbn_sweep's --shard path calls it with the CLI spec
 * and the SBN_FAULT_ATTEMPT environment value.
 */
void setFaultProcessScope(std::size_t shard_index, unsigned attempt);

/** True when @p plan targets this process (shard + attempt match). */
bool faultArmed(const FaultPlan &plan);

/**
 * Record-append hook, called by RecordWriter just before writing its
 * @p ordinal-th record (1-based). Returns true when the write must
 * fail as if the device had (fail_write_at).
 */
bool faultInjectWriteFailure(std::size_t ordinal);

/**
 * Record-boundary hook, called by RecordWriter right after record
 * @p ordinal (1-based) is durably on disk. @p line is the serialized
 * record just written and @p fd the open descriptor. Implements
 * kill_after_records (+ truncate_tail) and hang_after_records; does
 * not return when the fault fires.
 */
void faultAtRecordBoundary(std::size_t ordinal, const std::string &line,
                           int fd);

/** Merge-stage hook (abort_in_merge): abort()s when armed. */
void faultMaybeAbortInMerge();

/**
 * The journal-state names crash_after_journal= accepts. Mirrors the
 * sbn_sweepd job lifecycle (service/journal.hh); the two lists are
 * pinned against each other by tests/test_service.cc, since this
 * layer must not depend on the service layer.
 */
extern const char *const kFaultJournalStates[6];

/**
 * Journal hook, called by the job journal right after a transition
 * to @p state is durably on disk (fsync'ed). Implements
 * crash_after_journal=STATE; does not return when the fault fires.
 */
void faultAfterJournalState(const char *state);

/** Job-runner merge/publish hook (crash_in_merge): SIGKILLs this
 *  process when armed - the shards are done, the result is not yet
 *  visible. */
void faultMaybeCrashInMerge();

/** Daemon accept-loop hook (stall_accept): hangs forever when armed,
 *  leaving the process alive but unresponsive. */
void faultMaybeStallAccept();

} // namespace sbn

#endif // SBN_SHARD_FAULT_HH
