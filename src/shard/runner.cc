#include "shard/runner.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "core/fingerprint.hh"
#include "util/logging.hh"

namespace sbn {

namespace {

/**
 * Shared scaffolding of both shard run modes: plan the owned
 * indices, resume-filter the existing file, stream the missing
 * points through @p compute, and leave the file in canonical order.
 *
 * @p expected_fp maps owned flat index -> expected run fingerprint.
 * @p compute(missing, writer) must append one record per index of
 * @p missing (strictly increasing), in increasing-index order.
 */
ShardRunStats
runShardCommon(
    std::size_t grid_size, const ShardSpec &shard, ShardLayout layout,
    const std::map<std::size_t, std::uint64_t> &expected_fp,
    const std::string &out_path, bool resume,
    const std::function<void(const std::vector<std::size_t> &,
                             RecordWriter &)> &compute)
{
    const ShardPlan plan(grid_size, shard.count, layout);
    const std::vector<std::size_t> owned = plan.indices(shard.index);

    ShardRunStats stats;
    stats.owned = owned.size();

    // A previous worker may have died mid-rewrite, leaving a stale
    // partial '<file>.tmp.<pid>' next to the record file. The rename
    // never happened, so the temp holds nothing the record file does
    // not; discard it rather than let temps accumulate.
    if (resume)
        removeStaleRewriteTemps(out_path);

    // Resume: harvest usable records. Only records that address an
    // owned point *and* carry the exact run fingerprint the sweep
    // expects there survive. Track whether the file on disk is
    // *exactly* the kept records in ascending order - the common
    // clean-resume case - because then it can be appended to in
    // place, preserving the "a kill loses at most the line being
    // written" durability bound with no rewrite at all.
    std::map<std::size_t, PointRecord> kept;
    bool file_is_kept_canonical = false;
    if (resume) {
        const std::vector<PointRecord> parsed =
            readRecordFile(out_path, /*tolerate_partial_tail=*/true);
        bool dropped = false;
        bool sorted = true;
        for (const PointRecord &record : parsed) {
            const auto it = expected_fp.find(record.flatIndex);
            if (it == expected_fp.end()) {
                sbn_warn("resume: dropping record for flat index ",
                         record.flatIndex, " in '", out_path,
                         "' - shard ", shard.toString(), " (",
                         shardLayoutName(layout),
                         ") does not own that point");
                dropped = true;
                continue;
            }
            if (record.runFp != it->second) {
                sbn_warn("resume: dropping stale record for flat "
                         "index ",
                         record.flatIndex, " in '", out_path,
                         "' - run fingerprint ",
                         formatFingerprint(record.runFp),
                         " does not match the current sweep (",
                         formatFingerprint(it->second), ")");
                dropped = true;
                continue;
            }
            const auto slot = kept.find(record.flatIndex);
            if (slot != kept.end()) {
                if (!slot->second.bitIdentical(record))
                    sbn_fatal("resume: '", out_path,
                              "' holds two different records for "
                              "flat index ",
                              record.flatIndex,
                              " with matching fingerprints - the "
                              "file is corrupt");
                dropped = true; // benign duplicate, still a rewrite
                continue;
            }
            if (!kept.empty() &&
                record.flatIndex < kept.rbegin()->first)
                sorted = false;
            kept.emplace(record.flatIndex, record);
        }
        if (!dropped && sorted) {
            // Nothing was filtered and the order is canonical; the
            // fast path needs the file to be *byte-wise* exactly the
            // kept records' deterministic serialization. Size alone
            // is not enough - the parser accepts non-canonical but
            // bit-equivalent decimal spellings (e.g. "3.0" for "3"),
            // so compare the actual bytes.
            std::string canonical;
            for (const auto &entry : kept) {
                canonical += formatRecord(entry.second);
                canonical += '\n';
            }
            std::ifstream probe(out_path, std::ios::binary);
            if (probe.good()) {
                std::ostringstream actual;
                actual << probe.rdbuf();
                file_is_kept_canonical = actual.str() == canonical;
            }
        }
    }
    stats.skipped = kept.size();

    // Make the file state "kept records, canonical order": in place
    // when it already is, else via an atomic temp+rename replacement
    // (a crash mid-rewrite exposes the old file or the new one,
    // never a half-written mix).
    if (!file_is_kept_canonical) {
        std::vector<PointRecord> kept_sorted;
        kept_sorted.reserve(kept.size());
        for (const auto &entry : kept)
            kept_sorted.push_back(entry.second);
        rewriteRecordsAtomic(out_path, kept_sorted);
    }

    // Stream the missing points in increasing-index order behind the
    // kept block, one flushed line per completed point.
    RecordWriter writer(out_path, /*append=*/true);

    std::vector<std::size_t> missing;
    missing.reserve(owned.size() - kept.size());
    for (std::size_t index : owned)
        if (kept.find(index) == kept.end())
            missing.push_back(index);
    stats.computed = missing.size();

    compute(missing, writer);

    // A resume that skipped points out of order (kept = {0, 2},
    // computed = {1, 3}) appended behind the kept block; restore
    // flat-index order (atomically) so a resumed shard file is
    // byte-identical to an uninterrupted run's.
    if (!kept.empty() && !missing.empty() &&
        missing.front() < kept.rbegin()->first) {
        std::vector<PointRecord> all =
            readRecordFile(out_path, /*tolerate_partial_tail=*/false);
        std::sort(all.begin(), all.end(),
                  [](const PointRecord &a, const PointRecord &b) {
                      return a.flatIndex < b.flatIndex;
                  });
        rewriteRecordsAtomic(out_path, all);
    }
    return stats;
}

std::map<std::size_t, std::uint64_t>
ownedFingerprints(const std::vector<SystemConfig> &points,
                  const ShardSpec &shard, ShardLayout layout,
                  const std::function<std::uint64_t(std::uint64_t)>
                      &mix)
{
    const ShardPlan plan(points.size(), shard.count, layout);
    std::map<std::size_t, std::uint64_t> expected;
    for (std::size_t index : plan.indices(shard.index))
        expected.emplace(index,
                         mix(configFingerprint(points[index])));
    return expected;
}

/** Validate a stolen-slice index list: strictly increasing, in range. */
void
checkStolenIndices(const std::vector<std::size_t> &stolen,
                   std::size_t grid_size)
{
    for (std::size_t k = 0; k < stolen.size(); ++k) {
        sbn_assert(stolen[k] < grid_size,
                   "stolen index out of the grid");
        sbn_assert(k == 0 || stolen[k - 1] < stolen[k],
                   "stolen indices must be strictly increasing");
    }
}

} // namespace

ShardRunStats
runShardSweep(
    const std::vector<SystemConfig> &points, const ShardSpec &shard,
    ShardLayout layout,
    const std::function<double(const SystemConfig &)> &evaluate,
    const std::string &out_path, bool resume, unsigned threads)
{
    const auto expected = ownedFingerprints(
        points, shard, layout,
        [](std::uint64_t fp) { return sweepRunFingerprint(fp); });

    ParallelRunner &runner = sharedParallelRunner(
        threads != 0 ? threads : defaultExecThreads());

    return runShardCommon(
        points.size(), shard, layout, expected, out_path, resume,
        [&](const std::vector<std::size_t> &missing,
            RecordWriter &writer) {
            runner.mapConfigsStreamedSubset(
                points, missing, evaluate,
                [&](std::size_t index, const SystemConfig &cfg,
                    double value) {
                    writer.add(makeSweepRecord(index, cfg, value));
                });
        });
}

ShardRunStats
runShardSweep(
    const SweepSpec &spec, const ShardSpec &shard, ShardLayout layout,
    const std::function<double(const SystemConfig &)> &evaluate,
    const std::string &out_path, bool resume, unsigned threads)
{
    return runShardSweep(spec.materialize(), shard, layout, evaluate,
                         out_path, resume, threads);
}

ShardRunStats
runShardSweep(
    const std::vector<SystemConfig> &points, const ShardSpec &shard,
    ShardLayout layout,
    const std::function<PointSample(const SystemConfig &)> &evaluate,
    const std::string &out_path, bool resume, unsigned threads)
{
    const auto expected = ownedFingerprints(
        points, shard, layout,
        [](std::uint64_t fp) { return sweepRunFingerprint(fp); });

    ParallelRunner &runner = sharedParallelRunner(
        threads != 0 ? threads : defaultExecThreads());

    return runShardCommon(
        points.size(), shard, layout, expected, out_path, resume,
        [&](const std::vector<std::size_t> &missing,
            RecordWriter &writer) {
            runner.stream<PointSample>(
                missing.size(),
                [&](std::size_t k) {
                    return evaluate(points[missing[k]]);
                },
                [&](std::size_t k, const PointSample &sample) {
                    writer.add(makeSweepRecord(
                        missing[k], points[missing[k]], sample));
                });
        });
}

ShardRunStats
runShardSweep(
    const SweepSpec &spec, const ShardSpec &shard, ShardLayout layout,
    const std::function<PointSample(const SystemConfig &)> &evaluate,
    const std::string &out_path, bool resume, unsigned threads)
{
    return runShardSweep(spec.materialize(), shard, layout, evaluate,
                         out_path, resume, threads);
}

ShardRunStats
runShardAdaptive(
    const std::vector<SystemConfig> &points, const ShardSpec &shard,
    ShardLayout layout, const PrecisionTarget &target,
    const RoundSchedule &schedule,
    const std::function<double(const SystemConfig &, std::uint64_t)>
        &experiment,
    const std::string &out_path, bool resume, unsigned threads)
{
    const auto expected = ownedFingerprints(
        points, shard, layout, [&](std::uint64_t fp) {
            return adaptiveRunFingerprint(fp, target, schedule);
        });

    ParallelRunner &runner = sharedParallelRunner(
        threads != 0 ? threads : defaultExecThreads());
    const AdaptiveReplicator replicator(runner, target, schedule);

    return runShardCommon(
        points.size(), shard, layout, expected, out_path, resume,
        [&](const std::vector<std::size_t> &missing,
            RecordWriter &writer) {
            replicator.runPointsSubset(
                points, missing, experiment,
                [&](std::size_t index, const SystemConfig &cfg,
                    const AdaptiveEstimate &estimate) {
                    writer.add(makeAdaptiveRecord(
                        index, cfg, estimate, target, schedule));
                });
        });
}

ShardRunStats
runShardAdaptive(
    const SweepSpec &spec, const ShardSpec &shard, ShardLayout layout,
    const PrecisionTarget &target, const RoundSchedule &schedule,
    const std::function<double(const SystemConfig &, std::uint64_t)>
        &experiment,
    const std::string &out_path, bool resume, unsigned threads)
{
    return runShardAdaptive(spec.materialize(), shard, layout, target,
                            schedule, experiment, out_path, resume,
                            threads);
}

ShardRunStats
runStolenPointsSweep(
    const std::vector<SystemConfig> &points,
    const std::vector<std::size_t> &stolen,
    const std::function<double(const SystemConfig &)> &evaluate,
    const std::string &out_path, unsigned threads)
{
    checkStolenIndices(stolen, points.size());

    ParallelRunner &runner = sharedParallelRunner(
        threads != 0 ? threads : defaultExecThreads());

    // Fresh truncate-write: a steal file carries only this launch's
    // records. A predecessor's partial file stays on disk under its
    // own name, so its flushed records still count for the fleet.
    RecordWriter writer(out_path, /*append=*/false);
    runner.mapConfigsStreamedSubset(
        points, stolen, evaluate,
        [&](std::size_t index, const SystemConfig &cfg,
            double value) {
            writer.add(makeSweepRecord(index, cfg, value));
        });

    ShardRunStats stats;
    stats.owned = stolen.size();
    stats.computed = stolen.size();
    return stats;
}

ShardRunStats
runStolenPointsSweep(
    const std::vector<SystemConfig> &points,
    const std::vector<std::size_t> &stolen,
    const std::function<PointSample(const SystemConfig &)> &evaluate,
    const std::string &out_path, unsigned threads)
{
    checkStolenIndices(stolen, points.size());

    ParallelRunner &runner = sharedParallelRunner(
        threads != 0 ? threads : defaultExecThreads());

    RecordWriter writer(out_path, /*append=*/false);
    runner.stream<PointSample>(
        stolen.size(),
        [&](std::size_t k) { return evaluate(points[stolen[k]]); },
        [&](std::size_t k, const PointSample &sample) {
            writer.add(
                makeSweepRecord(stolen[k], points[stolen[k]], sample));
        });

    ShardRunStats stats;
    stats.owned = stolen.size();
    stats.computed = stolen.size();
    return stats;
}

ShardRunStats
runStolenPointsAdaptive(
    const std::vector<SystemConfig> &points,
    const std::vector<std::size_t> &stolen,
    const PrecisionTarget &target, const RoundSchedule &schedule,
    const std::function<double(const SystemConfig &, std::uint64_t)>
        &experiment,
    const std::string &out_path, unsigned threads)
{
    checkStolenIndices(stolen, points.size());

    ParallelRunner &runner = sharedParallelRunner(
        threads != 0 ? threads : defaultExecThreads());
    const AdaptiveReplicator replicator(runner, target, schedule);

    RecordWriter writer(out_path, /*append=*/false);
    replicator.runPointsSubset(
        points, stolen, experiment,
        [&](std::size_t index, const SystemConfig &cfg,
            const AdaptiveEstimate &estimate) {
            writer.add(makeAdaptiveRecord(index, cfg, estimate,
                                          target, schedule));
        });

    ShardRunStats stats;
    stats.owned = stolen.size();
    stats.computed = stolen.size();
    return stats;
}

} // namespace sbn
