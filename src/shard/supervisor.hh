/**
 * @file
 * Fault-tolerant supervision of a sharded-sweep worker fleet.
 *
 * ShardSupervisor owns the worker processes of a multi-shard sweep:
 * it forks one worker per shard, watches them, and drives a per-shard
 * state machine
 *
 *     Pending -> Running -> Done
 *                   |  \
 *                   |   (crash / hang) -> Backoff -> Running ...
 *                   |                        |
 *                   |                        (budget spent)
 *                   v                        v
 *                  Done                  Exhausted
 *
 * with three recovery mechanisms layered on the shard layer's
 * determinism contract (docs/sharding.md):
 *
 *  - **Retry with capped exponential backoff.** A worker that exits
 *    nonzero or dies on a signal is re-forked with resume semantics -
 *    the respawned worker keeps every record the dead one flushed and
 *    recomputes only the missing points. Each shard has a bounded
 *    retry budget; backoff doubles per failure up to a cap.
 *  - **Liveness via record-file progress.** Workers prove liveness by
 *    growing their record file. A worker whose file has not grown
 *    within the hang timeout is declared hung, SIGKILLed, and retried
 *    like a crash. No heartbeat protocol: the progress signal is the
 *    output itself, so a worker that is alive but wedged (deadlock,
 *    infinite loop, stuck I/O) is caught too.
 *  - **Work stealing.** When a worker finishes and another shard
 *    still has missing points, the free slot runs a *steal* worker
 *    that claims a strided slice of those points into its own record
 *    file. Overlap with the victim is harmless: every point is an
 *    independent seeded computation, so duplicates are bit-identical
 *    and the merge layer dedupes them.
 *
 * On exhausted retries the supervisor degrades gracefully instead of
 * failing blanketly: the report lists exactly which grid points have
 * no valid record, writeMissingPointsManifest() persists them
 * machine-readably, and the orchestrator emits the merged partial
 * output with the distinct kPartialResultExit code.
 *
 * The supervisor is policy; execution stays in the worker body
 * callback, which runs in the forked child (for sbn_sweep that is
 * runShardSweep/runShardAdaptive or the steal-slice variants). The
 * deterministic fault plane (shard/fault.hh) targets workers by the
 * scope the supervisor sets in each child, which is how ctest and CI
 * exercise every one of these paths on purpose.
 */

#ifndef SBN_SHARD_SUPERVISOR_HH
#define SBN_SHARD_SUPERVISOR_HH

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "shard/merge.hh"
#include "shard/plan.hh"
#include "trace/span.hh"
#include "util/exit_codes.hh" // kPartialResultExit lives there now

namespace sbn {

/** Lifecycle of one shard under supervision. */
enum class ShardState
{
    Pending,   //!< not yet launched
    Running,   //!< worker process alive
    Backoff,   //!< failed; waiting out the backoff delay
    Done,      //!< worker exited 0
    Exhausted, //!< retry budget spent without success
};

/** Canonical lowercase name of a ShardState. */
const char *shardStateName(ShardState state);

/**
 * One unit of work executed in a forked child: either a full shard
 * (resume semantics, canonical shard file) or a steal slice (explicit
 * point list, its own file).
 */
struct WorkerTask
{
    bool steal = false;
    ShardSpec shard;                 //!< full-shard task identity
    std::vector<std::size_t> points; //!< steal: claimed flat indices
    std::string outPath;             //!< record file this task writes
    unsigned attempt = 0;            //!< prior launches of this shard
};

/**
 * Executes a WorkerTask in the forked child. Must write one record
 * per computed point to task.outPath and return normally on success;
 * any exception (or process death) is a worker failure. Runs after
 * fork: single-threaded, must build its own execution resources.
 */
using WorkerBody = std::function<void(const WorkerTask &)>;

/** Supervision policy knobs. */
struct SupervisorConfig
{
    std::size_t shardCount = 1;
    std::string dir; //!< shard-file directory (canonical + steal files)
    ShardLayout layout = ShardLayout::Contiguous;

    /**
     * Per-point expected run fingerprints (index = flat grid index).
     * Defines the grid size and lets the supervisor decide point
     * completeness the same way resume and merge do.
     */
    std::vector<std::uint64_t> expectedRunFp;

    unsigned maxRetries = 2;    //!< respawns allowed per shard
    double backoffInitialSeconds = 0.25;
    double backoffGrowth = 2.0;
    double backoffCapSeconds = 5.0;

    /** Seconds without record-file growth before a running worker is
     *  declared hung and killed. 0 disables liveness detection. */
    double hangTimeoutSeconds = 0.0;

    bool workStealing = true;
    unsigned pollMillis = 20; //!< supervision loop period

    /** Total steal launches allowed (0 = 4 * shardCount). Bounds the
     *  loop when stolen work itself keeps failing. */
    std::size_t maxStealLaunches = 0;
};

/**
 * The capped-exponential retry delay before a shard's next relaunch,
 * as a pure function of the policy and how many launches of that
 * shard have already failed (@p failures >= 1 - the first failure is
 * failure 1):
 *
 *     min(backoffCapSeconds,
 *         backoffInitialSeconds * backoffGrowth^(failures - 1))
 *
 * Factored out of the supervision loop so the schedule is unit-
 * testable against a deterministic clock (tests/test_supervisor.cc)
 * instead of being pinned by wall-clock sleeps.
 */
double supervisorBackoffSeconds(const SupervisorConfig &config,
                                unsigned failures);

/**
 * Rate gate for periodic work inside a polled loop: due() answers
 * "has at least `period` elapsed since the last admitted tick?" and
 * admits at most one tick per period. The caller supplies the clock
 * reading, which is what makes the steal-scan throttle (and any
 * future periodic duty) testable with synthetic time points.
 */
class PeriodicGate
{
  public:
    using Duration = std::chrono::steady_clock::duration;
    using TimePoint = std::chrono::steady_clock::time_point;

    explicit PeriodicGate(Duration period) : period_(period) {}

    /** True (and consumes the tick) when the period has elapsed
     *  since the last admitted tick. The first call always admits. */
    bool due(TimePoint now)
    {
        if (armed_ && now - last_ < period_)
            return false;
        armed_ = true;
        last_ = now;
        return true;
    }

  private:
    Duration period_;
    TimePoint last_{};
    bool armed_ = false; //!< a tick has been admitted before
};

/** Terminal accounting for one shard. */
struct ShardOutcome
{
    ShardState state = ShardState::Pending;
    unsigned launches = 0; //!< processes forked for this shard
    int lastStatus = 0;    //!< raw waitpid status of the last failure
    bool everHung = false; //!< a launch was killed by the hang timer
};

/** What a supervised run accomplished. */
struct SupervisorReport
{
    bool complete = false; //!< every grid point has a valid record
    /**
     * Nonzero when run() stopped because the supervisor itself caught
     * SIGINT/SIGTERM: every live worker was SIGKILLed and reaped
     * before returning, and `complete` reflects whatever records
     * survived. Orchestrators should exit 128 + interruptSignal.
     */
    int interruptSignal = 0;
    std::vector<ShardOutcome> shards;
    std::vector<std::size_t> missingPoints; //!< ascending flat indices
    /** Record files that exist: canonical shard files + steal files,
     *  in merge order. */
    std::vector<std::string> recordFiles;
    std::size_t respawns = 0;      //!< failure-triggered relaunches
    std::size_t stealLaunches = 0; //!< steal workers forked
    std::size_t stolenPoints = 0;  //!< points claimed across steals
};

/**
 * Supervises one fleet of shard workers to completion or budget
 * exhaustion. Construct, then call run() exactly once. The
 * supervisor forks; call it before creating any thread pool in the
 * parent (sbn_sweep's --spawn discipline).
 */
class ShardSupervisor
{
  public:
    ShardSupervisor(SupervisorConfig config, WorkerBody body);
    ~ShardSupervisor(); // out-of-line: Task is incomplete here

    /**
     * Run the fleet; blocks until every shard is Done or Exhausted
     * and no steal worker is in flight - or until the supervisor
     * process catches SIGINT/SIGTERM, in which case every live worker
     * is SIGKILLed and reaped (no orphans) and the report carries the
     * signal in interruptSignal. Handlers are installed for the
     * duration of run() and restored on return.
     */
    SupervisorReport run();

  private:
    struct Task;

    void spawn(Task &task);
    void killAndReapAllWorkers();
    void reapExited();
    void killHungWorkers();
    void launchDueRespawns();
    void maybeSteal();
    void launchSteal(const std::vector<std::size_t> &points,
                     std::size_t victim);
    std::size_t stealLaunches() const;
    void handleFailure(Task &task, int status, bool hung);
    void closeAttemptSpan(Task &task, const char *outcome, int status,
                          bool hung);
    std::vector<bool> satisfiedPoints() const;
    std::vector<std::string> existingRecordFiles() const;
    std::size_t runningCount() const;
    bool allShardsTerminal() const;

    SupervisorConfig config_;
    WorkerBody body_;
    std::vector<Task> shardTasks_;
    std::vector<Task> stealTasks_;
    std::size_t stealSequence_ = 0;
    PeriodicGate stealScanGate_{std::chrono::milliseconds(250)};
    bool stealBroken_ = false; //!< a steal worker failed; stop stealing
    SupervisorReport report_;

    // Span tracing (trace/span.hh); all zero when SBN_TRACE_DIR is
    // unset. Each worker launch is one "attempt" span whose id is
    // allocated before the fork and exported to the child, so worker
    // processes parent their own spans under it.
    TraceContext trace_;          //!< this fleet's trace coordinates
    std::uint64_t runSpanId_ = 0; //!< the whole run's "supervise" span
    std::uint64_t runStartUs_ = 0;
};

/** Canonical manifest path: dir/missing-points.json. */
std::string missingManifestPath(const std::string &dir);

/**
 * Persist the machine-readable missing-points manifest (atomic
 * temp+rename): one JSON object naming every missing flat index and,
 * when @p check carries shard attribution, the shard file expected
 * to own it.
 */
void writeMissingPointsManifest(const std::string &path,
                                const MergeCheck &check,
                                const std::vector<std::size_t> &missing);

} // namespace sbn

#endif // SBN_SHARD_SUPERVISOR_HH
