/**
 * @file
 * Discrete-time Markov chain construction and stationary analysis.
 *
 * The chains produced by the bus models are small (tens to a few
 * thousand states), so a dense representation with a direct linear
 * solve is both simplest and fastest. A power-iteration solver is also
 * provided and is used by the test suite to cross-check the direct
 * solver.
 */

#ifndef SBN_MARKOV_DTMC_HH
#define SBN_MARKOV_DTMC_HH

#include <cstddef>
#include <vector>

namespace sbn {

/**
 * Row-stochastic transition matrix with stationary-distribution
 * solvers. Rows are accumulated with addTransition (duplicates sum),
 * then validated and solved.
 */
class Dtmc
{
  public:
    /** Create a chain with @p num_states states and no transitions. */
    explicit Dtmc(std::size_t num_states);

    /** Number of states. */
    std::size_t numStates() const { return n_; }

    /** Accumulate probability mass on the (from -> to) transition. */
    void addTransition(std::size_t from, std::size_t to, double prob);

    /** Read an entry of the transition matrix. */
    double probability(std::size_t from, std::size_t to) const;

    /**
     * Verify every row sums to 1 within @p tol and every entry is in
     * [-tol, 1+tol]. Panics on violation (model construction bug).
     */
    void validate(double tol = 1e-9) const;

    /**
     * Stationary distribution via a direct solve of pi P = pi,
     * sum(pi) = 1 (Gaussian elimination with partial pivoting on the
     * transposed system with the normalization row substituted).
     *
     * @pre the chain is irreducible (unique stationary distribution);
     *      aperiodicity is not required.
     */
    std::vector<double> stationaryDirect() const;

    /**
     * Stationary distribution via damped power iteration
     * (pi <- pi (0.5 I + 0.5 P), which converges for periodic chains
     * too). Iterates until the L1 change is below @p tol.
     */
    std::vector<double> stationaryPower(double tol = 1e-13,
                                        std::size_t max_iter = 200000) const;

    /** Expectation of @p reward under distribution @p pi. */
    static double expectation(const std::vector<double> &pi,
                              const std::vector<double> &reward);

  private:
    std::size_t n_;
    std::vector<double> p_; // row-major n_ x n_
};

} // namespace sbn

#endif // SBN_MARKOV_DTMC_HH
