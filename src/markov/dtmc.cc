#include "markov/dtmc.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace sbn {

Dtmc::Dtmc(std::size_t num_states) : n_(num_states), p_(n_ * n_, 0.0)
{
    sbn_assert(num_states >= 1, "chain needs at least one state");
}

void
Dtmc::addTransition(std::size_t from, std::size_t to, double prob)
{
    sbn_assert(from < n_ && to < n_, "transition index out of range");
    p_[from * n_ + to] += prob;
}

double
Dtmc::probability(std::size_t from, std::size_t to) const
{
    sbn_assert(from < n_ && to < n_, "probability index out of range");
    return p_[from * n_ + to];
}

void
Dtmc::validate(double tol) const
{
    for (std::size_t i = 0; i < n_; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < n_; ++j) {
            const double v = p_[i * n_ + j];
            sbn_assert(v >= -tol && v <= 1.0 + tol,
                       "P[", i, ",", j, "] out of [0,1]: ", v);
            row += v;
        }
        sbn_assert(std::abs(row - 1.0) <= tol * static_cast<double>(n_),
                   "row ", i, " sums to ", row, ", expected 1");
    }
}

std::vector<double>
Dtmc::stationaryDirect() const
{
    // Solve (P^T - I) pi = 0 together with sum(pi) = 1. The
    // normalization is *added* to the last row rather than replacing
    // it: the columns of P^T - I sum to zero, so the last row is the
    // negated sum of the others and A + e_last*1^T is provably
    // nonsingular for a chain with one recurrent class (replacing a
    // row can leave a rank-deficient system).
    const std::size_t n = n_;
    std::vector<double> a(n * n, 0.0);
    std::vector<double> b(n, 0.0);

    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            a[i * n + j] = p_[j * n + i] - (i == j ? 1.0 : 0.0);
    for (std::size_t j = 0; j < n; ++j)
        a[(n - 1) * n + j] += 1.0;
    b[n - 1] = 1.0;

    // Gaussian elimination with partial pivoting.
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row)
            if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col]))
                pivot = row;
        if (pivot != col) {
            for (std::size_t j = 0; j < n; ++j)
                std::swap(a[col * n + j], a[pivot * n + j]);
            std::swap(b[col], b[pivot]);
        }
        const double diag = a[col * n + col];
        sbn_assert(std::abs(diag) > 1e-14,
                   "singular system: chain is likely reducible");
        for (std::size_t row = col + 1; row < n; ++row) {
            const double factor = a[row * n + col] / diag;
            if (factor == 0.0)
                continue;
            for (std::size_t j = col; j < n; ++j)
                a[row * n + j] -= factor * a[col * n + j];
            b[row] -= factor * b[col];
        }
    }

    std::vector<double> pi(n, 0.0);
    for (std::size_t rowp1 = n; rowp1 > 0; --rowp1) {
        const std::size_t row = rowp1 - 1;
        double acc = b[row];
        for (std::size_t j = row + 1; j < n; ++j)
            acc -= a[row * n + j] * pi[j];
        pi[row] = acc / a[row * n + row];
    }

    // Clamp tiny negatives introduced by roundoff and renormalize.
    double total = 0.0;
    for (auto &v : pi) {
        if (v < 0.0 && v > -1e-9)
            v = 0.0;
        total += v;
    }
    sbn_assert(total > 0.0, "stationary distribution sums to zero");
    for (auto &v : pi)
        v /= total;
    return pi;
}

std::vector<double>
Dtmc::stationaryPower(double tol, std::size_t max_iter) const
{
    std::vector<double> pi(n_, 1.0 / static_cast<double>(n_));
    std::vector<double> next(n_, 0.0);

    for (std::size_t iter = 0; iter < max_iter; ++iter) {
        std::fill(next.begin(), next.end(), 0.0);
        for (std::size_t i = 0; i < n_; ++i) {
            const double w = pi[i];
            if (w == 0.0)
                continue;
            const double *row = &p_[i * n_];
            for (std::size_t j = 0; j < n_; ++j)
                next[j] += w * row[j];
        }
        // Damping handles periodic chains: pi <- (pi + pi P) / 2.
        double delta = 0.0;
        for (std::size_t j = 0; j < n_; ++j) {
            next[j] = 0.5 * (next[j] + pi[j]);
            delta += std::abs(next[j] - pi[j]);
        }
        pi.swap(next);
        if (delta < tol)
            return pi;
    }
    sbn_warn("power iteration did not converge to ", tol);
    return pi;
}

double
Dtmc::expectation(const std::vector<double> &pi,
                  const std::vector<double> &reward)
{
    sbn_assert(pi.size() == reward.size(),
               "expectation: size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < pi.size(); ++i)
        acc += pi[i] * reward[i];
    return acc;
}

} // namespace sbn
