/**
 * @file
 * Stable configuration fingerprinting for sharded-sweep records.
 *
 * A fingerprint is a 64-bit FNV-1a hash over every SystemConfig field
 * that determines simulation *results*: grid coordinates, policies,
 * buffering, the full workload description, seed and window lengths.
 * Presentation-only fields (trace sink, wait-histogram toggle) are
 * excluded. The leading version tag is SBNFPV02 (the workload layer
 * replaced the bare moduleWeights vector; V01 records never match
 * and are discarded on resume).
 *
 * Fingerprints identify grid points across processes, hosts and
 * repository revisions (they are pure arithmetic over field values,
 * no pointers, no platform-dependent layout), which is what lets a
 * resumed shard prove a previously written record belongs to the
 * point it is about to skip.
 */

#ifndef SBN_CORE_FINGERPRINT_HH
#define SBN_CORE_FINGERPRINT_HH

#include <cstdint>
#include <string>

#include "core/config.hh"

namespace sbn {

/** 64-bit result-determining fingerprint of @p config. */
std::uint64_t configFingerprint(const SystemConfig &config);

/**
 * The FNV-1a mixing step all sbn fingerprints are built from: fold
 * the 8 bytes of @p value into @p state (little-endian byte order).
 * Derived fingerprints (e.g. the shard layer's run fingerprints)
 * must extend configFingerprint() through this same function so the
 * two can never drift apart.
 */
std::uint64_t fingerprintMix(std::uint64_t state, std::uint64_t value);

/** The IEEE-754 bit pattern of @p value, as fingerprint input. */
std::uint64_t doubleFingerprintBits(double value);

/** Rebuild the double behind a doubleFingerprintBits() pattern. */
double doubleFromFingerprintBits(std::uint64_t bits);

/**
 * The canonical exact decimal form of a double: %.17g, which
 * round-trips the bit pattern. Every serializer that pairs decimals
 * with bit patterns (shard records, the analytic disk cache, golden
 * files) must render through this one function so the codecs can
 * never drift apart.
 */
std::string formatExactDouble(double value);

/** Render a fingerprint as the canonical "0x%016x" record form. */
std::string formatFingerprint(std::uint64_t fingerprint);

/**
 * Parse the canonical "0x%016x" form back. Returns false (leaving
 * @p out untouched) on anything else - wrong prefix, wrong length,
 * non-hex digits.
 */
bool parseFingerprint(const std::string &text, std::uint64_t &out);

} // namespace sbn

#endif // SBN_CORE_FINGERPRINT_HH
