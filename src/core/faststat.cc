#include "core/faststat.hh"

#include <algorithm>
#include <limits>

#include "core/fingerprint.hh"
#include "desim/trace.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace sbn {

namespace {

/** Compose "proc 3 -> module 5"-style trace text. */
template <typename... Args>
std::string
traceText(Args &&...args)
{
    return detail::composeMessage(std::forward<Args>(args)...);
}

constexpr Tick kNever = std::numeric_limits<Tick>::max();

} // namespace

FastStatSystem::FastStatSystem(const SystemConfig &config)
    : cfg_(config),
      // cfg_ precedes workload_ in declaration order; validate before
      // the workload model builds alias tables from the raw fields.
      workload_((cfg_.validate(), cfg_.workload), cfg_.numProcessors,
                cfg_.numModules, cfg_.requestProbability),
      pc_(static_cast<Tick>(cfg_.processorCycle()))
{
    // Stream family keyed by the full config fingerprint (seed
    // included): streams 0..n-1 drive the processors, stream n the
    // arbitration tie-breaks. Any config difference re-keys every
    // stream at once.
    const std::uint64_t key = configFingerprint(cfg_);
    const auto n = static_cast<std::size_t>(cfg_.numProcessors);
    const auto m = static_cast<std::size_t>(cfg_.numModules);
    procRng_.reserve(n);
    for (std::size_t p = 0; p < n; ++p)
        procRng_.emplace_back(key, static_cast<std::uint64_t>(p));
    arbRng_ = CounterRng(key, static_cast<std::uint64_t>(n));

    procState_.assign(n, ProcState::Thinking);
    procTarget_.assign(n, -1);
    procIssueTick_.assign(n, 0);

    modState_.assign(m, ModState::Idle);
    modServing_.assign(m, -1);
    modAccessStart_.assign(m, 0);
    modAccessing_.assign(m, 0u);
    inputQueues_.resize(m);
    outputQueues_.resize(m);

    arbAt_ = kNever;
    compRing_.resize(m + 1);
    thinkHeap_.reserve(n);

    candProcSet_.resize(n);
    candModSet_.resize(m);
    waiterSets_.assign(m, IndexSet(n));
    modCanAccept_.assign(m, 1u);
    modHasResponse_.assign(m, 0u);

    windowStart_ = cfg_.warmupCycles;
    windowEnd_ = cfg_.warmupCycles + cfg_.measureCycles;
    perProcCompleted_.assign(n, 0);
    if (cfg_.collectWaitHistogram) {
        waitHist_.emplace(0.0, 20.0 * static_cast<double>(pc_), 200);
    }
    if (cfg_.collectPerModule) {
        perModBusy_.assign(m, 0);
        perModDepth_.assign(m, 0);
        perModDepthArea_.assign(m, 0);
        perModDepthSince_.assign(m, 0);
        perModDepthMax_.assign(m, 0);
    }
    if (cfg_.collectLatency) {
        procServiceStart_.assign(n, 0);
        latWaitHist_.emplace(makeLatencyHistogram());
        latResidenceHist_.emplace(makeLatencyHistogram());
    }
}

bool
FastStatSystem::moduleCanAcceptRequest(int module) const
{
    if (!cfg_.buffered)
        return modState_[static_cast<std::size_t>(module)] ==
               ModState::Idle;

    // No reservation term: grants enqueue their request immediately
    // (delivery is fused into the grant), so the input queue alone is
    // the occupancy.
    const auto idx = static_cast<std::size_t>(module);
    const int occupied = static_cast<int>(inputQueues_[idx].size());
    if (cfg_.inputCapacity == 0)
        return true;
    if (!modAccessing_[idx] && occupied == 0)
        return true;
    return occupied < cfg_.inputCapacity;
}

bool
FastStatSystem::moduleHasResponse(int module) const
{
    const auto idx = static_cast<std::size_t>(module);
    if (!cfg_.buffered)
        return modState_[idx] == ModState::HoldingResponse;
    return !outputQueues_[idx].empty();
}

void
FastStatSystem::procBecomesWaiting(int proc, int target)
{
    waiterSets_[static_cast<std::size_t>(target)].insert(
        static_cast<std::size_t>(proc));
    if (modCanAccept_[static_cast<std::size_t>(target)])
        candProcSet_.insert(static_cast<std::size_t>(proc));
}

void
FastStatSystem::refreshModule(int module)
{
    const auto idx = static_cast<std::size_t>(module);
    const bool accept = moduleCanAcceptRequest(module);
    if (accept != static_cast<bool>(modCanAccept_[idx])) {
        modCanAccept_[idx] = accept ? 1 : 0;
        if (!waiterSets_[idx].empty()) {
            if (accept)
                candProcSet_.insertAll(waiterSets_[idx]);
            else
                candProcSet_.eraseAll(waiterSets_[idx]);
        }
    }
    const bool response = moduleHasResponse(module);
    if (response != static_cast<bool>(modHasResponse_[idx])) {
        modHasResponse_[idx] = response ? 1 : 0;
        if (response)
            candModSet_.insert(idx);
        else
            candModSet_.erase(idx);
    }
}

void
FastStatSystem::scheduleCompletion(int module, Tick due)
{
    sbn_debug_assert(compCount_ < compRing_.size(),
               "completion ring overflow");
    // Fixed-stride calendar: every access lasts exactly memoryRatio
    // ticks and starts at the current (monotone) tick, so pushes
    // arrive in due order and a plain FIFO ring is a full calendar.
    sbn_debug_assert(due >= lastCompletionDue_,
               "completion calendar lost its FIFO order");
    lastCompletionDue_ = due;
    std::size_t slot = compHead_ + compCount_;
    if (slot >= compRing_.size())
        slot -= compRing_.size();
    compRing_[slot] = Completion{due, module};
    ++compCount_;
}

void
FastStatSystem::pushThinkWake(Tick due, int proc)
{
    // (tick, proc) pairs compare lexicographically, so equal-tick
    // wake-ups pop in processor index order - a total, reproducible
    // order with no dependence on insertion history.
    thinkHeap_.emplace_back(due, proc);
    std::push_heap(thinkHeap_.begin(), thinkHeap_.end(),
                   std::greater<>());
}

void
FastStatSystem::processorReady(int proc, Tick now)
{
    ++thinkDraws_;
    const double p = workload_.thinkProbability(proc);
    if (p <= 0.0) {
        // Never issues again; park outside every structure (the exact
        // kernel redraws forever, statistically the same silence).
        procState_[static_cast<std::size_t>(proc)] =
            ProcState::Thinking;
        return;
    }
    const std::uint64_t k = procRng_[static_cast<std::size_t>(proc)]
                                .geometric(p);
    if (k == 0) {
        issue(proc, now);
        return;
    }
    procState_[static_cast<std::size_t>(proc)] = ProcState::Thinking;
    // A wake past the window can never fire (the driver loop stops
    // first); parking it keeps k * pc_ from overflowing for tiny p.
    if (k > (windowEnd_ - now) / static_cast<std::uint64_t>(pc_))
        return;
    const Tick due = now + static_cast<Tick>(k) * pc_;
    if (cfg_.trace) {
        cfg_.trace->record(now, "proc",
                           traceText("proc ", proc, " thinks until ",
                                     due));
    }
    pushThinkWake(due, proc);
}

void
FastStatSystem::issue(int proc, Tick now)
{
    const auto idx = static_cast<std::size_t>(proc);
    procState_[idx] = ProcState::WaitingGrant;
    const int target = workload_.sampleTarget(proc, procRng_[idx]);
    procTarget_[idx] = target;
    procIssueTick_[idx] = now;
    if (cfg_.trace) {
        cfg_.trace->record(now, "proc",
                           traceText("proc ", proc,
                                     " issues to module ", target));
    }
    if (inWindow(now))
        ++issued_;
    procBecomesWaiting(proc, target);
    if (cfg_.collectPerModule)
        noteQueueDepth(target, now, +1);
}

template <bool Buffered>
void
FastStatSystem::memoryCompletion(int module, Tick now)
{
    const auto idx = static_cast<std::size_t>(module);
    if (cfg_.trace) {
        cfg_.trace->record(now, "mem",
                           traceText("module ", module,
                                     " completes access for proc ",
                                     modServing_[idx]));
    }
    if constexpr (!Buffered) {
        sbn_debug_assert(modState_[idx] == ModState::Accessing,
                   "completion on non-accessing module");
        // Accessing -> HoldingResponse: the response flag flips on;
        // acceptance stays off.
        modState_[idx] = ModState::HoldingResponse;
        modHasResponse_[idx] = 1;
        candModSet_.insert(idx);
        recordAccessSpan(module, modAccessStart_[idx], now);
    } else {
        outputQueues_[idx].push_back(Response{modServing_[idx], now});
        modAccessing_[idx] = 0;
        modServing_[idx] = -1;
        recordAccessSpan(module, modAccessStart_[idx], now);
        refreshModule(module);
        maybeStartBufferedAccess(module, now);
    }
}

void
FastStatSystem::maybeStartBufferedAccess(int module, Tick now)
{
    const auto idx = static_cast<std::size_t>(module);
    if (modAccessing_[idx] || inputQueues_[idx].empty())
        return;
    if (cfg_.outputCapacity > 0 &&
        static_cast<int>(outputQueues_[idx].size()) >=
            cfg_.outputCapacity)
        return; // blocked until a response drains

    modServing_[idx] = inputQueues_[idx].front();
    inputQueues_[idx].pop_front();
    modAccessing_[idx] = 1;
    modAccessStart_[idx] = now;
    if (cfg_.collectLatency)
        procServiceStart_[static_cast<std::size_t>(modServing_[idx])] =
            now;
    if (cfg_.collectPerModule)
        noteQueueDepth(module, now, -1);
    if (cfg_.trace) {
        cfg_.trace->record(now, "mem",
                           traceText("module ", module,
                                     " starts access for proc ",
                                     modServing_[idx]));
    }
    scheduleCompletion(module,
                       now + static_cast<Tick>(cfg_.memoryRatio));
    refreshModule(module);
}

template <bool Buffered>
void
FastStatSystem::arbitrate(Tick now)
{
    // Selection and grant in one pass. The exact kernel's transient
    // bus-flight stages are fused away: the chosen transfer's delivery
    // effects apply immediately with next-tick timestamps, because the
    // flight lasts exactly one tick and nothing arbitrates mid-air.
    const bool any_proc = !candProcSet_.empty();
    const bool any_mod = !candModSet_.empty();
    if (!any_proc && !any_mod) {
        arbAt_ = kNever; // re-armed by the next event tick
        return;
    }

    const bool procs_first =
        cfg_.policy == ArbitrationPolicy::ProcessorPriority;
    if (any_proc && (procs_first || !any_mod)) {
        int chosen;
        if (cfg_.selection == SelectionRule::Random) {
            // A singleton set has nothing to tie-break; skip the draw.
            const std::size_t count = candProcSet_.count();
            chosen = static_cast<int>(candProcSet_.nth(
                count == 1 ? 0 : arbRng_.pickIndex(count)));
        } else {
            int best = -1;
            candProcSet_.forEach([&](std::size_t p) {
                const int proc = static_cast<int>(p);
                if (best < 0 ||
                    procIssueTick_[p] <
                        procIssueTick_[static_cast<std::size_t>(best)])
                    best = proc;
            });
            chosen = best;
        }
        grantRequest<Buffered>(chosen, now);
    } else {
        int chosen;
        if (cfg_.selection == SelectionRule::Random) {
            const std::size_t count = candModSet_.count();
            chosen = static_cast<int>(candModSet_.nth(
                count == 1 ? 0 : arbRng_.pickIndex(count)));
        } else {
            auto ready = [&](int m) {
                const auto idx = static_cast<std::size_t>(m);
                if constexpr (Buffered)
                    return outputQueues_[idx].front().readyTick;
                else
                    return modAccessStart_[idx] +
                           static_cast<Tick>(cfg_.memoryRatio);
            };
            int best = -1;
            candModSet_.forEach([&](std::size_t m) {
                const int mod = static_cast<int>(m);
                if (best < 0 || ready(mod) < ready(best))
                    best = mod;
            });
            chosen = best;
        }
        grantResponse<Buffered>(chosen, now);
    }

    if (inWindow(now))
        ++busBusy_;
    arbAt_ = now + 1;
}

template <bool Buffered>
void
FastStatSystem::grantRequest(int proc, Tick now)
{
    const auto idx = static_cast<std::size_t>(proc);
    const int target = procTarget_[idx];
    const auto tgt = static_cast<std::size_t>(target);
    const Tick arrive = now + 1;
    procState_[idx] = ProcState::WaitingResponse;

    waiterSets_[tgt].erase(idx);
    candProcSet_.erase(idx);
    if (cfg_.trace) {
        cfg_.trace->record(now, "bus",
                           traceText("grant request proc ", proc,
                                     " -> module ", target));
    }

    if constexpr (!Buffered) {
        sbn_debug_assert(modState_[tgt] == ModState::Idle,
                   "request granted to a non-idle module");
        // The request leaves the queue for the (dedicated) server;
        // buffered grants stay queued until the module starts them.
        if (cfg_.collectPerModule)
            noteQueueDepth(target, now, -1);
        // Idle -> Accessing at the arrival tick: acceptance flips
        // off and the module's remaining waiters leave the candidate
        // set; the access completes a fixed stride later.
        modState_[tgt] = ModState::Accessing;
        modCanAccept_[tgt] = 0;
        if (!waiterSets_[tgt].empty())
            candProcSet_.eraseAll(waiterSets_[tgt]);
        modServing_[tgt] = proc;
        modAccessStart_[tgt] = arrive;
        if (cfg_.collectLatency)
            procServiceStart_[idx] = arrive;
        if (cfg_.trace) {
            cfg_.trace->record(arrive, "mem",
                               traceText("module ", target,
                                         " starts access for proc ",
                                         proc));
        }
        scheduleCompletion(
            target, arrive + static_cast<Tick>(cfg_.memoryRatio));
    } else {
        inputQueues_[tgt].push_back(proc);
        refreshModule(target);
        maybeStartBufferedAccess(target, arrive);
    }
}

template <bool Buffered>
void
FastStatSystem::grantResponse(int module, Tick now)
{
    const auto idx = static_cast<std::size_t>(module);
    int proc = -1;

    if constexpr (!Buffered) {
        sbn_debug_assert(modState_[idx] == ModState::HoldingResponse,
                   "response granted from module in wrong state");
        // HoldingResponse -> Idle: the response leaves, the module
        // becomes acceptable and its waiters re-enter the candidate
        // set (first visible to the next tick's arbitration).
        proc = modServing_[idx];
        modServing_[idx] = -1;
        modState_[idx] = ModState::Idle;
        modHasResponse_[idx] = 0;
        candModSet_.erase(idx);
        modCanAccept_[idx] = 1;
        if (!waiterSets_[idx].empty())
            candProcSet_.insertAll(waiterSets_[idx]);
    } else {
        proc = outputQueues_[idx].front().proc;
        outputQueues_[idx].pop_front();
        refreshModule(module);
        // The output slot freed; a blocked module resumes at the
        // grant tick itself, matching the exact kernel (which calls
        // maybeStartBufferedAccess from grantResponse at now).
        maybeStartBufferedAccess(module, now);
    }

    if (cfg_.trace) {
        cfg_.trace->record(now, "bus",
                           traceText("grant response module ", module,
                                     " -> proc ", proc));
        cfg_.trace->record(now + 1, "proc",
                           traceText("proc ", proc,
                                     " receives response from module ",
                                     module));
    }
    recordCompletion(proc, now);
    processorReady(proc, now + 1);
}

void
FastStatSystem::recordCompletion(int proc, Tick grant_tick)
{
    if (!inWindow(grant_tick))
        return;
    ++completed_;
    ++perProcCompleted_[static_cast<std::size_t>(proc)];
    const Tick delivery = grant_tick + 1;
    // Wait is an exact tick count; service = wait + pc. Integer
    // moments here, one Accumulator summary at the end of run().
    const std::uint64_t wait =
        delivery - procIssueTick_[static_cast<std::size_t>(proc)] -
        pc_;
    waitSum_ += wait;
    waitSumSq_ += static_cast<unsigned __int128>(wait) * wait;
    if (wait < waitMin_)
        waitMin_ = wait;
    if (wait > waitMax_)
        waitMax_ = wait;
    if (waitHist_)
        waitHist_->add(static_cast<double>(wait));
    if (latWaitHist_) {
        latWaitHist_->add(static_cast<double>(
            procServiceStart_[static_cast<std::size_t>(proc)] -
            procIssueTick_[static_cast<std::size_t>(proc)]));
        latResidenceHist_->add(static_cast<double>(
            delivery - procIssueTick_[static_cast<std::size_t>(proc)]));
    }
}

void
FastStatSystem::recordAccessSpan(int module, Tick start, Tick end)
{
    // end is an event tick, so end < windowEnd_ always holds; only
    // the start needs clamping to the window.
    const Tick lo = std::max(start, windowStart_);
    if (end > lo) {
        accessCycles_ += end - lo;
        if (cfg_.collectPerModule)
            perModBusy_[static_cast<std::size_t>(module)] +=
                static_cast<std::uint64_t>(end - lo);
    }
}

void
FastStatSystem::noteQueueDepth(int module, Tick now, int delta)
{
    const auto idx = static_cast<std::size_t>(module);
    const Tick lo = std::max(perModDepthSince_[idx], windowStart_);
    const Tick hi = std::min(now, windowEnd_);
    if (hi > lo) {
        perModDepthArea_[idx] +=
            perModDepth_[idx] * static_cast<std::uint64_t>(hi - lo);
        if (perModDepth_[idx] > perModDepthMax_[idx])
            perModDepthMax_[idx] = perModDepth_[idx];
    }
    const auto next =
        static_cast<std::int64_t>(perModDepth_[idx]) + delta;
    sbn_debug_assert(next >= 0, "module queue depth went negative");
    perModDepth_[idx] = static_cast<std::uint64_t>(next);
    perModDepthSince_[idx] = now;
}

void
FastStatSystem::finishPerModule(Metrics &out)
{
    const auto m = static_cast<std::size_t>(cfg_.numModules);
    const auto cycles = static_cast<double>(out.measuredCycles);
    out.perModuleBusyCycles = perModBusy_;
    out.perModuleUtilization.resize(m);
    out.perModuleQueueDepthAvg.resize(m);
    for (std::size_t j = 0; j < m; ++j) {
        // Close the depth integral at the window end (delta 0).
        noteQueueDepth(static_cast<int>(j), windowEnd_, 0);
        out.perModuleUtilization[j] =
            static_cast<double>(perModBusy_[j]) / cycles;
        out.perModuleQueueDepthAvg[j] =
            static_cast<double>(perModDepthArea_[j]) / cycles;
    }
    out.perModuleQueueDepthMax = perModDepthMax_;
}

// Flatten: inline the whole per-event helper chain into the driver
// loop. Each transaction walks ~9 small helpers; at tens of millions
// of transactions per run the call overhead alone is measurable, and
// inlining lets the compiler keep loop-invariant config fields
// (selection, window bounds) in registers across the chain. The
// Buffered template parameter makes the buffered/unbuffered split a
// compile-time constant throughout the flattened body.
template <bool Buffered>
__attribute__((flatten)) void
FastStatSystem::runLoop()
{
    // Seed: every processor draws at tick 0, in index order, then the
    // bus decides - the same tick-0 structure as the exact kernel.
    for (int p = 0; p < cfg_.numProcessors; ++p)
        processorReady(p, 0);
    arbitrate<Buffered>(0);

    // Driver: jump to the earliest pending event tick. Per tick, the
    // update order matches the exact kernel's kUpdate phase
    // (completions, think expiries = issues) before the kDecide
    // arbitration observes the settled state; grants already applied
    // their delivery effects at the previous tick. Every structure is
    // O(1)/O(log n) per event and allocation-free in steady state.
    for (;;) {
        Tick next = arbAt_;
        if (compCount_ != 0 && compRing_[compHead_].due < next)
            next = compRing_[compHead_].due;
        if (!thinkHeap_.empty() && thinkHeap_.front().first < next)
            next = thinkHeap_.front().first;
        if (next >= windowEnd_)
            break;

        const Tick now = next;
        while (compCount_ != 0 && compRing_[compHead_].due == now) {
            const int module = compRing_[compHead_].module;
            if (++compHead_ == compRing_.size())
                compHead_ = 0;
            --compCount_;
            memoryCompletion<Buffered>(module, now);
        }
        while (!thinkHeap_.empty() &&
               thinkHeap_.front().first == now) {
            std::pop_heap(thinkHeap_.begin(), thinkHeap_.end(),
                          std::greater<>());
            const int proc = thinkHeap_.back().second;
            thinkHeap_.pop_back();
            // The geometric draw already placed the issue at this
            // tick; no redraw happens on wake.
            issue(proc, now);
        }
        arbitrate<Buffered>(now);
    }
}

Metrics
FastStatSystem::run()
{
    sbn_assert(!ran_, "FastStatSystem::run may only be called once");
    ran_ = true;

    {
        TelemetryTimerScope timer(TelemetryTimer::SimRun);
        if (cfg_.buffered)
            runLoop<true>();
        else
            runLoop<false>();
    }

    // Flush the run's locally accumulated counts in one batch; the
    // flattened driver loop never touches the telemetry registry.
    telemetryAdd(TelemetryCounter::SimRuns, 1);
    telemetryAdd(TelemetryCounter::SimThinkDraws, thinkDraws_);
    telemetryAdd(TelemetryCounter::SimRequestsIssued, issued_);
    telemetryAdd(TelemetryCounter::SimRequestsCompleted, completed_);

    Metrics out;
    out.measuredCycles = windowEnd_ - windowStart_;
    out.completedRequests = completed_;
    out.issuedRequests = issued_;
    out.busBusyCycles = busBusy_;

    const auto cycles = static_cast<double>(out.measuredCycles);
    const auto pc = static_cast<double>(pc_);
    out.ebw = static_cast<double>(completed_) * pc / cycles;
    out.busUtilization = static_cast<double>(busBusy_) / cycles;
    out.ebwFromBusUtilization = out.busUtilization * pc / 2.0;
    out.meanModuleUtilization =
        static_cast<double>(accessCycles_) /
        (cycles * static_cast<double>(cfg_.numModules));
    out.processorEfficiency =
        out.ebw / static_cast<double>(cfg_.numProcessors);

    // Summarize the integer wait moments: mean = sum/n and
    // m2 = sumsq - sum^2/n (exact sums, so the subtraction is safe).
    Accumulator waitStats;
    if (completed_ != 0) {
        const auto n = static_cast<double>(completed_);
        const double sum = static_cast<double>(waitSum_);
        const double sumsq = static_cast<double>(waitSumSq_);
        const double mean = sum / n;
        waitStats = Accumulator::fromMoments(
            completed_, mean, sumsq - sum * mean,
            static_cast<double>(waitMin_),
            static_cast<double>(waitMax_));
    }
    out.meanWaitCycles = waitStats.mean();
    out.meanServiceCycles =
        completed_ != 0 ? waitStats.mean() + pc : 0.0;
    out.waitStats = waitStats;
    out.perProcessorCompletions = perProcCompleted_;
    out.waitHistogram = waitHist_;
    out.latencyWait = latWaitHist_;
    out.latencyResidence = latResidenceHist_;
    if (cfg_.collectPerModule)
        finishPerModule(out);
    return out;
}

} // namespace sbn
