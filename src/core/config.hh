/**
 * @file
 * Configuration of the multiplexed single-bus system simulator.
 */

#ifndef SBN_CORE_CONFIG_HH
#define SBN_CORE_CONFIG_HH

#include <cstdint>
#include <vector>

#include "desim/event.hh"
#include "workload/workload.hh"

namespace sbn {

class TraceSink;

/**
 * Bus-grant policy when both processor requests and memory responses
 * compete for the next bus cycle (paper hypothesis (g)).
 */
enum class ArbitrationPolicy
{
    ProcessorPriority, //!< g'  - processor requests win
    MemoryPriority,    //!< g'' - memory responses win
};

/**
 * Tie-break rule among candidates of the winning class. The paper
 * specifies Random (hypothesis (h)); OldestFirst is an extension used
 * by the arbitration ablation study.
 */
enum class SelectionRule
{
    Random,
    OldestFirst,
};

/**
 * Full parameter set of one simulated system.
 *
 * Times are in bus cycles (the paper's unit t): memory access takes
 * memoryRatio cycles, a processor cycle is memoryRatio + 2 (one
 * request transfer, the access, one response transfer).
 */
struct SystemConfig
{
    int numProcessors = 8; //!< n
    int numModules = 8;    //!< m
    int memoryRatio = 8;   //!< r = memory cycle / bus cycle, >= 1

    /**
     * Probability p that a processor issues a new request immediately
     * after its previous service; with 1-p it spends one processor
     * cycle on internal processing and draws again (hypothesis (f)).
     * Non-homogeneous think models in `workload` override this per
     * processor.
     */
    double requestProbability = 1.0;

    ArbitrationPolicy policy = ArbitrationPolicy::ProcessorPriority;
    SelectionRule selection = SelectionRule::Random;

    /**
     * Reference pattern + per-processor think structure (see
     * workload/workload.hh and docs/workloads.md). The default -
     * Uniform + Homogeneous - is the paper's hypotheses (e)/(f) and
     * is RNG-compatible with the pre-workload simulator: identical
     * seeds produce identical Metrics.
     */
    WorkloadConfig workload;

    /**
     * Enable the Section 6 organization: per-module input/output
     * buffers; requests may be bused to busy modules and a module
     * starts its next buffered request in the cycle after completing
     * the previous one.
     */
    bool buffered = false;

    /**
     * Buffer capacities when buffered; 0 means unbounded (the paper's
     * configuration - with single-outstanding-request processors a
     * queue never exceeds n anyway). A finite input capacity makes
     * requests to a full module ineligible for the bus, like the
     * unbuffered idle-module rule; a finite output capacity blocks the
     * module from starting a new access until a response drains.
     */
    int inputCapacity = 0;
    int outputCapacity = 0;

    std::uint64_t seed = 1;    //!< RNG seed; fixed seed == fixed run
    Tick warmupCycles = 20000; //!< cycles discarded before measuring
    Tick measureCycles = 200000; //!< measured window length

    /** Collect a waiting-time histogram (costs a little time). */
    bool collectWaitHistogram = false;

    /**
     * Optional event tracing (categories: "proc", "bus", "mem").
     * Not owned; must outlive the system. nullptr disables tracing.
     */
    TraceSink *trace = nullptr;

    /** Processor cycle length r + 2 in bus cycles. */
    int processorCycle() const { return memoryRatio + 2; }

    /** The theoretical EBW ceiling (r+2)/2. */
    double maxEbw() const { return (memoryRatio + 2) / 2.0; }

    /** Abort with a message if any parameter is out of range. */
    void validate() const;
};

} // namespace sbn

#endif // SBN_CORE_CONFIG_HH
