/**
 * @file
 * Configuration of the multiplexed single-bus system simulator.
 */

#ifndef SBN_CORE_CONFIG_HH
#define SBN_CORE_CONFIG_HH

#include <cstdint>
#include <vector>

#include "desim/event.hh"
#include "workload/workload.hh"

namespace sbn {

class TraceSink;

/**
 * Bus-grant policy when both processor requests and memory responses
 * compete for the next bus cycle (paper hypothesis (g)).
 */
enum class ArbitrationPolicy
{
    ProcessorPriority, //!< g'  - processor requests win
    MemoryPriority,    //!< g'' - memory responses win
};

/**
 * Tie-break rule among candidates of the winning class. The paper
 * specifies Random (hypothesis (h)); OldestFirst is an extension used
 * by the arbitration ablation study.
 */
enum class SelectionRule
{
    Random,
    OldestFirst,
};

/**
 * Which simulation kernel executes the model.
 *
 * CycleSkip is the exact reference: it consumes one shared RNG stream
 * in the classic kernel's event order, which keeps every golden
 * Metrics pin valid but provably forbids per-processor think batching
 * (docs/performance.md). FastStat deliberately breaks that bit-compat
 * for throughput: per-processor counter-based RNG streams draw whole
 * geometric think intervals in O(1), memory completions ride a
 * fixed-stride calendar, and processor state is laid out SoA for the
 * arbitration scan. Same stochastic process in distribution,
 * different trajectories - validation is statistical (CI overlap vs
 * CycleSkip and the analytic chains, tests/test_faststat.cc), never
 * golden equality.
 */
enum class KernelKind
{
    CycleSkip, //!< exact shared-RNG kernel (default, golden-pinned)
    FastStat,  //!< statistical kernel: fast, not bit-compatible
};

/**
 * Full parameter set of one simulated system.
 *
 * Times are in bus cycles (the paper's unit t): memory access takes
 * memoryRatio cycles, a processor cycle is memoryRatio + 2 (one
 * request transfer, the access, one response transfer).
 */
struct SystemConfig
{
    int numProcessors = 8; //!< n
    int numModules = 8;    //!< m
    int memoryRatio = 8;   //!< r = memory cycle / bus cycle, >= 1

    /**
     * Probability p that a processor issues a new request immediately
     * after its previous service; with 1-p it spends one processor
     * cycle on internal processing and draws again (hypothesis (f)).
     * Non-homogeneous think models in `workload` override this per
     * processor.
     */
    double requestProbability = 1.0;

    ArbitrationPolicy policy = ArbitrationPolicy::ProcessorPriority;
    SelectionRule selection = SelectionRule::Random;

    /**
     * Simulation kernel. CycleSkip (default) is the exact,
     * golden-pinned reference; FastStat trades bit-compat for
     * throughput and is validated statistically. Non-default kernels
     * fold into the config fingerprint, so FastStat records can never
     * merge with (or satisfy a resume of) an exact-kernel sweep.
     */
    KernelKind kernel = KernelKind::CycleSkip;

    /**
     * Reference pattern + per-processor think structure (see
     * workload/workload.hh and docs/workloads.md). The default -
     * Uniform + Homogeneous - is the paper's hypotheses (e)/(f) and
     * is RNG-compatible with the pre-workload simulator: identical
     * seeds produce identical Metrics.
     */
    WorkloadConfig workload;

    /**
     * Enable the Section 6 organization: per-module input/output
     * buffers; requests may be bused to busy modules and a module
     * starts its next buffered request in the cycle after completing
     * the previous one.
     */
    bool buffered = false;

    /**
     * Buffer capacities when buffered; 0 means unbounded (the paper's
     * configuration - with single-outstanding-request processors a
     * queue never exceeds n anyway). A finite input capacity makes
     * requests to a full module ineligible for the bus, like the
     * unbuffered idle-module rule; a finite output capacity blocks the
     * module from starting a new access until a response drains.
     */
    int inputCapacity = 0;
    int outputCapacity = 0;

    std::uint64_t seed = 1;    //!< RNG seed; fixed seed == fixed run
    Tick warmupCycles = 20000; //!< cycles discarded before measuring
    Tick measureCycles = 200000; //!< measured window length

    /** Collect a waiting-time histogram (costs a little time). */
    bool collectWaitHistogram = false;

    /**
     * Collect per-module breakdowns (Metrics::perModule*): busy
     * cycles/utilization and queue-depth time-average/max per memory
     * module. Purely passive accounting - it consumes no RNG and
     * changes no trajectory, so enabling it leaves every other metric
     * (and every golden pin) bit-identical. Like
     * collectWaitHistogram, it does not fold into the config
     * fingerprint.
     */
    bool collectPerModule = false;

    /**
     * Collect per-request latency distributions
     * (Metrics::latencyWait / Metrics::latencyResidence): wait time
     * (issue to service start) and residence time (issue to response
     * delivery) in log-bucketed histograms. Purely passive accounting
     * like collectPerModule - it consumes no RNG and changes no
     * trajectory, so enabling it leaves every other metric (and every
     * golden pin) bit-identical, and it does not fold into the config
     * fingerprint.
     */
    bool collectLatency = false;

    /**
     * Optional event tracing (categories: "proc", "bus", "mem").
     * Not owned; must outlive the system. nullptr disables tracing.
     */
    TraceSink *trace = nullptr;

    /** Processor cycle length r + 2 in bus cycles. */
    int processorCycle() const { return memoryRatio + 2; }

    /** The theoretical EBW ceiling (r+2)/2. */
    double maxEbw() const { return (memoryRatio + 2) / 2.0; }

    /** Abort with a message if any parameter is out of range. */
    void validate() const;
};

} // namespace sbn

#endif // SBN_CORE_CONFIG_HH
