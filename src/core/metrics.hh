/**
 * @file
 * Measured outputs of one simulation run.
 */

#ifndef SBN_CORE_METRICS_HH
#define SBN_CORE_METRICS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "stats/accumulator.hh"
#include "stats/histogram.hh"

namespace sbn {

/**
 * Steady-state metrics over the measurement window. All "per
 * processor cycle" figures use the paper's (r+2)-bus-cycle processor
 * cycle as the unit.
 */
struct Metrics
{
    std::uint64_t measuredCycles = 0;     //!< window length (bus cycles)
    std::uint64_t completedRequests = 0;  //!< services delivered
    std::uint64_t issuedRequests = 0;     //!< requests issued
    std::uint64_t busBusyCycles = 0;      //!< cycles the bus transferred

    /**
     * Effective bandwidth: requests serviced per processor cycle,
     * completedRequests / (measuredCycles / (r+2)). The paper's
     * primary figure of merit.
     */
    double ebw = 0.0;

    /** EBW via the identity Pb*(r+2)/2; equals ebw asymptotically. */
    double ebwFromBusUtilization = 0.0;

    /** Pb: fraction of bus cycles carrying a transfer. */
    double busUtilization = 0.0;

    /** Mean fraction of time a module spends accessing. */
    double meanModuleUtilization = 0.0;

    /**
     * EBW / n: average fraction of time a processor's current request
     * is in its minimal (r+2)-cycle service pattern. Figure 3 plots
     * this divided by p.
     */
    double processorEfficiency = 0.0;

    /** Mean queueing delay: service span minus the minimal r+2. */
    double meanWaitCycles = 0.0;

    /** Mean issue-to-delivery span in bus cycles. */
    double meanServiceCycles = 0.0;

    /** Waiting time spread (same samples as meanWaitCycles). */
    Accumulator waitStats;

    /** Completions per processor, for fairness checks. */
    std::vector<std::uint64_t> perProcessorCompletions;

    /** Optional waiting-time histogram (config.collectWaitHistogram). */
    std::optional<Histogram> waitHistogram;

    // Per-module breakdowns (config.collectPerModule); empty vectors
    // otherwise. Additive and passively collected: enabling them
    // changes no other field.

    /** Per-module cycles spent accessing within the window. */
    std::vector<std::uint64_t> perModuleBusyCycles;

    /** perModuleBusyCycles / measuredCycles; its mean equals
     *  meanModuleUtilization. */
    std::vector<double> perModuleUtilization;

    /**
     * Time-averaged queue depth per module: requests waiting for the
     * module (issued but not yet in service; buffered organizations
     * count buffered and in-flight-to-buffer requests), averaged over
     * the measurement window.
     */
    std::vector<double> perModuleQueueDepthAvg;

    /** Maximum queue depth held for a nonzero span of window time. */
    std::vector<std::uint64_t> perModuleQueueDepthMax;
};

} // namespace sbn

#endif // SBN_CORE_METRICS_HH
