/**
 * @file
 * Measured outputs of one simulation run.
 */

#ifndef SBN_CORE_METRICS_HH
#define SBN_CORE_METRICS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "stats/accumulator.hh"
#include "stats/histogram.hh"

namespace sbn {

/**
 * Canonical bin layout for the per-request latency histograms
 * (config.collectLatency). Every producer uses this exact layout so
 * histograms from different runs/replications are always mergeable
 * and flat-JSON renders are byte-comparable. Samples are integer bus
 * cycles; a zero-cycle wait lands in underflow, anything at or above
 * 2^20 cycles in overflow.
 */
inline Histogram
makeLatencyHistogram()
{
    return Histogram::logScale(1.0, 1048576.0, 120);
}

/**
 * Quantile summary extracted from a wait/residence histogram pair,
 * as carried in sweep point records. Values are bin upper edges
 * except max, which is the exact largest sample.
 */
struct LatencySummary
{
    std::uint64_t samples = 0; //!< completed requests measured

    double waitP50 = 0.0;
    double waitP90 = 0.0;
    double waitP99 = 0.0;
    double waitMax = 0.0;

    double residenceP50 = 0.0;
    double residenceP90 = 0.0;
    double residenceP99 = 0.0;
    double residenceMax = 0.0;
};

/**
 * Steady-state metrics over the measurement window. All "per
 * processor cycle" figures use the paper's (r+2)-bus-cycle processor
 * cycle as the unit.
 */
struct Metrics
{
    std::uint64_t measuredCycles = 0;     //!< window length (bus cycles)
    std::uint64_t completedRequests = 0;  //!< services delivered
    std::uint64_t issuedRequests = 0;     //!< requests issued
    std::uint64_t busBusyCycles = 0;      //!< cycles the bus transferred

    /**
     * Effective bandwidth: requests serviced per processor cycle,
     * completedRequests / (measuredCycles / (r+2)). The paper's
     * primary figure of merit.
     */
    double ebw = 0.0;

    /** EBW via the identity Pb*(r+2)/2; equals ebw asymptotically. */
    double ebwFromBusUtilization = 0.0;

    /** Pb: fraction of bus cycles carrying a transfer. */
    double busUtilization = 0.0;

    /** Mean fraction of time a module spends accessing. */
    double meanModuleUtilization = 0.0;

    /**
     * EBW / n: average fraction of time a processor's current request
     * is in its minimal (r+2)-cycle service pattern. Figure 3 plots
     * this divided by p.
     */
    double processorEfficiency = 0.0;

    /** Mean queueing delay: service span minus the minimal r+2. */
    double meanWaitCycles = 0.0;

    /** Mean issue-to-delivery span in bus cycles. */
    double meanServiceCycles = 0.0;

    /** Waiting time spread (same samples as meanWaitCycles). */
    Accumulator waitStats;

    /** Completions per processor, for fairness checks. */
    std::vector<std::uint64_t> perProcessorCompletions;

    /** Optional waiting-time histogram (config.collectWaitHistogram). */
    std::optional<Histogram> waitHistogram;

    // Per-module breakdowns (config.collectPerModule); empty vectors
    // otherwise. Additive and passively collected: enabling them
    // changes no other field.

    /** Per-module cycles spent accessing within the window. */
    std::vector<std::uint64_t> perModuleBusyCycles;

    /** perModuleBusyCycles / measuredCycles; its mean equals
     *  meanModuleUtilization. */
    std::vector<double> perModuleUtilization;

    /**
     * Time-averaged queue depth per module: requests waiting for the
     * module (issued but not yet in service; buffered organizations
     * count buffered and in-flight-to-buffer requests), averaged over
     * the measurement window.
     */
    std::vector<double> perModuleQueueDepthAvg;

    /** Maximum queue depth held for a nonzero span of window time. */
    std::vector<std::uint64_t> perModuleQueueDepthMax;

    // Per-request latency distributions (config.collectLatency), in
    // the makeLatencyHistogram() layout. Passive like the per-module
    // breakdowns: enabling them changes no other field.

    /** Wait time, issue to service start, in bus cycles. */
    std::optional<Histogram> latencyWait;

    /** Residence time, issue to response delivery, in bus cycles. */
    std::optional<Histogram> latencyResidence;
};

/**
 * Condense a wait/residence histogram pair into the record-carried
 * quantile summary (p50/p90/p99 at bin granularity, exact max).
 */
LatencySummary summarizeLatency(const Histogram &wait,
                                const Histogram &residence);

} // namespace sbn

#endif // SBN_CORE_METRICS_HH
