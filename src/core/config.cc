#include "core/config.hh"

#include "util/logging.hh"

namespace sbn {

void
SystemConfig::validate() const
{
    if (numProcessors < 1)
        sbn_fatal("numProcessors must be >= 1, got ", numProcessors);
    if (numModules < 1)
        sbn_fatal("numModules must be >= 1, got ", numModules);
    if (memoryRatio < 1)
        sbn_fatal("memoryRatio (r) must be >= 1, got ", memoryRatio);
    if (requestProbability < 0.0 || requestProbability > 1.0)
        sbn_fatal("requestProbability must be in [0,1], got ",
                  requestProbability);
    if (inputCapacity < 0 || outputCapacity < 0)
        sbn_fatal("buffer capacities must be >= 0 (0 = unbounded)");
    if (!buffered && (inputCapacity != 0 || outputCapacity != 0))
        sbn_fatal("buffer capacities require buffered = true");
    workload.validate(numProcessors, numModules);
    if (measureCycles < 1)
        sbn_fatal("measureCycles must be >= 1");
}

} // namespace sbn
