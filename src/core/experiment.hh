/**
 * @file
 * Convenience runners for simulation experiments: single runs and
 * independent-replication confidence intervals over any Metrics
 * field.
 */

#ifndef SBN_CORE_EXPERIMENT_HH
#define SBN_CORE_EXPERIMENT_HH

#include <functional>

#include "core/config.hh"
#include "core/metrics.hh"
#include "core/system.hh"
#include "exec/adaptive.hh"
#include "stats/batch_means.hh"

namespace sbn {

/** Run one system to completion and return its metrics. */
Metrics runOnce(const SystemConfig &config);

/** Run one system and return only its EBW (common case). */
double runEbw(const SystemConfig &config);

/**
 * The per-point payload of a sweep record: EBW plus, when the config
 * collected latency histograms, their quantile summary. hasLatency
 * mirrors config.collectLatency for the run that produced it.
 */
struct PointSample
{
    double ebw = 0.0;
    bool hasLatency = false;
    LatencySummary latency;
};

/** Run one system and return its EBW + optional latency summary. */
PointSample runPointSample(const SystemConfig &config);

/**
 * Run @p replications independent copies of @p config (seeds derived
 * deterministically from config.seed) and summarize the chosen metric
 * with a Student-t confidence interval.
 *
 * Replications are independent and run through the exec layer: with
 * @p threads > 1 they execute concurrently, with results bit-identical
 * to the serial path for the same config.seed (see
 * docs/performance.md for the determinism contract).
 *
 * @param metric   extractor, e.g. [](const Metrics &m){ return m.ebw; }
 * @param threads  worker count; 0 = defaultExecThreads()
 */
Estimate replicate(const SystemConfig &config, unsigned replications,
                   const std::function<double(const Metrics &)> &metric,
                   unsigned threads = 0);

/** replicate() specialized to EBW. */
Estimate replicateEbw(const SystemConfig &config,
                      unsigned replications = 5, unsigned threads = 0);

/**
 * Adaptive-precision replicate(): grow the replication count in the
 * deterministic rounds of @p schedule until the confidence half-width
 * of the chosen metric meets @p target or the cap is reached. Seeds
 * derive from config.seed exactly as replicate() derives them, so for
 * the replication count the run ends with, the estimate is
 * bit-identical to replicate() with that count - at any thread count.
 *
 * @param threads worker count; 0 = defaultExecThreads()
 */
AdaptiveEstimate replicateToPrecision(
    const SystemConfig &config, const PrecisionTarget &target,
    const std::function<double(const Metrics &)> &metric,
    const RoundSchedule &schedule = {}, unsigned threads = 0);

/** replicateToPrecision() specialized to EBW. */
AdaptiveEstimate replicateEbwToPrecision(
    const SystemConfig &config, const PrecisionTarget &target = {},
    const RoundSchedule &schedule = {}, unsigned threads = 0);

} // namespace sbn

#endif // SBN_CORE_EXPERIMENT_HH
