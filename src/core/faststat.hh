/**
 * @file
 * FastStat: the statistical fast-path kernel.
 *
 * Simulates the same stochastic process as the exact CycleSkip kernel
 * (core/system.hh) - identical state machines, arbitration rules and
 * metric accounting - but deliberately breaks the shared-RNG
 * draw-order contract that pins CycleSkip to the classic kernel's
 * trajectories. What that buys:
 *
 *  - **O(1) think intervals.** Each processor owns a counter-based
 *    RNG stream (CounterRng, keyed by the config fingerprint and the
 *    processor index). A ready processor draws its whole geometric
 *    think span in one inversion instead of one Bernoulli per
 *    processor cycle; in the saturated regime (p = 1) the draw is
 *    free and the think structures are never touched at all.
 *  - **Fixed-stride completion calendar.** Every memory access
 *    completes exactly memoryRatio ticks after it starts, and starts
 *    are issued at the monotone loop tick - so pending completions
 *    form a FIFO ring of at most numModules entries, replacing the
 *    event heap entirely. The kernel has no EventQueue.
 *  - **SoA processor state.** The arbitration scan walks parallel
 *    arrays (state / target / issue tick) plus the incremental
 *    IndexSet candidate bitsets, not an array of structs.
 *
 * The cost is bit-compatibility: FastStat trajectories differ from
 * CycleSkip's for the same seed, so golden Metrics pins do not apply.
 * Validation is statistical instead - CI-overlap equivalence against
 * CycleSkip across the config/workload grid and agreement with the
 * analytic occupancy chains (tests/test_faststat.cc,
 * docs/performance.md "FastStat").
 *
 * Determinism still holds in the reproducibility sense: a fixed
 * config (fingerprint + seed) yields a fixed trajectory, on every
 * platform, because every draw comes from a counter stream and every
 * tie-break is ordered.
 */

#ifndef SBN_CORE_FASTSTAT_HH
#define SBN_CORE_FASTSTAT_HH

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <vector>

#include "core/config.hh"
#include "core/metrics.hh"
#include "util/index_set.hh"
#include "util/random.hh"
#include "workload/workload.hh"

namespace sbn {

/**
 * One FastStat simulation run. Construct with a SystemConfig (any
 * configuration the exact kernel accepts) and call run() once.
 */
class FastStatSystem
{
  public:
    explicit FastStatSystem(const SystemConfig &config);

    /** Run warmup + measurement and return the collected metrics. */
    Metrics run();

    /** The configuration this system was built with. */
    const SystemConfig &config() const { return cfg_; }

    /**
     * Geometric think-interval draws performed. One per processor
     * ready event - O(1) per interval, against CycleSkip's one
     * Bernoulli per processor cycle (its thinkDraws()); the perf
     * tests assert the ratio.
     */
    std::uint64_t thinkDraws() const { return thinkDraws_; }

  private:
    /** What a processor is doing (SoA: stored per index). */
    enum class ProcState : std::uint8_t
    {
        Thinking,
        WaitingGrant,
        WaitingResponse,
    };

    /**
     * Unbuffered module service stages. The exact kernel's transient
     * in-flight stages do not appear: bus transfers take exactly one
     * tick and nothing arbitrates mid-flight, so grants apply their
     * delivery effects immediately with next-tick timestamps.
     */
    enum class ModState : std::uint8_t
    {
        Idle,
        Accessing,
        HoldingResponse,
    };

    struct Response
    {
        int proc;
        Tick readyTick;
    };

    /** Fixed-stride calendar entry: module's access done at due. */
    struct Completion
    {
        Tick due;
        int module;
    };

    // --- behaviour ---------------------------------------------------
    // The per-event chain is templated on the buffered/unbuffered
    // split: the driver loop instantiates each variant once, so the
    // saturated unbuffered path (the perf-critical regime) carries no
    // buffered branches or queue code at all.
    template <bool Buffered> void runLoop();
    void processorReady(int proc, Tick now);
    void issue(int proc, Tick now);
    template <bool Buffered> void memoryCompletion(int module, Tick now);
    void maybeStartBufferedAccess(int module, Tick now);
    template <bool Buffered> void arbitrate(Tick now);
    template <bool Buffered> void grantRequest(int proc, Tick now);
    template <bool Buffered> void grantResponse(int module, Tick now);

    bool moduleCanAcceptRequest(int module) const;
    bool moduleHasResponse(int module) const;
    void procBecomesWaiting(int proc, int target);
    void refreshModule(int module);

    void scheduleCompletion(int module, Tick due);
    void pushThinkWake(Tick due, int proc);

    // --- bookkeeping -------------------------------------------------
    bool inWindow(Tick t) const
    {
        return t >= windowStart_ && t < windowEnd_;
    }
    void recordCompletion(int proc, Tick grant_tick);
    void recordAccessSpan(int module, Tick start, Tick end);
    void noteQueueDepth(int module, Tick now, int delta);
    void finishPerModule(Metrics &out);

    SystemConfig cfg_;
    WorkloadModel workload_;
    Tick pc_; //!< processor cycle r + 2

    /** Per-processor counter streams + one for arbitration (stream n),
     *  all keyed by the config fingerprint. */
    std::vector<CounterRng> procRng_;
    CounterRng arbRng_;

    // SoA processor state.
    std::vector<ProcState> procState_;
    std::vector<std::int32_t> procTarget_;
    std::vector<Tick> procIssueTick_;

    // Module state (unbuffered machine + buffered queues).
    std::vector<ModState> modState_;
    std::vector<std::int32_t> modServing_;
    std::vector<Tick> modAccessStart_;
    // Flag arrays are uint32_t, not char: char stores may legally
    // alias anything, so each one would force the optimizer to reload
    // every cached pointer in the flattened driver loop.
    std::vector<std::uint32_t> modAccessing_; //!< buffered: server busy
    std::vector<std::deque<int>> inputQueues_;
    std::vector<std::deque<Response>> outputQueues_;

    /**
     * Next tick the bus can grant: now + 1 after a grant (the
     * transfer occupies one tick), the max Tick when the bus is idle
     * with no candidates (any event tick re-arbitrates).
     */
    Tick arbAt_;

    /**
     * Completion calendar: FIFO ring of at most numModules entries.
     * Accesses start at the monotone loop tick and all take exactly
     * memoryRatio ticks, so push order == due order and a heap is
     * unnecessary.
     */
    std::vector<Completion> compRing_;
    std::size_t compHead_ = 0;
    std::size_t compCount_ = 0;
    Tick lastCompletionDue_ = 0; //!< FIFO-order invariant check

    /**
     * Pending think wake-ups (tick, proc), a binary min-heap over a
     * reserved vector. Only processors whose geometric draw came out
     * nonzero ever enter; at p = 1 it stays empty for the whole run.
     */
    std::vector<std::pair<Tick, int>> thinkHeap_;

    // Incremental arbitration eligibility (as in the exact kernel).
    IndexSet candProcSet_;
    IndexSet candModSet_;
    std::vector<IndexSet> waiterSets_;
    std::vector<std::uint32_t> modCanAccept_;
    std::vector<std::uint32_t> modHasResponse_;

    // Measurement window and counters.
    Tick windowStart_ = 0;
    Tick windowEnd_ = 0;
    std::uint64_t busBusy_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t thinkDraws_ = 0;
    std::uint64_t accessCycles_ = 0;

    /**
     * Wait-time moments, accumulated as exact integers (waits are
     * tick counts) and summarized into an Accumulator once in run() -
     * no per-completion Welford division on the hot path.
     */
    std::uint64_t waitSum_ = 0;
    unsigned __int128 waitSumSq_ = 0;
    std::uint64_t waitMin_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t waitMax_ = 0;

    std::vector<std::uint64_t> perProcCompleted_;
    std::optional<Histogram> waitHist_;

    /**
     * Latency distributions (cfg_.collectLatency), mirroring the
     * exact kernel: procServiceStart_[p] is the tick module service
     * began for p's outstanding request; recordCompletion feeds wait
     * and residence histograms. Passive - no RNG, no trajectory
     * change.
     */
    std::vector<Tick> procServiceStart_;
    std::optional<Histogram> latWaitHist_;
    std::optional<Histogram> latResidenceHist_;

    /** Per-module accounting (cfg_.collectPerModule), mirroring the
     *  exact kernel's passive busy/queue-depth integration. */
    std::vector<std::uint64_t> perModBusy_;
    std::vector<std::uint64_t> perModDepth_;
    std::vector<std::uint64_t> perModDepthArea_;
    std::vector<Tick> perModDepthSince_;
    std::vector<std::uint64_t> perModDepthMax_;

    bool ran_ = false;
};

} // namespace sbn

#endif // SBN_CORE_FASTSTAT_HH
