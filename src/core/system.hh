/**
 * @file
 * Event-driven model of the multiplexed single-bus multiprocessor.
 *
 * One kernel tick is one bus cycle (the paper's basic cycle t). The
 * bus carries exactly one transfer per cycle: a processor request on
 * its way to a module, or a module response on its way back. Memory
 * accesses take r cycles; an uncontended request therefore completes
 * a processor cycle in r+2 bus cycles.
 *
 * The model is event-driven rather than cycle-stepped: arbitration
 * runs only in cycles where a grant could happen, and quiescent spans
 * (all processors thinking / all modules accessing) are skipped.
 *
 * Event schedule within one tick:
 *   priority kUpdate: transfer deliveries, memory completions,
 *                     processor think-expiries -- all state updates;
 *   priority kDecide: bus arbitration, which therefore observes a
 *                     consistent end-of-cycle state.
 */

#ifndef SBN_CORE_SYSTEM_HH
#define SBN_CORE_SYSTEM_HH

#include <deque>
#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/metrics.hh"
#include "desim/simulation.hh"
#include "desim/trace.hh"
#include "util/random.hh"

namespace sbn {

/**
 * A complete simulated system: n processors, m memory modules, the
 * multiplexed bus and its arbiter. Construct with a SystemConfig and
 * call run() once to obtain Metrics.
 */
class SingleBusSystem
{
  public:
    explicit SingleBusSystem(const SystemConfig &config);

    /** Run warmup + measurement and return the collected metrics. */
    Metrics run();

    /** The configuration this system was built with. */
    const SystemConfig &config() const { return cfg_; }

    /** Current simulated bus cycle (exposed for tests). */
    Tick now() const { return sim_.now(); }

  private:
    /** What a processor is doing. */
    enum class ProcState
    {
        Thinking,        //!< internal processing, no request
        WaitingGrant,    //!< request issued, waiting for the bus
        WaitingResponse, //!< request in the memory subsystem
    };

    struct Processor
    {
        ProcState state = ProcState::Thinking;
        int target = -1;  //!< module of the outstanding request
        Tick issueTick = 0;
        std::unique_ptr<EventFunction> readyEvent;
    };

    /** Unbuffered module service stages. */
    enum class ModState
    {
        Idle,
        RequestInFlight, //!< granted request still on the bus
        Accessing,
        HoldingResponse, //!< done, response waiting for the bus
        ResponseInFlight //!< response on the bus
    };

    struct Response
    {
        int proc;
        Tick readyTick;
    };

    struct Module
    {
        // Unbuffered state machine.
        ModState state = ModState::Idle;
        int servingProc = -1;

        // Buffered organization (config.buffered).
        bool accessing = false;
        std::deque<int> inputQueue;      //!< waiting request procs
        std::deque<Response> outputQueue; //!< waiting responses
        int reservedInput = 0; //!< granted requests still on the bus

        Tick accessStart = 0;
        std::unique_ptr<EventFunction> completionEvent;
    };

    /** The transfer currently occupying the bus. */
    struct BusTransfer
    {
        enum class Kind { None, Request, Response } kind = Kind::None;
        int proc = -1;
        int module = -1;
    };

    // --- behaviour ---------------------------------------------------
    void processorReady(int proc);
    void memoryCompletion(int module);
    void transferDone();
    void arbitrate();

    void requestArbitration(Tick at);
    bool moduleCanAcceptRequest(const Module &mod) const;
    bool moduleHasResponse(const Module &mod) const;
    void maybeStartBufferedAccess(int module);
    int pickTargetModule();

    void grantRequest(int proc);
    void grantResponse(int module);

    // --- bookkeeping --------------------------------------------------
    bool inWindow(Tick t) const
    {
        return t >= windowStart_ && t < windowEnd_;
    }
    void recordCompletion(int proc, Tick grant_tick);
    void recordAccessSpan(Tick start, Tick end);

    SystemConfig cfg_;
    Simulation sim_;
    RandomGenerator rng_;

    std::vector<Processor> procs_;
    std::vector<Module> mods_;

    BusTransfer busTransfer_;
    std::unique_ptr<EventFunction> transferDoneEvent_;
    std::unique_ptr<EventFunction> arbitrationEvent_;
    bool inArbitration_ = false; //!< guards re-entrant rescheduling

    std::vector<double> weightCdf_; //!< non-uniform reference, optional

    // Measurement window and counters.
    Tick windowStart_ = 0;
    Tick windowEnd_ = 0;
    std::uint64_t busBusy_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t issued_ = 0;
    double accessCycles_ = 0.0;
    Accumulator waitStats_;
    Accumulator serviceStats_;
    std::vector<std::uint64_t> perProcCompleted_;
    std::optional<Histogram> waitHist_;

    // Scratch buffers reused by arbitrate() to avoid allocation.
    std::vector<int> candProcs_;
    std::vector<int> candMods_;

    bool ran_ = false;
};

} // namespace sbn

#endif // SBN_CORE_SYSTEM_HH
