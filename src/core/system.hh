/**
 * @file
 * Event-driven model of the multiplexed single-bus multiprocessor.
 *
 * One kernel tick is one bus cycle (the paper's basic cycle t). The
 * bus carries exactly one transfer per cycle: a processor request on
 * its way to a module, or a module response on its way back. Memory
 * accesses take r cycles; an uncontended request therefore completes
 * a processor cycle in r+2 bus cycles.
 *
 * The model is event-driven rather than cycle-stepped: arbitration
 * runs only in cycles where a grant could happen, and quiescent spans
 * (all processors thinking / all modules accessing) are skipped.
 *
 * Event schedule within one tick:
 *   priority kUpdate: transfer deliveries, memory completions,
 *                     processor think-expiries -- all state updates;
 *   priority kDecide: bus arbitration, which therefore observes a
 *                     consistent end-of-cycle state.
 *
 * The kernel is the cycle-skipping implementation introduced in PR 3
 * (the classic one-event-per-think-cycle kernel it was differentially
 * tested against is retired; the golden Metrics pins in
 * tests/golden/kernel_metrics*.txt are the regression net now):
 * thinking processors sit in a calendar of processorCycle()
 * tick-buckets processed by a hybrid driver loop outside the event
 * heap, so a think redraw costs one Bernoulli and O(1) bucket work
 * instead of a heap operation; arbitration candidates are bit-sets
 * maintained incrementally at the state transitions that change
 * eligibility; and the post-grant transfer-done/arbitrate pair shares
 * one coalesced event.
 *
 * Which module a request targets and how eagerly each processor
 * issues is owned by the WorkloadModel (workload/workload.hh). The
 * default Uniform + Homogeneous workload consumes the RNG stream in
 * the exact pre-workload order (one uniformInt per issue, one
 * bernoulli per draw), which is what keeps the golden pins valid.
 */

#ifndef SBN_CORE_SYSTEM_HH
#define SBN_CORE_SYSTEM_HH

#include <deque>
#include <vector>

#include "core/config.hh"
#include "core/metrics.hh"
#include "desim/simulation.hh"
#include "desim/trace.hh"
#include "util/index_set.hh"
#include "util/random.hh"
#include "workload/workload.hh"

namespace sbn {

/**
 * A complete simulated system: n processors, m memory modules, the
 * multiplexed bus and its arbiter. Construct with a SystemConfig and
 * call run() once to obtain Metrics.
 */
class SingleBusSystem
{
  public:
    explicit SingleBusSystem(const SystemConfig &config);

    /** Run warmup + measurement and return the collected metrics. */
    Metrics run();

    /** The configuration this system was built with. */
    const SystemConfig &config() const { return cfg_; }

    /** Current simulated bus cycle (exposed for tests). */
    Tick now() const { return sim_.now(); }

    /** Heap events executed so far (perf accounting). */
    std::uint64_t heapEventsExecuted() const
    {
        return sim_.queue().executed();
    }

    /** Bernoulli think/issue draws performed (perf accounting). */
    std::uint64_t thinkDraws() const { return thinkDraws_; }

    /**
     * Capacities of every scratch/eligibility container arbitration
     * touches, in a fixed order (exposed for the zero-steady-state-
     * allocation test: capacities must not change across run()).
     */
    std::vector<std::size_t> scratchCapacities() const;

  private:
    /** What a processor is doing. */
    enum class ProcState
    {
        Thinking,        //!< internal processing, no request
        WaitingGrant,    //!< request issued, waiting for the bus
        WaitingResponse, //!< request in the memory subsystem
    };

    /** Event type: no allocation, no type-erased callback, just
     *  (system, member function, index). */
    using SysEvent = MemberEvent<SingleBusSystem>;

    struct Processor
    {
        ProcState state = ProcState::Thinking;
        int target = -1;  //!< module of the outstanding request
        Tick issueTick = 0;
    };

    /** Unbuffered module service stages. */
    enum class ModState
    {
        Idle,
        RequestInFlight, //!< granted request still on the bus
        Accessing,
        HoldingResponse, //!< done, response waiting for the bus
        ResponseInFlight //!< response on the bus
    };

    struct Response
    {
        int proc;
        Tick readyTick;
    };

    struct Module
    {
        // Unbuffered state machine.
        ModState state = ModState::Idle;
        int servingProc = -1;

        // Buffered organization (config.buffered).
        bool accessing = false;
        std::deque<int> inputQueue;      //!< waiting request procs
        std::deque<Response> outputQueue; //!< waiting responses
        int reservedInput = 0; //!< granted requests still on the bus

        Tick accessStart = 0;
        SysEvent completionEvent;
    };

    /** The transfer currently occupying the bus. */
    struct BusTransfer
    {
        enum class Kind { None, Request, Response } kind = Kind::None;
        int proc = -1;
        int module = -1;
    };

    // --- behaviour ---------------------------------------------------
    void processorReady(int proc);
    void memoryCompletion(int module);
    void transferDone();
    void arbitrate();

    // MemberEvent adapters for the no-index handlers.
    void onArbitrate(int) { arbitrate(); }
    void onBusCycle(int);

    void requestArbitration(Tick at);
    bool moduleCanAcceptRequest(const Module &mod) const;
    bool moduleHasResponse(const Module &mod) const;
    void maybeStartBufferedAccess(int module);

    void grantRequest(int proc);
    void grantResponse(int module);

    /**
     * One processor-cycle draw: issue (true) or think (false). The
     * single place the simulator consumes processor RNG; target and
     * think probability both come from the workload model.
     */
    bool drawProcessor(int proc, Tick now);

    // --- cycle-skip kernel --------------------------------------------
    void runCycleSkip();
    void processThinkTick(Tick now, std::size_t bucket_idx);
    void refreshNextThink(Tick now, std::size_t r0);
    void enterThinking(int proc, Tick now);

    void procBecomesWaiting(int proc, int target);
    void refreshModule(int module);
    void selectIncremental(int &chosen_proc, int &chosen_mod);

    // --- bookkeeping --------------------------------------------------
    bool inWindow(Tick t) const
    {
        return t >= windowStart_ && t < windowEnd_;
    }
    void recordCompletion(int proc, Tick grant_tick);
    void recordAccessSpan(int module, Tick start, Tick end);
    void noteQueueDepth(int module, Tick now, int delta);
    void finishPerModule(Metrics &out);

    SystemConfig cfg_;
    Simulation sim_;
    RandomGenerator rng_;
    WorkloadModel workload_;

    std::vector<Processor> procs_;
    std::vector<Module> mods_;

    BusTransfer busTransfer_;
    SysEvent arbitrationEvent_;  //!< idle-bus wakeups
    SysEvent busCycleEvent_;     //!< coalesced transfer+arbitrate
    bool inArbitration_ = false; //!< guards re-entrant rescheduling
    bool inBusCycle_ = false;    //!< transfer phase of busCycleEvent_

    /**
     * Think calendar: bucket b holds, in event order, the thinking
     * processors whose next draw is due at thinkBucketDue_[b] (always
     * congruent to b mod processorCycle()). Redraw ticks advance in
     * strides of exactly one processor cycle, so every pending entry
     * of a bucket shares one due tick and a failed draw stays in its
     * bucket in place.
     */
    std::vector<std::vector<int>> thinkBuckets_;
    std::vector<Tick> thinkBucketDue_;
    int thinkingCount_ = 0;
    std::uint64_t thinkDraws_ = 0;

    /**
     * Bit b set <=> thinkBuckets_[b] nonempty, for processor cycles
     * of at most 63 ticks (thinkMaskUsable_). Buckets come due in
     * cyclic residue order, so the next think tick is a rotate+ctz
     * instead of an O(processorCycle) scan of the due array.
     */
    std::uint64_t thinkMask_ = 0;
    std::uint64_t thinkMaskAll_ = 0; //!< low processorCycle() bits
    bool thinkMaskUsable_ = false;

    /**
     * Cached earliest pending think tick and its bucket, so the
     * driver loop compares two integers instead of recomputing;
     * maintained by processThinkTick (full refresh, residue already
     * in hand) and enterThinking (min-update).
     */
    Tick thinkNextDue_ = 0;
    std::size_t thinkNextIdx_ = 0;

    /**
     * Incremental arbitration eligibility, kept in lockstep with
     * processor/module state transitions:
     * candProcSet_ = waiting processors whose target can accept,
     * candModSet_ = modules holding a deliverable response.
     */
    IndexSet candProcSet_;
    IndexSet candModSet_;
    std::vector<IndexSet> waiterSets_; //!< per module: waiting procs
    std::vector<char> modCanAccept_;   //!< cached acceptance flags
    std::vector<char> modHasResponse_; //!< cached response flags

    // Measurement window and counters.
    Tick windowStart_ = 0;
    Tick windowEnd_ = 0;
    std::uint64_t busBusy_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t calendarDrains_ = 0;
    double accessCycles_ = 0.0;

    /**
     * Per-module accounting (cfg_.collectPerModule; otherwise the
     * vectors stay empty and untouched). Busy ticks plus
     * change-driven time-weighted queue-depth integration: every
     * depth change accrues depth x (window-clipped span since the
     * last change). Purely passive - no RNG, no trajectory change.
     */
    std::vector<std::uint64_t> perModBusy_;
    std::vector<std::uint64_t> perModDepth_;
    std::vector<std::uint64_t> perModDepthArea_;
    std::vector<Tick> perModDepthSince_;
    std::vector<std::uint64_t> perModDepthMax_;
    Accumulator waitStats_;
    Accumulator serviceStats_;
    std::vector<std::uint64_t> perProcCompleted_;
    std::optional<Histogram> waitHist_;

    /**
     * Latency distributions (cfg_.collectLatency; otherwise the
     * optionals stay empty and procServiceStart_ is untouched).
     * procServiceStart_[p] is the tick module service began for p's
     * outstanding request; recordCompletion folds wait (service start
     * - issue) and residence (delivery - issue) into the histograms.
     * Purely passive - no RNG, no trajectory change.
     */
    std::vector<Tick> procServiceStart_;
    std::optional<Histogram> latWaitHist_;
    std::optional<Histogram> latResidenceHist_;

    bool ran_ = false;
};

} // namespace sbn

#endif // SBN_CORE_SYSTEM_HH
