#include "core/fingerprint.hh"

#include <cstdio>
#include <cstring>

namespace sbn {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

/** Running FNV-1a over typed field values. */
class Hasher
{
  public:
    void
    u64(std::uint64_t value)
    {
        state_ = fingerprintMix(state_, value);
    }

    void
    i64(std::int64_t value)
    {
        u64(static_cast<std::uint64_t>(value));
    }

    void
    f64(double value)
    {
        // Hash the IEEE-754 bit pattern: two configs fingerprint
        // equal exactly when the doubles compare bit-equal, which is
        // the same equivalence the bit-exact record format uses.
        u64(doubleFingerprintBits(value));
    }

    std::uint64_t
    digest() const
    {
        return state_;
    }

  private:
    std::uint64_t state_ = kFnvOffset;
};

} // namespace

std::uint64_t
fingerprintMix(std::uint64_t state, std::uint64_t value)
{
    constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
    for (int byte = 0; byte < 8; ++byte) {
        state ^= (value >> (8 * byte)) & 0xffu;
        state *= kFnvPrime;
    }
    return state;
}

std::uint64_t
doubleFingerprintBits(double value)
{
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof value, "IEEE-754 double");
    std::memcpy(&bits, &value, sizeof bits);
    return bits;
}

double
doubleFromFingerprintBits(std::uint64_t bits)
{
    double value;
    std::memcpy(&value, &bits, sizeof value);
    return value;
}

std::string
formatExactDouble(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

std::uint64_t
configFingerprint(const SystemConfig &config)
{
    Hasher h;
    // A leading version tag so a field addition changes every
    // fingerprint at once instead of colliding silently. V02: the
    // workload layer replaced the bare moduleWeights vector (records
    // written under V01 no longer match and are discarded on resume,
    // which is the safe direction).
    h.u64(0x53424e4650563032ull); // "SBNFPV02"
    h.i64(config.numProcessors);
    h.i64(config.numModules);
    h.i64(config.memoryRatio);
    h.f64(config.requestProbability);
    h.i64(static_cast<std::int64_t>(config.policy));
    h.i64(static_cast<std::int64_t>(config.selection));
    h.u64(config.buffered ? 1 : 0);
    h.i64(config.inputCapacity);
    h.i64(config.outputCapacity);
    // Workload fields fold into an independent sub-hash (seeded at
    // the FNV offset) committed as one value.
    h.u64(mixWorkloadFingerprint(kFnvOffset, config.workload));
    h.u64(config.seed);
    h.u64(static_cast<std::uint64_t>(config.warmupCycles));
    h.u64(static_cast<std::uint64_t>(config.measureCycles));
    // The kernel folds in only when it is not the exact default, so
    // every fingerprint ever computed for a CycleSkip config stays
    // valid, while FastStat records can never collide with (or
    // satisfy a resume of) an exact-kernel sweep. The tag keeps a
    // future third kernel from colliding with a field extension.
    if (config.kernel != KernelKind::CycleSkip) {
        h.u64(0x4b45524e454c4b44ull); // "KERNELKD"
        h.i64(static_cast<std::int64_t>(config.kernel));
    }
    return h.digest();
}

std::string
formatFingerprint(std::uint64_t fingerprint)
{
    char buffer[24];
    std::snprintf(buffer, sizeof buffer, "0x%016llx",
                  static_cast<unsigned long long>(fingerprint));
    return buffer;
}

bool
parseFingerprint(const std::string &text, std::uint64_t &out)
{
    if (text.size() != 18 || text[0] != '0' || text[1] != 'x')
        return false;
    std::uint64_t value = 0;
    for (std::size_t i = 2; i < text.size(); ++i) {
        const char c = text[i];
        std::uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a') + 10;
        else
            return false;
        value = (value << 4) | digit;
    }
    out = value;
    return true;
}

} // namespace sbn
