#include "core/experiment.hh"

#include "stats/replication.hh"

namespace sbn {

Metrics
runOnce(const SystemConfig &config)
{
    SingleBusSystem system(config);
    return system.run();
}

double
runEbw(const SystemConfig &config)
{
    return runOnce(config).ebw;
}

Estimate
replicate(const SystemConfig &config, unsigned replications,
          const std::function<double(const Metrics &)> &metric)
{
    return runReplications(
        [&](std::uint64_t seed) {
            SystemConfig c = config;
            c.seed = seed;
            return metric(runOnce(c));
        },
        replications, config.seed);
}

Estimate
replicateEbw(const SystemConfig &config, unsigned replications)
{
    return replicate(config, replications,
                     [](const Metrics &m) { return m.ebw; });
}

} // namespace sbn
