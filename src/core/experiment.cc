#include "core/experiment.hh"

#include "core/faststat.hh"
#include "exec/parallel_runner.hh"

namespace sbn {

Metrics
runOnce(const SystemConfig &config)
{
    if (config.kernel == KernelKind::FastStat) {
        FastStatSystem system(config);
        return system.run();
    }
    SingleBusSystem system(config);
    return system.run();
}

double
runEbw(const SystemConfig &config)
{
    return runOnce(config).ebw;
}

PointSample
runPointSample(const SystemConfig &config)
{
    const Metrics m = runOnce(config);
    PointSample sample;
    sample.ebw = m.ebw;
    if (m.latencyWait && m.latencyResidence) {
        sample.hasLatency = true;
        sample.latency = summarizeLatency(*m.latencyWait,
                                          *m.latencyResidence);
    }
    return sample;
}

Estimate
replicate(const SystemConfig &config, unsigned replications,
          const std::function<double(const Metrics &)> &metric,
          unsigned threads)
{
    ParallelRunner &runner = sharedParallelRunner(
        threads != 0 ? threads : defaultExecThreads());
    return runner.runReplications(
        [&](std::uint64_t seed) {
            SystemConfig c = config;
            c.seed = seed;
            return metric(runOnce(c));
        },
        replications, config.seed);
}

Estimate
replicateEbw(const SystemConfig &config, unsigned replications,
             unsigned threads)
{
    return replicate(
        config, replications,
        [](const Metrics &m) { return m.ebw; }, threads);
}

AdaptiveEstimate
replicateToPrecision(const SystemConfig &config,
                     const PrecisionTarget &target,
                     const std::function<double(const Metrics &)> &metric,
                     const RoundSchedule &schedule, unsigned threads)
{
    ParallelRunner &runner = sharedParallelRunner(
        threads != 0 ? threads : defaultExecThreads());
    const AdaptiveReplicator replicator(runner, target, schedule);
    return replicator.run(
        [&](std::uint64_t seed) {
            SystemConfig c = config;
            c.seed = seed;
            return metric(runOnce(c));
        },
        config.seed);
}

AdaptiveEstimate
replicateEbwToPrecision(const SystemConfig &config,
                        const PrecisionTarget &target,
                        const RoundSchedule &schedule, unsigned threads)
{
    return replicateToPrecision(
        config, target, [](const Metrics &m) { return m.ebw; },
        schedule, threads);
}

} // namespace sbn
