#include "core/metrics.hh"

namespace sbn {

LatencySummary
summarizeLatency(const Histogram &wait, const Histogram &residence)
{
    LatencySummary s;
    s.samples = wait.count();
    s.waitP50 = wait.quantile(0.50);
    s.waitP90 = wait.quantile(0.90);
    s.waitP99 = wait.quantile(0.99);
    s.waitMax = wait.maxSample();
    s.residenceP50 = residence.quantile(0.50);
    s.residenceP90 = residence.quantile(0.90);
    s.residenceP99 = residence.quantile(0.99);
    s.residenceMax = residence.maxSample();
    return s;
}

} // namespace sbn
