#include "core/system.hh"

#include <algorithm>

#include "util/logging.hh"

namespace sbn {

namespace {

/** Compose "proc 3 -> module 5"-style trace text. */
template <typename... Args>
std::string
traceText(Args &&...args)
{
    return detail::composeMessage(std::forward<Args>(args)...);
}

} // namespace

SingleBusSystem::SingleBusSystem(const SystemConfig &config)
    : cfg_(config), rng_(config.seed)
{
    cfg_.validate();

    procs_.resize(cfg_.numProcessors);
    for (int p = 0; p < cfg_.numProcessors; ++p) {
        procs_[p].readyEvent = std::make_unique<EventFunction>(
            [this, p] { processorReady(p); }, event_priority::kUpdate,
            "proc-ready");
    }

    mods_.resize(cfg_.numModules);
    for (int m = 0; m < cfg_.numModules; ++m) {
        mods_[m].completionEvent = std::make_unique<EventFunction>(
            [this, m] { memoryCompletion(m); }, event_priority::kUpdate,
            "mem-complete");
    }

    transferDoneEvent_ = std::make_unique<EventFunction>(
        [this] { transferDone(); }, event_priority::kUpdate,
        "bus-transfer-done");
    arbitrationEvent_ = std::make_unique<EventFunction>(
        [this] { arbitrate(); }, event_priority::kDecide, "bus-arbitrate");

    if (!cfg_.moduleWeights.empty()) {
        weightCdf_.resize(cfg_.moduleWeights.size());
        double acc = 0.0;
        for (std::size_t i = 0; i < cfg_.moduleWeights.size(); ++i) {
            acc += cfg_.moduleWeights[i];
            weightCdf_[i] = acc;
        }
        for (auto &v : weightCdf_)
            v /= acc;
    }

    windowStart_ = cfg_.warmupCycles;
    windowEnd_ = cfg_.warmupCycles + cfg_.measureCycles;
    perProcCompleted_.assign(cfg_.numProcessors, 0);
    if (cfg_.collectWaitHistogram) {
        waitHist_.emplace(0.0,
                          20.0 * static_cast<double>(cfg_.processorCycle()),
                          200);
    }
}

int
SingleBusSystem::pickTargetModule()
{
    if (weightCdf_.empty())
        return static_cast<int>(rng_.uniformInt(cfg_.numModules));
    const double u = rng_.uniformReal();
    const auto it =
        std::upper_bound(weightCdf_.begin(), weightCdf_.end(), u);
    return static_cast<int>(
        std::min<std::size_t>(it - weightCdf_.begin(),
                              weightCdf_.size() - 1));
}

bool
SingleBusSystem::moduleCanAcceptRequest(const Module &mod) const
{
    if (!cfg_.buffered)
        return mod.state == ModState::Idle;

    // A request heading to an idle, empty module occupies the server,
    // not a buffer slot; otherwise it needs a free input slot.
    const int occupied =
        static_cast<int>(mod.inputQueue.size()) + mod.reservedInput;
    if (cfg_.inputCapacity == 0)
        return true;
    if (!mod.accessing && occupied == 0)
        return true;
    return occupied < cfg_.inputCapacity;
}

bool
SingleBusSystem::moduleHasResponse(const Module &mod) const
{
    if (!cfg_.buffered)
        return mod.state == ModState::HoldingResponse;
    return !mod.outputQueue.empty();
}

void
SingleBusSystem::requestArbitration(Tick at)
{
    // While arbitrate() itself runs (granting), candidates surfacing
    // from its side effects are covered by the post-grant arbitration
    // at the next cycle; scheduling here would double-grant the bus
    // within one cycle.
    if (inArbitration_ || arbitrationEvent_->scheduled())
        return;
    sim_.queue().schedule(*arbitrationEvent_, at);
}

void
SingleBusSystem::processorReady(int proc)
{
    const Tick now = sim_.now();
    Processor &p = procs_[proc];

    if (rng_.bernoulli(cfg_.requestProbability)) {
        p.state = ProcState::WaitingGrant;
        p.target = pickTargetModule();
        p.issueTick = now;
        if (cfg_.trace) {
            cfg_.trace->record(now, "proc",
                               traceText("proc ", proc, " issues to module ",
                                         p.target));
        }
        if (inWindow(now))
            ++issued_;
        if (moduleCanAcceptRequest(mods_[p.target]))
            requestArbitration(now);
    } else {
        // One processor cycle of internal work, then draw again
        // (hypothesis (f): requests only start on processor-cycle
        // boundaries).
        p.state = ProcState::Thinking;
        if (cfg_.trace) {
            cfg_.trace->record(
                now, "proc",
                traceText("proc ", proc, " thinks until ",
                          now + static_cast<Tick>(cfg_.processorCycle())));
        }
        sim_.queue().schedule(
            *p.readyEvent,
            now + static_cast<Tick>(cfg_.processorCycle()));
    }
}

void
SingleBusSystem::memoryCompletion(int module)
{
    const Tick now = sim_.now();
    Module &mod = mods_[module];

    if (cfg_.trace) {
        cfg_.trace->record(now, "mem",
                           traceText("module ", module,
                                     " completes access for proc ",
                                     mod.servingProc));
    }
    if (!cfg_.buffered) {
        sbn_assert(mod.state == ModState::Accessing,
                   "completion on non-accessing module");
        mod.state = ModState::HoldingResponse;
        recordAccessSpan(mod.accessStart, now);
        requestArbitration(now);
        return;
    }

    mod.outputQueue.push_back(Response{mod.servingProc, now});
    mod.accessing = false;
    mod.servingProc = -1;
    recordAccessSpan(mod.accessStart, now);
    maybeStartBufferedAccess(module);
    requestArbitration(now);
}

void
SingleBusSystem::maybeStartBufferedAccess(int module)
{
    Module &mod = mods_[module];
    if (mod.accessing || mod.inputQueue.empty())
        return;
    if (cfg_.outputCapacity > 0 &&
        static_cast<int>(mod.outputQueue.size()) >= cfg_.outputCapacity)
        return; // blocked until a response drains

    const Tick now = sim_.now();
    mod.servingProc = mod.inputQueue.front();
    mod.inputQueue.pop_front();
    mod.accessing = true;
    mod.accessStart = now;
    if (cfg_.trace) {
        cfg_.trace->record(now, "mem",
                           traceText("module ", module,
                                     " starts access for proc ",
                                     mod.servingProc));
    }
    sim_.queue().schedule(*mod.completionEvent,
                          now + static_cast<Tick>(cfg_.memoryRatio));
    // An input slot freed: a waiting processor may now be eligible.
    requestArbitration(now);
}

void
SingleBusSystem::transferDone()
{
    const Tick now = sim_.now();
    const BusTransfer xfer = busTransfer_;
    busTransfer_ = BusTransfer{};

    if (xfer.kind == BusTransfer::Kind::Request) {
        Module &mod = mods_[xfer.module];
        if (!cfg_.buffered) {
            sbn_assert(mod.state == ModState::RequestInFlight,
                       "request arrived at module in wrong state");
            mod.state = ModState::Accessing;
            mod.servingProc = xfer.proc;
            mod.accessStart = now;
            if (cfg_.trace) {
                cfg_.trace->record(now, "mem",
                                   traceText("module ", xfer.module,
                                             " starts access for proc ",
                                             xfer.proc));
            }
            sim_.queue().schedule(
                *mod.completionEvent,
                now + static_cast<Tick>(cfg_.memoryRatio));
        } else {
            --mod.reservedInput;
            sbn_assert(mod.reservedInput >= 0, "reservation underflow");
            mod.inputQueue.push_back(xfer.proc);
            maybeStartBufferedAccess(xfer.module);
        }
        return;
    }

    sbn_assert(xfer.kind == BusTransfer::Kind::Response,
               "transfer-done with idle bus");

    if (!cfg_.buffered) {
        Module &mod = mods_[xfer.module];
        sbn_assert(mod.state == ModState::ResponseInFlight,
                   "response finished from module in wrong state");
        mod.state = ModState::Idle;
        mod.servingProc = -1;
        // Requests queued for this module become eligible.
        requestArbitration(now);
    }

    // Deliver to the processor; it immediately starts its next
    // processor cycle (issue or think).
    if (cfg_.trace) {
        cfg_.trace->record(now, "proc",
                           traceText("proc ", xfer.proc,
                                     " receives response from module ",
                                     xfer.module));
    }
    processorReady(xfer.proc);
}

void
SingleBusSystem::arbitrate()
{
    const Tick now = sim_.now();
    sbn_assert(busTransfer_.kind == BusTransfer::Kind::None,
               "arbitrating while the bus is busy");
    inArbitration_ = true;

    candProcs_.clear();
    for (int p = 0; p < cfg_.numProcessors; ++p) {
        if (procs_[p].state == ProcState::WaitingGrant &&
            moduleCanAcceptRequest(mods_[procs_[p].target]))
            candProcs_.push_back(p);
    }
    candMods_.clear();
    for (int m = 0; m < cfg_.numModules; ++m) {
        if (moduleHasResponse(mods_[m]))
            candMods_.push_back(m);
    }

    if (candProcs_.empty() && candMods_.empty()) {
        // Bus goes idle; a future state change reschedules us.
        inArbitration_ = false;
        return;
    }

    const bool procs_first =
        cfg_.policy == ArbitrationPolicy::ProcessorPriority;
    const bool grant_proc =
        !candProcs_.empty() && (procs_first || candMods_.empty());

    if (grant_proc) {
        int chosen = candProcs_.front();
        if (cfg_.selection == SelectionRule::Random) {
            chosen = candProcs_[rng_.pickIndex(candProcs_.size())];
        } else {
            for (int p : candProcs_)
                if (procs_[p].issueTick < procs_[chosen].issueTick)
                    chosen = p;
        }
        grantRequest(chosen);
    } else {
        int chosen = candMods_.front();
        if (cfg_.selection == SelectionRule::Random) {
            chosen = candMods_[rng_.pickIndex(candMods_.size())];
        } else {
            auto ready = [&](int m) {
                const Module &mod = mods_[m];
                return cfg_.buffered ? mod.outputQueue.front().readyTick
                                     : mod.accessStart +
                                           static_cast<Tick>(
                                               cfg_.memoryRatio);
            };
            for (int m : candMods_)
                if (ready(m) < ready(chosen))
                    chosen = m;
        }
        grantResponse(chosen);
    }

    if (inWindow(now))
        ++busBusy_;
    sim_.queue().schedule(*transferDoneEvent_, now + 1);
    inArbitration_ = false;
    sim_.queue().schedule(*arbitrationEvent_, now + 1);
}

void
SingleBusSystem::grantRequest(int proc)
{
    Processor &p = procs_[proc];
    Module &mod = mods_[p.target];
    p.state = ProcState::WaitingResponse;

    if (!cfg_.buffered) {
        sbn_assert(mod.state == ModState::Idle,
                   "request granted to a non-idle module");
        mod.state = ModState::RequestInFlight;
    } else {
        ++mod.reservedInput;
    }

    busTransfer_ = BusTransfer{BusTransfer::Kind::Request, proc, p.target};
    if (cfg_.trace) {
        cfg_.trace->record(sim_.now(), "bus",
                           traceText("grant request proc ", proc,
                                     " -> module ", p.target));
    }
}

void
SingleBusSystem::grantResponse(int module)
{
    const Tick now = sim_.now();
    Module &mod = mods_[module];
    int proc = -1;

    if (!cfg_.buffered) {
        sbn_assert(mod.state == ModState::HoldingResponse,
                   "response granted from module in wrong state");
        proc = mod.servingProc;
        mod.state = ModState::ResponseInFlight;
    } else {
        proc = mod.outputQueue.front().proc;
        mod.outputQueue.pop_front();
        // The output slot freed; a blocked module can resume.
        maybeStartBufferedAccess(module);
    }

    busTransfer_ = BusTransfer{BusTransfer::Kind::Response, proc, module};
    if (cfg_.trace) {
        cfg_.trace->record(now, "bus",
                           traceText("grant response module ", module,
                                     " -> proc ", proc));
    }
    recordCompletion(proc, now);
}

void
SingleBusSystem::recordCompletion(int proc, Tick grant_tick)
{
    if (!inWindow(grant_tick))
        return;
    ++completed_;
    ++perProcCompleted_[proc];
    const Tick delivery = grant_tick + 1;
    const double service =
        static_cast<double>(delivery - procs_[proc].issueTick);
    const double wait =
        service - static_cast<double>(cfg_.processorCycle());
    serviceStats_.add(service);
    waitStats_.add(wait);
    if (waitHist_)
        waitHist_->add(wait);
}

void
SingleBusSystem::recordAccessSpan(Tick start, Tick end)
{
    const Tick lo = std::max(start, windowStart_);
    const Tick hi = std::min(end, windowEnd_);
    if (hi > lo)
        accessCycles_ += static_cast<double>(hi - lo);
}

Metrics
SingleBusSystem::run()
{
    sbn_assert(!ran_, "SingleBusSystem::run may only be called once");
    ran_ = true;

    for (auto &p : procs_)
        sim_.queue().schedule(*p.readyEvent, 0);
    sim_.run(windowEnd_);

    Metrics out;
    out.measuredCycles = windowEnd_ - windowStart_;
    out.completedRequests = completed_;
    out.issuedRequests = issued_;
    out.busBusyCycles = busBusy_;

    const auto cycles = static_cast<double>(out.measuredCycles);
    const auto pc = static_cast<double>(cfg_.processorCycle());
    out.ebw = static_cast<double>(completed_) * pc / cycles;
    out.busUtilization = static_cast<double>(busBusy_) / cycles;
    out.ebwFromBusUtilization = out.busUtilization * pc / 2.0;
    out.meanModuleUtilization =
        accessCycles_ / (cycles * static_cast<double>(cfg_.numModules));
    out.processorEfficiency =
        out.ebw / static_cast<double>(cfg_.numProcessors);
    out.meanWaitCycles = waitStats_.mean();
    out.meanServiceCycles = serviceStats_.mean();
    out.waitStats = waitStats_;
    out.perProcessorCompletions = perProcCompleted_;
    out.waitHistogram = waitHist_;
    return out;
}

} // namespace sbn
