#include "core/system.hh"

#include <algorithm>
#include <limits>

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace sbn {

namespace {

/** Compose "proc 3 -> module 5"-style trace text. */
template <typename... Args>
std::string
traceText(Args &&...args)
{
    return detail::composeMessage(std::forward<Args>(args)...);
}

constexpr Tick kNever = std::numeric_limits<Tick>::max();

} // namespace

SingleBusSystem::SingleBusSystem(const SystemConfig &config)
    : cfg_(config), rng_(config.seed),
      // cfg_ precedes workload_ in declaration order; validate before
      // the workload model builds alias tables from the raw fields.
      workload_((cfg_.validate(), cfg_.workload), cfg_.numProcessors,
                cfg_.numModules, cfg_.requestProbability)
{
    procs_.resize(cfg_.numProcessors);

    mods_.resize(cfg_.numModules);
    for (int m = 0; m < cfg_.numModules; ++m) {
        mods_[m].completionEvent.bind(*this,
                                      &SingleBusSystem::memoryCompletion,
                                      m, event_priority::kUpdate,
                                      "mem-complete");
    }

    arbitrationEvent_.bind(*this, &SingleBusSystem::onArbitrate, 0,
                           event_priority::kDecide, "bus-arbitrate");
    busCycleEvent_.bind(*this, &SingleBusSystem::onBusCycle, 0,
                        event_priority::kUpdate, "bus-cycle");

    windowStart_ = cfg_.warmupCycles;
    windowEnd_ = cfg_.warmupCycles + cfg_.measureCycles;
    perProcCompleted_.assign(cfg_.numProcessors, 0);
    if (cfg_.collectWaitHistogram) {
        waitHist_.emplace(0.0,
                          20.0 * static_cast<double>(cfg_.processorCycle()),
                          200);
    }

    // Pre-size every container the hot path touches so steady-state
    // simulation performs no allocations (asserted by the perf tests
    // via scratchCapacities()).
    const auto pc = static_cast<std::size_t>(cfg_.processorCycle());
    thinkBuckets_.resize(pc);
    for (auto &bucket : thinkBuckets_)
        bucket.reserve(static_cast<std::size_t>(cfg_.numProcessors));
    thinkBucketDue_.assign(pc, 0);
    thinkMaskUsable_ = pc <= 63;
    thinkMaskAll_ = thinkMaskUsable_ ? (1ull << pc) - 1 : 0;
    candProcSet_.resize(static_cast<std::size_t>(cfg_.numProcessors));
    candModSet_.resize(static_cast<std::size_t>(cfg_.numModules));
    waiterSets_.assign(
        static_cast<std::size_t>(cfg_.numModules),
        IndexSet(static_cast<std::size_t>(cfg_.numProcessors)));
    // Every module starts idle and empty: accepting, no response.
    modCanAccept_.assign(static_cast<std::size_t>(cfg_.numModules), 1);
    modHasResponse_.assign(static_cast<std::size_t>(cfg_.numModules),
                           0);

    if (cfg_.collectPerModule) {
        const auto m = static_cast<std::size_t>(cfg_.numModules);
        perModBusy_.assign(m, 0);
        perModDepth_.assign(m, 0);
        perModDepthArea_.assign(m, 0);
        perModDepthSince_.assign(m, 0);
        perModDepthMax_.assign(m, 0);
    }

    if (cfg_.collectLatency) {
        procServiceStart_.assign(
            static_cast<std::size_t>(cfg_.numProcessors), 0);
        latWaitHist_.emplace(makeLatencyHistogram());
        latResidenceHist_.emplace(makeLatencyHistogram());
    }
}

std::vector<std::size_t>
SingleBusSystem::scratchCapacities() const
{
    std::vector<std::size_t> caps;
    for (const auto &bucket : thinkBuckets_)
        caps.push_back(bucket.capacity());
    caps.push_back(perModBusy_.capacity());
    caps.push_back(perModDepth_.capacity());
    caps.push_back(perModDepthArea_.capacity());
    caps.push_back(perModDepthSince_.capacity());
    caps.push_back(perModDepthMax_.capacity());
    return caps;
}

bool
SingleBusSystem::moduleCanAcceptRequest(const Module &mod) const
{
    if (!cfg_.buffered)
        return mod.state == ModState::Idle;

    // A request heading to an idle, empty module occupies the server,
    // not a buffer slot; otherwise it needs a free input slot.
    const int occupied =
        static_cast<int>(mod.inputQueue.size()) + mod.reservedInput;
    if (cfg_.inputCapacity == 0)
        return true;
    if (!mod.accessing && occupied == 0)
        return true;
    return occupied < cfg_.inputCapacity;
}

bool
SingleBusSystem::moduleHasResponse(const Module &mod) const
{
    if (!cfg_.buffered)
        return mod.state == ModState::HoldingResponse;
    return !mod.outputQueue.empty();
}

void
SingleBusSystem::procBecomesWaiting(int proc, int target)
{
    waiterSets_[target].insert(proc);
    if (modCanAccept_[target])
        candProcSet_.insert(proc);
}

void
SingleBusSystem::refreshModule(int module)
{
    const Module &mod = mods_[module];
    const bool accept = moduleCanAcceptRequest(mod);
    if (accept != static_cast<bool>(modCanAccept_[module])) {
        modCanAccept_[module] = accept ? 1 : 0;
        if (!waiterSets_[module].empty()) {
            if (accept)
                candProcSet_.insertAll(waiterSets_[module]);
            else
                candProcSet_.eraseAll(waiterSets_[module]);
        }
    }
    const bool response = moduleHasResponse(mod);
    if (response != static_cast<bool>(modHasResponse_[module])) {
        modHasResponse_[module] = response ? 1 : 0;
        if (response)
            candModSet_.insert(module);
        else
            candModSet_.erase(module);
    }
}

void
SingleBusSystem::requestArbitration(Tick at)
{
    // While arbitrate() itself runs (granting), candidates surfacing
    // from its side effects are covered by the post-grant arbitration
    // at the next cycle; scheduling here would double-grant the bus
    // within one cycle.
    if (inArbitration_ || arbitrationEvent_.scheduled())
        return;
    // The coalesced bus cycle already ends in an arbitration.
    if (inBusCycle_ || busCycleEvent_.scheduled())
        return;
    // With incrementally maintained candidate sets an empty-handed
    // arbitration is knowable in advance (no RNG, no state change).
    if (candProcSet_.empty() && candModSet_.empty())
        return;
    sim_.queue().schedule(arbitrationEvent_, at);
}

bool
SingleBusSystem::drawProcessor(int proc, Tick now)
{
    Processor &p = procs_[proc];
    ++thinkDraws_;

    if (rng_.bernoulli(workload_.thinkProbability(proc))) {
        p.state = ProcState::WaitingGrant;
        p.target = workload_.sampleTarget(proc, rng_);
        p.issueTick = now;
        if (cfg_.trace) {
            cfg_.trace->record(now, "proc",
                               traceText("proc ", proc, " issues to module ",
                                         p.target));
        }
        if (inWindow(now))
            ++issued_;
        procBecomesWaiting(proc, p.target);
        if (cfg_.collectPerModule)
            noteQueueDepth(p.target, now, +1);
        if (modCanAccept_[p.target])
            requestArbitration(now);
        return true;
    }

    // One processor cycle of internal work, then draw again
    // (hypothesis (f): requests only start on processor-cycle
    // boundaries).
    p.state = ProcState::Thinking;
    if (cfg_.trace) {
        cfg_.trace->record(
            now, "proc",
            traceText("proc ", proc, " thinks until ",
                      now + static_cast<Tick>(cfg_.processorCycle())));
    }
    return false;
}

void
SingleBusSystem::processorReady(int proc)
{
    const Tick now = sim_.now();
    if (drawProcessor(proc, now))
        return;
    enterThinking(proc, now);
}

void
SingleBusSystem::enterThinking(int proc, Tick now)
{
    const auto pc = static_cast<Tick>(cfg_.processorCycle());
    const Tick due = now + pc;
    const auto idx = static_cast<std::size_t>(due % pc);
    auto &bucket = thinkBuckets_[idx];
    if (bucket.empty()) {
        thinkBucketDue_[idx] = due;
        if (thinkMaskUsable_)
            thinkMask_ |= 1ull << idx;
    } else {
        sbn_assert(thinkBucketDue_[idx] == due,
                   "think bucket due-tick invariant violated");
    }
    bucket.push_back(proc);
    if (thinkingCount_++ == 0 || due < thinkNextDue_) {
        thinkNextDue_ = due;
        thinkNextIdx_ = idx;
    }
}

void
SingleBusSystem::refreshNextThink(Tick now, std::size_t r0)
{
    const auto pc = static_cast<Tick>(cfg_.processorCycle());
    if (thinkingCount_ == 0) {
        thinkNextDue_ = kNever;
        return;
    }
    if (thinkMaskUsable_) {
        // Every nonempty bucket is due within (now, now + pc], and
        // residues come due in cyclic order, so rotating the
        // nonempty mask to put now's residue at bit 0 turns the
        // lookup into a count-trailing-zeros. Bit 0 after rotation
        // is now's own bucket, just processed: due a full cycle out.
        std::uint64_t rotated = thinkMask_;
        if (r0 != 0) {
            rotated = (rotated >> r0) |
                      (rotated << (static_cast<unsigned>(pc) -
                                   static_cast<unsigned>(r0)));
            rotated &= thinkMaskAll_;
        }
        sbn_assert(rotated != 0, "refreshNextThink with no thinkers");
        Tick dist;
        if ((rotated & 1u) != 0 && (rotated &= rotated - 1) == 0)
            dist = pc;
        else
            dist = static_cast<Tick>(__builtin_ctzll(rotated));
        const Tick raw = static_cast<Tick>(r0) + dist;
        thinkNextIdx_ =
            static_cast<std::size_t>(raw >= pc ? raw - pc : raw);
        thinkNextDue_ = now + dist;
        return;
    }

    Tick next = kNever;
    std::size_t idx = 0;
    for (std::size_t b = 0; b < thinkBuckets_.size(); ++b) {
        if (!thinkBuckets_[b].empty() && thinkBucketDue_[b] < next) {
            next = thinkBucketDue_[b];
            idx = b;
        }
    }
    thinkNextDue_ = next;
    thinkNextIdx_ = idx;
}

void
SingleBusSystem::processThinkTick(Tick now, std::size_t idx)
{
    const auto pc = static_cast<Tick>(cfg_.processorCycle());
    auto &bucket = thinkBuckets_[idx];
    sbn_assert(!bucket.empty() && thinkBucketDue_[idx] == now,
               "processing a think bucket at the wrong tick");
    ++calendarDrains_;

    // Draw in bucket order (== event sequence order). A failure's
    // next draw is due exactly one processor cycle later, i.e. in
    // this same bucket: compact survivors in place, stably. Issue
    // side effects never append to the calendar synchronously, so
    // the snapshot count is safe.
    const std::size_t count = bucket.size();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const int proc = bucket[i];
        if (!drawProcessor(proc, now))
            bucket[keep++] = proc;
    }
    bucket.resize(keep);
    thinkBucketDue_[idx] = now + pc;
    thinkingCount_ -= static_cast<int>(count - keep);
    if (keep == 0 && thinkMaskUsable_)
        thinkMask_ &= ~(1ull << idx);
    refreshNextThink(now, idx);
}

void
SingleBusSystem::memoryCompletion(int module)
{
    const Tick now = sim_.now();
    Module &mod = mods_[module];

    if (cfg_.trace) {
        cfg_.trace->record(now, "mem",
                           traceText("module ", module,
                                     " completes access for proc ",
                                     mod.servingProc));
    }
    if (!cfg_.buffered) {
        sbn_assert(mod.state == ModState::Accessing,
                   "completion on non-accessing module");
        mod.state = ModState::HoldingResponse;
        recordAccessSpan(module, mod.accessStart, now);
        refreshModule(module);
        requestArbitration(now);
        return;
    }

    mod.outputQueue.push_back(Response{mod.servingProc, now});
    mod.accessing = false;
    mod.servingProc = -1;
    recordAccessSpan(module, mod.accessStart, now);
    refreshModule(module);
    maybeStartBufferedAccess(module);
    requestArbitration(now);
}

void
SingleBusSystem::maybeStartBufferedAccess(int module)
{
    Module &mod = mods_[module];
    if (mod.accessing || mod.inputQueue.empty())
        return;
    if (cfg_.outputCapacity > 0 &&
        static_cast<int>(mod.outputQueue.size()) >= cfg_.outputCapacity)
        return; // blocked until a response drains

    const Tick now = sim_.now();
    mod.servingProc = mod.inputQueue.front();
    mod.inputQueue.pop_front();
    mod.accessing = true;
    mod.accessStart = now;
    if (cfg_.collectLatency)
        procServiceStart_[static_cast<std::size_t>(mod.servingProc)] =
            now;
    if (cfg_.collectPerModule)
        noteQueueDepth(module, now, -1);
    if (cfg_.trace) {
        cfg_.trace->record(now, "mem",
                           traceText("module ", module,
                                     " starts access for proc ",
                                     mod.servingProc));
    }
    sim_.queue().schedule(mod.completionEvent,
                          now + static_cast<Tick>(cfg_.memoryRatio));
    refreshModule(module);
    // An input slot freed: a waiting processor may now be eligible.
    requestArbitration(now);
}

void
SingleBusSystem::transferDone()
{
    const Tick now = sim_.now();
    const BusTransfer xfer = busTransfer_;
    busTransfer_ = BusTransfer{};

    if (xfer.kind == BusTransfer::Kind::Request) {
        Module &mod = mods_[xfer.module];
        if (!cfg_.buffered) {
            sbn_assert(mod.state == ModState::RequestInFlight,
                       "request arrived at module in wrong state");
            mod.state = ModState::Accessing;
            mod.servingProc = xfer.proc;
            mod.accessStart = now;
            if (cfg_.collectLatency)
                procServiceStart_[static_cast<std::size_t>(xfer.proc)] =
                    now;
            if (cfg_.trace) {
                cfg_.trace->record(now, "mem",
                                   traceText("module ", xfer.module,
                                             " starts access for proc ",
                                             xfer.proc));
            }
            sim_.queue().schedule(
                mod.completionEvent,
                now + static_cast<Tick>(cfg_.memoryRatio));
            refreshModule(xfer.module);
        } else {
            --mod.reservedInput;
            sbn_assert(mod.reservedInput >= 0, "reservation underflow");
            mod.inputQueue.push_back(xfer.proc);
            refreshModule(xfer.module);
            maybeStartBufferedAccess(xfer.module);
        }
        return;
    }

    sbn_assert(xfer.kind == BusTransfer::Kind::Response,
               "transfer-done with idle bus");

    if (!cfg_.buffered) {
        Module &mod = mods_[xfer.module];
        sbn_assert(mod.state == ModState::ResponseInFlight,
                   "response finished from module in wrong state");
        mod.state = ModState::Idle;
        mod.servingProc = -1;
        refreshModule(xfer.module);
        // Requests queued for this module become eligible.
        requestArbitration(now);
    }

    // Deliver to the processor; it immediately starts its next
    // processor cycle (issue or think).
    if (cfg_.trace) {
        cfg_.trace->record(now, "proc",
                           traceText("proc ", xfer.proc,
                                     " receives response from module ",
                                     xfer.module));
    }
    processorReady(xfer.proc);
}

void
SingleBusSystem::onBusCycle(int)
{
    // Coalesced bus cycle: the transfer completes, then -- all
    // same-tick state updates having already run, since nothing can
    // enqueue between the two -- the next arbitration decides,
    // exactly where a separate kDecide event would have run.
    inBusCycle_ = true;
    transferDone();
    inBusCycle_ = false;
    arbitrate();
}

void
SingleBusSystem::selectIncremental(int &chosen_proc, int &chosen_mod)
{
    if (candProcSet_.empty() && candModSet_.empty())
        return;

    const bool procs_first =
        cfg_.policy == ArbitrationPolicy::ProcessorPriority;
    const bool grant_proc =
        !candProcSet_.empty() && (procs_first || candModSet_.empty());

    // The sets iterate in ascending index order, FCFS keeps the
    // strict-< lowest-index tie-break, and Random draws pickIndex
    // over the candidate count - the historical scan order exactly.
    if (grant_proc) {
        int chosen;
        if (cfg_.selection == SelectionRule::Random) {
            chosen = static_cast<int>(
                candProcSet_.nth(rng_.pickIndex(candProcSet_.count())));
        } else {
            int best = -1;
            candProcSet_.forEach([&](std::size_t p) {
                const int proc = static_cast<int>(p);
                if (best < 0 ||
                    procs_[proc].issueTick < procs_[best].issueTick)
                    best = proc;
            });
            chosen = best;
        }
        chosen_proc = chosen;
    } else {
        int chosen;
        if (cfg_.selection == SelectionRule::Random) {
            chosen = static_cast<int>(
                candModSet_.nth(rng_.pickIndex(candModSet_.count())));
        } else {
            auto ready = [&](int m) {
                const Module &mod = mods_[m];
                return cfg_.buffered ? mod.outputQueue.front().readyTick
                                     : mod.accessStart +
                                           static_cast<Tick>(
                                               cfg_.memoryRatio);
            };
            int best = -1;
            candModSet_.forEach([&](std::size_t m) {
                const int mod = static_cast<int>(m);
                if (best < 0 || ready(mod) < ready(best))
                    best = mod;
            });
            chosen = best;
        }
        chosen_mod = chosen;
    }
}

void
SingleBusSystem::arbitrate()
{
    const Tick now = sim_.now();
    sbn_assert(busTransfer_.kind == BusTransfer::Kind::None,
               "arbitrating while the bus is busy");
    inArbitration_ = true;

    int chosen_proc = -1;
    int chosen_mod = -1;
    selectIncremental(chosen_proc, chosen_mod);

    if (chosen_proc < 0 && chosen_mod < 0) {
        // Bus goes idle; a future state change reschedules us.
        inArbitration_ = false;
        return;
    }

    if (chosen_proc >= 0)
        grantRequest(chosen_proc);
    else
        grantResponse(chosen_mod);

    if (inWindow(now))
        ++busBusy_;
    // One coalesced event replaces the transfer-done/arbitrate pair:
    // the bus stays busy through the next cycle either way.
    sim_.queue().schedule(busCycleEvent_, now + 1);
    inArbitration_ = false;
}

void
SingleBusSystem::grantRequest(int proc)
{
    Processor &p = procs_[proc];
    Module &mod = mods_[p.target];
    p.state = ProcState::WaitingResponse;

    waiterSets_[p.target].erase(proc);
    candProcSet_.erase(proc);

    if (!cfg_.buffered) {
        sbn_assert(mod.state == ModState::Idle,
                   "request granted to a non-idle module");
        mod.state = ModState::RequestInFlight;
        // The request leaves the queue for the (dedicated) server;
        // buffered grants stay queued until the module starts them.
        if (cfg_.collectPerModule)
            noteQueueDepth(p.target, sim_.now(), -1);
    } else {
        ++mod.reservedInput;
    }
    refreshModule(p.target);

    busTransfer_ = BusTransfer{BusTransfer::Kind::Request, proc, p.target};
    if (cfg_.trace) {
        cfg_.trace->record(sim_.now(), "bus",
                           traceText("grant request proc ", proc,
                                     " -> module ", p.target));
    }
}

void
SingleBusSystem::grantResponse(int module)
{
    const Tick now = sim_.now();
    Module &mod = mods_[module];
    int proc = -1;

    if (!cfg_.buffered) {
        sbn_assert(mod.state == ModState::HoldingResponse,
                   "response granted from module in wrong state");
        proc = mod.servingProc;
        mod.state = ModState::ResponseInFlight;
        refreshModule(module);
    } else {
        proc = mod.outputQueue.front().proc;
        mod.outputQueue.pop_front();
        refreshModule(module);
        // The output slot freed; a blocked module can resume.
        maybeStartBufferedAccess(module);
    }

    busTransfer_ = BusTransfer{BusTransfer::Kind::Response, proc, module};
    if (cfg_.trace) {
        cfg_.trace->record(now, "bus",
                           traceText("grant response module ", module,
                                     " -> proc ", proc));
    }
    recordCompletion(proc, now);
}

void
SingleBusSystem::recordCompletion(int proc, Tick grant_tick)
{
    if (!inWindow(grant_tick))
        return;
    ++completed_;
    ++perProcCompleted_[proc];
    const Tick delivery = grant_tick + 1;
    const double service =
        static_cast<double>(delivery - procs_[proc].issueTick);
    const double wait =
        service - static_cast<double>(cfg_.processorCycle());
    serviceStats_.add(service);
    waitStats_.add(wait);
    if (waitHist_)
        waitHist_->add(wait);
    if (latWaitHist_) {
        latWaitHist_->add(static_cast<double>(
            procServiceStart_[static_cast<std::size_t>(proc)] -
            procs_[proc].issueTick));
        latResidenceHist_->add(
            static_cast<double>(delivery - procs_[proc].issueTick));
    }
}

void
SingleBusSystem::recordAccessSpan(int module, Tick start, Tick end)
{
    const Tick lo = std::max(start, windowStart_);
    const Tick hi = std::min(end, windowEnd_);
    if (hi > lo) {
        accessCycles_ += static_cast<double>(hi - lo);
        if (cfg_.collectPerModule)
            perModBusy_[static_cast<std::size_t>(module)] +=
                static_cast<std::uint64_t>(hi - lo);
    }
}

void
SingleBusSystem::noteQueueDepth(int module, Tick now, int delta)
{
    const auto idx = static_cast<std::size_t>(module);
    const Tick lo = std::max(perModDepthSince_[idx], windowStart_);
    const Tick hi = std::min(now, windowEnd_);
    if (hi > lo) {
        perModDepthArea_[idx] +=
            perModDepth_[idx] * static_cast<std::uint64_t>(hi - lo);
        if (perModDepth_[idx] > perModDepthMax_[idx])
            perModDepthMax_[idx] = perModDepth_[idx];
    }
    const auto next =
        static_cast<std::int64_t>(perModDepth_[idx]) + delta;
    sbn_debug_assert(next >= 0, "module queue depth went negative");
    perModDepth_[idx] = static_cast<std::uint64_t>(next);
    perModDepthSince_[idx] = now;
}

void
SingleBusSystem::finishPerModule(Metrics &out)
{
    const auto m = static_cast<std::size_t>(cfg_.numModules);
    const auto cycles = static_cast<double>(out.measuredCycles);
    out.perModuleBusyCycles = perModBusy_;
    out.perModuleUtilization.resize(m);
    out.perModuleQueueDepthAvg.resize(m);
    for (std::size_t j = 0; j < m; ++j) {
        // Close the depth integral at the window end (delta 0).
        noteQueueDepth(static_cast<int>(j), windowEnd_, 0);
        out.perModuleUtilization[j] =
            static_cast<double>(perModBusy_[j]) / cycles;
        out.perModuleQueueDepthAvg[j] =
            static_cast<double>(perModDepthArea_[j]) / cycles;
    }
    out.perModuleQueueDepthMax = perModDepthMax_;
}

void
SingleBusSystem::runCycleSkip()
{
    // Seed: every processor draws at tick 0, in index order.
    auto &bucket0 = thinkBuckets_[0];
    for (int p = 0; p < cfg_.numProcessors; ++p)
        bucket0.push_back(p);
    thinkBucketDue_[0] = 0;
    if (thinkMaskUsable_)
        thinkMask_ |= 1ull << 0;
    thinkingCount_ = cfg_.numProcessors;
    thinkNextDue_ = 0;
    thinkNextIdx_ = 0;

    // Hybrid driver: interleave calendar think-ticks with heap events
    // in global tick order. On a tie the calendar goes first -- its
    // draws correspond to processor-ready events that were scheduled
    // a full processor cycle earlier than any same-tick heap event
    // and therefore carry the smallest sequence numbers. The heap's
    // next tick is cached and refreshed only when the heap actually
    // changes (a think pass can only add events, growing size()).
    EventQueue &queue = sim_.queue();
    Tick te = kNever;
    while (true) {
        const Tick tc = thinkingCount_ > 0 ? thinkNextDue_ : kNever;
        const Tick next = std::min(tc, te);
        if (next >= windowEnd_)
            break;
        if (tc <= te) {
            const std::uint64_t live = queue.size();
            queue.advanceTo(tc);
            processThinkTick(tc, thinkNextIdx_);
            if (queue.size() != live)
                te = queue.nextTick();
        } else {
            queue.runOne();
            te = !queue.empty() ? queue.nextTick() : kNever;
        }
    }
}

Metrics
SingleBusSystem::run()
{
    sbn_assert(!ran_, "SingleBusSystem::run may only be called once");
    ran_ = true;

    {
        TelemetryTimerScope timer(TelemetryTimer::SimRun);
        runCycleSkip();
    }

    // Flush the run's locally accumulated counts in one batch; the
    // inner loops never touch the telemetry registry.
    telemetryAdd(TelemetryCounter::SimRuns, 1);
    telemetryAdd(TelemetryCounter::SimHeapEvents,
                 sim_.queue().executed());
    telemetryAdd(TelemetryCounter::SimCalendarDrains, calendarDrains_);
    telemetryAdd(TelemetryCounter::SimThinkDraws, thinkDraws_);
    telemetryAdd(TelemetryCounter::SimRequestsIssued, issued_);
    telemetryAdd(TelemetryCounter::SimRequestsCompleted, completed_);

    Metrics out;
    out.measuredCycles = windowEnd_ - windowStart_;
    out.completedRequests = completed_;
    out.issuedRequests = issued_;
    out.busBusyCycles = busBusy_;

    const auto cycles = static_cast<double>(out.measuredCycles);
    const auto pc = static_cast<double>(cfg_.processorCycle());
    out.ebw = static_cast<double>(completed_) * pc / cycles;
    out.busUtilization = static_cast<double>(busBusy_) / cycles;
    out.ebwFromBusUtilization = out.busUtilization * pc / 2.0;
    out.meanModuleUtilization =
        accessCycles_ / (cycles * static_cast<double>(cfg_.numModules));
    out.processorEfficiency =
        out.ebw / static_cast<double>(cfg_.numProcessors);
    out.meanWaitCycles = waitStats_.mean();
    out.meanServiceCycles = serviceStats_.mean();
    out.waitStats = waitStats_;
    out.perProcessorCompletions = perProcCompleted_;
    out.waitHistogram = waitHist_;
    out.latencyWait = latWaitHist_;
    out.latencyResidence = latResidenceHist_;
    if (cfg_.collectPerModule)
        finishPerModule(out);
    return out;
}

} // namespace sbn
