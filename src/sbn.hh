/**
 * @file
 * Umbrella header for the sbn library: multiplexed single-bus network
 * analysis & simulation (reproduction of Llaberia, Valero, Herrada,
 * Labarta, ISCA 1985).
 *
 * Pulls in the full public API:
 *  - core/      the cycle-accurate single-bus simulator
 *  - analytic/  the paper's analytical models + baselines + extensions
 *  - baselines/ synchronous crossbar / multiple-bus simulators
 *  - stats/     estimation utilities
 *  - desim/     the discrete-event kernel (for building new models)
 *  - exec/      deterministic parallel replication / sweep execution
 *  - shard/     multi-process sharded sweeps: deterministic plans,
 *               serialized point records, merge + resume
 *  - workload/  reference patterns (hot-spot, favorite, weighted) and
 *               per-processor think models, with the generalized
 *               occupancy-chain cross-check
 *
 * Include the individual headers instead when compile time matters.
 */

#ifndef SBN_SBN_HH
#define SBN_SBN_HH

#include "analytic/crossbar.hh"
#include "analytic/detmva.hh"
#include "analytic/memprio.hh"
#include "analytic/multibus.hh"
#include "analytic/mva.hh"
#include "analytic/occupancy_chain.hh"
#include "analytic/procprio.hh"
#include "baselines/multibus_sim.hh"
#include "core/config.hh"
#include "core/experiment.hh"
#include "core/metrics.hh"
#include "core/system.hh"
#include "desim/event.hh"
#include "desim/event_queue.hh"
#include "desim/simulation.hh"
#include "desim/trace.hh"
#include "core/fingerprint.hh"
#include "exec/adaptive.hh"
#include "exec/parallel_runner.hh"
#include "exec/sweep.hh"
#include "exec/thread_pool.hh"
#include "markov/dtmc.hh"
#include "shard/fault.hh"
#include "shard/merge.hh"
#include "shard/plan.hh"
#include "shard/result_io.hh"
#include "shard/runner.hh"
#include "shard/supervisor.hh"
#include "stats/accumulator.hh"
#include "stats/batch_means.hh"
#include "stats/histogram.hh"
#include "stats/replication.hh"
#include "util/cli.hh"
#include "util/combinatorics.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/table.hh"
#include "workload/analytic.hh"
#include "workload/workload.hh"

#endif // SBN_SBN_HH
