#include "workload/analytic.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "analytic/disk_cache.hh"
#include "analytic/memprio.hh"
#include "core/fingerprint.hh"
#include "util/combinatorics.hh"
#include "util/logging.hh"

namespace sbn {

namespace {

/**
 * Dense-DTMC state-space guard: the solver is O(S^2) memory and
 * O(S^3) time, so the chain refuses shapes past a few thousand
 * composition states (n = 8, m = 6 is 1287; the validation grids sit
 * far below).
 */
constexpr std::size_t kMaxStates = 4000;

/** Enumerate the K-subsets of @p busy in lexicographic order. */
void
forEachSubset(const std::vector<int> &busy, int k,
              const std::function<void(const std::vector<int> &)> &visit)
{
    std::vector<int> chosen;
    chosen.reserve(static_cast<std::size_t>(k));
    std::function<void(std::size_t)> rec = [&](std::size_t start) {
        const std::size_t need =
            static_cast<std::size_t>(k) - chosen.size();
        if (need == 0) {
            visit(chosen);
            return;
        }
        for (std::size_t i = start; i + need <= busy.size(); ++i) {
            chosen.push_back(busy[i]);
            rec(i + 1);
            chosen.pop_back();
        }
    };
    rec(0);
}

} // namespace

WeightedChainResult
solveWeightedOccupancyChain(int n, int m, int cap,
                            const std::vector<double> &q)
{
    sbn_assert(n >= 1 && m >= 1 && cap >= 1,
               "weighted occupancy chain needs n, m, cap >= 1");
    sbn_assert(static_cast<int>(q.size()) == m,
               "module-selection vector size must equal m");
    double total = 0.0;
    for (double qj : q) {
        sbn_assert(qj > 0.0 && std::isfinite(qj),
                   "weighted occupancy chain needs every module "
                   "probability > 0 (zero-probability modules make "
                   "the chain reducible)");
        total += qj;
    }
    sbn_assert(std::abs(total - 1.0) < 1e-9,
               "module-selection probabilities must sum to 1");

    // States: occupancy vectors (compositions of n into m parts).
    std::vector<std::vector<int>> states;
    std::map<std::vector<int>, std::size_t> index;
    forEachComposition(n, m, [&](const std::vector<int> &v) {
        index[v] = states.size();
        states.push_back(v);
    });
    if (states.size() > kMaxStates)
        sbn_fatal("weighted occupancy chain for n=", n, ", m=", m,
                  " has ", states.size(),
                  " states - beyond the dense-solver guard of ",
                  kMaxStates,
                  "; this model is a small-shape validation tool");

    Dtmc dtmc(states.size());
    std::vector<int> busy;
    busy.reserve(static_cast<std::size_t>(m));
    for (std::size_t s = 0; s < states.size(); ++s) {
        const std::vector<int> &v = states[s];
        busy.clear();
        for (int j = 0; j < m; ++j)
            if (v[static_cast<std::size_t>(j)] > 0)
                busy.push_back(j);
        const int x = static_cast<int>(busy.size());
        const int k = std::min(x, cap);
        const double w_subset = 1.0 / binomial(x, k);

        double row_total = 0.0;
        forEachSubset(busy, k, [&](const std::vector<int> &serviced) {
            std::vector<int> base = v;
            for (int j : serviced)
                --base[static_cast<std::size_t>(j)];

            // The k serviced processors redraw independently:
            // multinomial redistribution over the m modules with
            // probabilities q.
            forEachComposition(
                k, m, [&](const std::vector<int> &adds) {
                    double w = factorial(k);
                    for (int j = 0; j < m; ++j) {
                        const int kj = adds[static_cast<std::size_t>(j)];
                        if (kj > 0)
                            w *= std::pow(q[static_cast<std::size_t>(j)],
                                          kj) /
                                 factorial(kj);
                    }
                    std::vector<int> next = base;
                    for (int j = 0; j < m; ++j)
                        next[static_cast<std::size_t>(j)] +=
                            adds[static_cast<std::size_t>(j)];
                    const double prob = w_subset * w;
                    row_total += prob;
                    dtmc.addTransition(s, index.at(next), prob);
                });
        });
        sbn_assert(std::abs(row_total - 1.0) < 1e-9,
                   "weighted chain row ", s, " sums to ", row_total);
    }
    dtmc.validate();

    const std::vector<double> pi = dtmc.stationaryDirect();

    WeightedChainResult result;
    const int x_max = std::min(n, m);
    result.busyPmf.assign(static_cast<std::size_t>(x_max) + 1, 0.0);
    result.moduleBusy.assign(static_cast<std::size_t>(m), 0.0);
    for (std::size_t s = 0; s < states.size(); ++s) {
        int x = 0;
        for (int j = 0; j < m; ++j) {
            if (states[s][static_cast<std::size_t>(j)] > 0) {
                ++x;
                result.moduleBusy[static_cast<std::size_t>(j)] += pi[s];
            }
        }
        result.busyPmf[static_cast<std::size_t>(x)] += pi[s];
        result.meanBusy += pi[s] * x;
        result.meanServiced += pi[s] * std::min(x, cap);
    }
    return result;
}

namespace {

std::uint64_t
weightedChainFingerprint(int n, int m, int cap,
                         const std::vector<double> &q)
{
    // Version tag first: bump on any change to the chain's dynamics
    // or the cached payload layout.
    std::uint64_t state =
        fingerprintMix(0xcbf29ce484222325ull, 0x574f43432e763031ull);
    state = fingerprintMix(state, static_cast<std::uint64_t>(n));
    state = fingerprintMix(state, static_cast<std::uint64_t>(m));
    state = fingerprintMix(state, static_cast<std::uint64_t>(cap));
    state = fingerprintMix(state, q.size());
    for (double qj : q)
        state = fingerprintMix(state, doubleFingerprintBits(qj));
    return state;
}

} // namespace

const WeightedChainResult &
solveWeightedOccupancyChainCached(int n, int m, int cap,
                                  const std::vector<double> &q)
{
    using Key = std::tuple<int, int, int, std::vector<double>>;
    static std::mutex cache_mutex;
    static std::map<Key, std::unique_ptr<WeightedChainResult>> cache;

    const Key key{n, m, cap, q};
    {
        std::lock_guard<std::mutex> lock(cache_mutex);
        const auto it = cache.find(key);
        if (it != cache.end())
            return *it->second;
    }

    // Payload layout: meanBusy, meanServiced, busyPmf, moduleBusy.
    const std::size_t pmf_size =
        static_cast<std::size_t>(std::min(n, m)) + 1;
    const std::size_t payload_size =
        2 + pmf_size + static_cast<std::size_t>(m);
    const std::uint64_t fp = weightedChainFingerprint(n, m, cap, q);

    auto solved = std::make_unique<WeightedChainResult>();
    std::vector<double> payload;
    if (loadCachedSolve("wocc", fp, payload_size, payload)) {
        solved->meanBusy = payload[0];
        solved->meanServiced = payload[1];
        solved->busyPmf.assign(payload.begin() + 2,
                               payload.begin() + 2 +
                                   static_cast<std::ptrdiff_t>(pmf_size));
        solved->moduleBusy.assign(
            payload.begin() + 2 +
                static_cast<std::ptrdiff_t>(pmf_size),
            payload.end());
    } else {
        *solved = solveWeightedOccupancyChain(n, m, cap, q);
        payload.clear();
        payload.push_back(solved->meanBusy);
        payload.push_back(solved->meanServiced);
        payload.insert(payload.end(), solved->busyPmf.begin(),
                       solved->busyPmf.end());
        payload.insert(payload.end(), solved->moduleBusy.begin(),
                       solved->moduleBusy.end());
        storeCachedSolve("wocc", fp, payload);
    }

    std::lock_guard<std::mutex> lock(cache_mutex);
    const auto [it, inserted] = cache.emplace(key, std::move(solved));
    return *it->second;
}

double
workloadExactMemprioEbw(int n, int m, int r,
                        const WorkloadConfig &workload)
{
    sbn_assert(r >= 1, "memory/bus cycle ratio r must be >= 1");
    sbn_assert(workload.processorIndependentReference(),
               "the weighted occupancy chain covers processor-"
               "independent reference patterns only (not Favorite)");
    const std::vector<double> q = workload.moduleProbabilities(0, m);
    const WeightedChainResult &result =
        solveWeightedOccupancyChainCached(n, m, r + 1, q);

    double ebw = 0.0;
    for (std::size_t x = 0; x < result.busyPmf.size(); ++x)
        ebw += result.busyPmf[x] *
               memprioUsefulEbw(static_cast<int>(x), r);
    return ebw;
}

} // namespace sbn
