/**
 * @file
 * Workload models: which memory module a processor's next request
 * targets, and how eagerly each processor issues requests.
 *
 * The paper fixes two hypotheses: every request references a module
 * uniformly at random (hypothesis (e)) and every processor draws from
 * the same think distribution p (hypothesis (f)). This layer opens
 * both axes:
 *
 *  - **Reference pattern** - the per-request module-selection
 *    distribution. `Uniform` is the paper's hypothesis (e); `HotSpot`
 *    routes an extra fraction h of all traffic to one module;
 *    `Favorite` gives every processor a home module (index mod m)
 *    absorbing a fraction f of its requests; `Weighted` takes an
 *    arbitrary per-module weight vector.
 *  - **Think model** - per-processor request probabilities p_i.
 *    `Homogeneous` is hypothesis (f) (everyone uses
 *    SystemConfig::requestProbability); `TwoClass` splits the
 *    processors into a fast and a slow class; `PerProcessor` takes an
 *    explicit vector.
 *
 * RNG-compatibility contract (docs/workloads.md): a `Uniform` +
 * `Homogeneous` workload consumes the simulator's RNG stream in
 * exactly the pre-workload order - one `uniformInt(m)` per issued
 * request, one `bernoulli(p)` per processor-cycle draw - so every
 * golden Metrics pin predating this layer passes unchanged.
 * Non-uniform patterns sample through a Walker/Vose alias table
 * (`uniformInt(m)` + `uniformReal()` per draw, O(1) regardless of
 * skew).
 */

#ifndef SBN_WORKLOAD_WORKLOAD_HH
#define SBN_WORKLOAD_WORKLOAD_HH

#include <cstddef>
#include <string>
#include <vector>

#include "util/random.hh"

namespace sbn {

/** Module-selection distribution of processor requests. */
enum class ReferencePattern
{
    Uniform, //!< paper hypothesis (e): every module equally likely
    HotSpot, //!< fraction h of all traffic targets one hot module
    Favorite, //!< each processor sends fraction f to module i mod m
    Weighted, //!< arbitrary per-module weight vector
};

/** Per-processor request-probability (think) structure. */
enum class ThinkModel
{
    Homogeneous, //!< hypothesis (f): everyone uses the config's p
    TwoClass,    //!< first fastCount processors fast, rest slow
    PerProcessor, //!< explicit p_i vector
};

/** Canonical lowercase name of a reference pattern. */
const char *referencePatternName(ReferencePattern pattern);

/**
 * Workload description carried by SystemConfig. Plain data; validated
 * against the system shape by validate(n, m).
 *
 * HotSpot semantics: with probability hotFraction the request targets
 * hotModule, otherwise a uniformly random module (so the hot module's
 * total share is h + (1-h)/m and h = 0 degenerates to Uniform).
 * Favorite semantics are the per-processor analogue with home module
 * proc mod m and fraction favoriteFraction.
 */
struct WorkloadConfig
{
    ReferencePattern pattern = ReferencePattern::Uniform;

    double hotFraction = 0.0; //!< HotSpot h in [0, 1]
    int hotModule = 0;        //!< HotSpot target module

    double favoriteFraction = 0.0; //!< Favorite f in [0, 1]

    /** Weighted: relative weights > 0, size numModules. */
    std::vector<double> moduleWeights;

    ThinkModel think = ThinkModel::Homogeneous;

    // TwoClass: processors [0, fastCount) draw fastProbability, the
    // rest slowProbability.
    int fastCount = 0;
    double fastProbability = 1.0;
    double slowProbability = 1.0;

    /** PerProcessor: p_i in [0, 1], size numProcessors. */
    std::vector<double> thinkProbabilities;

    /** The paper's hypotheses exactly (the RNG-compatible fast path). */
    bool uniformReference() const
    {
        return pattern == ReferencePattern::Uniform;
    }
    bool homogeneousThink() const
    {
        return think == ThinkModel::Homogeneous;
    }

    /**
     * Whether every processor shares one module-selection
     * distribution (true for Uniform/HotSpot/Weighted, false for
     * Favorite) - the scope of the generalized occupancy-chain
     * analytic model (workload/analytic.hh).
     */
    bool processorIndependentReference() const
    {
        return pattern != ReferencePattern::Favorite;
    }

    /**
     * The module-selection probability vector of processor @p proc in
     * an m-module system (normalized, size m). Used by the alias
     * sampler and the analytic cross-check; Uniform/HotSpot/Weighted
     * ignore @p proc.
     */
    std::vector<double> moduleProbabilities(int proc, int m) const;

    /**
     * The think probability of processor @p proc given the config's
     * homogeneous @p base_p. Homogeneous returns base_p itself.
     */
    double thinkProbability(int proc, double base_p) const;

    /** Abort with a message if inconsistent with an n x m system. */
    void validate(int n, int m) const;
};

/**
 * Canonical compact serialization, e.g. "uniform",
 * "hotspot:h=0.3,module=0", "favorite:f=0.5;think=two:fast=4@0.9,slow=0.1".
 * Deterministic (%.17g doubles): equal workloads serialize to equal
 * strings. Written into shard point records alongside the config
 * fingerprint so a record names the workload it was computed under.
 */
std::string formatWorkload(const WorkloadConfig &workload);

/**
 * Fold every result-determining workload field into a fingerprint
 * state (fingerprintMix-based; see core/fingerprint.hh). Used by
 * configFingerprint.
 */
std::uint64_t mixWorkloadFingerprint(std::uint64_t state,
                                     const WorkloadConfig &workload);

/**
 * Walker/Vose alias table: O(1) sampling from an arbitrary discrete
 * distribution. Construction is deterministic (stable index-ordered
 * worklists, pure arithmetic), so the same weights produce the same
 * table - and therefore the same RNG-to-sample mapping - on every
 * platform.
 */
class AliasTable
{
  public:
    AliasTable() = default;

    /** Build from relative weights (> 0, any positive sum). */
    explicit AliasTable(const std::vector<double> &weights);

    std::size_t size() const { return accept_.size(); }

    /**
     * Draw one index. Consumes exactly one uniformInt(size) and one
     * uniformReal() from @p rng regardless of the distribution. @p Rng
     * is any generator with those two draws (RandomGenerator for the
     * exact kernel, CounterRng for FastStat's per-processor streams).
     */
    template <typename Rng>
    std::size_t sample(Rng &rng) const
    {
        const std::size_t slot = rng.uniformInt(accept_.size());
        return rng.uniformReal() < accept_[slot]
                   ? slot
                   : static_cast<std::size_t>(alias_[slot]);
    }

  private:
    std::vector<double> accept_; //!< acceptance threshold per slot
    std::vector<std::uint32_t> alias_; //!< fallback index per slot
};

/**
 * Runtime form of a WorkloadConfig bound to a system shape: alias
 * tables built once, per-processor think probabilities flattened to a
 * vector. Owned by SingleBusSystem; both the target draw and the
 * think draw route through here.
 */
class WorkloadModel
{
  public:
    /** @param base_p SystemConfig::requestProbability (Homogeneous p) */
    WorkloadModel(const WorkloadConfig &workload, int n, int m,
                  double base_p);

    /** Module target of processor @p proc's next request. @p Rng as
     *  in AliasTable::sample. */
    template <typename Rng>
    int sampleTarget(int proc, Rng &rng) const
    {
        if (uniform_)
            return static_cast<int>(rng.uniformInt(numModules_));
        return static_cast<int>(
            tables_[tableOf_[static_cast<std::size_t>(proc)]].sample(
                rng));
    }

    /** Request probability of processor @p proc. */
    double thinkProbability(int proc) const
    {
        return thinkP_[static_cast<std::size_t>(proc)];
    }

  private:
    std::uint64_t numModules_ = 0;
    bool uniform_ = true;
    std::vector<std::uint32_t> tableOf_; //!< per processor
    std::vector<AliasTable> tables_;
    std::vector<double> thinkP_; //!< per processor
};

} // namespace sbn

#endif // SBN_WORKLOAD_WORKLOAD_HH
