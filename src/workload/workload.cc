#include "workload/workload.hh"

#include <cmath>
#include <cstdio>

#include "core/fingerprint.hh"
#include "util/logging.hh"

namespace sbn {

namespace {

/** The shared canonical %.17g form (core/fingerprint.hh). */
std::string
exactDouble(double value)
{
    return formatExactDouble(value);
}

} // namespace

const char *
referencePatternName(ReferencePattern pattern)
{
    switch (pattern) {
    case ReferencePattern::Uniform:
        return "uniform";
    case ReferencePattern::HotSpot:
        return "hotspot";
    case ReferencePattern::Favorite:
        return "favorite";
    case ReferencePattern::Weighted:
        return "weighted";
    }
    return "?";
}

std::vector<double>
WorkloadConfig::moduleProbabilities(int proc, int m) const
{
    const double uniform_share = 1.0 / static_cast<double>(m);
    std::vector<double> probs(static_cast<std::size_t>(m),
                              uniform_share);
    switch (pattern) {
    case ReferencePattern::Uniform:
        break;
    case ReferencePattern::HotSpot:
        for (double &q : probs)
            q *= 1.0 - hotFraction;
        probs[static_cast<std::size_t>(hotModule)] += hotFraction;
        break;
    case ReferencePattern::Favorite:
        for (double &q : probs)
            q *= 1.0 - favoriteFraction;
        probs[static_cast<std::size_t>(proc % m)] += favoriteFraction;
        break;
    case ReferencePattern::Weighted: {
        double total = 0.0;
        for (double w : moduleWeights)
            total += w;
        for (std::size_t i = 0; i < probs.size(); ++i)
            probs[i] = moduleWeights[i] / total;
        break;
    }
    }
    return probs;
}

double
WorkloadConfig::thinkProbability(int proc, double base_p) const
{
    switch (think) {
    case ThinkModel::Homogeneous:
        return base_p;
    case ThinkModel::TwoClass:
        return proc < fastCount ? fastProbability : slowProbability;
    case ThinkModel::PerProcessor:
        return thinkProbabilities[static_cast<std::size_t>(proc)];
    }
    return base_p;
}

void
WorkloadConfig::validate(int n, int m) const
{
    const auto probability = [](double p, const char *what) {
        if (!(p >= 0.0 && p <= 1.0))
            sbn_fatal("workload: ", what, " must be in [0,1], got ", p);
    };

    switch (pattern) {
    case ReferencePattern::Uniform:
        break;
    case ReferencePattern::HotSpot:
        probability(hotFraction, "hotFraction");
        if (hotModule < 0 || hotModule >= m)
            sbn_fatal("workload: hotModule ", hotModule,
                      " out of range for ", m, " modules");
        break;
    case ReferencePattern::Favorite:
        probability(favoriteFraction, "favoriteFraction");
        break;
    case ReferencePattern::Weighted:
        if (static_cast<int>(moduleWeights.size()) != m)
            sbn_fatal("workload: moduleWeights size ",
                      moduleWeights.size(), " != numModules ", m);
        for (double w : moduleWeights)
            if (!(w > 0.0) || !std::isfinite(w))
                sbn_fatal("workload: moduleWeights entries must be "
                          "finite and > 0, got ", w);
        break;
    }

    switch (think) {
    case ThinkModel::Homogeneous:
        break;
    case ThinkModel::TwoClass:
        if (fastCount < 0 || fastCount > n)
            sbn_fatal("workload: fastCount ", fastCount,
                      " out of range for ", n, " processors");
        probability(fastProbability, "fastProbability");
        probability(slowProbability, "slowProbability");
        break;
    case ThinkModel::PerProcessor:
        if (static_cast<int>(thinkProbabilities.size()) != n)
            sbn_fatal("workload: thinkProbabilities size ",
                      thinkProbabilities.size(), " != numProcessors ",
                      n);
        for (double p : thinkProbabilities)
            probability(p, "thinkProbabilities entries");
        break;
    }
}

std::string
formatWorkload(const WorkloadConfig &workload)
{
    std::string out = referencePatternName(workload.pattern);
    switch (workload.pattern) {
    case ReferencePattern::Uniform:
        break;
    case ReferencePattern::HotSpot:
        out += ":h=" + exactDouble(workload.hotFraction) +
               ",module=" + std::to_string(workload.hotModule);
        break;
    case ReferencePattern::Favorite:
        out += ":f=" + exactDouble(workload.favoriteFraction);
        break;
    case ReferencePattern::Weighted:
        out += ":w=";
        for (std::size_t i = 0; i < workload.moduleWeights.size(); ++i) {
            if (i > 0)
                out += ',';
            out += exactDouble(workload.moduleWeights[i]);
        }
        break;
    }

    switch (workload.think) {
    case ThinkModel::Homogeneous:
        break;
    case ThinkModel::TwoClass:
        out += ";think=two:fast=" + std::to_string(workload.fastCount) +
               "@" + exactDouble(workload.fastProbability) +
               ",slow=" + exactDouble(workload.slowProbability);
        break;
    case ThinkModel::PerProcessor:
        out += ";think=vec:";
        for (std::size_t i = 0;
             i < workload.thinkProbabilities.size(); ++i) {
            if (i > 0)
                out += ',';
            out += exactDouble(workload.thinkProbabilities[i]);
        }
        break;
    }
    return out;
}

std::uint64_t
mixWorkloadFingerprint(std::uint64_t state,
                       const WorkloadConfig &workload)
{
    state = fingerprintMix(
        state, static_cast<std::uint64_t>(workload.pattern));
    state = fingerprintMix(state,
                           doubleFingerprintBits(workload.hotFraction));
    state = fingerprintMix(
        state, static_cast<std::uint64_t>(workload.hotModule));
    state = fingerprintMix(
        state, doubleFingerprintBits(workload.favoriteFraction));
    state = fingerprintMix(state, workload.moduleWeights.size());
    for (double w : workload.moduleWeights)
        state = fingerprintMix(state, doubleFingerprintBits(w));
    state =
        fingerprintMix(state, static_cast<std::uint64_t>(workload.think));
    state = fingerprintMix(
        state, static_cast<std::uint64_t>(workload.fastCount));
    state = fingerprintMix(
        state, doubleFingerprintBits(workload.fastProbability));
    state = fingerprintMix(
        state, doubleFingerprintBits(workload.slowProbability));
    state = fingerprintMix(state, workload.thinkProbabilities.size());
    for (double p : workload.thinkProbabilities)
        state = fingerprintMix(state, doubleFingerprintBits(p));
    return state;
}

AliasTable::AliasTable(const std::vector<double> &weights)
{
    const std::size_t k = weights.size();
    sbn_assert(k >= 1, "alias table needs at least one outcome");
    accept_.assign(k, 1.0);
    alias_.resize(k);

    // Zero weights are legitimate (e.g. Favorite f = 1 puts zero
    // mass on every non-home module); only the total must be
    // positive.
    double total = 0.0;
    for (double w : weights) {
        sbn_assert(w >= 0.0 && std::isfinite(w),
                   "alias table weights must be finite and >= 0");
        total += w;
    }
    sbn_assert(total > 0.0, "alias table needs positive total weight");

    // Vose's method with index-ordered worklists: deterministic
    // pairing of under- and over-full slots, so the table - and the
    // RNG-to-sample mapping - is identical on every platform.
    std::vector<double> scaled(k);
    for (std::size_t i = 0; i < k; ++i)
        scaled[i] = weights[i] * static_cast<double>(k) / total;

    std::vector<std::uint32_t> small, large;
    for (std::size_t i = 0; i < k; ++i) {
        alias_[i] = static_cast<std::uint32_t>(i);
        (scaled[i] < 1.0 ? small : large)
            .push_back(static_cast<std::uint32_t>(i));
    }

    while (!small.empty() && !large.empty()) {
        const std::uint32_t under = small.back();
        small.pop_back();
        const std::uint32_t over = large.back();
        accept_[under] = scaled[under];
        alias_[under] = over;
        scaled[over] -= 1.0 - scaled[under];
        if (scaled[over] < 1.0) {
            large.pop_back();
            small.push_back(over);
        }
    }
    // Leftovers (rounding) keep accept = 1: always take the slot.
    for (const std::uint32_t i : small)
        accept_[i] = 1.0;
    for (const std::uint32_t i : large)
        accept_[i] = 1.0;
}

WorkloadModel::WorkloadModel(const WorkloadConfig &workload, int n,
                             int m, double base_p)
    : numModules_(static_cast<std::uint64_t>(m)),
      uniform_(workload.uniformReference())
{
    thinkP_.resize(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p)
        thinkP_[static_cast<std::size_t>(p)] =
            workload.thinkProbability(p, base_p);

    if (uniform_)
        return;

    tableOf_.assign(static_cast<std::size_t>(n), 0);
    if (workload.processorIndependentReference()) {
        tables_.emplace_back(workload.moduleProbabilities(0, m));
        return;
    }
    // Favorite: one table per home module actually in use (home =
    // proc mod m, so the first min(n, m) residues).
    const int homes = n < m ? n : m;
    tables_.reserve(static_cast<std::size_t>(homes));
    for (int home = 0; home < homes; ++home)
        tables_.emplace_back(workload.moduleProbabilities(home, m));
    for (int p = 0; p < n; ++p)
        tableOf_[static_cast<std::size_t>(p)] =
            static_cast<std::uint32_t>(p % m);
}

} // namespace sbn
