/**
 * @file
 * Exact occupancy chain generalized to non-uniform module-selection
 * probabilities - the analytic cross-check of the workload layer.
 *
 * The paper's Section 3.1.1 chain (analytic/occupancy_chain.hh) lumps
 * permutation-equivalent occupancy states, which is only sound when
 * every module is equally likely (hypothesis (e)). With a non-uniform
 * selection vector q the modules are distinguishable, so this chain
 * runs over the full occupancy *vectors* (n_1..n_m >= 0, sum = n -
 * compositions of n into m parts), with dynamics otherwise identical
 * to the uniform chain:
 *
 *  1. p = 1: every processor is blocked on exactly one request.
 *  2. With x busy modules, K = min(x, cap) complete one service; for
 *     x > cap the serviced subset is uniform among the K-subsets of
 *     the busy set (random arbitration, hypothesis (h)).
 *  3. Each serviced processor immediately redraws module j with
 *     probability q_j (multinomial redistribution).
 *
 * Scope: module-selection must be processor-independent (Uniform,
 * HotSpot, Weighted - not Favorite, whose per-processor homes make
 * the occupancy vector an insufficient state). The state space is
 * C(n+m-1, m-1), so this is a small-(n, m) validation tool, not a
 * production model; construction refuses shapes beyond a few
 * thousand states.
 *
 * For uniform q the solution collapses to the lumped chain's - the
 * test suite pins the two against each other to ~1e-10 - and for the
 * memory-priority single bus (cap = r+1) the same useful-cycle
 * weighting as memprioExactEbw turns the busy-count law into EBW,
 * which tests/test_workload.cc pins against the simulator.
 */

#ifndef SBN_WORKLOAD_ANALYTIC_HH
#define SBN_WORKLOAD_ANALYTIC_HH

#include <cstddef>
#include <vector>

#include "markov/dtmc.hh"
#include "workload/workload.hh"

namespace sbn {

/** Solved weighted occupancy chain (see OccupancyChainResult). */
struct WeightedChainResult
{
    /**
     * Stationary distribution of the number of busy modules:
     * busyPmf[x] = P(x modules have >= 1 pending request).
     */
    std::vector<double> busyPmf;

    /** Per-module stationary busy probability P(n_j >= 1). */
    std::vector<double> moduleBusy;

    double meanBusy = 0.0;     //!< E[busy module count]
    double meanServiced = 0.0; //!< E[min(busy, cap)]
};

/**
 * Build and solve the weighted occupancy chain.
 *
 * @param n    processors (outstanding requests, p = 1)
 * @param m    memory modules
 * @param cap  per-cycle service cap b (r+1 for the memory-priority
 *             single bus); >= 1
 * @param q    module-selection probabilities, size m, sum ~1
 */
WeightedChainResult solveWeightedOccupancyChain(
    int n, int m, int cap, const std::vector<double> &q);

/**
 * Memoized + disk-cached (SBN_CACHE_DIR, see analytic/disk_cache.hh)
 * front end of solveWeightedOccupancyChain. Thread-safe; the
 * returned reference lives for the process.
 */
const WeightedChainResult &solveWeightedOccupancyChainCached(
    int n, int m, int cap, const std::vector<double> &q);

/**
 * Exact EBW of the memory-priority multiplexed single bus under a
 * processor-independent workload reference pattern with p = 1: the
 * weighted chain with cap r+1, weighted by the same useful-cycle
 * fraction as memprioExactEbw. For a Uniform workload this equals
 * memprioExactEbw(n, m, r) to solver precision.
 */
double workloadExactMemprioEbw(int n, int m, int r,
                               const WorkloadConfig &workload);

} // namespace sbn

#endif // SBN_WORKLOAD_ANALYTIC_HH
