#include "telemetry/telemetry.hh"

#include <chrono>
#include <cstdio>
#include <mutex>

#include "util/logging.hh"

namespace sbn {

namespace {

const char *const kCounterNames[kTelemetryCounterCount] = {
    "ctr.sim.runs",
    "ctr.sim.heap_events",
    "ctr.sim.calendar_drains",
    "ctr.sim.think_draws",
    "ctr.sim.requests_issued",
    "ctr.sim.requests_completed",
    "ctr.exec.adaptive_rounds_grown",
    "ctr.shard.records_written",
    "ctr.shard.records_merged",
    "ctr.shard.records_deduped",
    "ctr.supervisor.respawns",
    "ctr.supervisor.steals",
    "ctr.supervisor.hang_kills",
};

const char *const kTimerNames[kTelemetryTimerCount] = {
    "tmr.sim.run",
    "tmr.shard.merge",
};

/**
 * Registry of live thread blocks plus the retired totals of exited
 * threads. Construct-on-first-use and deliberately leaked: worker
 * thread_local destructors may run after a static registry would have
 * been destroyed.
 */
struct Registry
{
    std::mutex mutex;
    std::vector<detail::TelemetryBlock *> live;
    std::uint64_t retiredCounters[kTelemetryCounterCount] = {};
    std::uint64_t retiredTimerNs[kTelemetryTimerCount] = {};
    std::uint64_t retiredTimerCount[kTelemetryTimerCount] = {};
};

Registry &
registry()
{
    static Registry *instance = new Registry;
    return *instance;
}

/** Thread-exit hook: merge this thread's block and unregister it. */
struct BlockOwner
{
    detail::TelemetryBlock block;

    BlockOwner()
    {
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        reg.live.push_back(&block);
    }

    ~BlockOwner()
    {
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        for (unsigned i = 0; i < kTelemetryCounterCount; ++i)
            reg.retiredCounters[i] +=
                block.counters[i].load(std::memory_order_relaxed);
        for (unsigned i = 0; i < kTelemetryTimerCount; ++i) {
            reg.retiredTimerNs[i] +=
                block.timerNs[i].load(std::memory_order_relaxed);
            reg.retiredTimerCount[i] +=
                block.timerCount[i].load(std::memory_order_relaxed);
        }
        for (auto it = reg.live.begin(); it != reg.live.end(); ++it) {
            if (*it == &block) {
                reg.live.erase(it);
                break;
            }
        }
    }
};

std::uint64_t
monotonicNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

namespace detail {

std::atomic<bool> g_telemetryEnabled{false};

TelemetryBlock &
telemetryBlock()
{
    thread_local BlockOwner owner;
    return owner.block;
}

} // namespace detail

const char *
telemetryCounterName(TelemetryCounter counter)
{
    return kCounterNames[static_cast<unsigned>(counter)];
}

const char *
telemetryTimerName(TelemetryTimer timer)
{
    return kTimerNames[static_cast<unsigned>(timer)];
}

void
setTelemetryEnabled(bool enabled)
{
    detail::g_telemetryEnabled.store(enabled,
                                     std::memory_order_relaxed);
}

void
telemetryReset()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (unsigned i = 0; i < kTelemetryCounterCount; ++i)
        reg.retiredCounters[i] = 0;
    for (unsigned i = 0; i < kTelemetryTimerCount; ++i) {
        reg.retiredTimerNs[i] = 0;
        reg.retiredTimerCount[i] = 0;
    }
    for (detail::TelemetryBlock *block : reg.live) {
        for (unsigned i = 0; i < kTelemetryCounterCount; ++i)
            block->counters[i].store(0, std::memory_order_relaxed);
        for (unsigned i = 0; i < kTelemetryTimerCount; ++i) {
            block->timerNs[i].store(0, std::memory_order_relaxed);
            block->timerCount[i].store(0, std::memory_order_relaxed);
        }
    }
}

void
telemetryAddTimer(TelemetryTimer timer, std::uint64_t ns)
{
    if (!telemetryEnabled())
        return;
    detail::TelemetryBlock &block = detail::telemetryBlock();
    const auto i = static_cast<unsigned>(timer);
    block.timerNs[i].fetch_add(ns, std::memory_order_relaxed);
    block.timerCount[i].fetch_add(1, std::memory_order_relaxed);
}

TelemetryTimerScope::TelemetryTimerScope(TelemetryTimer timer)
    : timer_(timer), armed_(telemetryEnabled())
{
    if (armed_)
        startNs_ = monotonicNs();
}

TelemetryTimerScope::~TelemetryTimerScope()
{
    if (armed_)
        telemetryAddTimer(timer_, monotonicNs() - startNs_);
}

TelemetrySnapshot
telemetrySnapshot()
{
    TelemetrySnapshot out;
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (unsigned i = 0; i < kTelemetryCounterCount; ++i)
        out.counters[i] = reg.retiredCounters[i];
    for (unsigned i = 0; i < kTelemetryTimerCount; ++i) {
        out.timerNs[i] = reg.retiredTimerNs[i];
        out.timerCount[i] = reg.retiredTimerCount[i];
    }
    for (const detail::TelemetryBlock *block : reg.live) {
        for (unsigned i = 0; i < kTelemetryCounterCount; ++i)
            out.counters[i] +=
                block->counters[i].load(std::memory_order_relaxed);
        for (unsigned i = 0; i < kTelemetryTimerCount; ++i) {
            out.timerNs[i] +=
                block->timerNs[i].load(std::memory_order_relaxed);
            out.timerCount[i] +=
                block->timerCount[i].load(std::memory_order_relaxed);
        }
    }
    return out;
}

std::string
formatTelemetrySnapshot(const TelemetrySnapshot &snapshot,
                        bool include_timers)
{
    std::string out = "{\"type\":\"sbn.telemetry.v1\"";
    for (unsigned i = 0; i < kTelemetryCounterCount; ++i) {
        out += ",\"";
        out += kCounterNames[i];
        out += "\":";
        out += std::to_string(snapshot.counters[i]);
    }
    if (include_timers) {
        for (unsigned i = 0; i < kTelemetryTimerCount; ++i) {
            out += ",\"";
            out += kTimerNames[i];
            out += "_ns\":";
            out += std::to_string(snapshot.timerNs[i]);
            out += ",\"";
            out += kTimerNames[i];
            out += "_count\":";
            out += std::to_string(snapshot.timerCount[i]);
        }
    }
    out += '}';
    return out;
}

void
writeTelemetryDump(const std::string &path, bool include_timers)
{
    const std::string line =
        formatTelemetrySnapshot(telemetrySnapshot(), include_timers) +
        '\n';
    if (path.empty() || path == "-") {
        std::fputs(line.c_str(), stderr);
        return;
    }
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        sbn_fatal("cannot open telemetry dump file '", path, "'");
    if (std::fwrite(line.data(), 1, line.size(), file) != line.size()
        || std::fclose(file) != 0)
        sbn_fatal("cannot write telemetry dump file '", path, "'");
}

} // namespace sbn
