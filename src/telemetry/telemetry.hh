/**
 * @file
 * Run telemetry: named monotonic counters and duration timers.
 *
 * A process-wide registry of a FIXED set of counters and timers
 * (enumerated below - the enum order IS the dump order, which is what
 * makes telemetry dumps deterministic). Instrumented code calls
 * telemetryAdd() / opens a TelemetryTimerScope; both are no-ops
 * costing one predictable branch when telemetry is disabled, which is
 * the default - the kernels' inner loops keep accumulating into their
 * existing local members and flush here once per run, so enabling
 * telemetry adds no per-event work and disabling it adds no
 * allocations (asserted by the scratch-capacity perf tests).
 *
 * Aggregation is thread-local: each thread owns a block of relaxed
 * atomic cells registered in a global list; a block merges into the
 * retired totals when its thread exits (join), and telemetrySnapshot()
 * sums retired totals plus every live block. Counter totals therefore
 * do not depend on the thread partition: the same config and seed
 * produce byte-identical counter dumps at any --threads value
 * (tests/test_telemetry.cc). Timers measure wall time and are NOT
 * deterministic; formatTelemetrySnapshot() can exclude them, and the
 * determinism tests do.
 *
 * The dump format is one flat JSON object (scalar values only, the
 * same shape service/protocol.hh parses), tagged
 * "type": "sbn.telemetry.v1", with counter keys "ctr.<area>.<name>"
 * and timer keys "tmr.<area>.<name>_ns" / "_count".
 */

#ifndef SBN_TELEMETRY_TELEMETRY_HH
#define SBN_TELEMETRY_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sbn {

/** Monotonic counters. Enum order is the canonical dump order. */
enum class TelemetryCounter : unsigned
{
    SimRuns,              //!< kernel run() calls completed
    SimHeapEvents,        //!< CycleSkip event-heap dispatches
    SimCalendarDrains,    //!< CycleSkip think-calendar bucket drains
    SimThinkDraws,        //!< think/issue draws (both kernels)
    SimRequestsIssued,    //!< in-window requests issued
    SimRequestsCompleted, //!< in-window services delivered
    AdaptiveRoundsGrown,  //!< adaptive rounds beyond a point's first
    ShardRecordsWritten,  //!< point records flushed by RecordWriter
    ShardRecordsMerged,   //!< records accepted into a merge
    ShardRecordsDeduped,  //!< bit-identical duplicates dropped
    SupervisorRespawns,   //!< shard workers relaunched after a crash
    SupervisorSteals,     //!< steal launches dispatched
    SupervisorHangKills,  //!< hung workers killed (liveness timeout)
};
constexpr unsigned kTelemetryCounterCount = 13;

/** Duration timers (wall time; nondeterministic by nature). */
enum class TelemetryTimer : unsigned
{
    SimRun,     //!< one kernel run(), construction excluded
    ShardMerge, //!< one record-file collection/merge pass
};
constexpr unsigned kTelemetryTimerCount = 2;

/** Canonical key of a counter ("ctr.sim.runs", ...). */
const char *telemetryCounterName(TelemetryCounter counter);

/** Canonical key stem of a timer ("tmr.sim.run", ...). */
const char *telemetryTimerName(TelemetryTimer timer);

namespace detail {
extern std::atomic<bool> g_telemetryEnabled;
struct TelemetryBlock
{
    std::atomic<std::uint64_t> counters[kTelemetryCounterCount];
    std::atomic<std::uint64_t> timerNs[kTelemetryTimerCount];
    std::atomic<std::uint64_t> timerCount[kTelemetryTimerCount];
};
TelemetryBlock &telemetryBlock();
} // namespace detail

/** True when telemetry collection is on (default: off). */
inline bool
telemetryEnabled()
{
    return detail::g_telemetryEnabled.load(std::memory_order_relaxed);
}

/** Turn collection on or off, process-wide. */
void setTelemetryEnabled(bool enabled);

/** Zero every counter and timer (live blocks and retired totals).
 *  For tests/tools; call only while instrumented work is quiescent. */
void telemetryReset();

/** Add @p delta to @p counter; a cheap no-op when disabled. */
inline void
telemetryAdd(TelemetryCounter counter, std::uint64_t delta)
{
    if (!telemetryEnabled())
        return;
    detail::telemetryBlock()
        .counters[static_cast<unsigned>(counter)]
        .fetch_add(delta, std::memory_order_relaxed);
}

/** Record one timed span of @p ns nanoseconds against @p timer. */
void telemetryAddTimer(TelemetryTimer timer, std::uint64_t ns);

/**
 * RAII wall-clock span: reads the clock only when telemetry is
 * enabled at construction, and records the elapsed span at scope
 * exit. Safe to use on hot-but-not-inner paths (one run, one merge).
 */
class TelemetryTimerScope
{
  public:
    explicit TelemetryTimerScope(TelemetryTimer timer);
    ~TelemetryTimerScope();

    TelemetryTimerScope(const TelemetryTimerScope &) = delete;
    TelemetryTimerScope &operator=(const TelemetryTimerScope &) = delete;

  private:
    TelemetryTimer timer_;
    bool armed_;
    std::uint64_t startNs_ = 0;
};

/** A merged point-in-time view of every counter and timer. */
struct TelemetrySnapshot
{
    std::uint64_t counters[kTelemetryCounterCount] = {};
    std::uint64_t timerNs[kTelemetryTimerCount] = {};
    std::uint64_t timerCount[kTelemetryTimerCount] = {};
};

/** Sum retired totals plus every live thread block. */
TelemetrySnapshot telemetrySnapshot();

/**
 * One flat JSON object line (no trailing newline), keys in enum
 * order after the "type" tag. @p include_timers controls whether the
 * (nondeterministic) timer keys appear.
 */
std::string formatTelemetrySnapshot(const TelemetrySnapshot &snapshot,
                                    bool include_timers);

/** Snapshot now and write one JSON line + '\n' to @p path ("-" or
 *  empty = stderr). Fatal on I/O error. */
void writeTelemetryDump(const std::string &path, bool include_timers);

} // namespace sbn

#endif // SBN_TELEMETRY_TELEMETRY_HH
