/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * The generator is xoshiro256** (Blackman & Vigna), seeded through
 * SplitMix64 so that any 64-bit seed yields a well-mixed state. It is
 * small, fast, and fully reproducible across platforms, which the test
 * suite relies on (fixed seed => identical simulation trajectories).
 *
 * CounterRng is the second generator family: a counter-based
 * (Philox-style) stream whose i-th output is a pure function of
 * (key, stream, i). Streams with distinct stream indices are
 * statistically independent no matter how unevenly they are consumed,
 * which is what lets the FastStat kernel give every processor its own
 * stream without any cross-processor draw-order coupling.
 */

#ifndef SBN_UTIL_RANDOM_HH
#define SBN_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace sbn {

/**
 * xoshiro256** pseudo-random generator with convenience draws used by
 * the simulators (uniform integers for arbitration, Bernoulli for the
 * re-request probability p, exponential for queueing-model
 * cross-checks).
 */
class RandomGenerator
{
  public:
    /** Construct from a 64-bit seed (any value, including 0). */
    explicit RandomGenerator(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed the generator, resetting its trajectory. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /**
     * Uniform integer in [0, bound).
     *
     * Uses Lemire's multiply-shift rejection method, so the result is
     * exactly uniform for any bound.
     *
     * @pre bound > 0
     */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1) with 53 random bits. */
    double uniformReal();

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /** Exponential draw with the given mean. @pre mean > 0 */
    double exponential(double mean);

    /**
     * Geometric draw: number of failures before the first success of
     * a Bernoulli(p) sequence. Returns 0 for p >= 1.
     */
    std::uint64_t geometric(double p);

    /**
     * Pick an index uniformly from [0, size). Convenience alias for
     * uniformInt used by the random-arbitration policies.
     */
    std::size_t pickIndex(std::size_t size);

    /** In-place Fisher-Yates shuffle of an index vector. */
    void shuffle(std::vector<std::size_t> &values);

    /**
     * Derive an independent child seed, e.g. one per replication.
     * Deterministic: the i-th call after construction/seed always
     * returns the same value.
     */
    std::uint64_t deriveSeed();

  private:
    std::uint64_t s_[4];
};

/**
 * Counter-based pseudo-random stream (Philox-style construction: a
 * stateless avalanche of key + counter, here the SplitMix64 finalizer
 * over a Weyl sequence). The i-th output depends only on (key,
 * stream, i), so:
 *
 *  - two streams with different stream indices never share draws, no
 *    matter how many values either consumes;
 *  - a stream can be reconstructed at any point from (key, stream,
 *    counter) alone - no hidden state.
 *
 * The FastStat kernel seeds one stream per processor from the config
 * fingerprint, plus one for arbitration tie-breaks; the statistical-
 * equivalence suite relies on the independence, the golden pins on
 * the pure-function determinism.
 */
class CounterRng
{
  public:
    CounterRng() = default;

    /** Stream @p stream of the family keyed by @p key. */
    CounterRng(std::uint64_t key, std::uint64_t stream);

    /**
     * Next raw 64-bit output (advances the counter by one). Inline -
     * the FastStat kernel draws tens of millions of values per run
     * and the SplitMix64 finalizer is a handful of instructions.
     */
    std::uint64_t
    next()
    {
        std::uint64_t z = key_ + (counter_++) * 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound) (Lemire rejection). @pre bound > 0 */
    std::uint64_t
    uniformInt(std::uint64_t bound)
    {
        for (;;) {
            const std::uint64_t x = next();
            const auto m = static_cast<__uint128_t>(x) *
                           static_cast<__uint128_t>(bound);
            const auto low = static_cast<std::uint64_t>(m);
            if (low >= bound || low >= (0 - bound) % bound)
                return static_cast<std::uint64_t>(m >> 64);
        }
    }

    /** Uniform double in [0, 1) with 53 random bits. */
    double
    uniformReal()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /**
     * Geometric draw in O(1): number of failures before the first
     * success of a Bernoulli(p) sequence, via inversion
     * floor(log(U) / log(1-p)). Returns 0 for p >= 1; results are
     * clamped to 2^62 so downstream tick arithmetic cannot overflow.
     * Inline so the saturated-regime fast path (p >= 1: no draw at
     * all) folds into the kernel's per-completion code.
     * @pre p > 0 when p < 1
     */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 0;
        return geometricSlow(p);
    }

    /** Pick an index uniformly from [0, size). */
    std::size_t
    pickIndex(std::size_t size)
    {
        return static_cast<std::size_t>(
            uniformInt(static_cast<std::uint64_t>(size)));
    }

    /** Values drawn so far (the counter position). */
    std::uint64_t counter() const { return counter_; }

  private:
    /** The p < 1 inversion (one uniform draw). */
    std::uint64_t geometricSlow(double p);

    std::uint64_t key_ = 0;
    std::uint64_t counter_ = 0;
};

} // namespace sbn

#endif // SBN_UTIL_RANDOM_HH
