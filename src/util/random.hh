/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * The generator is xoshiro256** (Blackman & Vigna), seeded through
 * SplitMix64 so that any 64-bit seed yields a well-mixed state. It is
 * small, fast, and fully reproducible across platforms, which the test
 * suite relies on (fixed seed => identical simulation trajectories).
 */

#ifndef SBN_UTIL_RANDOM_HH
#define SBN_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace sbn {

/**
 * xoshiro256** pseudo-random generator with convenience draws used by
 * the simulators (uniform integers for arbitration, Bernoulli for the
 * re-request probability p, exponential for queueing-model
 * cross-checks).
 */
class RandomGenerator
{
  public:
    /** Construct from a 64-bit seed (any value, including 0). */
    explicit RandomGenerator(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed the generator, resetting its trajectory. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /**
     * Uniform integer in [0, bound).
     *
     * Uses Lemire's multiply-shift rejection method, so the result is
     * exactly uniform for any bound.
     *
     * @pre bound > 0
     */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1) with 53 random bits. */
    double uniformReal();

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /** Exponential draw with the given mean. @pre mean > 0 */
    double exponential(double mean);

    /**
     * Geometric draw: number of failures before the first success of
     * a Bernoulli(p) sequence. Returns 0 for p >= 1.
     */
    std::uint64_t geometric(double p);

    /**
     * Pick an index uniformly from [0, size). Convenience alias for
     * uniformInt used by the random-arbitration policies.
     */
    std::size_t pickIndex(std::size_t size);

    /** In-place Fisher-Yates shuffle of an index vector. */
    void shuffle(std::vector<std::size_t> &values);

    /**
     * Derive an independent child seed, e.g. one per replication.
     * Deterministic: the i-th call after construction/seed always
     * returns the same value.
     */
    std::uint64_t deriveSeed();

  private:
    std::uint64_t s_[4];
};

} // namespace sbn

#endif // SBN_UTIL_RANDOM_HH
