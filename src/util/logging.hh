/**
 * @file
 * Minimal status/error reporting helpers in the spirit of gem5's
 * logging.hh.
 *
 * Two error levels are provided:
 *  - panic():  an internal invariant was violated (a library bug);
 *              aborts so a debugger/core dump can capture the state.
 *  - fatal():  the caller supplied an invalid configuration; exits
 *              with an error code after printing a message.
 *
 * Two informational levels:
 *  - warn():   something is suspicious but the run can continue.
 *  - inform(): plain status output.
 */

#ifndef SBN_UTIL_LOGGING_HH
#define SBN_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace sbn {

namespace detail {

/** Format and emit one log record to stderr. */
void emitLog(const char *level, const std::string &msg,
             const char *file, int line);

/** Stream-compose a message from a parameter pack. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Abort after reporting an internal error. Never returns. */
[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);

/** Exit(1) after reporting a usage/configuration error. Never returns. */
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);

/** Report a recoverable anomaly. */
void warnImpl(const std::string &msg, const char *file, int line);

/** Report plain status. */
void informImpl(const std::string &msg);

/**
 * Render a waitpid() status word for diagnostics: "exit 0",
 * "exit 1", "signal 9 (killed)", "signal 6 (aborted) with core", or
 * "status 0x7f" for anything exotic. Used by the shard supervisor
 * and sbn_sweep's structured failure reporting.
 */
std::string describeWaitStatus(int status);

} // namespace sbn

#define sbn_panic(...)                                                      \
    ::sbn::panicImpl(::sbn::detail::composeMessage(__VA_ARGS__),            \
                     __FILE__, __LINE__)

#define sbn_fatal(...)                                                      \
    ::sbn::fatalImpl(::sbn::detail::composeMessage(__VA_ARGS__),            \
                     __FILE__, __LINE__)

#define sbn_warn(...)                                                       \
    ::sbn::warnImpl(::sbn::detail::composeMessage(__VA_ARGS__),             \
                    __FILE__, __LINE__)

#define sbn_inform(...)                                                     \
    ::sbn::informImpl(::sbn::detail::composeMessage(__VA_ARGS__))

/**
 * Invariant check that is active in all build types (unlike assert).
 * Use for conditions that must hold regardless of NDEBUG.
 */
#define sbn_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sbn::panicImpl(                                               \
                ::sbn::detail::composeMessage(                              \
                    "assertion '", #cond, "' failed: ",                     \
                    ::sbn::detail::composeMessage(__VA_ARGS__)),            \
                __FILE__, __LINE__);                                        \
        }                                                                   \
    } while (0)

/**
 * Invariant check compiled out of NDEBUG (Release) builds, for checks
 * executed millions of times per run on a kernel's innermost path
 * where even a predicted compare-and-branch is measurable. Everything
 * off the hot path should use sbn_assert, which is always active.
 */
#ifdef NDEBUG
#define sbn_debug_assert(cond, ...)                                         \
    do {                                                                    \
    } while (0)
#else
#define sbn_debug_assert(cond, ...) sbn_assert(cond, __VA_ARGS__)
#endif

#endif // SBN_UTIL_LOGGING_HH
