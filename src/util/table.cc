#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace sbn {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    sbn_assert(header_.empty() || row.size() == header_.size(),
               "row width ", row.size(), " != header width ",
               header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::addNumericRow(const std::string &label,
                         const std::vector<double> &values, int precision)
{
    std::vector<std::string> row;
    row.reserve(values.size() + 1);
    row.push_back(label);
    for (double v : values)
        row.push_back(formatNumber(v, precision));
    addRow(std::move(row));
}

void
TextTable::addSeparator()
{
    separators_.push_back(rows_.size());
}

std::string
TextTable::formatNumber(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty())
        widen(header_);
    for (const auto &row : rows_)
        widen(row);

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;

    auto rule = [&] { os << std::string(total, '-') << '\n'; };
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            os << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
        os << '\n';
    };

    if (!title_.empty())
        os << title_ << '\n';
    rule();
    if (!header_.empty()) {
        emit(header_);
        rule();
    }
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        if (std::find(separators_.begin(), separators_.end(), i) !=
            separators_.end()) {
            rule();
        }
        emit(rows_[i]);
    }
    rule();
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ',';
            os << row[i];
        }
        os << '\n';
    };
    if (!title_.empty())
        os << "# " << title_ << '\n';
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace sbn
