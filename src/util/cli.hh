/**
 * @file
 * Tiny command-line option parser for the example programs.
 *
 * Supports --name=value and --name value forms plus boolean flags
 * (--name). Unknown options abort with a usage message so examples
 * fail loudly on typos.
 */

#ifndef SBN_UTIL_CLI_HH
#define SBN_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sbn {

/** Parsed command line with typed accessors and defaults. */
class CommandLine
{
  public:
    /**
     * Parse argv. @p known maps option name -> help text; options not
     * in the map cause fatal(). "help" is always known.
     */
    CommandLine(int argc, const char *const *argv,
                const std::map<std::string, std::string> &known);

    /** True if --name was supplied (with or without a value). */
    bool has(const std::string &name) const;

    /** String option with default. */
    std::string getString(const std::string &name,
                          const std::string &def) const;

    /** Integer option with default. Fatal on non-numeric values. */
    std::int64_t getInt(const std::string &name, std::int64_t def) const;

    /** Floating-point option with default. */
    double getDouble(const std::string &name, double def) const;

    /** Boolean flag: present without value, or =true/=false. */
    bool getBool(const std::string &name, bool def) const;

    /**
     * Comma-separated list of integers, e.g. --r=2,4,8. An explicitly
     * supplied empty list or blank element ("--r=", "--r=2,,8") is
     * fatal: a sweep axis the user *named* must carry values.
     */
    std::vector<std::int64_t> getIntList(
        const std::string &name, const std::vector<std::int64_t> &def) const;

    /** Comma-separated list of doubles, e.g. --p=0.1,0.5,1.0 (same
     *  empty-list rules as getIntList). */
    std::vector<double> getDoubleList(
        const std::string &name, const std::vector<double> &def) const;

    /** Comma-separated list of strings, e.g. --policy=proc,mem (same
     *  empty-list rules as getIntList). */
    std::vector<std::string> getStringList(
        const std::string &name,
        const std::vector<std::string> &def) const;

    /** Program name (argv[0]). */
    const std::string &program() const { return program_; }

  private:
    void printHelpAndExit(
        const std::map<std::string, std::string> &known) const;

    std::string program_;
    std::map<std::string, std::string> values_;
};

} // namespace sbn

#endif // SBN_UTIL_CLI_HH
