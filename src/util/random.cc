#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace sbn {

namespace {

/** SplitMix64 step, used to expand a single seed into generator state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

RandomGenerator::RandomGenerator(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
RandomGenerator::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &word : s_)
        word = splitMix64(x);
}

std::uint64_t
RandomGenerator::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
RandomGenerator::uniformInt(std::uint64_t bound)
{
    sbn_assert(bound > 0, "uniformInt bound must be positive");

    // Lemire's nearly-divisionless method with rejection.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
RandomGenerator::uniformRange(std::int64_t lo, std::int64_t hi)
{
    sbn_assert(lo <= hi, "uniformRange requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
RandomGenerator::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
RandomGenerator::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformReal() < p;
}

double
RandomGenerator::exponential(double mean)
{
    sbn_assert(mean > 0.0, "exponential mean must be positive");
    double u;
    do {
        u = uniformReal();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

std::uint64_t
RandomGenerator::geometric(double p)
{
    if (p >= 1.0)
        return 0;
    sbn_assert(p > 0.0, "geometric requires p in (0, 1]");
    std::uint64_t failures = 0;
    while (!bernoulli(p))
        ++failures;
    return failures;
}

std::size_t
RandomGenerator::pickIndex(std::size_t size)
{
    return static_cast<std::size_t>(uniformInt(size));
}

void
RandomGenerator::shuffle(std::vector<std::size_t> &values)
{
    for (std::size_t i = values.size(); i > 1; --i) {
        const std::size_t j = pickIndex(i);
        std::swap(values[i - 1], values[j]);
    }
}

std::uint64_t
RandomGenerator::deriveSeed()
{
    return next();
}

CounterRng::CounterRng(std::uint64_t key, std::uint64_t stream)
{
    // Derive a well-separated per-stream key: two SplitMix64 steps
    // over the family key, the stream index folded in between, so
    // nearby (key, stream) pairs land in unrelated Weyl sequences.
    std::uint64_t x = key;
    std::uint64_t mixed = splitMix64(x);
    x = mixed ^ (0xd1342543de82ef95ull * (stream + 1));
    key_ = splitMix64(x);
}

bool
CounterRng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformReal() < p;
}

std::uint64_t
CounterRng::geometricSlow(double p)
{
    sbn_assert(p > 0.0, "geometric requires p in (0, 1]");
    // Inversion: U in (0, 1], k = floor(log U / log(1-p)) failures.
    // One uniform draw regardless of k - the O(1) contract the
    // FastStat kernel's think batching is built on.
    const double u = 1.0 - uniformReal();
    const double k = std::floor(std::log(u) / std::log1p(-p));
    if (!(k > 0.0))
        return 0;
    if (k >= 0x1.0p62)
        return 1ull << 62;
    return static_cast<std::uint64_t>(k);
}

} // namespace sbn
