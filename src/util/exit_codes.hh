/**
 * @file
 * The process exit-code contract shared by every sbn tool.
 *
 * `sbn_sweep`, `sbn_sweepd` and the test suites all speak the same
 * exit-code vocabulary, defined once here so a fleet script never has
 * to guess whether "75" means the same thing to the orchestrator and
 * the daemon. Values follow BSD sysexits.h where a matching semantic
 * exists:
 *
 *   0                 success; for sweeps, the merged stream is
 *                     complete and byte-identical to the serial run.
 *   1                 fatal usage/configuration error (sbn_fatal) or
 *                     an unclassified hard failure.
 *   66  (EX_NOINPUT)  required input artifacts are absent: e.g.
 *                     `sbn_sweep --merge` found zero record files in
 *                     the shard directory. Distinct from 1 so "you
 *                     pointed at the wrong directory" is machine-
 *                     distinguishable from "the sweep is broken".
 *   69  (EX_UNAVAILABLE) a required service is unreachable: the
 *                     client could not connect to `sbn_sweepd`, or
 *                     the daemon could not bind its listen address.
 *   75  (EX_TEMPFAIL) partial result: the retry budget ran out, the
 *                     merged output covers only the points (or jobs)
 *                     with records, and a manifest names the rest.
 *                     Retrying may succeed; see docs/sharding.md.
 *   128 + N           the process was terminated by signal N after
 *                     cleaning up its children (supervisor and daemon
 *                     interrupt paths) - the conventional shell
 *                     encoding, emitted explicitly so "no orphan
 *                     workers" and "died on a signal" can both be
 *                     true.
 *
 * tests/test_service.cc pins these values; docs/service.md documents
 * the daemon-side contract, docs/sharding.md the orchestrator side.
 */

#ifndef SBN_UTIL_EXIT_CODES_HH
#define SBN_UTIL_EXIT_CODES_HH

namespace sbn {

/** Success. */
constexpr int kExitOk = 0;

/** Fatal usage/configuration error (what sbn_fatal exits with). */
constexpr int kExitFatal = 1;

/** Required input artifacts absent (EX_NOINPUT). */
constexpr int kExitNoInput = 66;

/** Required peer service unreachable (EX_UNAVAILABLE). */
constexpr int kExitUnavailable = 69;

/**
 * Exit code of an orchestrator that delivered *partial* results: the
 * retry budget ran out, the merged output covers only the points
 * with records, and the missing-points manifest names the rest.
 * Distinct from 1 (fatal) so fleet scripts can tell "rerun the named
 * points" from "the sweep itself is broken". Value follows BSD
 * EX_TEMPFAIL.
 */
constexpr int kPartialResultExit = 75;

/** The conventional shell encoding of death-by-signal. */
constexpr int
exitCodeForSignal(int sig)
{
    return 128 + sig;
}

} // namespace sbn

#endif // SBN_UTIL_EXIT_CODES_HH
