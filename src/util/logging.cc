#include "util/logging.hh"

#include <sys/wait.h>

#include <cstdio>
#include <cstring>

namespace sbn {

namespace detail {

void
emitLog(const char *level, const std::string &msg, const char *file,
        int line)
{
    if (file) {
        std::fprintf(stderr, "%s: %s (%s:%d)\n", level, msg.c_str(),
                     file, line);
    } else {
        std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
    }
    std::fflush(stderr);
}

} // namespace detail

void
panicImpl(const std::string &msg, const char *file, int line)
{
    detail::emitLog("panic", msg, file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    detail::emitLog("fatal", msg, file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg, const char *file, int line)
{
    detail::emitLog("warn", msg, file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
    std::fflush(stdout);
}

std::string
describeWaitStatus(int status)
{
    if (WIFEXITED(status))
        return "exit " + std::to_string(WEXITSTATUS(status));
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        std::string text = "signal " + std::to_string(sig);
        const char *name = strsignal(sig);
        if (name != nullptr)
            text += std::string(" (") + name + ")";
#ifdef WCOREDUMP
        if (WCOREDUMP(status))
            text += " with core";
#endif
        return text;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "status 0x%x", status);
    return buf;
}

} // namespace sbn
