#include "util/logging.hh"

#include <cstdio>

namespace sbn {

namespace detail {

void
emitLog(const char *level, const std::string &msg, const char *file,
        int line)
{
    if (file) {
        std::fprintf(stderr, "%s: %s (%s:%d)\n", level, msg.c_str(),
                     file, line);
    } else {
        std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
    }
    std::fflush(stderr);
}

} // namespace detail

void
panicImpl(const std::string &msg, const char *file, int line)
{
    detail::emitLog("panic", msg, file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    detail::emitLog("fatal", msg, file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg, const char *file, int line)
{
    detail::emitLog("warn", msg, file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
    std::fflush(stdout);
}

} // namespace sbn
