/**
 * @file
 * Fixed-capacity ordered set of small integer indices.
 *
 * A bitset of 64-bit words plus a live count. Iteration and nth()
 * always walk members in ascending index order, which is what lets
 * the incremental arbitration candidate sets reproduce the classic
 * kernel's index-ordered scans (and their Random-selection RNG
 * consumption) exactly. All mutating operations are allocation-free
 * after construction.
 */

#ifndef SBN_UTIL_INDEX_SET_HH
#define SBN_UTIL_INDEX_SET_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace sbn {

class IndexSet
{
  public:
    IndexSet() = default;

    explicit IndexSet(std::size_t capacity) { resize(capacity); }

    /** Reset to empty with room for indices [0, capacity). */
    void
    resize(std::size_t capacity)
    {
        capacity_ = capacity;
        words_.assign((capacity + 63) / 64, 0);
        count_ = 0;
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

    bool
    contains(std::size_t index) const
    {
        sbn_assert(index < capacity_, "IndexSet contains out of range");
        return (words_[index / 64] >> (index % 64)) & 1u;
    }

    /** Add @p index; returns true if it was not already a member. */
    bool
    insert(std::size_t index)
    {
        sbn_assert(index < capacity_, "IndexSet insert out of range");
        std::uint64_t &word = words_[index / 64];
        const std::uint64_t bit = 1ull << (index % 64);
        if (word & bit)
            return false;
        word |= bit;
        ++count_;
        return true;
    }

    /** Remove @p index; returns true if it was a member. */
    bool
    erase(std::size_t index)
    {
        sbn_assert(index < capacity_, "IndexSet erase out of range");
        std::uint64_t &word = words_[index / 64];
        const std::uint64_t bit = 1ull << (index % 64);
        if (!(word & bit))
            return false;
        word &= ~bit;
        --count_;
        return true;
    }

    void
    clear()
    {
        for (auto &word : words_)
            word = 0;
        count_ = 0;
    }

    /** Union @p other in (capacities must match). */
    void
    insertAll(const IndexSet &other)
    {
        sbn_assert(other.words_.size() == words_.size(),
                   "IndexSet capacity mismatch");
        for (std::size_t w = 0; w < words_.size(); ++w) {
            const std::uint64_t added = other.words_[w] & ~words_[w];
            words_[w] |= added;
            count_ += static_cast<std::size_t>(
                __builtin_popcountll(added));
        }
    }

    /** Remove every member of @p other (capacities must match). */
    void
    eraseAll(const IndexSet &other)
    {
        sbn_assert(other.words_.size() == words_.size(),
                   "IndexSet capacity mismatch");
        for (std::size_t w = 0; w < words_.size(); ++w) {
            const std::uint64_t removed = other.words_[w] & words_[w];
            words_[w] &= ~removed;
            count_ -= static_cast<std::size_t>(
                __builtin_popcountll(removed));
        }
    }

    /** The k-th smallest member (0-based). @pre k < count() */
    std::size_t
    nth(std::size_t k) const
    {
        sbn_assert(k < count_, "IndexSet::nth out of range");
        for (std::size_t w = 0;; ++w) {
            std::uint64_t word = words_[w];
            const auto populated = static_cast<std::size_t>(
                __builtin_popcountll(word));
            if (k >= populated) {
                k -= populated;
                continue;
            }
            while (k-- > 0)
                word &= word - 1; // drop lowest set bit
            return w * 64 + static_cast<std::size_t>(
                                __builtin_ctzll(word));
        }
    }

    /** Visit members in ascending order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t word = words_[w];
            while (word != 0) {
                const auto bit = static_cast<std::size_t>(
                    __builtin_ctzll(word));
                fn(w * 64 + bit);
                word &= word - 1;
            }
        }
    }

  private:
    std::vector<std::uint64_t> words_;
    std::size_t capacity_ = 0;
    std::size_t count_ = 0;
};

} // namespace sbn

#endif // SBN_UTIL_INDEX_SET_HH
