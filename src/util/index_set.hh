/**
 * @file
 * Fixed-capacity ordered set of small integer indices.
 *
 * A bitset of 64-bit words plus a live count. Iteration and nth()
 * always walk members in ascending index order, which is what lets
 * the incremental arbitration candidate sets reproduce the classic
 * kernel's index-ordered scans (and their Random-selection RNG
 * consumption) exactly. All mutating operations are allocation-free
 * after construction.
 */

#ifndef SBN_UTIL_INDEX_SET_HH
#define SBN_UTIL_INDEX_SET_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace sbn {

namespace detail {

/** Select positions for every byte value: pos[b][k] is the bit index
 *  of the k-th set bit of b (0xff for k >= popcount(b)). */
struct ByteSelect
{
    std::uint8_t pos[256][8];
};

constexpr ByteSelect
makeByteSelect()
{
    ByteSelect table{};
    for (unsigned byte = 0; byte < 256; ++byte) {
        unsigned k = 0;
        for (unsigned bit = 0; bit < 8; ++bit)
            if ((byte >> bit) & 1u)
                table.pos[byte][k++] = static_cast<std::uint8_t>(bit);
        for (; k < 8; ++k)
            table.pos[byte][k] = 0xff;
    }
    return table;
}

inline constexpr ByteSelect kByteSelect = makeByteSelect();

} // namespace detail

class IndexSet
{
  public:
    IndexSet() = default;

    explicit IndexSet(std::size_t capacity) { resize(capacity); }

    /** Reset to empty with room for indices [0, capacity). */
    void
    resize(std::size_t capacity)
    {
        capacity_ = capacity;
        words_.assign((capacity + 63) / 64, 0);
        count_ = 0;
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

    bool
    contains(std::size_t index) const
    {
        sbn_assert(index < capacity_, "IndexSet contains out of range");
        return (words_[index / 64] >> (index % 64)) & 1u;
    }

    /** Add @p index; returns true if it was not already a member. */
    bool
    insert(std::size_t index)
    {
        sbn_assert(index < capacity_, "IndexSet insert out of range");
        std::uint64_t &word = words_[index / 64];
        const std::uint64_t bit = 1ull << (index % 64);
        if (word & bit)
            return false;
        word |= bit;
        ++count_;
        return true;
    }

    /** Remove @p index; returns true if it was a member. */
    bool
    erase(std::size_t index)
    {
        sbn_assert(index < capacity_, "IndexSet erase out of range");
        std::uint64_t &word = words_[index / 64];
        const std::uint64_t bit = 1ull << (index % 64);
        if (!(word & bit))
            return false;
        word &= ~bit;
        --count_;
        return true;
    }

    void
    clear()
    {
        for (auto &word : words_)
            word = 0;
        count_ = 0;
    }

    /** Union @p other in (capacities must match). */
    void
    insertAll(const IndexSet &other)
    {
        sbn_assert(other.words_.size() == words_.size(),
                   "IndexSet capacity mismatch");
        for (std::size_t w = 0; w < words_.size(); ++w) {
            const std::uint64_t added = other.words_[w] & ~words_[w];
            words_[w] |= added;
            count_ += static_cast<std::size_t>(
                __builtin_popcountll(added));
        }
    }

    /** Remove every member of @p other (capacities must match). */
    void
    eraseAll(const IndexSet &other)
    {
        sbn_assert(other.words_.size() == words_.size(),
                   "IndexSet capacity mismatch");
        for (std::size_t w = 0; w < words_.size(); ++w) {
            const std::uint64_t removed = other.words_[w] & words_[w];
            words_[w] &= ~removed;
            count_ -= static_cast<std::size_t>(
                __builtin_popcountll(removed));
        }
    }

    /** The k-th smallest member (0-based). @pre k < count() */
    std::size_t
    nth(std::size_t k) const
    {
        sbn_assert(k < count_, "IndexSet::nth out of range");
        if (words_.size() == 1)
            return selectBit(words_[0], k);
        for (std::size_t w = 0;; ++w) {
            std::uint64_t word = words_[w];
            const auto populated = static_cast<std::size_t>(
                __builtin_popcountll(word));
            if (k >= populated) {
                k -= populated;
                continue;
            }
            return w * 64 + selectBit(word, k);
        }
    }

    /** Visit members in ascending order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t word = words_[w];
            while (word != 0) {
                const auto bit = static_cast<std::size_t>(
                    __builtin_ctzll(word));
                fn(w * 64 + bit);
                word &= word - 1;
            }
        }
    }

  private:
    /**
     * Position of the k-th (0-based) set bit of @p word. The
     * arbitration hot path calls this with a random k every grant, so
     * the common small-system case (word fits in one byte, n <= 8)
     * must be a single table load; wider words fall back to a branch-
     * free binary search over half-word popcounts (a bit-stripping
     * loop would mispredict once per call, the multiply-masked steps
     * never branch). @pre k < popcount(word)
     */
    static std::size_t
    selectBit(std::uint64_t word, std::size_t k)
    {
        if (word < 256)
            return detail::kByteSelect.pos[word][k];
        // Start the search at the word's actual width: medium systems
        // (n <= 16, say) resolve in four steps, not six.
        unsigned shift = 8;
        while ((word >> shift) >> shift != 0)
            shift <<= 1;
        std::size_t pos = 0;
        for (; shift >= 8; shift >>= 1) {
            const auto low = static_cast<std::size_t>(
                __builtin_popcountll(word &
                                     ((1ull << shift) - 1)));
            const std::size_t go = k >= low ? 1 : 0; // cmov, not jmp
            k -= go * low;
            pos += go * shift;
            word >>= go * shift;
        }
        // High bits may survive when the last step kept the low half
        // (go = 0); the answer lives in the low byte either way.
        return pos + detail::kByteSelect.pos[word & 0xff][k];
    }

    std::vector<std::uint64_t> words_;
    std::size_t capacity_ = 0;
    std::size_t count_ = 0;
};

} // namespace sbn

#endif // SBN_UTIL_INDEX_SET_HH
