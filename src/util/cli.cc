#include "util/cli.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace sbn {

namespace {

/**
 * strtoll with the full error surface: trailing junk AND range. The
 * errno protocol (reset before, check ERANGE after) is the same one
 * shard/fault.cc's clause parser uses; without it an overflowing
 * "--processors 99999999999999999999" silently clamps to INT64_MAX
 * and sails through validation.
 */
std::int64_t
parseIntOrDie(const std::string &name, const std::string &text)
{
    char *end = nullptr;
    errno = 0;
    const std::int64_t v = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        sbn_fatal("option --", name, " expects an integer, got '",
                  text, "'");
    if (errno == ERANGE)
        sbn_fatal("option --", name, ": integer out of range, got '",
                  text, "'");
    return v;
}

/** strtod counterpart: overflow (+-HUGE_VAL) and underflow both set
 *  ERANGE and both fail fatally - a value the double type cannot
 *  represent is a configuration error, not a rounding request. */
double
parseDoubleOrDie(const std::string &name, const std::string &text)
{
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        sbn_fatal("option --", name, " expects a number, got '",
                  text, "'");
    if (errno == ERANGE)
        sbn_fatal("option --", name, ": number out of range, got '",
                  text, "'");
    return v;
}

} // namespace

CommandLine::CommandLine(int argc, const char *const *argv,
                         const std::map<std::string, std::string> &known)
    : program_(argc > 0 ? argv[0] : "sbn")
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            sbn_fatal("unexpected positional argument '", arg,
                      "' (options start with --)");
        arg = arg.substr(2);

        std::string name = arg;
        std::string value;
        bool have_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            have_value = true;
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            value = argv[++i];
            have_value = true;
        }

        if (name == "help")
            printHelpAndExit(known);
        if (!known.count(name))
            sbn_fatal("unknown option --", name,
                      " (try --help for the option list)");
        if (values_.count(name))
            sbn_fatal("option --", name,
                      " given twice - a repeated option (e.g. a sweep "
                      "axis named again) silently discarding the "
                      "first value is never what you want");
        values_[name] = have_value ? value : "true";
    }
}

void
CommandLine::printHelpAndExit(
    const std::map<std::string, std::string> &known) const
{
    std::printf("usage: %s [--option=value ...]\n\noptions:\n",
                program_.c_str());
    for (const auto &[name, help] : known)
        std::printf("  --%-18s %s\n", name.c_str(), help.c_str());
    std::printf("  --%-18s %s\n", "help", "show this message");
    std::exit(0);
}

bool
CommandLine::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
CommandLine::getString(const std::string &name, const std::string &def) const
{
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

std::int64_t
CommandLine::getInt(const std::string &name, std::int64_t def) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return parseIntOrDie(name, it->second);
}

double
CommandLine::getDouble(const std::string &name, double def) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return parseDoubleOrDie(name, it->second);
}

bool
CommandLine::getBool(const std::string &name, bool def) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    sbn_fatal("option --", name, " expects a boolean, got '", v, "'");
}

namespace {

/** Split a comma list into non-empty elements; empty lists and empty
 *  elements (",,", trailing ",") are configuration errors. */
std::vector<std::string>
splitList(const std::string &name, const std::string &text)
{
    std::vector<std::string> elements;
    std::string cur;
    auto flush = [&] {
        if (cur.empty())
            sbn_fatal("option --", name,
                      ": empty list element (a value list like "
                      "'2,4,8' must name at least one value and no "
                      "blanks)");
        elements.push_back(cur);
        cur.clear();
    };
    for (char c : text) {
        if (c == ',')
            flush();
        else
            cur.push_back(c);
    }
    flush();
    return elements;
}

} // namespace

std::vector<std::int64_t>
CommandLine::getIntList(const std::string &name,
                        const std::vector<std::int64_t> &def) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return def;
    std::vector<std::int64_t> out;
    for (const std::string &element : splitList(name, it->second))
        out.push_back(parseIntOrDie(name, element));
    return out;
}

std::vector<std::string>
CommandLine::getStringList(const std::string &name,
                           const std::vector<std::string> &def) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return splitList(name, it->second);
}

std::vector<double>
CommandLine::getDoubleList(const std::string &name,
                           const std::vector<double> &def) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return def;
    std::vector<double> out;
    for (const std::string &element : splitList(name, it->second))
        out.push_back(parseDoubleOrDie(name, element));
    return out;
}

} // namespace sbn
