/**
 * @file
 * Combinatorial primitives shared by the analytical models.
 *
 * All counting functions return double. The models in this library
 * operate on systems with n, m <= 64, for which every intermediate
 * count fits a double exactly or to full 53-bit precision (factorials
 * up to 170! are representable; we additionally expose log-space
 * variants for ratio computations that would overflow).
 */

#ifndef SBN_UTIL_COMBINATORICS_HH
#define SBN_UTIL_COMBINATORICS_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace sbn {

/** k! as a double, table-memoized. @pre 0 <= k <= 170 */
double factorial(int k);

/** ln(k!) via lgamma, table-memoized for small k. @pre k >= 0 */
double logFactorial(int k);

/**
 * Binomial coefficient C(n, k); 0 when k < 0 or k > n. Memoized via
 * a Pascal-triangle table for n <= 170 (making Pascal's identity
 * exact), log-space beyond.
 */
double binomial(int n, int k);

/**
 * Stirling number of the second kind S2(n, k): the number of ways to
 * partition n labeled items into k unlabeled non-empty cells.
 */
double stirling2(int n, int k);

/**
 * Number of surjections from n labeled items onto k labeled cells:
 * Surj(n, k) = k! * S2(n, k). Surj(0, 0) = 1 by convention.
 */
double surjections(int n, int k);

/**
 * Multinomial coefficient n! / (parts[0]! * parts[1]! * ...).
 * @pre sum(parts) == n and all parts >= 0
 */
double multinomial(int n, const std::vector<int> &parts);

/**
 * Distribution of the number of distinct targets when n independent
 * requesters each pick uniformly among m targets:
 *
 *     P(x) = C(m, x) * Surj(n, x) / m^n,  x = 0..min(n, m)
 *
 * This is the memoryless request pattern of Strecker/Bhandarkar used
 * by the paper's Section 3.2 combinational approximation. The returned
 * vector has min(n, m)+1 entries (index = x) and sums to 1.
 */
std::vector<double> distinctTargetPmf(int n, int m);

/**
 * Enumerate all partitions of @p total into at most @p max_parts
 * positive parts, in descending order within each partition. The
 * callback receives each partition; the empty partition is produced
 * for total == 0.
 *
 * Used to enumerate the canonical occupancy states of the exact
 * memory-interference Markov chains (n requests over m modules).
 */
void forEachPartition(int total, int max_parts,
                      const std::function<void(
                          const std::vector<int> &)> &visit);

/**
 * Enumerate all partitions of @p total into at most @p max_parts
 * positive parts with every part <= @p max_value.
 */
void forEachBoundedPartition(int total, int max_parts, int max_value,
                             const std::function<void(
                                 const std::vector<int> &)> &visit);

/**
 * Enumerate the compositions of @p total into exactly @p bins
 * non-negative ordered parts. Exponential in bins; intended for small
 * cross-checks in tests, not for model construction.
 */
void forEachComposition(int total, int bins,
                        const std::function<void(
                            const std::vector<int> &)> &visit);

/**
 * Number of distinct assignments of the addition-multiset @p parts
 * (positive values, any order) onto @p cells labeled cells, i.e. the
 * number of distinct vectors of length @p cells whose non-zero entries
 * form exactly this multiset:
 *
 *     cells! / (prod_over_distinct_values mult_v! * (cells - len)!)
 *
 * @pre parts.size() <= cells
 */
double assignmentsOntoCells(const std::vector<int> &parts, int cells);

} // namespace sbn

#endif // SBN_UTIL_COMBINATORICS_HH
