/**
 * @file
 * Plain-text table formatting used by the benchmark harnesses and the
 * example programs to print paper-style tables (aligned columns,
 * configurable float precision, optional CSV output).
 */

#ifndef SBN_UTIL_TABLE_HH
#define SBN_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace sbn {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t("EBW, n=8");
 *   t.setHeader({"m", "r=2", "r=4"});
 *   t.addRow({"4", "1.998", "2.867"});
 *   t.print(std::cout);
 * @endcode
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Set the header row (column count is taken from it). */
    void setHeader(std::vector<std::string> header);

    /** Append a pre-formatted row. Width must match the header. */
    void addRow(std::vector<std::string> row);

    /**
     * Append a row with a string label followed by numeric cells
     * formatted to @p precision digits after the decimal point.
     */
    void addNumericRow(const std::string &label,
                       const std::vector<double> &values,
                       int precision = 3);

    /** Insert a horizontal separator line before the next row. */
    void addSeparator();

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

    /** Render as CSV (title emitted as a comment line). */
    void printCsv(std::ostream &os) const;

    /** Format a double to fixed precision. */
    static std::string formatNumber(double value, int precision = 3);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> separators_;
};

} // namespace sbn

#endif // SBN_UTIL_TABLE_HH
