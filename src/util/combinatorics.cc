#include "util/combinatorics.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "util/logging.hh"

namespace sbn {

double
factorial(int k)
{
    sbn_assert(k >= 0 && k <= 170, "factorial out of double range: ", k);
    static const auto table = [] {
        std::vector<double> t(171, 1.0);
        for (int i = 1; i <= 170; ++i)
            t[i] = t[i - 1] * i;
        return t;
    }();
    return table[k];
}

double
logFactorial(int k)
{
    sbn_assert(k >= 0, "logFactorial of negative value: ", k);
    // The models hammer small arguments (per-transition weights);
    // memoize the common range and fall back to lgamma beyond it.
    constexpr int kTableSize = 4096;
    static const auto table = [] {
        std::vector<double> t(kTableSize);
        for (int i = 0; i < kTableSize; ++i)
            t[i] = std::lgamma(static_cast<double>(i) + 1.0);
        return t;
    }();
    if (k < kTableSize)
        return table[k];
    return std::lgamma(static_cast<double>(k) + 1.0);
}

double
binomial(int n, int k)
{
    if (k < 0 || k > n || n < 0)
        return 0.0;
    // Pascal's triangle up to the factorial-representable range:
    // one table build, O(1) lookups, and sums that are exact while
    // they fit 53 bits (they do for the paper-scale n, m <= 64).
    constexpr int kMaxRow = 170;
    static const auto triangle = [] {
        std::vector<std::vector<double>> t(kMaxRow + 1);
        t[0] = {1.0};
        for (int row = 1; row <= kMaxRow; ++row) {
            t[row].assign(row + 1, 1.0);
            for (int col = 1; col < row; ++col)
                t[row][col] = t[row - 1][col - 1] + t[row - 1][col];
        }
        return t;
    }();
    if (n <= kMaxRow)
        return triangle[n][k];
    return std::exp(logFactorial(n) - logFactorial(k) -
                    logFactorial(n - k));
}

double
stirling2(int n, int k)
{
    sbn_assert(n >= 0 && k >= 0, "stirling2 requires non-negative args");
    if (k > n)
        return 0.0;
    if (n == 0)
        return k == 0 ? 1.0 : 0.0;
    if (k == 0)
        return 0.0;

    // Cache rows of the recurrence S2(n,k) = k*S2(n-1,k) + S2(n-1,k-1).
    // The cache is shared across threads (parallel sweeps evaluate
    // analytic models concurrently), so guard it.
    static std::mutex cache_mutex;
    static std::map<int, std::vector<double>> cache;
    std::lock_guard<std::mutex> lock(cache_mutex);
    auto it = cache.find(n);
    if (it == cache.end()) {
        std::vector<double> prev{1.0}; // row 0: S2(0,0) = 1
        for (int row = 1; row <= n; ++row) {
            std::vector<double> cur(row + 1, 0.0);
            for (int col = 1; col <= row; ++col) {
                const double carry =
                    col < static_cast<int>(prev.size()) ? prev[col] : 0.0;
                cur[col] = col * carry + prev[col - 1];
            }
            cache[row] = cur;
            prev = std::move(cur);
        }
        it = cache.find(n);
    }
    const auto &row = it->second;
    return k < static_cast<int>(row.size()) ? row[k] : 0.0;
}

double
surjections(int n, int k)
{
    if (n == 0 && k == 0)
        return 1.0;
    if (k > n || k < 0)
        return 0.0;
    return factorial(k) * stirling2(n, k);
}

double
multinomial(int n, const std::vector<int> &parts)
{
    int sum = 0;
    double denom = 1.0;
    for (int part : parts) {
        sbn_assert(part >= 0, "multinomial part must be >= 0");
        sum += part;
        denom *= factorial(part);
    }
    sbn_assert(sum == n, "multinomial parts must sum to n");
    return factorial(n) / denom;
}

std::vector<double>
distinctTargetPmf(int n, int m)
{
    sbn_assert(n >= 0 && m >= 1, "distinctTargetPmf needs n>=0, m>=1");
    const int x_max = std::min(n, m);
    std::vector<double> pmf(x_max + 1, 0.0);
    const double denom = std::pow(static_cast<double>(m), n);
    for (int x = 0; x <= x_max; ++x)
        pmf[x] = binomial(m, x) * surjections(n, x) / denom;
    return pmf;
}

namespace {

void
partitionRecurse(int remaining, int max_parts, int max_value,
                 std::vector<int> &prefix,
                 const std::function<void(const std::vector<int> &)> &visit)
{
    if (remaining == 0) {
        visit(prefix);
        return;
    }
    if (max_parts == 0)
        return;
    const int hi = std::min(remaining, max_value);
    for (int part = hi; part >= 1; --part) {
        prefix.push_back(part);
        partitionRecurse(remaining - part, max_parts - 1, part, prefix,
                         visit);
        prefix.pop_back();
    }
}

} // namespace

void
forEachPartition(int total, int max_parts,
                 const std::function<void(const std::vector<int> &)> &visit)
{
    forEachBoundedPartition(total, max_parts, total, visit);
}

void
forEachBoundedPartition(int total, int max_parts, int max_value,
                        const std::function<void(
                            const std::vector<int> &)> &visit)
{
    sbn_assert(total >= 0 && max_parts >= 0,
               "partition enumeration needs non-negative inputs");
    std::vector<int> prefix;
    if (total == 0) {
        visit(prefix);
        return;
    }
    if (max_value <= 0)
        return;
    partitionRecurse(total, max_parts, max_value, prefix, visit);
}

namespace {

void
compositionRecurse(int remaining, int bins, std::vector<int> &prefix,
                   const std::function<void(
                       const std::vector<int> &)> &visit)
{
    if (bins == 1) {
        prefix.push_back(remaining);
        visit(prefix);
        prefix.pop_back();
        return;
    }
    for (int part = 0; part <= remaining; ++part) {
        prefix.push_back(part);
        compositionRecurse(remaining - part, bins - 1, prefix, visit);
        prefix.pop_back();
    }
}

} // namespace

void
forEachComposition(int total, int bins,
                   const std::function<void(const std::vector<int> &)> &visit)
{
    sbn_assert(total >= 0 && bins >= 1,
               "composition enumeration needs total>=0, bins>=1");
    std::vector<int> prefix;
    compositionRecurse(total, bins, prefix, visit);
}

double
assignmentsOntoCells(const std::vector<int> &parts, int cells)
{
    const int len = static_cast<int>(parts.size());
    sbn_assert(len <= cells, "more parts than cells");

    double denom = factorial(cells - len);
    std::vector<int> sorted(parts);
    std::sort(sorted.begin(), sorted.end());
    int run = 1;
    for (int i = 1; i <= len; ++i) {
        if (i < len && sorted[i] == sorted[i - 1]) {
            ++run;
        } else {
            denom *= factorial(run);
            run = 1;
        }
    }
    return factorial(cells) / denom;
}

} // namespace sbn
