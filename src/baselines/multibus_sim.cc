#include "baselines/multibus_sim.hh"

#include <algorithm>

#include "util/index_set.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace sbn {

void
MultibusSimConfig::validate() const
{
    if (numProcessors < 1 || numModules < 1 || buses < 1)
        sbn_fatal("multibus sim needs n, m, b >= 1");
    if (requestProbability < 0.0 || requestProbability > 1.0)
        sbn_fatal("requestProbability must be in [0, 1]");
    if (measureSlots < 1)
        sbn_fatal("measureSlots must be >= 1");
}

MultibusSimResult
runMultibusSim(const MultibusSimConfig &config)
{
    config.validate();
    RandomGenerator rng(config.seed);

    const int n = config.numProcessors;
    const int m = config.numModules;
    const int b = config.buses;
    const std::uint64_t total = config.warmupSlots + config.measureSlots;

    // Per-module bags of waiting processor ids (service order is
    // random, so a bag not a queue).
    std::vector<std::vector<int>> waiting(m);
    std::vector<char> ready(n, 1); // ready to draw at slot start

    // Modules with work, maintained incrementally at enqueue/dequeue
    // instead of rescanned every slot; iteration is in ascending
    // module order, matching the scan the per-slot rebuild performed,
    // so the partial Fisher-Yates below consumes the RNG identically.
    IndexSet busyModules(static_cast<std::size_t>(m));
    int waitingTotal = 0;

    std::vector<int> busy;
    busy.reserve(m);

    MultibusSimResult result;
    result.busyPmf.assign(std::min(n, m) + 1, 0.0);
    std::uint64_t completions = 0;

    // Histogram of serviced-module counts over measured slots; the
    // per-bus busy breakdown falls out of it after the run.
    std::vector<std::uint64_t> servicedHist(
        static_cast<std::size_t>(std::min({n, m, b})) + 1, 0);

    std::vector<int> next_ready;
    next_ready.reserve(n);

    for (std::uint64_t slot = 0; slot < total; ++slot) {
        const bool measured = slot >= config.warmupSlots;

        // 1. Ready processors draw: issue or think one slot. The draw
        //    order (ascending processor id, every slot) is the RNG
        //    contract; only the non-drawing bookkeeping may be skipped.
        for (int p = 0; p < n; ++p) {
            if (!ready[p])
                continue;
            if (rng.bernoulli(config.requestProbability)) {
                const int target =
                    static_cast<int>(rng.uniformInt(m));
                if (waiting[target].empty())
                    busyModules.insert(static_cast<std::size_t>(target));
                waiting[target].push_back(p);
                ++waitingTotal;
                ready[p] = 0;
            }
            // else: stays ready, draws again next slot.
        }

        // Idle-slot fast path (the think-batching analogue for this
        // slot-stepped simulator): with nothing waiting, arbitration
        // and service are no-ops that consume no RNG -- skip them.
        if (waitingTotal == 0) {
            if (measured) {
                result.busyPmf[0] += 1.0;
                ++servicedHist[0];
            }
            continue;
        }

        // 2. Arbitration: modules with work, capped at b buses chosen
        //    uniformly at random.
        busy.clear();
        busyModules.forEach([&](std::size_t mod) {
            busy.push_back(static_cast<int>(mod));
        });

        if (measured)
            result.busyPmf[busy.size()] += 1.0;

        int serviced = static_cast<int>(busy.size());
        if (serviced > b) {
            // Partial Fisher-Yates: the first b entries become a
            // uniform random subset.
            for (int i = 0; i < b; ++i) {
                const auto j =
                    i + static_cast<int>(
                            rng.uniformInt(busy.size() - i));
                std::swap(busy[i], busy[j]);
            }
            serviced = b;
        }

        // 3. Service one random request at each granted module.
        next_ready.clear();
        for (int i = 0; i < serviced; ++i) {
            auto &bag = waiting[busy[i]];
            const auto pick = rng.pickIndex(bag.size());
            const int proc = bag[pick];
            bag[pick] = bag.back();
            bag.pop_back();
            if (bag.empty())
                busyModules.erase(static_cast<std::size_t>(busy[i]));
            --waitingTotal;
            next_ready.push_back(proc);
            if (measured)
                ++completions;
        }
        for (int proc : next_ready)
            ready[proc] = 1;
        if (measured)
            ++servicedHist[static_cast<std::size_t>(serviced)];
    }

    result.measuredSlots = config.measureSlots;
    result.completions = completions;
    result.bandwidth = static_cast<double>(completions) /
                       static_cast<double>(config.measureSlots);
    result.processorEfficiency =
        result.bandwidth / static_cast<double>(n);
    for (auto &v : result.busyPmf)
        v /= static_cast<double>(config.measureSlots);

    // Bus k is busy in a slot iff at least k+1 modules are serviced:
    // suffix-sum the serviced histogram. Buses beyond min(n, m) can
    // never be busy and report zero.
    result.perBusBusySlots.assign(static_cast<std::size_t>(b), 0);
    result.perBusUtilization.assign(static_cast<std::size_t>(b), 0.0);
    std::uint64_t suffix = 0;
    for (std::size_t s = servicedHist.size(); s-- > 1;) {
        suffix += servicedHist[s];
        result.perBusBusySlots[s - 1] = suffix;
    }
    for (std::size_t k = 0; k < result.perBusBusySlots.size(); ++k)
        result.perBusUtilization[k] =
            static_cast<double>(result.perBusBusySlots[k]) /
            static_cast<double>(config.measureSlots);
    return result;
}

MultibusSimResult
runCrossbarSim(int n, int m, double p, std::uint64_t seed,
               std::uint64_t warmup_slots, std::uint64_t measure_slots)
{
    MultibusSimConfig config;
    config.numProcessors = n;
    config.numModules = m;
    config.buses = std::min(n, m);
    config.requestProbability = p;
    config.seed = seed;
    config.warmupSlots = warmup_slots;
    config.measureSlots = measure_slots;
    return runMultibusSim(config);
}

} // namespace sbn
