/**
 * @file
 * Synchronous simulator for multiple-bus (and crossbar) baselines.
 *
 * The paper compares the multiplexed single bus against a crossbar
 * clocked at the processor cycle (r+2)t, and against the b-bus
 * multiple-bus network of reference [5]. Both are synchronous
 * machines: in every cycle (slot), each memory module with pending
 * requests services one of them, limited to at most b modules per
 * slot (b >= min(n, m) == crossbar). Serviced processors draw a new
 * request with probability p at the start of the next slot
 * (Bhandarkar's discrete model, paper reference [1]).
 *
 * The analytic counterparts (occupancy chain) only cover p = 1; this
 * simulator provides the p < 1 baselines used by Figures 3/6 and the
 * conclusion crossover claims.
 */

#ifndef SBN_BASELINES_MULTIBUS_SIM_HH
#define SBN_BASELINES_MULTIBUS_SIM_HH

#include <cstdint>
#include <vector>

namespace sbn {

/** Parameters for the synchronous baseline simulators. */
struct MultibusSimConfig
{
    int numProcessors = 8; //!< n
    int numModules = 8;    //!< m
    int buses = 8;         //!< b; >= min(n, m) behaves as a crossbar
    double requestProbability = 1.0; //!< p, drawn each ready slot

    std::uint64_t seed = 1;
    std::uint64_t warmupSlots = 2000;
    std::uint64_t measureSlots = 50000;

    void validate() const;
};

/** Outputs of a baseline run. */
struct MultibusSimResult
{
    std::uint64_t measuredSlots = 0;
    std::uint64_t completions = 0;

    /** Requests serviced per slot == EBW at crossbar cycle (r+2)t. */
    double bandwidth = 0.0;

    /** bandwidth / n. */
    double processorEfficiency = 0.0;

    /** Stationary pmf of busy-module count (index = x). */
    std::vector<double> busyPmf;

    /**
     * Per-bus busy slot counts (index = bus): bus k carries a
     * transfer in exactly the slots where at least k+1 modules are
     * serviced, so entry k counts those slots. Derived from the
     * serviced-count histogram after the run - the accounting
     * consumes no RNG and perturbs nothing.
     */
    std::vector<std::uint64_t> perBusBusySlots;

    /** perBusBusySlots / measuredSlots. */
    std::vector<double> perBusUtilization;
};

/** Run the synchronous b-bus simulation. */
MultibusSimResult runMultibusSim(const MultibusSimConfig &config);

/** Crossbar convenience wrapper: b = min(n, m). */
MultibusSimResult runCrossbarSim(int n, int m, double p = 1.0,
                                 std::uint64_t seed = 1,
                                 std::uint64_t warmup_slots = 2000,
                                 std::uint64_t measure_slots = 50000);

} // namespace sbn

#endif // SBN_BASELINES_MULTIBUS_SIM_HH
