/**
 * @file
 * Golden-reference regression tests for the analytic models at the
 * exact grid points behind the paper's Tables 1-4 and Figures
 * 2/3/5/6.
 *
 * Each test evaluates the analytic model(s) a reproduction artifact
 * rests on over that artifact's full parameter grid and compares
 * against values checked in under tests/golden/. A model regression
 * (a changed recurrence, a broken cache, an altered chain) now fails
 * ctest instead of only shifting numbers in bench output that nobody
 * diffs.
 *
 * The goldens pin *analytic* values only - they are deterministic
 * closed-form/chain solves, so the comparison tolerance is tight
 * (1e-6 relative, far below any model-visible change, far above
 * libm/compiler jitter). Simulation cells of the same artifacts are
 * covered by the shape tests in test_system_vs_models.cc.
 *
 * Figures 3/6 sweep the request probability p, where the only
 * p-capable analytic models in the library are the MVA family; their
 * values are pinned at the figures' exact grid coordinates as
 * regression anchors (the unbuffered p < 1 system has no analytic
 * counterpart - the paper simulates it).
 *
 * Regenerating after an intentional model change:
 *
 *     SBN_REGEN_GOLDEN=1 ./build/tests/sbn_tests \
 *         --gtest_filter='Golden*'
 *
 * rewrites the files in the source tree (see docs/testing.md), then a
 * normal run must pass and the diff gets reviewed like code.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "analytic/crossbar.hh"
#include "analytic/detmva.hh"
#include "analytic/memprio.hh"
#include "analytic/mva.hh"
#include "analytic/procprio.hh"

#ifndef SBN_GOLDEN_DIR
#error "SBN_GOLDEN_DIR must point at the tests/golden source directory"
#endif

namespace sbn {
namespace {

struct GoldenEntry
{
    std::string label;
    double value;
};

std::string
goldenPath(const std::string &name)
{
    return std::string(SBN_GOLDEN_DIR) + "/" + name + ".txt";
}

/**
 * Compare @p computed against the checked-in golden file, or rewrite
 * the file when SBN_REGEN_GOLDEN is set (the test then reports
 * skipped so a regen run is visibly not a validation run).
 */
void
checkAgainstGolden(const std::string &name,
                   const std::vector<GoldenEntry> &computed)
{
    const std::string path = goldenPath(name);

    if (std::getenv("SBN_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << "# Golden analytic values for " << name
            << " (label value; see docs/testing.md).\n"
            << "# Regenerate with SBN_REGEN_GOLDEN=1 after an "
               "intentional model change.\n";
        char buffer[64];
        for (const GoldenEntry &e : computed) {
            std::snprintf(buffer, sizeof buffer, "%.17g", e.value);
            out << e.label << ' ' << buffer << '\n';
        }
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " - run with SBN_REGEN_GOLDEN=1 to create it";

    std::vector<GoldenEntry> expected;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t split = line.rfind(' ');
        ASSERT_NE(split, std::string::npos) << "bad line: " << line;
        expected.push_back({line.substr(0, split),
                            std::strtod(line.c_str() + split, nullptr)});
    }

    ASSERT_EQ(expected.size(), computed.size())
        << "golden file " << path
        << " and computed grid disagree on size - regenerate if the "
           "grid changed intentionally";
    for (std::size_t i = 0; i < computed.size(); ++i) {
        EXPECT_EQ(computed[i].label, expected[i].label)
            << "entry " << i << " of " << path;
        const double tolerance =
            1e-6 * std::max(1.0, std::abs(expected[i].value));
        EXPECT_NEAR(computed[i].value, expected[i].value, tolerance)
            << computed[i].label << " in " << path;
    }
}

std::string
cellLabel(int n, int m, int r)
{
    return "n=" + std::to_string(n) + " m=" + std::to_string(m) +
           " r=" + std::to_string(r);
}

std::string
formatP(double p)
{
    char buffer[16];
    std::snprintf(buffer, sizeof buffer, "%.1f", p);
    return buffer;
}

// Grid constants mirror the corresponding bench/ drivers; the golden
// labels carry the coordinates, so a silent drift between the two
// shows up as a label mismatch, not a wrong-value surprise.

TEST(GoldenTables, Table1MemPrioExactChain)
{
    std::vector<GoldenEntry> computed;
    for (int n : {2, 4, 6, 8}) {
        for (int m : {2, 4, 6, 8}) {
            const int r = std::min(n, m) + 7;
            computed.push_back(
                {cellLabel(n, m, r), memprioExactEbw(n, m, r)});
        }
    }
    checkAgainstGolden("table1", computed);
}

TEST(GoldenTables, Table2MemPrioApproximations)
{
    std::vector<GoldenEntry> computed;
    for (int n : {2, 4, 6, 8}) {
        for (int m : {2, 4, 6, 8}) {
            const int r = std::min(n, m) + 7;
            computed.push_back({cellLabel(n, m, r) + " approx",
                                memprioApproxEbw(n, m, r)});
            computed.push_back({cellLabel(n, m, r) + " symmetric",
                                memprioApproxSymmetricEbw(n, m, r)});
        }
    }
    checkAgainstGolden("table2", computed);
}

TEST(GoldenTables, Table3ProcPrioReducedChain)
{
    std::vector<GoldenEntry> computed;
    for (int m : {4, 6, 8, 10, 12, 14, 16}) {
        for (int r : {2, 4, 6, 8, 10, 12}) {
            const ProcPrioChain chain(8, m, r);
            computed.push_back({cellLabel(8, m, r), chain.ebw()});
        }
    }
    checkAgainstGolden("table3", computed);
}

TEST(GoldenTables, Table4BufferedDeterministicMva)
{
    std::vector<GoldenEntry> computed;
    for (int m : {4, 6, 8, 10, 12, 14, 16}) {
        for (int r : {6, 8, 10, 12, 14, 16, 18, 20, 22, 24}) {
            computed.push_back(
                {cellLabel(8, m, r),
                 mvaBufferedBusDeterministic(8, m, r).ebw});
        }
    }
    checkAgainstGolden("table4", computed);
}

TEST(GoldenFigures, Fig2PriorityChainsAndCrossbar)
{
    std::vector<GoldenEntry> computed;
    for (const auto &[n, m] : {std::pair{4, 4}, std::pair{8, 8},
                               std::pair{8, 16}, std::pair{16, 16}}) {
        computed.push_back({"n=" + std::to_string(n) +
                                " m=" + std::to_string(m) + " crossbar",
                            crossbarEbw(n, m)});
        for (int r : {2, 4, 6, 8, 12, 16, 20, 24}) {
            const ProcPrioChain chain(n, m, r);
            computed.push_back(
                {cellLabel(n, m, r) + " procprio", chain.ebw()});
            computed.push_back({cellLabel(n, m, r) + " memprio",
                                memprioExactEbw(n, m, r)});
        }
    }
    checkAgainstGolden("fig2", computed);
}

TEST(GoldenFigures, Fig3MvaAnchorsOverP)
{
    std::vector<GoldenEntry> computed;
    for (int r : {4, 8, 12, 16}) {
        const ProcPrioChain chain(8, 16, r);
        computed.push_back(
            {cellLabel(8, 16, r) + " p=1.0 procprio", chain.ebw()});
        for (double p :
             {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
            computed.push_back(
                {cellLabel(8, 16, r) + " p=" + formatP(p) + " detmva",
                 mvaBufferedBusDeterministic(8, 16, r, p).ebw});
        }
    }
    checkAgainstGolden("fig3", computed);
}

TEST(GoldenFigures, Fig5BufferedAndUnbufferedModels)
{
    std::vector<GoldenEntry> computed;
    for (const auto &[n, m] : {std::pair{16, 16}, std::pair{8, 16},
                               std::pair{8, 8}}) {
        computed.push_back({"n=" + std::to_string(n) +
                                " m=" + std::to_string(m) + " crossbar",
                            crossbarEbw(n, m)});
        for (int r : {2, 4, 6, 8, 10, 12, 14, 16, 20, 24}) {
            computed.push_back(
                {cellLabel(n, m, r) + " detmva",
                 mvaBufferedBusDeterministic(n, m, r).ebw});
            const ProcPrioChain chain(n, m, r);
            computed.push_back(
                {cellLabel(n, m, r) + " procprio", chain.ebw()});
        }
    }
    checkAgainstGolden("fig5", computed);
}

TEST(GoldenFigures, Fig6BufferedMvaOverP)
{
    std::vector<GoldenEntry> computed;
    for (int r : {4, 8, 12, 16}) {
        for (double p : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
            const std::string at =
                cellLabel(8, 16, r) + " p=" + formatP(p);
            computed.push_back(
                {at + " detmva",
                 mvaBufferedBusDeterministic(8, 16, r, p).ebw});
            computed.push_back(
                {at + " mva", mvaBufferedBus(8, 16, r, p).ebw});
        }
    }
    checkAgainstGolden("fig6", computed);
}

} // namespace
} // namespace sbn
