/**
 * @file
 * Unit tests for the RNG: determinism, range correctness and first
 * moments of every distribution the simulators draw from.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/random.hh"

namespace sbn {
namespace {

TEST(Random, DeterministicForFixedSeed)
{
    RandomGenerator a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    RandomGenerator a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Random, ReseedRestartsTrajectory)
{
    RandomGenerator a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.seed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Random, UniformIntStaysInRange)
{
    RandomGenerator rng(3);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 2000; ++i)
            EXPECT_LT(rng.uniformInt(bound), bound);
    }
}

TEST(Random, UniformIntIsRoughlyUniform)
{
    RandomGenerator rng(5);
    const int bound = 8;
    const int draws = 80000;
    std::vector<int> counts(bound, 0);
    for (int i = 0; i < draws; ++i)
        ++counts[rng.uniformInt(bound)];
    const double expect = static_cast<double>(draws) / bound;
    for (int c : counts)
        EXPECT_NEAR(c, expect, 5.0 * std::sqrt(expect));
}

TEST(Random, UniformRangeInclusive)
{
    RandomGenerator rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Random, UniformRealMoments)
{
    RandomGenerator rng(13);
    const int draws = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < draws; ++i) {
        const double u = rng.uniformReal();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
        sq += u * u;
    }
    EXPECT_NEAR(sum / draws, 0.5, 0.005);
    EXPECT_NEAR(sq / draws, 1.0 / 3.0, 0.005);
}

TEST(Random, BernoulliMean)
{
    RandomGenerator rng(17);
    for (double p : {0.0, 0.25, 0.5, 0.9, 1.0}) {
        int hits = 0;
        const int draws = 50000;
        for (int i = 0; i < draws; ++i)
            hits += rng.bernoulli(p);
        EXPECT_NEAR(static_cast<double>(hits) / draws, p, 0.01)
            << "p=" << p;
    }
}

TEST(Random, ExponentialMean)
{
    RandomGenerator rng(19);
    const double mean = 7.5;
    double sum = 0.0;
    const int draws = 200000;
    for (int i = 0; i < draws; ++i)
        sum += rng.exponential(mean);
    EXPECT_NEAR(sum / draws, mean, 0.1);
}

TEST(Random, GeometricMean)
{
    RandomGenerator rng(23);
    const double p = 0.3;
    double sum = 0.0;
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // E[failures before success] = (1-p)/p.
    EXPECT_NEAR(sum / draws, (1.0 - p) / p, 0.05);
    EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Random, ShuffleIsPermutation)
{
    RandomGenerator rng(29);
    std::vector<std::size_t> v(10);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = i;
    rng.shuffle(v);
    std::set<std::size_t> seen(v.begin(), v.end());
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Random, DeriveSeedDeterministic)
{
    RandomGenerator a(31), b(31);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.deriveSeed(), b.deriveSeed());
}

// The next four tests pin *stream position* semantics: geometric(p)
// consumes exactly one Bernoulli per failure plus one for the
// success, and degenerate Bernoulli probabilities consume nothing.
// The cycle-skipping kernel's think calendar replays per-cycle
// Bernoulli draws in classic event order (it deliberately does NOT
// batch them through geometric(), which would reorder the shared
// stream across processors -- see src/core/system.hh); these tests
// guard the draw-count contract that makes the two framings
// equivalent for a lone thinker and keep geometric() honest for any
// future consumer.

TEST(Random, GeometricMatchesManualBernoulliLoop)
{
    for (double p : {0.15, 0.5, 0.85}) {
        RandomGenerator batched(421), manual(421);
        for (int trial = 0; trial < 200; ++trial) {
            const std::uint64_t failures = batched.geometric(p);
            std::uint64_t expected = 0;
            while (!manual.bernoulli(p))
                ++expected;
            EXPECT_EQ(failures, expected) << "p=" << p;
        }
        // Both generators must sit at the same stream position.
        EXPECT_EQ(batched.next(), manual.next()) << "p=" << p;
    }
}

TEST(Random, GeometricConsumesOneDrawPerTrial)
{
    RandomGenerator counted(77), reference(77);
    std::uint64_t draws = 0;
    for (int trial = 0; trial < 100; ++trial)
        draws += counted.geometric(0.25) + 1; // failures + the success
    for (std::uint64_t i = 0; i < draws; ++i)
        (void)reference.uniformReal(); // one next() per Bernoulli
    EXPECT_EQ(counted.next(), reference.next());
}

TEST(Random, GeometricCertainSuccessConsumesNothing)
{
    RandomGenerator a(99), b(99);
    EXPECT_EQ(a.geometric(1.0), 0u);
    EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DegenerateBernoulliConsumesNothing)
{
    RandomGenerator a(1234), b(1234);
    EXPECT_FALSE(a.bernoulli(0.0));
    EXPECT_FALSE(a.bernoulli(-1.0));
    EXPECT_TRUE(a.bernoulli(1.0));
    EXPECT_TRUE(a.bernoulli(2.0));
    EXPECT_EQ(a.next(), b.next());
}

} // namespace
} // namespace sbn
