/**
 * @file
 * Sharded-sweep subsystem tests: deterministic partitioning, record
 * serialization, merge validation, and the core contract - for any
 * shard count, layout and thread count, merged shard output is
 * byte-identical to the single-process streamed run, and a killed
 * shard resumes without recomputing finished points.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/fingerprint.hh"
#include "exec/adaptive.hh"
#include "exec/parallel_runner.hh"
#include "shard/merge.hh"
#include "shard/plan.hh"
#include "shard/result_io.hh"
#include "shard/runner.hh"

namespace sbn {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "sbn_shard_" + name;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** The small simulation grid the determinism tests sweep. */
SweepSpec
testSpec()
{
    SweepSpec spec;
    spec.base.numProcessors = 4;
    spec.base.numModules = 4;
    spec.base.warmupCycles = 200;
    spec.base.measureCycles = 2000;
    spec.base.seed = 99;
    spec.memoryRatios = {2, 4};
    spec.requestProbabilities = {0.3, 1.0};
    spec.policies = {ArbitrationPolicy::ProcessorPriority,
                     ArbitrationPolicy::MemoryPriority};
    return spec;
}

double
ebwOf(const SystemConfig &cfg)
{
    return runEbw(cfg);
}

double
ebwWithSeed(const SystemConfig &cfg, std::uint64_t seed)
{
    SystemConfig c = cfg;
    c.seed = seed;
    return runEbw(c);
}

// ---------------------------------------------------------------- plan

TEST(ShardPlan, PartitionsAreCompleteAndDisjoint)
{
    for (const std::size_t grid : {0ul, 1ul, 7ul, 12ul, 40ul}) {
        for (const std::size_t shards : {1ul, 2ul, 3ul, 5ul, 13ul}) {
            for (const ShardLayout layout :
                 {ShardLayout::Contiguous, ShardLayout::Strided}) {
                const ShardPlan plan(grid, shards, layout);
                std::set<std::size_t> seen;
                for (std::size_t s = 0; s < shards; ++s) {
                    const auto indices = plan.indices(s);
                    EXPECT_EQ(indices.size(), plan.shardSize(s));
                    for (std::size_t k = 0; k < indices.size(); ++k) {
                        if (k > 0) {
                            EXPECT_LT(indices[k - 1], indices[k]);
                        }
                        EXPECT_LT(indices[k], grid);
                        EXPECT_EQ(plan.owner(indices[k]), s);
                        EXPECT_TRUE(seen.insert(indices[k]).second)
                            << "index owned twice";
                    }
                }
                EXPECT_EQ(seen.size(), grid)
                    << "grid " << grid << " shards " << shards;
            }
        }
    }
}

TEST(ShardPlan, ContiguousBalancesTheRemainderUpFront)
{
    const ShardPlan plan(10, 4, ShardLayout::Contiguous);
    EXPECT_EQ(plan.shardSize(0), 3u);
    EXPECT_EQ(plan.shardSize(1), 3u);
    EXPECT_EQ(plan.shardSize(2), 2u);
    EXPECT_EQ(plan.shardSize(3), 2u);
    EXPECT_EQ(plan.indices(1), (std::vector<std::size_t>{3, 4, 5}));
}

TEST(ShardPlan, StridedSamplesTheWholeRange)
{
    const ShardPlan plan(10, 4, ShardLayout::Strided);
    EXPECT_EQ(plan.indices(1), (std::vector<std::size_t>{1, 5, 9}));
}

TEST(ShardSpecParse, AcceptsCanonicalForms)
{
    const ShardSpec spec = ShardSpec::parse("2/4");
    EXPECT_EQ(spec.index, 2u);
    EXPECT_EQ(spec.count, 4u);
    EXPECT_EQ(spec.toString(), "2/4");
}

TEST(ShardSpecParseDeathTest, RejectsMalformedSpecs)
{
    EXPECT_DEATH((void)ShardSpec::parse(""), "malformed");
    EXPECT_DEATH((void)ShardSpec::parse("3"), "malformed");
    EXPECT_DEATH((void)ShardSpec::parse("/4"), "malformed");
    EXPECT_DEATH((void)ShardSpec::parse("1/"), "malformed");
    EXPECT_DEATH((void)ShardSpec::parse("a/4"), "malformed");
    EXPECT_DEATH((void)ShardSpec::parse("1/4x"), "malformed");
    EXPECT_DEATH((void)ShardSpec::parse("-1/4"), "malformed");
    EXPECT_DEATH((void)ShardSpec::parse("4/4"), "out of range");
    EXPECT_DEATH((void)ShardSpec::parse("0/0"), "must be >= 1");
}

// ------------------------------------------------------------- records

PointRecord
sampleRecord()
{
    SystemConfig cfg;
    cfg.seed = 1234;
    AdaptiveEstimate estimate;
    estimate.estimate.mean = 3.0169472740767436;
    estimate.estimate.halfWidth = 0.001953125;
    estimate.estimate.samples = 8;
    estimate.rounds = 2;
    estimate.converged = true;
    return makeAdaptiveRecord(7, cfg, estimate, PrecisionTarget{},
                              RoundSchedule{});
}

TEST(PointRecordIo, RoundTripsBitExactly)
{
    const PointRecord record = sampleRecord();
    PointRecord parsed;
    std::string error;
    ASSERT_TRUE(parseRecord(formatRecord(record), parsed, error))
        << error;
    EXPECT_TRUE(parsed.bitIdentical(record));
    // Deterministic serialization: same record, same bytes.
    EXPECT_EQ(formatRecord(record), formatRecord(parsed));
}

TEST(PointRecordIo, RoundTripsAwkwardDoubles)
{
    SystemConfig cfg;
    for (const double value :
         {0.0, -0.0, 1.0 / 3.0, 1e-308, 6.3e303, 0.1}) {
        const PointRecord record = makeSweepRecord(0, cfg, value);
        PointRecord parsed;
        std::string error;
        ASSERT_TRUE(parseRecord(formatRecord(record), parsed, error))
            << error;
        EXPECT_TRUE(parsed.bitIdentical(record)) << value;
    }
}

TEST(PointRecordIo, StrictParserRejectsTampering)
{
    const std::string good = formatRecord(sampleRecord());
    PointRecord parsed;
    std::string error;

    // Unknown type tag (v2 records predate the latency group).
    std::string bad = good;
    bad.replace(bad.find("sbn.point.v3"), 12, "sbn.point.v2");
    EXPECT_FALSE(parseRecord(bad, parsed, error));

    // Empty workload name.
    bad = good;
    bad.replace(bad.find("\"workload\":\"uniform\""), 20,
                "\"workload\":\"\"");
    EXPECT_FALSE(parseRecord(bad, parsed, error));

    // Missing key.
    bad = good;
    bad.replace(bad.find(",\"seed\""), 1, "");
    EXPECT_FALSE(parseRecord(bad, parsed, error));

    // Decimal/bits disagreement: nudge the decimal mean only.
    bad = good;
    const std::size_t mean_pos = bad.find("\"mean\":");
    bad.replace(mean_pos + 7, 1, "4");
    EXPECT_FALSE(parseRecord(bad, parsed, error));
    EXPECT_NE(error.find("disagrees"), std::string::npos) << error;

    // Trailing junk.
    EXPECT_FALSE(parseRecord(good + "x", parsed, error));

    // Unknown extra key.
    bad = good;
    bad.insert(bad.size() - 1, ",\"extra\":1");
    EXPECT_FALSE(parseRecord(bad, parsed, error));

    // Nested objects are not part of the grammar.
    EXPECT_FALSE(parseRecord("{\"type\":{}}", parsed, error));
}

TEST(PointRecordIo, LenientReadDropsOnlyATruncatedTail)
{
    const std::string path = tempPath("lenient.jsonl");
    const PointRecord record = sampleRecord();
    {
        std::ofstream out(path);
        out << formatRecord(record) << '\n'
            << formatRecord(record).substr(0, 40); // killed mid-append
    }
    const auto records =
        readRecordFile(path, /*tolerate_partial_tail=*/true);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(records[0].bitIdentical(record));
    std::remove(path.c_str());
}

TEST(PointRecordIoDeathTest, StrictReadRejectsTruncatedTail)
{
    const std::string path = tempPath("strict.jsonl");
    {
        std::ofstream out(path);
        out << formatRecord(sampleRecord()) << '\n' << "{\"type\":";
    }
    EXPECT_DEATH((void)readRecordFile(path, false), "malformed");
    std::remove(path.c_str());
}

TEST(ShardDir, WritableDirectoryPasses)
{
    const std::string dir = tempPath("writable_dir");
    ensureWritableShardDir(dir); // creates it
    ensureWritableShardDir(dir); // and accepts it existing
    ::rmdir(dir.c_str());
}

TEST(ShardDirDeathTest, FatalWhenShardDirIsAFile)
{
    // The classic mid-run failure: --shard-dir points at an existing
    // regular file. This must fail up front with a clear message (and
    // unlike a permissions probe it fails for root too).
    const std::string path = tempPath("dir_is_a_file");
    {
        std::ofstream out(path);
        out << "not a directory\n";
    }
    EXPECT_DEATH(ensureWritableShardDir(path), "not a directory");
    std::remove(path.c_str());
}

TEST(ShardDirDeathTest, FatalWhenParentMissing)
{
    const std::string dir =
        tempPath("no_such_parent") + "/nested/shards";
    EXPECT_DEATH(ensureWritableShardDir(dir),
                 "cannot create shard directory");
}

TEST(ShardDirDeathTest, FatalWhenDirectoryIsReadOnly)
{
    if (::geteuid() == 0)
        GTEST_SKIP() << "running as root: permission bits are "
                        "advisory, the write probe would succeed";
    const std::string dir = tempPath("readonly_dir");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0) << dir;
    ASSERT_EQ(::chmod(dir.c_str(), 0555), 0);
    EXPECT_DEATH(ensureWritableShardDir(dir), "is not writable");
    ::chmod(dir.c_str(), 0777);
    ::rmdir(dir.c_str());
}

// --------------------------------------------------------------- merge

TEST(Merge, AcceptsBitIdenticalDuplicatesAcrossFiles)
{
    const std::vector<SystemConfig> points = testSpec().materialize();
    const std::string a = tempPath("dup_a.jsonl");
    const std::string b = tempPath("dup_b.jsonl");
    runShardSweep(points, {0, 2}, ShardLayout::Contiguous, ebwOf, a);
    // Shard 1's file recomputes the whole grid: overlap with shard 0
    // is bit-identical, so the merge keeps one copy of each.
    runShardSweep(points, {0, 1}, ShardLayout::Contiguous, ebwOf, b);
    const auto merged =
        mergeRecordFiles({a, b}, sweepMergeCheck(points));
    EXPECT_EQ(merged.size(), points.size());
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(MergeDeathTest, RejectsHolesConflictsAndForeignRecords)
{
    const std::vector<SystemConfig> points = testSpec().materialize();
    const std::string a = tempPath("bad_a.jsonl");
    runShardSweep(points, {0, 2}, ShardLayout::Contiguous, ebwOf, a);

    // Holes: shard 1 of 2 never ran.
    EXPECT_DEATH(
        (void)mergeRecordFiles({a}, sweepMergeCheck(points)),
        "have no record");

    // Foreign records: same file against a different-seed sweep.
    std::vector<SystemConfig> other = points;
    for (SystemConfig &cfg : other)
        cfg.seed += 1;
    EXPECT_DEATH(
        (void)mergeRecordFiles({a}, sweepMergeCheck(other)),
        "different grid, seed, or precision");

    // Conflicting duplicate: flip a value but keep fingerprints.
    const auto records = readRecordFile(a, false);
    const std::string b = tempPath("bad_b.jsonl");
    {
        RecordWriter writer(b, false);
        PointRecord tampered = records[0];
        tampered.mean += 1.0;
        writer.add(tampered);
    }
    EXPECT_DEATH((void)mergeRecordFiles(
                     {a, b}, structuralMergeCheck(points.size())),
                 "appears twice with different contents");

    std::remove(a.c_str());
    std::remove(b.c_str());
}

// -------------------------------------------------- determinism core

/** Serial reference: the streamed run's records, serialized. */
std::string
serialSweepBytes(const std::vector<SystemConfig> &points,
                 unsigned threads)
{
    ParallelRunner runner(threads);
    std::ostringstream os;
    runner.mapConfigsStreamed(
        points, ebwOf,
        [&](std::size_t i, const SystemConfig &cfg, double value) {
            os << formatRecord(makeSweepRecord(i, cfg, value))
               << '\n';
        });
    return os.str();
}

std::string
serialAdaptiveBytes(const std::vector<SystemConfig> &points,
                    const PrecisionTarget &target,
                    const RoundSchedule &schedule, unsigned threads)
{
    ParallelRunner runner(threads);
    const AdaptiveReplicator replicator(runner, target, schedule);
    std::ostringstream os;
    replicator.runPoints(
        points, ebwWithSeed,
        [&](std::size_t i, const SystemConfig &cfg,
            const AdaptiveEstimate &estimate) {
            os << formatRecord(makeAdaptiveRecord(i, cfg, estimate,
                                                  target, schedule))
               << '\n';
        });
    return os.str();
}

std::string
mergedBytes(const std::vector<PointRecord> &records)
{
    std::ostringstream os;
    writeRecords(os, records);
    return os.str();
}

TEST(ShardDeterminism, MergedSweepIsByteIdenticalToSerial)
{
    const std::vector<SystemConfig> points = testSpec().materialize();
    const std::string serial = serialSweepBytes(points, 1);

    for (const unsigned threads : {1u, 4u}) {
        // The serial stream itself is thread-count invariant.
        EXPECT_EQ(serialSweepBytes(points, threads), serial);

        for (const std::size_t shards : {1ul, 2ul, 3ul, 5ul}) {
            for (const ShardLayout layout :
                 {ShardLayout::Contiguous, ShardLayout::Strided}) {
                std::vector<std::string> paths;
                for (std::size_t s = 0; s < shards; ++s) {
                    paths.push_back(tempPath(
                        "det_" + std::to_string(threads) + "_" +
                        std::to_string(shards) + "_" +
                        std::to_string(s) + ".jsonl"));
                    runShardSweep(points, {s, shards}, layout, ebwOf,
                                  paths.back(), false, threads);
                }
                const auto merged = mergeRecordFiles(
                    paths, sweepMergeCheck(points));
                EXPECT_EQ(mergedBytes(merged), serial)
                    << shards << " shards, " << threads
                    << " thread(s), " << shardLayoutName(layout);
                for (const std::string &path : paths)
                    std::remove(path.c_str());
            }
        }
    }
}

TEST(ShardDeterminism, MergedAdaptiveSweepIsByteIdenticalToSerial)
{
    const std::vector<SystemConfig> points = testSpec().materialize();
    PrecisionTarget target;
    target.relative = 0.02;
    RoundSchedule schedule;
    schedule.initial = 2;
    schedule.cap = 8;

    const std::string serial =
        serialAdaptiveBytes(points, target, schedule, 1);
    EXPECT_EQ(serialAdaptiveBytes(points, target, schedule, 4),
              serial);

    for (const std::size_t shards : {2ul, 4ul}) {
        for (const unsigned threads : {1u, 4u}) {
            std::vector<std::string> paths;
            for (std::size_t s = 0; s < shards; ++s) {
                paths.push_back(tempPath(
                    "adet_" + std::to_string(threads) + "_" +
                    std::to_string(shards) + "_" +
                    std::to_string(s) + ".jsonl"));
                runShardAdaptive(points, {s, shards},
                                 ShardLayout::Strided, target,
                                 schedule, ebwWithSeed, paths.back(),
                                 false, threads);
            }
            const auto merged = mergeRecordFiles(
                paths, adaptiveMergeCheck(points, target, schedule));
            EXPECT_EQ(mergedBytes(merged), serial)
                << shards << " shards, " << threads << " thread(s)";
            for (const std::string &path : paths)
                std::remove(path.c_str());
        }
    }
}

// -------------------------------------------------------------- resume

TEST(ShardResume, SkipsFinishedPointsAndReproducesIdenticalRecords)
{
    const std::vector<SystemConfig> points = testSpec().materialize();
    const ShardSpec shard{0, 1};
    const std::string fresh = tempPath("resume_fresh.jsonl");
    runShardSweep(points, shard, ShardLayout::Contiguous, ebwOf,
                  fresh);
    const std::string fresh_bytes = fileBytes(fresh);

    // Kill after 3 records plus half a line; resume must keep the 3,
    // recompute the rest, and converge to the identical file.
    const std::string killed = tempPath("resume_killed.jsonl");
    {
        const auto records = readRecordFile(fresh, false);
        std::ofstream out(killed, std::ios::binary);
        for (std::size_t i = 0; i < 3; ++i)
            out << formatRecord(records[i]) << '\n';
        out << formatRecord(records[3]).substr(0, 25);
    }
    std::size_t evaluated = 0;
    const auto counting = [&](const SystemConfig &cfg) {
        ++evaluated;
        return runEbw(cfg);
    };
    const ShardRunStats stats =
        runShardSweep(points, shard, ShardLayout::Contiguous,
                      counting, killed, /*resume=*/true);
    EXPECT_EQ(stats.owned, points.size());
    EXPECT_EQ(stats.skipped, 3u);
    EXPECT_EQ(stats.computed, points.size() - 3);
    EXPECT_EQ(evaluated, points.size() - 3)
        << "resume recomputed finished points";
    EXPECT_EQ(fileBytes(killed), fresh_bytes);

    // Resuming a complete file computes nothing at all.
    evaluated = 0;
    runShardSweep(points, shard, ShardLayout::Contiguous, counting,
                  killed, /*resume=*/true);
    EXPECT_EQ(evaluated, 0u);
    EXPECT_EQ(fileBytes(killed), fresh_bytes);

    std::remove(fresh.c_str());
    std::remove(killed.c_str());
}

TEST(ShardResume, DiscardsStaleRecordsFromADifferentSetup)
{
    const std::vector<SystemConfig> points = testSpec().materialize();
    const ShardSpec shard{0, 1};

    // Records for a different seed: every fingerprint mismatches, so
    // a resume recomputes everything and ends bit-identical to a
    // fresh run.
    std::vector<SystemConfig> other = points;
    for (SystemConfig &cfg : other)
        cfg.seed += 17;
    const std::string path = tempPath("resume_stale.jsonl");
    runShardSweep(other, shard, ShardLayout::Contiguous, ebwOf, path);

    const ShardRunStats stats = runShardSweep(
        points, shard, ShardLayout::Contiguous, ebwOf, path,
        /*resume=*/true);
    EXPECT_EQ(stats.skipped, 0u);
    EXPECT_EQ(stats.computed, points.size());

    const std::string fresh = tempPath("resume_stale_fresh.jsonl");
    runShardSweep(points, shard, ShardLayout::Contiguous, ebwOf,
                  fresh);
    EXPECT_EQ(fileBytes(path), fileBytes(fresh));

    std::remove(path.c_str());
    std::remove(fresh.c_str());
}

TEST(ShardResume, ReadsATailTornMidFloat)
{
    // A worker killed mid-append can cut the line anywhere - including
    // inside a floating-point token. The lenient tail read must drop
    // exactly that line and the resume must converge byte-identically.
    const std::vector<SystemConfig> points = testSpec().materialize();
    const ShardSpec shard{0, 1};
    const std::string fresh = tempPath("torn_fresh.jsonl");
    runShardSweep(points, shard, ShardLayout::Contiguous, ebwOf,
                  fresh);
    const std::string fresh_bytes = fileBytes(fresh);

    // Cut the final line a few characters into its last "0x..." bit
    // pattern: a float value torn mid-token.
    const std::size_t cut = fresh_bytes.rfind("0x") + 5;
    ASSERT_LT(cut, fresh_bytes.size());
    const std::string torn = tempPath("torn_midfloat.jsonl");
    {
        std::ofstream out(torn, std::ios::binary);
        out << fresh_bytes.substr(0, cut);
    }

    const auto parsed = readRecordFile(torn, true);
    EXPECT_EQ(parsed.size(), points.size() - 1);

    const ShardRunStats stats = runShardSweep(
        points, shard, ShardLayout::Contiguous, ebwOf, torn,
        /*resume=*/true);
    EXPECT_EQ(stats.skipped, points.size() - 1);
    EXPECT_EQ(stats.computed, 1u);
    EXPECT_EQ(fileBytes(torn), fresh_bytes);

    std::remove(fresh.c_str());
    std::remove(torn.c_str());
}

TEST(ShardResume, RemovesStaleRewriteTemps)
{
    // A worker killed between writing the rewrite temp and renaming
    // it leaves "<file>.tmp.<pid>" behind; the rename never happened,
    // so the temp is garbage a resume must clean up.
    const std::vector<SystemConfig> points = testSpec().materialize();
    const ShardSpec shard{0, 1};
    const std::string path = tempPath("staletmp.jsonl");
    runShardSweep(points, shard, ShardLayout::Contiguous, ebwOf,
                  path);
    const std::string bytes = fileBytes(path);

    const std::string stale = path + ".tmp.4242";
    {
        std::ofstream out(stale);
        out << "partial rewrite from a dead worker\n";
    }
    EXPECT_EQ(removeStaleRewriteTemps(path), 1u);
    struct stat info;
    EXPECT_NE(::stat(stale.c_str(), &info), 0) << "temp not removed";
    EXPECT_EQ(removeStaleRewriteTemps(path), 0u); // idempotent

    // And the resume path does it implicitly.
    {
        std::ofstream out(stale);
        out << "again\n";
    }
    runShardSweep(points, shard, ShardLayout::Contiguous, ebwOf,
                  path, /*resume=*/true);
    EXPECT_NE(::stat(stale.c_str(), &info), 0);
    EXPECT_EQ(fileBytes(path), bytes);

    std::remove(path.c_str());
}

TEST(MergeDeathTest, MissingPointReportNamesOwnerFilesAndIndices)
{
    // Strict-merge holes must name the exact missing indices and the
    // shard file expected to own them, not just a count.
    const std::vector<SystemConfig> points = testSpec().materialize();
    const std::string dir = tempPath("missing_report");
    ensureWritableShardDir(dir);
    runShardSweep(points, {0, 2}, ShardLayout::Contiguous, ebwOf,
                  shardFilePath(dir, {0, 2}));

    MergeCheck check = sweepMergeCheck(points);
    check.shardCount = 2;
    check.layout = ShardLayout::Contiguous;
    check.dir = dir;
    EXPECT_DEATH(
        (void)mergeRecordFiles({shardFilePath(dir, {0, 2})}, check),
        "shard-1-of-2.jsonl: 4 missing \\(indices 4, 5, 6, 7\\)");

    std::remove(shardFilePath(dir, {0, 2}).c_str());
    ::rmdir(dir.c_str());
}

TEST(ShardResume, AdaptiveResumeSkipsConvergedPoints)
{
    const std::vector<SystemConfig> points = testSpec().materialize();
    PrecisionTarget target;
    target.relative = 0.02;
    RoundSchedule schedule;
    schedule.initial = 2;
    schedule.cap = 8;
    const ShardSpec shard{1, 2};

    const std::string fresh = tempPath("aresume_fresh.jsonl");
    runShardAdaptive(points, shard, ShardLayout::Contiguous, target,
                     schedule, ebwWithSeed, fresh);
    const std::string fresh_bytes = fileBytes(fresh);

    const std::string killed = tempPath("aresume_killed.jsonl");
    {
        const auto records = readRecordFile(fresh, false);
        std::ofstream out(killed, std::ios::binary);
        out << formatRecord(records[0]) << '\n';
    }
    std::size_t evaluations = 0;
    const ShardRunStats stats = runShardAdaptive(
        points, shard, ShardLayout::Contiguous, target, schedule,
        [&](const SystemConfig &cfg, std::uint64_t seed) {
            ++evaluations;
            return ebwWithSeed(cfg, seed);
        },
        killed, /*resume=*/true);
    EXPECT_EQ(stats.skipped, 1u);
    EXPECT_GT(evaluations, 0u);
    EXPECT_EQ(fileBytes(killed), fresh_bytes);

    std::remove(fresh.c_str());
    std::remove(killed.c_str());
}

// ------------------------------------------------------- fingerprints

TEST(Fingerprint, DistinguishesResultDeterminingFields)
{
    SystemConfig base;
    const std::uint64_t fp = configFingerprint(base);

    SystemConfig changed = base;
    changed.seed += 1;
    EXPECT_NE(configFingerprint(changed), fp);

    changed = base;
    changed.requestProbability = 0.5;
    EXPECT_NE(configFingerprint(changed), fp);

    changed = base;
    changed.policy = ArbitrationPolicy::MemoryPriority;
    EXPECT_NE(configFingerprint(changed), fp);

    // Workload fields are result-determining.
    changed = base;
    changed.workload.pattern = ReferencePattern::HotSpot;
    changed.workload.hotFraction = 0.25;
    EXPECT_NE(configFingerprint(changed), fp);

    changed = base;
    changed.workload.think = ThinkModel::TwoClass;
    changed.workload.fastCount = 2;
    changed.workload.fastProbability = 0.9;
    changed.workload.slowProbability = 0.1;
    EXPECT_NE(configFingerprint(changed), fp);

    // Presentation-only fields are excluded.
    changed = base;
    changed.collectWaitHistogram = true;
    EXPECT_EQ(configFingerprint(changed), fp);

    EXPECT_TRUE(formatFingerprint(fp).rfind("0x", 0) == 0);
    std::uint64_t parsed = 0;
    EXPECT_TRUE(parseFingerprint(formatFingerprint(fp), parsed));
    EXPECT_EQ(parsed, fp);
    EXPECT_FALSE(parseFingerprint("0x123", parsed));
    EXPECT_FALSE(parseFingerprint("123", parsed));
}

TEST(Fingerprint, RunFingerprintsBindTheMode)
{
    const std::uint64_t config_fp = configFingerprint(SystemConfig{});
    const std::uint64_t sweep_fp = sweepRunFingerprint(config_fp);
    PrecisionTarget target;
    RoundSchedule schedule;
    const std::uint64_t adaptive_fp =
        adaptiveRunFingerprint(config_fp, target, schedule);
    EXPECT_NE(sweep_fp, adaptive_fp);

    PrecisionTarget tighter = target;
    tighter.relative = 0.01;
    EXPECT_NE(adaptiveRunFingerprint(config_fp, tighter, schedule),
              adaptive_fp);
    RoundSchedule larger = schedule;
    larger.cap = 128;
    EXPECT_NE(adaptiveRunFingerprint(config_fp, target, larger),
              adaptive_fp);
}

} // namespace
} // namespace sbn
