/**
 * @file
 * Fault-tolerance tests: the SBN_FAULT grammar, the ShardSupervisor
 * recovery machinery (retry/backoff, liveness, work stealing,
 * graceful exhaustion), and the headline contract - for a fixed
 * seed, any injected single-fault schedule converges to merged
 * output byte-identical to the serial run.
 *
 * The supervisor forks real worker processes from the test binary;
 * worker bodies run single-threaded (sharedParallelRunner(1) is the
 * inline path), so a forked child never touches a thread pool whose
 * threads died at fork.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "shard/fault.hh"
#include "shard/merge.hh"
#include "shard/plan.hh"
#include "shard/result_io.hh"
#include "shard/runner.hh"
#include "shard/supervisor.hh"
#include "util/logging.hh"

namespace sbn {
namespace {

std::string
tempDir(const std::string &name)
{
    const std::string dir =
        ::testing::TempDir() + "sbn_fault_" + name;
    std::string cmd = "rm -rf '" + dir + "'";
    if (std::system(cmd.c_str()) != 0)
        ADD_FAILURE() << "cannot clear " << dir;
    ensureWritableShardDir(dir);
    return dir;
}

/** Scoped environment variable; restores "unset" on destruction. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const std::string &value) : name_(name)
    {
        ::setenv(name_, value.c_str(), 1);
    }
    ~EnvGuard() { ::unsetenv(name_); }

  private:
    const char *name_;
};

/** The small simulation grid the recovery tests sweep (8 points). */
SweepSpec
testSpec()
{
    SweepSpec spec;
    spec.base.numProcessors = 4;
    spec.base.numModules = 4;
    spec.base.warmupCycles = 200;
    spec.base.measureCycles = 2000;
    spec.base.seed = 99;
    spec.memoryRatios = {2, 4};
    spec.requestProbabilities = {0.3, 1.0};
    spec.policies = {ArbitrationPolicy::ProcessorPriority,
                     ArbitrationPolicy::MemoryPriority};
    return spec;
}

double
ebwOf(const SystemConfig &cfg)
{
    return runEbw(cfg);
}

std::string
serialBytes(const std::vector<SystemConfig> &points)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < points.size(); ++i)
        os << formatRecord(makeSweepRecord(i, points[i],
                                           ebwOf(points[i])))
           << '\n';
    return os.str();
}

/** Supervision config tuned for tests: tiny backoff, fast polling. */
SupervisorConfig
testConfig(const std::string &dir, const MergeCheck &check,
           std::size_t shard_count)
{
    SupervisorConfig config;
    config.shardCount = shard_count;
    config.dir = dir;
    config.layout = ShardLayout::Contiguous;
    config.expectedRunFp = check.expectedRunFp;
    config.backoffInitialSeconds = 0.02;
    config.backoffCapSeconds = 0.1;
    config.pollMillis = 5;
    return config;
}

/** Worker body every supervisor test uses: plain sweep, 1 thread. */
WorkerBody
sweepBody(const std::vector<SystemConfig> &points)
{
    return [&points](const WorkerTask &task) {
        if (task.steal)
            runStolenPointsSweep(points, task.points, ebwOf,
                                 task.outPath, 1);
        else
            runShardSweep(points, task.shard, ShardLayout::Contiguous,
                          ebwOf, task.outPath,
                          /*resume=*/task.attempt > 0, 1);
    };
}

std::string
mergedBytes(const SupervisorReport &report, const MergeCheck &check)
{
    const PartialMerge merged = collectRecordFiles(
        report.recordFiles, check, /*tolerate_partial_tail=*/true);
    std::ostringstream os;
    writeRecords(os, merged.records);
    return os.str();
}

// ------------------------------------------------------- grammar

TEST(FaultPlanParse, AcceptsTheDocumentedClauses)
{
    FaultPlan plan;
    std::string error;

    ASSERT_TRUE(parseFaultPlan("", plan, error));
    EXPECT_FALSE(plan.active);

    ASSERT_TRUE(parseFaultPlan(
        "shard=1,attempt=2,kill_after_records=3,truncate_tail=40",
        plan, error))
        << error;
    EXPECT_TRUE(plan.active);
    EXPECT_EQ(plan.shard, 1u);
    EXPECT_EQ(plan.attempt, 2u);
    EXPECT_EQ(plan.killAfterRecords, 3u);
    EXPECT_EQ(plan.truncateTail, 40u);

    ASSERT_TRUE(parseFaultPlan(
        "shard=any,attempt=any,hang_after_records=2", plan, error))
        << error;
    EXPECT_EQ(plan.shard, kFaultAnyShard);
    EXPECT_EQ(plan.attempt, kFaultAnyAttempt);
    EXPECT_EQ(plan.hangAfterRecords, 2u);

    ASSERT_TRUE(parseFaultPlan("fail_write_at=5", plan, error))
        << error;
    EXPECT_EQ(plan.failWriteAt, 5u);
    EXPECT_EQ(plan.shard, kFaultAnyShard); // default target: any

    ASSERT_TRUE(parseFaultPlan("abort_in_merge", plan, error))
        << error;
    EXPECT_TRUE(plan.abortInMerge);
}

TEST(FaultPlanParse, RejectsMalformedSpecs)
{
    FaultPlan plan;
    std::string error;
    const char *bad[] = {
        "shard=x,kill_after_records=1", // non-numeric selector
        "kill_after_records=0",         // zero count
        "kill_after_records=1,,",       // stray comma
        "truncate_tail=8",              // modifier without its action
        "kill_after_records=1,hang_after_records=1", // exclusive
        "shard=1",                      // selectors only, no action
        "abort_in_merge=1",             // flag clause takes no value
        "explode=now",                  // unknown clause
    };
    for (const char *text : bad) {
        EXPECT_FALSE(parseFaultPlan(text, plan, error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(FaultPlanParse, AcceptsTheServiceClauses)
{
    FaultPlan plan;
    std::string error;

    // Every documented journal state is a valid crash target.
    for (const char *state : kFaultJournalStates) {
        ASSERT_TRUE(parseFaultPlan(
            std::string("crash_after_journal=") + state, plan,
            error))
            << state << ": " << error;
        EXPECT_TRUE(plan.active);
        EXPECT_EQ(plan.crashAfterJournal, state);
    }

    ASSERT_TRUE(parseFaultPlan("crash_in_merge", plan, error))
        << error;
    EXPECT_TRUE(plan.crashInMerge);

    ASSERT_TRUE(parseFaultPlan("stall_accept", plan, error)) << error;
    EXPECT_TRUE(plan.stallAccept);

    // Service clauses count as actions: selectors + a service clause
    // must not trip the "no action given" check.
    ASSERT_TRUE(parseFaultPlan("attempt=any,crash_in_merge", plan,
                               error))
        << error;
    EXPECT_EQ(plan.attempt, kFaultAnyAttempt);
    EXPECT_TRUE(plan.crashInMerge);
}

TEST(FaultPlanParse, RejectsMalformedServiceClauses)
{
    FaultPlan plan;
    std::string error;
    const char *bad[] = {
        "crash_after_journal",          // needs a state value
        "crash_after_journal=sideways", // unknown journal state
        "crash_after_journal=Running",  // states are lowercase
        "crash_in_merge=1",             // flag clause takes no value
        "stall_accept=yes",             // flag clause takes no value
    };
    for (const char *text : bad) {
        EXPECT_FALSE(parseFaultPlan(text, plan, error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(FaultPlanParse, ScopeGatesArming)
{
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(parseFaultPlan("shard=2,attempt=1,kill_after_records=1",
                               plan, error));

    setFaultProcessScope(2, 1);
    EXPECT_TRUE(faultArmed(plan));
    setFaultProcessScope(2, 0);
    EXPECT_FALSE(faultArmed(plan)); // wrong attempt
    setFaultProcessScope(1, 1);
    EXPECT_FALSE(faultArmed(plan)); // wrong shard
    setFaultProcessScope(kFaultNoShard, 0);
    EXPECT_FALSE(faultArmed(plan)); // orchestrators are not shard 2

    ASSERT_TRUE(parseFaultPlan("kill_after_records=1", plan, error));
    EXPECT_TRUE(faultArmed(plan)); // shard=any matches everyone
    setFaultProcessScope(kFaultNoShard, 1);
    EXPECT_FALSE(faultArmed(plan)); // ...at attempt 0 only, by default
    setFaultProcessScope(kFaultNoShard, 0);
}

// ---------------------------------------------- supervised recovery

TEST(Supervisor, CleanFleetMatchesSerialRun)
{
    const std::vector<SystemConfig> points = testSpec().materialize();
    const std::string dir = tempDir("clean");
    MergeCheck check = sweepMergeCheck(points);
    check.shardCount = 4;
    check.layout = ShardLayout::Contiguous;
    check.dir = dir;

    ShardSupervisor supervisor(testConfig(dir, check, 4),
                               sweepBody(points));
    const SupervisorReport report = supervisor.run();

    ASSERT_TRUE(report.complete);
    EXPECT_EQ(report.respawns, 0u);
    for (const ShardOutcome &outcome : report.shards) {
        EXPECT_EQ(outcome.state, ShardState::Done);
        EXPECT_EQ(outcome.launches, 1u);
    }
    EXPECT_EQ(mergedBytes(report, check), serialBytes(points));
}

TEST(Supervisor, SingleFaultKillMatrixConvergesByteIdentically)
{
    const std::vector<SystemConfig> points = testSpec().materialize();
    const std::string serial = serialBytes(points);

    // Kill shard 1 (2 owned points) at each record boundary, with
    // and without a torn tail - every schedule must converge to the
    // serial bytes via one respawn.
    for (std::size_t k = 1; k <= 2; ++k) {
        for (const bool torn : {false, true}) {
            const std::string dir = tempDir(
                "kill" + std::to_string(k) + (torn ? "t" : ""));
            MergeCheck check = sweepMergeCheck(points);
            check.shardCount = 4;
            check.layout = ShardLayout::Contiguous;
            check.dir = dir;

            std::string fault = "shard=1,kill_after_records=" +
                                std::to_string(k);
            if (torn)
                fault += ",truncate_tail=40";
            const EnvGuard guard(kFaultEnvVar, fault);

            ShardSupervisor supervisor(testConfig(dir, check, 4),
                                       sweepBody(points));
            const SupervisorReport report = supervisor.run();

            ASSERT_TRUE(report.complete) << fault;
            EXPECT_EQ(report.respawns, 1u) << fault;
            EXPECT_EQ(report.shards[1].launches, 2u) << fault;
            EXPECT_EQ(mergedBytes(report, check), serial) << fault;
        }
    }
}

TEST(Supervisor, EveryShardCrashingOnceStillConverges)
{
    // The sampled multi-fault schedule: shard=any kills *each* worker
    // after its first record on attempt 0; all four respawn and
    // resume.
    const std::vector<SystemConfig> points = testSpec().materialize();
    const std::string dir = tempDir("allcrash");
    MergeCheck check = sweepMergeCheck(points);
    check.shardCount = 4;
    check.layout = ShardLayout::Contiguous;
    check.dir = dir;

    const EnvGuard guard(kFaultEnvVar,
                         "shard=any,kill_after_records=1,"
                         "truncate_tail=25");
    SupervisorConfig config = testConfig(dir, check, 4);
    config.workStealing = false; // keep the respawn count exact
    ShardSupervisor supervisor(config, sweepBody(points));
    const SupervisorReport report = supervisor.run();

    ASSERT_TRUE(report.complete);
    EXPECT_EQ(report.respawns, 4u);
    EXPECT_EQ(mergedBytes(report, check), serialBytes(points));
}

TEST(Supervisor, InjectedWriteFailureIsRetried)
{
    const std::vector<SystemConfig> points = testSpec().materialize();
    const std::string dir = tempDir("wfail");
    MergeCheck check = sweepMergeCheck(points);
    check.shardCount = 2;
    check.layout = ShardLayout::Contiguous;
    check.dir = dir;

    // The worker's 2nd record append reports a write error through
    // the fatal path (exit 1, not a signal); the respawn runs clean.
    const EnvGuard guard(kFaultEnvVar, "shard=0,fail_write_at=2");
    ShardSupervisor supervisor(testConfig(dir, check, 2),
                               sweepBody(points));
    const SupervisorReport report = supervisor.run();

    ASSERT_TRUE(report.complete);
    EXPECT_EQ(report.shards[0].launches, 2u);
    EXPECT_EQ(mergedBytes(report, check), serialBytes(points));
}

TEST(Supervisor, HungWorkerIsDetectedKilledAndRetried)
{
    const std::vector<SystemConfig> points = testSpec().materialize();
    const std::string dir = tempDir("hang");
    MergeCheck check = sweepMergeCheck(points);
    check.shardCount = 4;
    check.layout = ShardLayout::Contiguous;
    check.dir = dir;

    const EnvGuard guard(kFaultEnvVar,
                         "shard=2,hang_after_records=1");
    SupervisorConfig config = testConfig(dir, check, 4);
    config.hangTimeoutSeconds = 0.3;
    ShardSupervisor supervisor(config, sweepBody(points));
    const SupervisorReport report = supervisor.run();

    ASSERT_TRUE(report.complete);
    EXPECT_TRUE(report.shards[2].everHung);
    EXPECT_EQ(report.shards[2].launches, 2u);
    EXPECT_EQ(mergedBytes(report, check), serialBytes(points));
}

TEST(Supervisor, StealRescuesAShardThatNeverMakesProgress)
{
    // Shard 1's first record append fails on *every* attempt, so its
    // own workers can never contribute a single record. Work
    // stealing targets shard faults by scope, so the steal worker
    // (which is not shard 1) computes the victim's points cleanly
    // and the fleet still completes byte-identically.
    const std::vector<SystemConfig> points = testSpec().materialize();
    const std::string dir = tempDir("steal");
    MergeCheck check = sweepMergeCheck(points);
    check.shardCount = 4;
    check.layout = ShardLayout::Contiguous;
    check.dir = dir;

    const EnvGuard guard(kFaultEnvVar,
                         "shard=1,attempt=any,fail_write_at=1");
    SupervisorConfig config = testConfig(dir, check, 4);
    config.maxRetries = 0;
    ShardSupervisor supervisor(config, sweepBody(points));
    const SupervisorReport report = supervisor.run();

    ASSERT_TRUE(report.complete);
    EXPECT_EQ(report.shards[1].state, ShardState::Exhausted);
    EXPECT_GE(report.stealLaunches, 1u);
    EXPECT_GE(report.stolenPoints, 2u); // shard 1 owns {2, 3}
    EXPECT_EQ(mergedBytes(report, check), serialBytes(points));
}

TEST(Supervisor, ExhaustionDegradesToPartialResultAndManifest)
{
    const std::vector<SystemConfig> points = testSpec().materialize();
    const std::string dir = tempDir("exhaust");
    MergeCheck check = sweepMergeCheck(points);
    check.shardCount = 4;
    check.layout = ShardLayout::Contiguous;
    check.dir = dir;

    const EnvGuard guard(
        kFaultEnvVar, "shard=1,attempt=any,kill_after_records=1");
    SupervisorConfig config = testConfig(dir, check, 4);
    config.maxRetries = 0;
    config.workStealing = false;
    ShardSupervisor supervisor(config, sweepBody(points));
    const SupervisorReport report = supervisor.run();

    ASSERT_FALSE(report.complete);
    EXPECT_EQ(report.shards[1].state, ShardState::Exhausted);
    EXPECT_EQ(report.shards[1].launches, 1u);

    // Shard 1 of 4 owns contiguous indices {2, 3}; the first record
    // (index 2) was flushed before the kill, so exactly {3} is
    // missing - and everything else merged fine.
    ASSERT_EQ(report.missingPoints,
              (std::vector<std::size_t>{3}));
    const PartialMerge merged = collectRecordFiles(
        report.recordFiles, check, /*tolerate_partial_tail=*/true);
    EXPECT_EQ(merged.records.size(), points.size() - 1);
    EXPECT_EQ(merged.missing, report.missingPoints);

    // The machine-readable manifest names the index and the shard
    // file expected to own it.
    const std::string path = missingManifestPath(dir);
    writeMissingPointsManifest(path, check, report.missingPoints);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream os;
    os << in.rdbuf();
    const std::string manifest = os.str();
    EXPECT_NE(manifest.find("\"type\":\"sbn.missing.v1\""),
              std::string::npos);
    EXPECT_NE(manifest.find("\"count\":1"), std::string::npos);
    EXPECT_NE(manifest.find("\"i\":3"), std::string::npos);
    EXPECT_NE(manifest.find("\"shard\":1"), std::string::npos);
    EXPECT_NE(manifest.find(shardFilePath(dir, {1, 4})),
              std::string::npos);
}

TEST(Supervisor, InterruptKillsWorkersAndReportsTheSignal)
{
    // The supervisor's own SIGINT/SIGTERM contract: every live worker
    // is killed and reaped before run() returns, and the report
    // carries the signal so orchestrators can exit 128 + sig. The
    // supervisor runs in a forked child here because the test must
    // deliver a real SIGTERM to it without killing the test binary.
    const std::vector<SystemConfig> points = testSpec().materialize();
    const std::string dir = tempDir("interrupt");
    MergeCheck check = sweepMergeCheck(points);
    check.shardCount = 2;
    check.layout = ShardLayout::Contiguous;
    check.dir = dir;

    const pid_t child = ::fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
        // Supervisor process. Workers publish their pid and hang
        // forever; only the interrupt path can end this fleet.
        const WorkerBody body = [&dir](const WorkerTask &task) {
            std::ofstream out(dir + "/worker-" +
                              std::to_string(task.shard.index) +
                              ".pid");
            out << ::getpid() << '\n';
            out.close();
            for (;;)
                ::pause();
        };
        ShardSupervisor supervisor(testConfig(dir, check, 2), body);
        const SupervisorReport report = supervisor.run();
        if (report.interruptSignal != SIGTERM)
            ::_exit(7);
        if (report.complete)
            ::_exit(8);
        ::_exit(42);
    }

    // Wait for both workers to publish their pids.
    std::vector<pid_t> workers;
    for (int spin = 0; spin < 2000 && workers.size() < 2; ++spin) {
        workers.clear();
        for (int shard = 0; shard < 2; ++shard) {
            std::ifstream in(dir + "/worker-" +
                             std::to_string(shard) + ".pid");
            pid_t pid = 0;
            if (in >> pid && pid > 0)
                workers.push_back(pid);
        }
        if (workers.size() < 2)
            ::usleep(5000);
    }
    ASSERT_EQ(workers.size(), 2u) << "workers never started";

    ASSERT_EQ(::kill(child, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status)) << describeWaitStatus(status);
    EXPECT_EQ(WEXITSTATUS(status), 42) << describeWaitStatus(status);

    // The supervisor reaped its workers before exiting, so the pids
    // must be gone entirely - not zombies, not orphans.
    for (const pid_t pid : workers) {
        errno = 0;
        EXPECT_EQ(::kill(pid, 0), -1) << "worker " << pid
                                      << " still alive";
        EXPECT_EQ(errno, ESRCH) << "worker " << pid;
    }
}

TEST(FaultDeathTest, AbortInMergeCrashesTheMergeStage)
{
    const std::vector<SystemConfig> points = testSpec().materialize();
    const std::string dir = tempDir("abortmerge");
    runShardSweep(points, {0, 1}, ShardLayout::Contiguous, ebwOf,
                  shardFilePath(dir, {0, 1}), false, 1);

    const MergeCheck check = sweepMergeCheck(points);
    EXPECT_DEATH(
        {
            ::setenv(kFaultEnvVar, "abort_in_merge", 1);
            mergeRecordFiles({shardFilePath(dir, {0, 1})}, check);
        },
        "");
}

TEST(FaultDeathTest, MalformedFaultSpecIsFatalNotIgnored)
{
    SystemConfig cfg = testSpec().materialize().front();
    const std::string dir = tempDir("badspec");
    EXPECT_DEATH(
        {
            ::setenv(kFaultEnvVar, "kill_after_records=banana", 1);
            std::vector<SystemConfig> one{cfg};
            runShardSweep(one, {0, 1}, ShardLayout::Contiguous,
                          ebwOf, shardFilePath(dir, {0, 1}), false,
                          1);
        },
        "must not silently run fault-free");
}

// -------------------------------------------------------- plumbing

TEST(Supervisor, StateNamesAreStable)
{
    EXPECT_STREQ(shardStateName(ShardState::Pending), "pending");
    EXPECT_STREQ(shardStateName(ShardState::Running), "running");
    EXPECT_STREQ(shardStateName(ShardState::Backoff), "backoff");
    EXPECT_STREQ(shardStateName(ShardState::Done), "done");
    EXPECT_STREQ(shardStateName(ShardState::Exhausted), "exhausted");
}

TEST(Supervisor, ManifestPathIsCanonical)
{
    EXPECT_EQ(missingManifestPath("out"), "out/missing-points.json");
    EXPECT_EQ(missingManifestPath("out/"), "out/missing-points.json");
}

} // namespace
} // namespace sbn
