/**
 * @file
 * Shared helper for exact-match golden Metrics pinning (see
 * docs/testing.md). A golden file holds "label value" lines; values
 * are compared as serialized strings (%.17g for doubles, so the
 * comparison is bit-exact), and SBN_REGEN_GOLDEN=1 regenerates the
 * file in the source tree instead of comparing.
 */

#ifndef SBN_TESTS_GOLDEN_UTIL_HH
#define SBN_TESTS_GOLDEN_UTIL_HH

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/fingerprint.hh"

#ifndef SBN_GOLDEN_DIR
#error "SBN_GOLDEN_DIR must point at the tests/golden source directory"
#endif

namespace sbn::golden {

struct GoldenLine
{
    std::string label;
    std::string value; //!< exact serialized form
};

inline std::string
exact(double value)
{
    return formatExactDouble(value);
}

inline std::string
exact(std::uint64_t value)
{
    return std::to_string(value);
}

/** Exact-match golden comparison (or regen under SBN_REGEN_GOLDEN). */
inline void
checkExactGolden(const std::string &name,
                 const std::vector<GoldenLine> &computed)
{
    const std::string path =
        std::string(SBN_GOLDEN_DIR) + "/" + name + ".txt";

    if (std::getenv("SBN_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << "# Pinned simulator Metrics (label value; exact "
               "match; see docs/testing.md).\n"
            << "# Regenerate with SBN_REGEN_GOLDEN=1 after an "
               "intentional kernel-behavior change.\n";
        for (const GoldenLine &line : computed)
            out << line.label << ' ' << line.value << '\n';
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " - run with SBN_REGEN_GOLDEN=1 to create it";

    std::vector<GoldenLine> expected;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t split = line.rfind(' ');
        ASSERT_NE(split, std::string::npos) << "bad line: " << line;
        expected.push_back(
            {line.substr(0, split), line.substr(split + 1)});
    }

    ASSERT_EQ(expected.size(), computed.size())
        << "golden file " << path
        << " and computed grid disagree on size - regenerate if the "
           "grid changed intentionally";
    for (std::size_t i = 0; i < computed.size(); ++i) {
        EXPECT_EQ(computed[i].label, expected[i].label)
            << "entry " << i << " of " << path;
        EXPECT_EQ(computed[i].value, expected[i].value)
            << computed[i].label << " in " << path
            << " - simulator behavior drifted";
    }
}

} // namespace sbn::golden

#endif // SBN_TESTS_GOLDEN_UTIL_HH
