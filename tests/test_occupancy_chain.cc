/**
 * @file
 * Tests for the exact occupancy-chain engine: state enumeration,
 * transition stochasticity, n/m symmetry, brute-force cross-checks on
 * tiny systems and service-cap behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "analytic/occupancy_chain.hh"
#include "util/combinatorics.hh"
#include "util/random.hh"

namespace sbn {
namespace {

TEST(OccupancyChain, StateCountIsPartitionCount)
{
    // Partitions of n into at most m parts.
    OccupancyChain c44(4, 4, 4);
    EXPECT_EQ(c44.numStates(), 5u); // 4, 31, 22, 211, 1111
    OccupancyChain c42(4, 2, 2);
    EXPECT_EQ(c42.numStates(), 3u); // 4, 31, 22
    OccupancyChain c88(8, 8, 8);
    EXPECT_EQ(c88.numStates(), 22u); // p(8)
}

TEST(OccupancyChain, RowsAreStochastic)
{
    for (int cap : {1, 2, 3, 5}) {
        OccupancyChain chain(5, 4, cap);
        chain.chain().validate(1e-9);
    }
}

TEST(OccupancyChain, TwoByTwoHandComputed)
{
    // n=2, m=2, full service (cap >= 2): states {2}, {1,1}.
    // From {2}: one serviced, re-picks uniformly: {2} w.p. 1/2,
    // {1,1} w.p. 1/2. From {1,1}: both serviced, land on same module
    // w.p. 1/2 -> {2}, split w.p. 1/2 -> {1,1}.
    OccupancyChain chain(2, 2, 2);
    const auto &dtmc = chain.chain();
    std::map<std::vector<int>, std::size_t> idx;
    for (std::size_t s = 0; s < chain.numStates(); ++s)
        idx[chain.states()[s]] = s;

    const auto s2 = idx.at({2});
    const auto s11 = idx.at({1, 1});
    EXPECT_NEAR(dtmc.probability(s2, s2), 0.5, 1e-12);
    EXPECT_NEAR(dtmc.probability(s2, s11), 0.5, 1e-12);
    EXPECT_NEAR(dtmc.probability(s11, s2), 0.5, 1e-12);
    EXPECT_NEAR(dtmc.probability(s11, s11), 0.5, 1e-12);

    const auto result = chain.solve();
    EXPECT_NEAR(result.meanBusy, 1.5, 1e-12);
}

TEST(OccupancyChain, CapOneSerializesService)
{
    // With one bus (cap 1) exactly one request is serviced per cycle
    // regardless of the state, so meanServiced == 1.
    for (int n : {2, 3, 5}) {
        for (int m : {2, 4}) {
            OccupancyChain chain(n, m, 1);
            EXPECT_NEAR(chain.solve().meanServiced, 1.0, 1e-12)
                << "n=" << n << " m=" << m;
        }
    }
}

TEST(OccupancyChain, MeanServicedMonotoneInCap)
{
    double prev = 0.0;
    for (int cap = 1; cap <= 6; ++cap) {
        OccupancyChain chain(6, 6, cap);
        const double serviced = chain.solve().meanServiced;
        EXPECT_GE(serviced, prev - 1e-12) << "cap=" << cap;
        prev = serviced;
    }
}

TEST(OccupancyChain, FullCapApproximatelySymmetricInNM)
{
    // The crossbar bandwidth chain is symmetric in n and m to about
    // three decimals (the precision at which the paper's Table 1
    // reports symmetry); the exact values differ in the fourth
    // decimal for n != m (verified against brute force below).
    for (int n : {2, 3, 4, 6}) {
        for (int m : {2, 3, 4, 6}) {
            OccupancyChain a(n, m, std::min(n, m));
            OccupancyChain b(m, n, std::min(n, m));
            EXPECT_NEAR(a.solve().meanBusy, b.solve().meanBusy, 1.5e-3)
                << "n=" << n << " m=" << m;
        }
    }
}

TEST(OccupancyChain, BusyPmfSumsToOne)
{
    OccupancyChain chain(7, 5, 3);
    const auto result = chain.solve();
    double total = 0.0;
    for (double v : result.busyPmf)
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_NEAR(result.busyPmf[0], 0.0, 1e-12); // n >= 1
}

/**
 * Brute-force reference: simulate the chain dynamics directly on
 * distinguishable modules and compare the stationary busy-count pmf.
 */
std::vector<double>
bruteForceBusyPmf(int n, int m, int cap, std::uint64_t iters)
{
    RandomGenerator rng(12345);
    std::vector<int> occupancy(m, 0);
    occupancy[0] = n; // all requests on module 0 initially

    std::vector<double> pmf(std::min(n, m) + 1, 0.0);
    std::vector<int> busy;

    const std::uint64_t warmup = iters / 10;
    for (std::uint64_t it = 0; it < iters; ++it) {
        busy.clear();
        for (int i = 0; i < m; ++i)
            if (occupancy[i] > 0)
                busy.push_back(i);
        if (it >= warmup)
            pmf[busy.size()] += 1.0;

        int serviced = static_cast<int>(busy.size());
        if (serviced > cap) {
            for (int i = 0; i < cap; ++i) {
                const auto j = i + static_cast<int>(rng.uniformInt(
                                       busy.size() - i));
                std::swap(busy[i], busy[j]);
            }
            serviced = cap;
        }
        for (int i = 0; i < serviced; ++i)
            --occupancy[busy[i]];
        for (int i = 0; i < serviced; ++i)
            ++occupancy[rng.uniformInt(m)];
    }
    for (auto &v : pmf)
        v /= static_cast<double>(iters - warmup);
    return pmf;
}

TEST(OccupancyChain, MatchesBruteForceSimulation)
{
    struct Case { int n, m, cap; };
    for (const auto &[n, m, cap] :
         {Case{3, 3, 3}, Case{4, 2, 2}, Case{4, 4, 2}, Case{5, 3, 1},
          Case{6, 4, 3}}) {
        OccupancyChain chain(n, m, cap);
        const auto exact = chain.solve().busyPmf;
        const auto brute = bruteForceBusyPmf(n, m, cap, 400000);
        for (std::size_t x = 0; x < exact.size(); ++x)
            EXPECT_NEAR(exact[x], brute[x], 0.01)
                << "n=" << n << " m=" << m << " cap=" << cap
                << " x=" << x;
    }
}

TEST(OccupancyChain, SingleProcessorDegenerate)
{
    // n=1: the single request moves uniformly; exactly one module busy.
    OccupancyChain chain(1, 4, 1);
    const auto result = chain.solve();
    EXPECT_NEAR(result.meanBusy, 1.0, 1e-12);
    EXPECT_NEAR(result.busyPmf[1], 1.0, 1e-12);
}

TEST(OccupancyChain, SingleModuleDegenerate)
{
    // m=1: all requests pile on the one module; it is always busy.
    OccupancyChain chain(5, 1, 3);
    const auto result = chain.solve();
    EXPECT_EQ(chain.numStates(), 1u);
    EXPECT_NEAR(result.meanBusy, 1.0, 1e-12);
    EXPECT_NEAR(result.meanServiced, 1.0, 1e-12);
}

} // namespace
} // namespace sbn
