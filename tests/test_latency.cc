/**
 * @file
 * Latency-distribution tests (config.collectLatency): passivity of
 * the collection, determinism of the flat-JSON render across thread
 * counts and shard/serial merge order, internal consistency of the
 * wait/residence histograms against the scalar wait statistics, and
 * the record-carried quantile summary.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/experiment.hh"
#include "core/metrics.hh"
#include "exec/parallel_runner.hh"
#include "stats/accumulator.hh"

namespace sbn {
namespace {

/** A saturated config: demand far beyond what the bus can serve, so
 *  waits are long and the distribution has a pronounced right tail. */
SystemConfig
saturatedConfig()
{
    SystemConfig cfg;
    cfg.numProcessors = 16;
    cfg.numModules = 4;
    cfg.memoryRatio = 8;
    cfg.requestProbability = 0.9;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 30000;
    cfg.collectLatency = true;
    cfg.seed = 41;
    return cfg;
}

/** Per-replication configs with deterministically distinct seeds. */
std::vector<SystemConfig>
replicationConfigs(const SystemConfig &base, std::size_t count)
{
    std::vector<SystemConfig> configs(count, base);
    for (std::size_t i = 0; i < count; ++i)
        configs[i].seed = base.seed + 1000 * (i + 1);
    return configs;
}

TEST(Latency, CollectionIsPassive)
{
    // Enabling collectLatency must not perturb the simulation: every
    // other metric is bit-identical with and without it, in both
    // kernels.
    for (KernelKind kernel :
         {KernelKind::CycleSkip, KernelKind::FastStat}) {
        SystemConfig off = saturatedConfig();
        off.kernel = kernel;
        off.collectLatency = false;
        SystemConfig on = off;
        on.collectLatency = true;

        const Metrics a = runOnce(off);
        const Metrics b = runOnce(on);
        EXPECT_EQ(a.ebw, b.ebw);
        EXPECT_EQ(a.completedRequests, b.completedRequests);
        EXPECT_EQ(a.meanWaitCycles, b.meanWaitCycles);
        EXPECT_EQ(a.meanServiceCycles, b.meanServiceCycles);
        EXPECT_FALSE(a.latencyWait.has_value());
        ASSERT_TRUE(b.latencyWait.has_value());
        ASSERT_TRUE(b.latencyResidence.has_value());
        EXPECT_GT(b.latencyWait->count(), 0u);
    }
}

TEST(Latency, ResidenceHistogramMatchesServiceStats)
{
    // Residence samples (issue -> delivery) are the same multiset as
    // the service-time accumulator, so the histogram's exact mean
    // reproduces meanServiceCycles, and the wait histogram (issue ->
    // service start) sits strictly inside it.
    const Metrics m = runOnce(saturatedConfig());
    ASSERT_TRUE(m.latencyResidence.has_value());
    ASSERT_TRUE(m.latencyWait.has_value());
    EXPECT_EQ(m.latencyResidence->count(), m.completedRequests);
    EXPECT_EQ(m.latencyWait->count(), m.completedRequests);
    EXPECT_NEAR(m.latencyResidence->mean(), m.meanServiceCycles,
                1e-9 * m.meanServiceCycles);
    EXPECT_LT(m.latencyWait->mean(), m.latencyResidence->mean());
}

TEST(Latency, FlatJsonByteIdenticalAcrossThreads)
{
    // The acceptance contract: merged latency histograms render
    // byte-identically at 1, 4, and hardware thread counts, and when
    // the replications are split across shards and merged the other
    // way around. Integer cycle samples make the running sum exact,
    // so merge order cannot leak into the bytes.
    const auto configs = replicationConfigs(saturatedConfig(), 8);

    auto mergedRender = [&](unsigned threads) {
        ParallelRunner &runner = sharedParallelRunner(
            threads != 0 ? threads : defaultExecThreads());
        const std::vector<Metrics> runs = runner.map<Metrics>(
            configs.size(),
            [&](std::size_t i) { return runOnce(configs[i]); });
        Histogram wait = makeLatencyHistogram();
        Histogram residence = makeLatencyHistogram();
        for (const Metrics &m : runs) {
            wait.merge(*m.latencyWait);
            residence.merge(*m.latencyResidence);
        }
        return wait.renderFlatJson() + "\n" +
               residence.renderFlatJson();
    };

    const std::string serial = mergedRender(1);
    EXPECT_EQ(mergedRender(4), serial);
    EXPECT_EQ(mergedRender(0), serial); // hardware thread count

    // Shard-style merge: two disjoint halves merged independently,
    // then folded together - the path sharded sweeps take.
    Histogram shardWait[2] = {makeLatencyHistogram(),
                              makeLatencyHistogram()};
    for (std::size_t i = 0; i < configs.size(); ++i)
        shardWait[i % 2].merge(*runOnce(configs[i]).latencyWait);
    shardWait[0].merge(shardWait[1]);
    EXPECT_EQ(shardWait[0].renderFlatJson(),
              serial.substr(0, serial.find('\n')));
}

TEST(Latency, SaturatedWaitQuantilesConsistentWithMean)
{
    // On a saturated config the merged wait distribution must be
    // self-consistent: its exact mean lies within the replication
    // confidence interval of the per-run means, and the right tail
    // dominates (p99 >= mean >= p50, max >= p99).
    const auto configs = replicationConfigs(saturatedConfig(), 8);

    Histogram wait = makeLatencyHistogram();
    Accumulator perRunMeans;
    for (const SystemConfig &cfg : configs) {
        const Metrics m = runOnce(cfg);
        wait.merge(*m.latencyWait);
        perRunMeans.add(m.latencyWait->mean());
    }

    const double mean = wait.mean();
    const double half = perRunMeans.confidenceHalfWidth(0.95);
    EXPECT_NEAR(mean, perRunMeans.mean(), half);

    const double p50 = wait.quantile(0.50);
    const double p99 = wait.quantile(0.99);
    EXPECT_GE(p99, mean);
    EXPECT_GE(mean, p50);
    EXPECT_GE(wait.maxSample(), p99 - 1e-9);
    EXPECT_GT(p99, p50); // a saturated tail is visibly spread out
}

TEST(Latency, PointSampleSummaryMatchesHistograms)
{
    // The record-carried summary is exactly summarizeLatency() of the
    // run's histograms - the sweep path adds nothing of its own.
    const SystemConfig cfg = saturatedConfig();
    const PointSample sample = runPointSample(cfg);
    const Metrics m = runOnce(cfg);

    ASSERT_TRUE(sample.hasLatency);
    const LatencySummary expect =
        summarizeLatency(*m.latencyWait, *m.latencyResidence);
    EXPECT_EQ(sample.latency.samples, expect.samples);
    EXPECT_EQ(sample.latency.waitP50, expect.waitP50);
    EXPECT_EQ(sample.latency.waitP99, expect.waitP99);
    EXPECT_EQ(sample.latency.waitMax, expect.waitMax);
    EXPECT_EQ(sample.latency.residenceP50, expect.residenceP50);
    EXPECT_EQ(sample.latency.residenceP99, expect.residenceP99);
    EXPECT_EQ(sample.latency.residenceMax, expect.residenceMax);

    // And without the flag, no summary rides along.
    SystemConfig off = cfg;
    off.collectLatency = false;
    EXPECT_FALSE(runPointSample(off).hasLatency);
}

} // namespace
} // namespace sbn
