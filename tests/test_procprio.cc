/**
 * @file
 * Tests for the Section 4 reduced Markov chain (processor priority).
 *
 * The printed formulas for P2, P1 and one class-3 transition are
 * OCR-degraded in the source text; DESIGN.md documents the
 * re-derivations. These tests validate the re-derived model against
 * the paper's Table 3b within a modelling band and against the
 * paper's own accuracy claim relative to simulation (Table 3a).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analytic/procprio.hh"

namespace sbn {
namespace {

// Paper Table 3b: approximate model, priority to processors, n = 8.
// Rows m = 4..16 step 2; columns r = 2..12 step 2. (The m=6, r=8
// entry is printed as 2.854 in the scan, an evident typo for 3.854
// between 3.582 and 3.973.)
constexpr int kMs[7] = {4, 6, 8, 10, 12, 14, 16};
constexpr int kRs[6] = {2, 4, 6, 8, 10, 12};
constexpr double kTable3b[7][6] = {
    {1.994, 2.727, 2.992, 3.089, 3.133, 3.156},
    {1.999, 2.956, 3.582, 3.854, 3.973, 4.033},
    {2.000, 2.994, 3.848, 4.344, 4.577, 4.692},
    {2.000, 2.999, 3.947, 4.633, 5.000, 5.184},
    {2.000, 2.999, 3.981, 4.794, 5.288, 5.546},
    {2.000, 3.000, 3.992, 4.880, 5.480, 5.810},
    {2.000, 3.000, 3.997, 4.927, 5.608, 6.000},
};

// Paper Table 3a (simulation ground truth) for the same grid.
constexpr double kTable3a[7][6] = {
    {1.998, 2.867, 3.155, 3.287, 3.205, 3.220},
    {2.000, 2.986, 3.766, 4.033, 4.083, 4.117},
    {2.000, 2.999, 3.934, 4.523, 4.650, 4.722},
    {2.000, 3.000, 3.983, 4.766, 5.102, 5.144},
    {2.000, 3.000, 3.996, 4.878, 5.367, 5.464},
    {2.000, 3.000, 4.000, 4.947, 5.569, 5.732},
    {2.000, 3.000, 4.000, 4.977, 5.698, 5.959},
};

TEST(ProcPrioChain, TracksTable3bWithinModellingBand)
{
    // Exact equality with the printed table is not expected (the
    // paper's own P2/P1 formulas are OCR-mangled and re-derived); the
    // re-derived chain stays within 9.5% of the printed values over
    // the whole grid -- the worst cells are the m=4 tail, where the
    // printed model itself deviates 5-7% from the paper's own
    // simulation in the opposite direction (see kTable3a).
    double mean_rel = 0.0;
    for (int i = 0; i < 7; ++i) {
        for (int j = 0; j < 6; ++j) {
            ProcPrioChain chain(8, kMs[i], kRs[j]);
            const double rel =
                std::abs(chain.ebw() - kTable3b[i][j]) / kTable3b[i][j];
            mean_rel += rel;
            EXPECT_LT(rel, 0.095)
                << "m=" << kMs[i] << " r=" << kRs[j]
                << " ours=" << chain.ebw();
        }
    }
    // And the grid as a whole is much closer than the worst cell.
    EXPECT_LT(mean_rel / 42.0, 0.04);
}

TEST(ProcPrioChain, MatchesSimulationWithinPaperAccuracyClaim)
{
    // Section 5 claims the approximate chain stays within ~5% of
    // simulation "in almost any case"; hold the re-derived chain to
    // 7% against the paper's Table 3a everywhere (the paper's own
    // printed model deviates up to ~7% from 3a at small m too, in
    // the opposite direction).
    for (int i = 0; i < 7; ++i) {
        for (int j = 0; j < 6; ++j) {
            ProcPrioChain chain(8, kMs[i], kRs[j]);
            const double rel =
                std::abs(chain.ebw() - kTable3a[i][j]) / kTable3a[i][j];
            EXPECT_LT(rel, 0.07)
                << "m=" << kMs[i] << " r=" << kRs[j]
                << " ours=" << chain.ebw();
        }
    }
}

TEST(ProcPrioChain, SaturatedCellsAreExact)
{
    // Wherever the bus saturates (EBW == (r+2)/2) the lumping is
    // immaterial: the chain reproduces those Table 3b cells to the
    // printed precision (all the 2.000/3.000/4.000 cells).
    for (int i = 0; i < 7; ++i) {
        for (int j = 0; j < 6; ++j) {
            const double max_ebw = (kRs[j] + 2) / 2.0;
            if (kTable3b[i][j] < max_ebw - 5e-3)
                continue;
            ProcPrioChain chain(8, kMs[i], kRs[j]);
            EXPECT_NEAR(chain.ebw(), kTable3b[i][j], 2e-2)
                << "m=" << kMs[i] << " r=" << kRs[j];
        }
    }
}

TEST(ProcPrioChain, BusUtilizationIsAProbability)
{
    for (int m : {2, 4, 16}) {
        for (int r : {1, 3, 9}) {
            ProcPrioChain chain(6, m, r);
            EXPECT_GE(chain.busUtilization(), 0.0);
            EXPECT_LE(chain.busUtilization(), 1.0 + 1e-12);
            EXPECT_NEAR(chain.ebw(),
                        chain.busUtilization() * (r + 2) / 2.0, 1e-12);
        }
    }
}

TEST(ProcPrioChain, StationaryLawIsNormalized)
{
    ProcPrioChain chain(8, 8, 6);
    double total = 0.0;
    for (double v : chain.stationary())
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_EQ(chain.stationary().size(), chain.numStates());
}

TEST(ProcPrioChain, StateSpaceScalesLikePaperFormula)
{
    // Paper: S = (3v^2+3v-2)/2 for r > min(n, m), v = min(n, m). Our
    // reachable enumeration is within a handful of states of that
    // count (DESIGN.md discusses the difference).
    for (int v : {2, 3, 4, 6, 8}) {
        ProcPrioChain chain(v, v, v + 5);
        const auto paper = ProcPrioChain::paperStateCount(v, v);
        const auto ours = chain.numStates();
        EXPECT_NEAR(static_cast<double>(ours),
                    static_cast<double>(paper),
                    static_cast<double>(v + 2))
            << "v=" << v;
    }
}

TEST(ProcPrioChain, StateConstraintsHold)
{
    const int n = 6, m = 4, r = 3;
    ProcPrioChain chain(n, m, r);
    for (const auto &s : chain.states()) {
        EXPECT_GE(s.i, 0);
        EXPECT_LE(s.i, std::min({n, m, r}));
        EXPECT_GE(s.c, 1);
        EXPECT_LE(s.c, std::min(n, m));
        EXPECT_GE(s.e, 0);
        switch (s.b) {
          case 2:
            EXPECT_EQ(s.e, 0);
            EXPECT_EQ(s.i, s.c);
            break;
          case 0:
            EXPECT_EQ(1 + s.i + s.e, s.c);
            break;
          case 1:
            EXPECT_LE(1 + s.i + s.e, s.c);
            break;
          default:
            FAIL() << "invalid bus code " << s.b;
        }
    }
}

TEST(ProcPrioChain, SingleProcessorIsUncontended)
{
    // n=1: no interference; EBW must be exactly 1 request per
    // processor cycle (bus utilization 2/(r+2)).
    for (int r : {1, 2, 8}) {
        ProcPrioChain chain(1, 4, r);
        EXPECT_NEAR(chain.ebw(), 1.0, 1e-9) << "r=" << r;
    }
}

TEST(ProcPrioChain, EbwMonotoneInModules)
{
    double prev = 0.0;
    for (int m : {2, 4, 8, 12, 16}) {
        ProcPrioChain chain(8, m, 8);
        EXPECT_GE(chain.ebw(), prev - 1e-9) << "m=" << m;
        prev = chain.ebw();
    }
}

TEST(ProcPrioChainDeath, LiteralClass3ReadingIsStructurallyBroken)
{
    // The literally printed class-3 completion target (i,c,e,0)
    // creates b=0 states with 1+i+e < c, violating the paper's own
    // four-class enumeration; the resulting chain is reducible and
    // the solver rejects it. This is the executable form of the
    // DESIGN.md argument for the (i,c,e+1,1) re-derivation.
    ProcPrioChain::Options literal;
    literal.literal_class3 = true;
    EXPECT_DEATH({ ProcPrioChain chain(8, 4, 2, literal); },
                 "singular|reducible");
}

TEST(ProcPrioChain, ConstantP1VariantIsFarWorse)
{
    // Documents the OCR resolution: reading P1 as 1/r (instead of
    // i/r) collapses the predicted EBW to nonsense; the validation
    // against Table 3b selects i/r.
    ProcPrioChain::Options constant;
    constant.constant_p1 = true;
    ProcPrioChain good(8, 16, 12);
    ProcPrioChain bad(8, 16, 12, constant);
    EXPECT_NEAR(good.ebw(), 6.0, 0.35);
    EXPECT_LT(bad.ebw(), 2.0);
}

} // namespace
} // namespace sbn
