/**
 * @file
 * Workload-subsystem tests: alias-sampler correctness, the
 * generalized (non-uniform) occupancy-chain cross-check against both
 * the lumped uniform chain and the simulator, golden Metrics pins
 * for every workload class, determinism across thread counts and
 * shard layouts, sweep workload axes, and the SBN_CACHE_DIR disk
 * cache for analytic solves. See docs/workloads.md.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

#include <cmath>
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analytic/disk_cache.hh"
#include "analytic/memprio.hh"
#include "analytic/occupancy_chain.hh"
#include "core/experiment.hh"
#include "core/fingerprint.hh"
#include "exec/parallel_runner.hh"
#include "exec/thread_pool.hh"
#include "golden_util.hh"
#include "shard/merge.hh"
#include "shard/result_io.hh"
#include "shard/runner.hh"
#include "workload/analytic.hh"
#include "workload/workload.hh"

namespace sbn {
namespace {

using golden::GoldenLine;
using golden::checkExactGolden;
using golden::exact;

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "sbn_workload_" + name;
}

// ------------------------------------------------------------ sampler

TEST(AliasTable, ReproducesTheTargetDistribution)
{
    const std::vector<double> weights{4.0, 1.0, 0.5, 2.5, 2.0};
    const AliasTable table(weights);
    ASSERT_EQ(table.size(), weights.size());

    double total = 0.0;
    for (double w : weights)
        total += w;

    RandomGenerator rng(4242);
    std::vector<std::uint64_t> counts(weights.size(), 0);
    const std::uint64_t draws = 400000;
    for (std::uint64_t i = 0; i < draws; ++i)
        ++counts[table.sample(rng)];

    for (std::size_t j = 0; j < weights.size(); ++j) {
        const double expected = weights[j] / total;
        const double observed =
            static_cast<double>(counts[j]) / static_cast<double>(draws);
        EXPECT_NEAR(observed, expected, 0.005)
            << "outcome " << j << " of weights {4,1,0.5,2.5,2}";
    }
}

TEST(AliasTable, HandlesDegenerateAndSkewedWeights)
{
    // Single outcome: every draw returns 0.
    const AliasTable single(std::vector<double>{3.0});
    RandomGenerator rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(single.sample(rng), 0u);

    // Heavy skew must still emit the rare outcome at its rate
    // (~1e-3: expect ~200 of 200000 draws).
    const AliasTable skewed(std::vector<double>{999.0, 1.0});
    std::uint64_t rare = 0;
    for (int i = 0; i < 200000; ++i)
        rare += skewed.sample(rng) == 1 ? 1 : 0;
    EXPECT_GT(rare, 100u);
    EXPECT_LT(rare, 400u);

    // Zero-weight outcomes never surface (Favorite f = 1).
    const AliasTable zero(std::vector<double>{0.0, 1.0, 0.0});
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(zero.sample(rng), 1u);
}

TEST(Workload, ModuleProbabilitiesMatchTheirDefinitions)
{
    WorkloadConfig hot;
    hot.pattern = ReferencePattern::HotSpot;
    hot.hotFraction = 0.4;
    hot.hotModule = 2;
    const std::vector<double> q = hot.moduleProbabilities(0, 4);
    EXPECT_DOUBLE_EQ(q[2], 0.4 + 0.6 / 4.0);
    EXPECT_DOUBLE_EQ(q[0], 0.6 / 4.0);

    WorkloadConfig fav;
    fav.pattern = ReferencePattern::Favorite;
    fav.favoriteFraction = 0.5;
    const std::vector<double> q5 = fav.moduleProbabilities(5, 4);
    EXPECT_DOUBLE_EQ(q5[5 % 4], 0.5 + 0.5 / 4.0);

    // h = 0 degenerates to exactly uniform.
    hot.hotFraction = 0.0;
    for (double p : hot.moduleProbabilities(0, 4))
        EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(Workload, FormatIsCanonical)
{
    EXPECT_EQ(formatWorkload(WorkloadConfig{}), "uniform");

    WorkloadConfig hot;
    hot.pattern = ReferencePattern::HotSpot;
    hot.hotFraction = 0.25;
    hot.hotModule = 3;
    EXPECT_EQ(formatWorkload(hot), "hotspot:h=0.25,module=3");

    WorkloadConfig two;
    two.think = ThinkModel::TwoClass;
    two.fastCount = 2;
    two.fastProbability = 1.0;
    two.slowProbability = 0.125;
    EXPECT_EQ(formatWorkload(two),
              "uniform;think=two:fast=2@1,slow=0.125");
}

// ----------------------------------------------------------- analytic

TEST(WeightedChain, CollapsesToTheLumpedChainForUniformQ)
{
    for (int n : {2, 3, 5}) {
        for (int m : {2, 4}) {
            for (int cap : {1, 3}) {
                const std::vector<double> uniform_q(
                    m, 1.0 / static_cast<double>(m));
                const WeightedChainResult weighted =
                    solveWeightedOccupancyChain(n, m, cap, uniform_q);
                const OccupancyChainResult &lumped =
                    solveOccupancyChainCached(n, m, cap);

                ASSERT_EQ(weighted.busyPmf.size(),
                          lumped.busyPmf.size());
                for (std::size_t x = 0; x < weighted.busyPmf.size(); ++x)
                    EXPECT_NEAR(weighted.busyPmf[x], lumped.busyPmf[x],
                                1e-10)
                        << "n=" << n << " m=" << m << " cap=" << cap
                        << " x=" << x;
                EXPECT_NEAR(weighted.meanBusy, lumped.meanBusy, 1e-10);
                EXPECT_NEAR(weighted.meanServiced, lumped.meanServiced,
                            1e-10);
                // Uniform q: every module equally busy.
                for (double b : weighted.moduleBusy)
                    EXPECT_NEAR(b, weighted.meanBusy / m, 1e-10);
            }
        }
    }
}

TEST(WeightedChain, UniformWorkloadEbwMatchesMemprioExact)
{
    for (int n : {2, 4, 6}) {
        for (int r : {2, 5}) {
            const double exact_uniform = memprioExactEbw(n, 4, r);
            const double via_weighted =
                workloadExactMemprioEbw(n, 4, r, WorkloadConfig{});
            EXPECT_NEAR(via_weighted, exact_uniform, 1e-10)
                << "n=" << n << " r=" << r;
        }
    }
}

TEST(WeightedChain, HotSpotShiftsLoadOntoTheHotModule)
{
    WorkloadConfig hot;
    hot.pattern = ReferencePattern::HotSpot;
    hot.hotFraction = 0.5;
    hot.hotModule = 0;
    const WeightedChainResult result = solveWeightedOccupancyChain(
        4, 4, 3, hot.moduleProbabilities(0, 4));
    for (std::size_t j = 1; j < result.moduleBusy.size(); ++j)
        EXPECT_GT(result.moduleBusy[0], result.moduleBusy[j]);
    // And the skew costs bandwidth vs uniform.
    const double uniform_ebw =
        workloadExactMemprioEbw(4, 4, 2, WorkloadConfig{});
    const double hot_ebw = workloadExactMemprioEbw(4, 4, 2, hot);
    EXPECT_LT(hot_ebw, uniform_ebw);
}

/**
 * The workload acceptance gate: non-uniform simulator results must
 * match the generalized occupancy chain on a small-(n, m) grid under
 * the chain's own hypotheses (memory priority, p = 1). The bounds
 * mirror the uniform cross-check in test_system_vs_models.cc: the
 * cycle-accurate machine lets early-serviced processors slip back in
 * mid-round, so the simulator sits slightly above the chain.
 */
TEST(WeightedChainVsSim, HotSpotAndWeightedTrackTheChain)
{
    std::vector<WorkloadConfig> workloads;
    {
        WorkloadConfig hot;
        hot.pattern = ReferencePattern::HotSpot;
        hot.hotFraction = 0.3;
        workloads.push_back(hot);
        hot.hotFraction = 0.6;
        workloads.push_back(hot);
    }

    for (const int n : {2, 4}) {
        for (const int m : {2, 4}) {
            for (const int r : {2, 5}) {
                std::vector<WorkloadConfig> cases = workloads;
                {
                    WorkloadConfig weighted;
                    weighted.pattern = ReferencePattern::Weighted;
                    weighted.moduleWeights.assign(m, 1.0);
                    weighted.moduleWeights[0] = 3.0;
                    cases.push_back(weighted);
                }
                for (const WorkloadConfig &w : cases) {
                    SystemConfig cfg;
                    cfg.numProcessors = n;
                    cfg.numModules = m;
                    cfg.memoryRatio = r;
                    cfg.policy = ArbitrationPolicy::MemoryPriority;
                    cfg.workload = w;
                    cfg.warmupCycles = 10000;
                    cfg.measureCycles = 300000;

                    const double sim = runEbw(cfg);
                    const double exact_ebw =
                        workloadExactMemprioEbw(n, m, r, w);
                    EXPECT_LT(sim / exact_ebw, 1.04)
                        << "n=" << n << " m=" << m << " r=" << r
                        << " workload=" << formatWorkload(w);
                    EXPECT_GT(sim / exact_ebw, 0.99)
                        << "n=" << n << " m=" << m << " r=" << r
                        << " workload=" << formatWorkload(w);
                }
            }
        }
    }
}

// ------------------------------------------------------- golden pins

/**
 * Pinned Metrics for every workload class (the non-uniform analogue
 * of the kernel golden grid): any change to the alias sampler, the
 * per-processor think draws or their RNG consumption fails here with
 * the workload and counter named.
 */
TEST(GoldenWorkloadMetrics, PinnedWorkloadGrid)
{
    std::vector<std::pair<std::string, WorkloadConfig>> cases;
    cases.emplace_back("uniform", WorkloadConfig{});
    {
        WorkloadConfig hot;
        hot.pattern = ReferencePattern::HotSpot;
        hot.hotFraction = 0.5;
        hot.hotModule = 1;
        cases.emplace_back("hotspot_h05_m1", hot);
    }
    {
        WorkloadConfig fav;
        fav.pattern = ReferencePattern::Favorite;
        fav.favoriteFraction = 0.6;
        cases.emplace_back("favorite_f06", fav);
    }
    {
        WorkloadConfig weighted;
        weighted.pattern = ReferencePattern::Weighted;
        weighted.moduleWeights = {8.0, 4.0, 2.0, 1.0, 1.0, 1.0};
        cases.emplace_back("weighted_8421", weighted);
    }
    {
        WorkloadConfig two;
        two.think = ThinkModel::TwoClass;
        two.fastCount = 3;
        two.fastProbability = 0.9;
        two.slowProbability = 0.1;
        cases.emplace_back("twoclass_3fast", two);
    }
    {
        WorkloadConfig vec;
        vec.pattern = ReferencePattern::HotSpot;
        vec.hotFraction = 0.3;
        vec.think = ThinkModel::PerProcessor;
        vec.thinkProbabilities = {1.0, 0.8, 0.6, 0.5, 0.4, 0.3,
                                  0.2, 0.1};
        cases.emplace_back("hotspot_perproc", vec);
    }

    std::vector<GoldenLine> computed;
    for (const auto &[name, workload] : cases) {
        SystemConfig cfg;
        cfg.numProcessors = 8;
        cfg.numModules = 6;
        cfg.memoryRatio = 6;
        cfg.requestProbability = 0.5;
        cfg.workload = workload;
        cfg.warmupCycles = 1000;
        cfg.measureCycles = 20000;
        cfg.seed = 20260727;

        const Metrics metrics = runOnce(cfg);
        computed.push_back(
            {name + " completed", exact(metrics.completedRequests)});
        computed.push_back(
            {name + " issued", exact(metrics.issuedRequests)});
        computed.push_back(
            {name + " busBusy", exact(metrics.busBusyCycles)});
        computed.push_back({name + " ebw", exact(metrics.ebw)});
        computed.push_back(
            {name + " meanWait", exact(metrics.meanWaitCycles)});
    }
    checkExactGolden("workload_metrics", computed);
}

// -------------------------------------------------------- behaviour

TEST(WorkloadBehaviour, FastProcessorsCompleteMore)
{
    SystemConfig cfg;
    cfg.numProcessors = 8;
    cfg.numModules = 8;
    cfg.memoryRatio = 4;
    cfg.workload.think = ThinkModel::TwoClass;
    cfg.workload.fastCount = 4;
    cfg.workload.fastProbability = 0.9;
    cfg.workload.slowProbability = 0.1;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 100000;

    const Metrics metrics = runOnce(cfg);
    std::uint64_t fast = 0, slow = 0;
    for (int p = 0; p < 4; ++p)
        fast += metrics.perProcessorCompletions[p];
    for (int p = 4; p < 8; ++p)
        slow += metrics.perProcessorCompletions[p];
    EXPECT_GT(fast, 3 * slow);
}

TEST(WorkloadBehaviour, PerfectFavoritesBeatUniformAtSaturation)
{
    // f = 1 with n = m: every processor owns a private module, so
    // only bus contention remains - strictly better than uniform's
    // module collisions.
    SystemConfig uniform;
    uniform.numProcessors = 8;
    uniform.numModules = 8;
    uniform.memoryRatio = 8;
    uniform.warmupCycles = 2000;
    uniform.measureCycles = 100000;

    SystemConfig favorite = uniform;
    favorite.workload.pattern = ReferencePattern::Favorite;
    favorite.workload.favoriteFraction = 1.0;

    EXPECT_GT(runEbw(favorite), runEbw(uniform));
}

TEST(WorkloadBehaviour, HotSpotDegradesEbwMonotonically)
{
    double previous = 1e300;
    for (double h : {0.0, 0.3, 0.6, 0.9}) {
        SystemConfig cfg;
        cfg.numProcessors = 8;
        cfg.numModules = 8;
        cfg.memoryRatio = 8;
        cfg.workload.pattern = ReferencePattern::HotSpot;
        cfg.workload.hotFraction = h;
        cfg.warmupCycles = 2000;
        cfg.measureCycles = 100000;
        const double ebw = runEbw(cfg);
        EXPECT_LT(ebw, previous * 1.01) << "h=" << h;
        previous = ebw;
    }
}

// ------------------------------------------------------- sweep axes

TEST(WorkloadSweep, HotFractionAxisMaterializesInnermost)
{
    SweepSpec spec;
    spec.memoryRatios = {2, 4};
    spec.hotFractions = {0.0, 0.5, 0.9};
    EXPECT_EQ(spec.size(), 6u);

    const std::vector<SystemConfig> points = spec.materialize();
    ASSERT_EQ(points.size(), 6u);
    EXPECT_EQ(points[0].memoryRatio, 2);
    EXPECT_EQ(points[2].memoryRatio, 2);
    EXPECT_EQ(points[3].memoryRatio, 4);
    for (const SystemConfig &cfg : points)
        EXPECT_EQ(cfg.workload.pattern, ReferencePattern::HotSpot);
    EXPECT_DOUBLE_EQ(points[0].workload.hotFraction, 0.0);
    EXPECT_DOUBLE_EQ(points[1].workload.hotFraction, 0.5);
    EXPECT_DOUBLE_EQ(points[5].workload.hotFraction, 0.9);
}

TEST(WorkloadSweepDeathTest, RejectsConflictingWorkloadAxes)
{
    SweepSpec spec;
    spec.hotFractions = {0.2};
    spec.favoriteFractions = {0.3};
    EXPECT_DEATH(spec.validate(), "conflicting");

    SweepSpec bad;
    bad.hotFractions = {1.5};
    EXPECT_DEATH(bad.validate(), "hotFractions");
}

// ---------------------------------------------- determinism contract

/** The hot-spot grid the determinism tests sweep. */
SweepSpec
hotSpotSpec()
{
    SweepSpec spec;
    spec.base.numProcessors = 6;
    spec.base.numModules = 4;
    spec.base.memoryRatio = 4;
    spec.base.warmupCycles = 200;
    spec.base.measureCycles = 3000;
    spec.base.seed = 777;
    spec.requestProbabilities = {0.3, 1.0};
    spec.hotFractions = {0.0, 0.4, 0.8};
    return spec;
}

TEST(WorkloadDeterminism, IdenticalAcrossThreadCounts)
{
    const auto evaluate = [](const SystemConfig &cfg) {
        return runEbw(cfg);
    };
    ParallelRunner serial(1);
    const std::vector<double> reference =
        serial.sweep(hotSpotSpec(), evaluate);
    ASSERT_EQ(reference.size(), 6u);

    for (const unsigned threads :
         {4u, ThreadPool::hardwareThreads()}) {
        ParallelRunner runner(threads);
        const std::vector<double> values =
            runner.sweep(hotSpotSpec(), evaluate);
        ASSERT_EQ(values.size(), reference.size());
        for (std::size_t i = 0; i < values.size(); ++i)
            EXPECT_EQ(values[i], reference[i])
                << "point " << i << " at " << threads << " threads";
    }
}

TEST(WorkloadDeterminism, ShardLayoutsMergeByteIdenticalToSerial)
{
    const std::vector<SystemConfig> points =
        hotSpotSpec().materialize();
    const auto evaluate = [](const SystemConfig &cfg) {
        return runEbw(cfg);
    };

    // Serial reference: the whole grid as one shard.
    const std::string serial = tempPath("hotspot_serial.jsonl");
    runShardSweep(points, {0, 1}, ShardLayout::Contiguous, evaluate,
                  serial);
    std::ifstream in(serial, std::ios::binary);
    std::ostringstream serial_bytes;
    serial_bytes << in.rdbuf();

    for (const ShardLayout layout :
         {ShardLayout::Contiguous, ShardLayout::Strided}) {
        std::vector<std::string> files;
        for (std::size_t s = 0; s < 4; ++s) {
            files.push_back(
                tempPath("hotspot_" +
                         std::string(shardLayoutName(layout)) + "_" +
                         std::to_string(s) + ".jsonl"));
            runShardSweep(points, {s, 4}, layout, evaluate,
                          files.back());
        }
        const std::vector<PointRecord> merged =
            mergeRecordFiles(files, sweepMergeCheck(points));
        std::ostringstream merged_bytes;
        writeRecords(merged_bytes, merged);
        EXPECT_EQ(merged_bytes.str(), serial_bytes.str())
            << shardLayoutName(layout);
        for (const std::string &file : files)
            std::remove(file.c_str());
    }
    std::remove(serial.c_str());
}

// --------------------------------------------------- disk solve cache

TEST(AnalyticDiskCache, RoundTripsBitExactly)
{
    const std::string dir = tempPath("cache_roundtrip");
    ASSERT_EQ(::setenv("SBN_CACHE_DIR", dir.c_str(), 1), 0);

    const std::vector<double> values{1.0 / 3.0, 0.0, -0.0, 6.3e303,
                                     1e-308};
    storeCachedSolve("test", 0x1234, values);

    std::vector<double> loaded;
    ASSERT_TRUE(loadCachedSolve("test", 0x1234, values.size(), loaded));
    ASSERT_EQ(loaded.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        EXPECT_EQ(doubleFingerprintBits(loaded[i]),
                  doubleFingerprintBits(values[i]));

    // Wrong fingerprint or count: miss, not a wrong answer.
    EXPECT_FALSE(loadCachedSolve("test", 0x9999, values.size(), loaded));
    EXPECT_FALSE(loadCachedSolve("test", 0x1234, 2, loaded));

    ASSERT_EQ(::unsetenv("SBN_CACHE_DIR"), 0);
}

TEST(AnalyticDiskCache, RejectsCorruptedFilesAndResolves)
{
    const std::string dir = tempPath("cache_corrupt");
    ASSERT_EQ(::setenv("SBN_CACHE_DIR", dir.c_str(), 1), 0);

    const std::vector<double> values{2.5, 3.5};
    storeCachedSolve("test", 0xabcd, values);

    // Locate and tamper with the stored file's first value line.
    const std::string path =
        dir + "/test-" + formatFingerprint(0xabcd) + ".txt";
    {
        std::ifstream in(path);
        ASSERT_TRUE(in.good());
        std::stringstream edited;
        std::string line;
        int line_no = 0;
        while (std::getline(in, line)) {
            if (++line_no == 4)
                line[0] = '9'; // decimal no longer matches the bits
            edited << line << '\n';
        }
        std::ofstream out(path);
        out << edited.str();
    }
    std::vector<double> loaded;
    EXPECT_FALSE(loadCachedSolve("test", 0xabcd, 2, loaded));

    ASSERT_EQ(::unsetenv("SBN_CACHE_DIR"), 0);
}

TEST(AnalyticDiskCache, WeightedChainSolvesPersistAndReload)
{
    const std::string dir = tempPath("cache_wocc");
    ASSERT_EQ(::setenv("SBN_CACHE_DIR", dir.c_str(), 1), 0);

    // An unusual q so no other test's in-process memo covers it.
    const std::vector<double> q{0.55, 0.25, 0.2};
    const WeightedChainResult &cached =
        solveWeightedOccupancyChainCached(3, 3, 2, q);

    // The solve landed on disk (one wocc-<fingerprint>.txt entry)...
    std::size_t wocc_files = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("wocc-", 0) == 0)
            ++wocc_files;
    }
    EXPECT_EQ(wocc_files, 1u);

    // ...and agrees exactly with an uncached solve.
    const WeightedChainResult fresh =
        solveWeightedOccupancyChain(3, 3, 2, q);
    EXPECT_EQ(doubleFingerprintBits(cached.meanBusy),
              doubleFingerprintBits(fresh.meanBusy));
    EXPECT_EQ(doubleFingerprintBits(cached.meanServiced),
              doubleFingerprintBits(fresh.meanServiced));

    ASSERT_EQ(::unsetenv("SBN_CACHE_DIR"), 0);
}

TEST(AnalyticDiskCache, EvictsOldestEntriesFirstWhenOverTheCap)
{
    const std::string dir = tempPath("cache_gc");
    ASSERT_EQ(::setenv("SBN_CACHE_DIR", dir.c_str(), 1), 0);

    const std::vector<double> values{1.5, 2.5, 3.5};
    storeCachedSolve("old", 0x111, values);
    storeCachedSolve("new", 0x222, values);
    const std::string old_path =
        dir + "/old-" + formatFingerprint(0x111) + ".txt";
    const std::string new_path =
        dir + "/new-" + formatFingerprint(0x222) + ".txt";

    // Backdate the first entry (mtime granularity is a second, so
    // two quick stores would otherwise tie) and cap the cache just
    // below the pair's total: exactly the oldest entry must go.
    struct utimbuf old_times;
    old_times.actime = old_times.modtime = std::time(nullptr) - 100;
    ASSERT_EQ(::utime(old_path.c_str(), &old_times), 0);
    struct stat a, b;
    ASSERT_EQ(::stat(old_path.c_str(), &a), 0);
    ASSERT_EQ(::stat(new_path.c_str(), &b), 0);
    const std::string cap =
        std::to_string(a.st_size + b.st_size - 1);
    ASSERT_EQ(::setenv("SBN_CACHE_MAX_BYTES", cap.c_str(), 1), 0);

    EXPECT_EQ(enforceCacheSizeCap(), 1u);
    struct stat info;
    EXPECT_NE(::stat(old_path.c_str(), &info), 0)
        << "oldest entry survived";
    EXPECT_EQ(::stat(new_path.c_str(), &info), 0)
        << "newest entry evicted";

    // The evicted key misses cleanly; the survivor still loads.
    std::vector<double> loaded;
    EXPECT_FALSE(loadCachedSolve("old", 0x111, values.size(), loaded));
    EXPECT_TRUE(loadCachedSolve("new", 0x222, values.size(), loaded));

    // Under the cap nothing is evicted.
    EXPECT_EQ(enforceCacheSizeCap(), 0u);

    ASSERT_EQ(::unsetenv("SBN_CACHE_MAX_BYTES"), 0);
    ASSERT_EQ(::unsetenv("SBN_CACHE_DIR"), 0);
}

TEST(AnalyticDiskCache, EvictionNeverCorruptsAConcurrentReader)
{
    const std::string dir = tempPath("cache_gc_reader");
    ASSERT_EQ(::setenv("SBN_CACHE_DIR", dir.c_str(), 1), 0);

    const std::vector<double> values{0.25, 0.75};
    storeCachedSolve("held", 0x333, values);
    const std::string path =
        dir + "/held-" + formatFingerprint(0x333) + ".txt";
    std::string before;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        before = os.str();
    }

    // A reader opens the entry, then eviction unlinks it. POSIX
    // keeps the open file's contents intact for the reader: it sees
    // the complete old entry, never a torn one.
    std::ifstream reader(path, std::ios::binary);
    ASSERT_TRUE(reader.good());
    ASSERT_EQ(::setenv("SBN_CACHE_MAX_BYTES", "1", 1), 0);
    EXPECT_GE(enforceCacheSizeCap(), 1u);
    struct stat info;
    EXPECT_NE(::stat(path.c_str(), &info), 0) << "entry survived";

    std::ostringstream still;
    still << reader.rdbuf();
    EXPECT_EQ(still.str(), before);

    // New lookups miss cleanly rather than seeing a partial entry.
    std::vector<double> loaded;
    EXPECT_FALSE(loadCachedSolve("held", 0x333, values.size(),
                                 loaded));

    ASSERT_EQ(::unsetenv("SBN_CACHE_MAX_BYTES"), 0);
    ASSERT_EQ(::unsetenv("SBN_CACHE_DIR"), 0);
}

} // namespace
} // namespace sbn
