/**
 * @file
 * Deterministic-clock unit tests for the ShardSupervisor's timing
 * policy: the capped-exponential retry schedule and the periodic
 * steal-scan gate. Both are pure functions of configuration and a
 * caller-supplied clock reading, so these tests pin the exact
 * schedules without a single wall-clock sleep - the end-to-end
 * supervision behavior (respawn, hang kill, steal, exhaustion) is
 * covered by tests/test_fault.cc with real processes.
 */

#include <chrono>

#include <gtest/gtest.h>

#include "shard/supervisor.hh"

namespace sbn {
namespace {

TEST(SupervisorBackoff, DefaultScheduleDoublesToTheCap)
{
    // Defaults: initial 0.25 s, growth 2, cap 5 s. Failure k waits
    // min(5, 0.25 * 2^(k-1)).
    const SupervisorConfig config;
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 1), 0.25);
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 2), 0.5);
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 3), 1.0);
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 4), 2.0);
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 5), 4.0);
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 6), 5.0);
    // Once capped, it stays capped - no overflow or re-growth.
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 7), 5.0);
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 50), 5.0);
}

TEST(SupervisorBackoff, HonorsCustomInitialGrowthAndCap)
{
    SupervisorConfig config;
    config.backoffInitialSeconds = 0.02;
    config.backoffGrowth = 3.0;
    config.backoffCapSeconds = 0.5;
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 1), 0.02);
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 2), 0.06);
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 3), 0.18);
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 4), 0.5);
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 5), 0.5);
}

TEST(SupervisorBackoff, ZeroInitialMeansImmediateRetries)
{
    // --backoff=0 is the test-suite configuration: every retry is
    // immediate regardless of how many failures have accumulated.
    SupervisorConfig config;
    config.backoffInitialSeconds = 0.0;
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 1), 0.0);
    EXPECT_DOUBLE_EQ(supervisorBackoffSeconds(config, 10), 0.0);
}

TEST(PeriodicGate, AdmitsFirstTickImmediately)
{
    using namespace std::chrono;
    PeriodicGate gate(milliseconds(250));
    const PeriodicGate::TimePoint t0{};
    // The very first due() must admit: a freshly-started supervision
    // loop scans for steal opportunities right away rather than
    // waiting out a full period that nothing armed.
    EXPECT_TRUE(gate.due(t0));
}

TEST(PeriodicGate, AdmitsExactlyOncePerPeriod)
{
    using namespace std::chrono;
    PeriodicGate gate(milliseconds(250));
    const PeriodicGate::TimePoint t0{};

    ASSERT_TRUE(gate.due(t0));
    // Polls inside the period are rejected, however many there are.
    EXPECT_FALSE(gate.due(t0 + milliseconds(1)));
    EXPECT_FALSE(gate.due(t0 + milliseconds(125)));
    EXPECT_FALSE(gate.due(t0 + milliseconds(249)));
    // The period boundary itself admits (>= period, not > period).
    EXPECT_TRUE(gate.due(t0 + milliseconds(250)));
    EXPECT_FALSE(gate.due(t0 + milliseconds(499)));
    EXPECT_TRUE(gate.due(t0 + milliseconds(500)));
}

TEST(PeriodicGate, PeriodRestartsFromTheAdmittedTick)
{
    using namespace std::chrono;
    PeriodicGate gate(milliseconds(250));
    const PeriodicGate::TimePoint t0{};

    ASSERT_TRUE(gate.due(t0));
    // A late admitted tick restarts the period from ITS time, not
    // from the nominal grid: after admitting at t0+400ms the next
    // admission is t0+650ms, not t0+500ms.
    EXPECT_TRUE(gate.due(t0 + milliseconds(400)));
    EXPECT_FALSE(gate.due(t0 + milliseconds(500)));
    EXPECT_FALSE(gate.due(t0 + milliseconds(649)));
    EXPECT_TRUE(gate.due(t0 + milliseconds(650)));
}

} // namespace
} // namespace sbn
