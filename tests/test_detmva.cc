/**
 * @file
 * Tests for the deterministic-service approximate MVA - the library's
 * answer to the paper's Section 6 open problem (no analytical model
 * for the buffered system).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analytic/detmva.hh"
#include "analytic/mva.hh"
#include "core/experiment.hh"

namespace sbn {
namespace {

TEST(DetMva, SingleCustomerExact)
{
    // One customer never queues: the correction terms vanish and the
    // model is exact: EBW = 1.
    for (int r : {1, 4, 16}) {
        const auto res = mvaBufferedBusDeterministic(1, 4, r);
        EXPECT_NEAR(res.ebw, 1.0, 1e-12) << "r=" << r;
    }
}

TEST(DetMva, RespectsCapacityBounds)
{
    for (int n : {2, 8, 32}) {
        for (int m : {2, 8}) {
            for (int r : {2, 8, 24}) {
                const auto res = mvaBufferedBusDeterministic(n, m, r);
                EXPECT_LE(res.ebw, (r + 2) / 2.0 + 1e-9);
                EXPECT_LE(res.busUtilization, 1.0 + 1e-12);
                EXPECT_LE(res.moduleUtilization, 1.0 + 1e-12);
            }
        }
    }
}

TEST(DetMva, LessPessimisticThanExponential)
{
    // Deterministic service has no variance penalty: the corrected
    // model must predict at least the exponential model's throughput.
    for (int n : {4, 8, 16}) {
        for (int m : {2, 4, 8}) {
            for (int r : {4, 8, 16}) {
                const double det =
                    mvaBufferedBusDeterministic(n, m, r).ebw;
                const double expo = mvaBufferedBus(n, m, r).ebw;
                EXPECT_GE(det, expo - 1e-9)
                    << "n=" << n << " m=" << m << " r=" << r;
            }
        }
    }
}

TEST(DetMva, TracksBufferedSimulationWithinFivePercent)
{
    // The reason this model exists: it predicts the constant-service
    // buffered system to within ~5% over the paper's Table 4 grid,
    // where the exponential product-form model errs by up to 25%.
    for (int m : {4, 8, 16}) {
        for (int r : {6, 12, 24}) {
            SystemConfig cfg;
            cfg.numProcessors = 8;
            cfg.numModules = m;
            cfg.memoryRatio = r;
            cfg.buffered = true;
            cfg.measureCycles = 200000;
            const double sim = runEbw(cfg);
            const double det = mvaBufferedBusDeterministic(8, m, r).ebw;
            EXPECT_NEAR(det / sim, 1.0, 0.05)
                << "m=" << m << " r=" << r;
        }
    }
}

TEST(DetMva, MonotoneInCustomers)
{
    double prev = 0.0;
    for (int n = 1; n <= 24; ++n) {
        const double e = mvaBufferedBusDeterministic(n, 8, 12).ebw;
        EXPECT_GE(e, prev - 1e-9) << "n=" << n;
        prev = e;
    }
}

TEST(DetMva, ThinkTimeScalesLoad)
{
    const double full = mvaBufferedBusDeterministic(8, 8, 8, 1.0).ebw;
    const double half = mvaBufferedBusDeterministic(8, 8, 8, 0.5).ebw;
    EXPECT_LT(half, full);
    const double light = mvaBufferedBusDeterministic(8, 8, 8, 0.05).ebw;
    EXPECT_NEAR(light / (8 * 0.05), 1.0, 0.08);
}

} // namespace
} // namespace sbn
