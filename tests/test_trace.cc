/**
 * @file
 * Tests for the trace subsystem and its integration with the
 * simulator: record filtering, ring capacity, and the exact event
 * sequence of an uncontended processor cycle.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiment.hh"
#include "desim/trace.hh"
#include "service/protocol.hh"

namespace sbn {
namespace {

TEST(TraceSink, RecordsInOrder)
{
    TraceSink sink;
    sink.record(1, "a", "first");
    sink.record(2, "b", "second");
    ASSERT_EQ(sink.records().size(), 2u);
    EXPECT_EQ(sink.records()[0].tick, 1u);
    EXPECT_EQ(sink.records()[0].message, "first");
    EXPECT_EQ(sink.records()[1].category, "b");
    EXPECT_EQ(sink.emitted(), 2u);
}

TEST(TraceSink, CategoryFilter)
{
    TraceSink sink;
    sink.enableOnly({"bus"});
    EXPECT_TRUE(sink.wants("bus"));
    EXPECT_FALSE(sink.wants("mem"));
    sink.record(0, "mem", "dropped");
    sink.record(0, "bus", "kept");
    ASSERT_EQ(sink.records().size(), 1u);
    EXPECT_EQ(sink.records()[0].message, "kept");

    sink.enableAll();
    sink.record(1, "mem", "now kept");
    EXPECT_EQ(sink.records().size(), 2u);
}

TEST(TraceSink, RingCapacity)
{
    TraceSink sink(nullptr, 3);
    for (int i = 0; i < 10; ++i)
        sink.record(static_cast<Tick>(i), "c", std::to_string(i));
    ASSERT_EQ(sink.records().size(), 3u);
    EXPECT_EQ(sink.records().front().message, "7");
    EXPECT_EQ(sink.records().back().message, "9");
    EXPECT_EQ(sink.emitted(), 10u);
}

TEST(TraceSink, StreamsToOstream)
{
    std::ostringstream os;
    TraceSink sink(&os);
    sink.record(42, "bus", "grant request proc 0 -> module 3");
    EXPECT_EQ(os.str(), "42: [bus] grant request proc 0 -> module 3\n");
}

TEST(TraceSink, JsonlStreamFormat)
{
    std::ostringstream os;
    TraceSink sink(&os, 65536, TraceFormat::Jsonl);
    sink.record(42, "bus", "grant request proc 0 -> module 3");
    EXPECT_EQ(os.str(),
              "{\"tick\":42,\"category\":\"bus\",\"message\":\"grant "
              "request proc 0 -> module 3\"}\n");
}

TEST(TraceSink, JsonlEscapesAndRoundTrips)
{
    // Hostile message bytes must come back intact through the strict
    // flat-JSON parser the rest of the codebase uses.
    std::ostringstream os;
    TraceSink sink(&os, 65536, TraceFormat::Jsonl);
    const std::string nasty = "quote \" slash \\ tab \t newline \n";
    sink.record(7, "mem", nasty);

    std::string line = os.str();
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.back(), '\n');
    line.pop_back();
    // The line itself must be exactly one line (escapes worked).
    EXPECT_EQ(line.find('\n'), std::string::npos);

    JsonObject fields;
    std::string error;
    ASSERT_TRUE(parseFlatJsonObject(line, fields, error)) << error;
    EXPECT_EQ(fields.at("tick").number, 7.0);
    EXPECT_EQ(fields.at("category").text, "mem");
    EXPECT_EQ(fields.at("message").text, nasty);
}

TEST(TraceSink, JsonlStreamingKeepsRingSemantics)
{
    // The stream sees every emitted record; the ring still only
    // retains the newest `capacity`.
    std::ostringstream os;
    TraceSink sink(&os, 2, TraceFormat::Jsonl);
    for (int i = 0; i < 5; ++i)
        sink.record(static_cast<Tick>(i), "c", std::to_string(i));
    EXPECT_EQ(sink.emitted(), 5u);
    ASSERT_EQ(sink.records().size(), 2u);
    EXPECT_EQ(sink.records().front().message, "3");
    EXPECT_EQ(sink.records().back().message, "4");

    std::istringstream in(os.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        JsonObject fields;
        std::string error;
        ASSERT_TRUE(parseFlatJsonObject(line, fields, error)) << error;
        ++lines;
    }
    EXPECT_EQ(lines, 5u);
}

TEST(TraceSink, EvictionAtExactCapacityBoundary)
{
    TraceSink sink(nullptr, 3);
    sink.record(0, "c", "0");
    sink.record(1, "c", "1");
    sink.record(2, "c", "2");
    // Exactly at capacity: nothing evicted yet.
    ASSERT_EQ(sink.records().size(), 3u);
    EXPECT_EQ(sink.records().front().message, "0");
    // One past capacity evicts exactly the oldest.
    sink.record(3, "c", "3");
    ASSERT_EQ(sink.records().size(), 3u);
    EXPECT_EQ(sink.records().front().message, "1");
    EXPECT_EQ(sink.records().back().message, "3");
}

TEST(TraceSink, ZeroCapacityRetainsNothingButCountsAndStreams)
{
    std::ostringstream os;
    TraceSink sink(&os, 0);
    sink.record(0, "c", "gone");
    EXPECT_TRUE(sink.records().empty());
    EXPECT_EQ(sink.emitted(), 1u);
    EXPECT_EQ(os.str(), "0: [c] gone\n");
}

TEST(TraceSink, CategoryToggleEdgeCases)
{
    TraceSink sink;
    // enableOnly({}) is "nothing", not "everything".
    sink.enableOnly({});
    EXPECT_FALSE(sink.wants("bus"));
    sink.record(0, "bus", "dropped");
    EXPECT_EQ(sink.emitted(), 0u);

    // Narrow -> renarrow replaces the set, it does not union.
    sink.enableOnly({"bus"});
    sink.enableOnly({"mem"});
    EXPECT_FALSE(sink.wants("bus"));
    EXPECT_TRUE(sink.wants("mem"));

    // enableAll clears the filter AND the remembered set: a later
    // enableOnly starts from scratch.
    sink.enableAll();
    EXPECT_TRUE(sink.wants("bus"));
    sink.enableOnly({"proc"});
    EXPECT_FALSE(sink.wants("mem"));
    EXPECT_TRUE(sink.wants("proc"));

    // Toggling does not disturb already-retained records.
    sink.record(1, "proc", "kept");
    sink.enableOnly({"bus"});
    ASSERT_EQ(sink.records().size(), 1u);
    EXPECT_EQ(sink.records()[0].message, "kept");
}

TEST(TraceSink, WildcardPrefixFilter)
{
    TraceSink sink;
    // A trailing '*' enables every category with that prefix,
    // including the bare stem itself.
    sink.enableOnly({"bus*"});
    EXPECT_TRUE(sink.wants("bus"));
    EXPECT_TRUE(sink.wants("bus.arb"));
    EXPECT_TRUE(sink.wants("busload"));
    EXPECT_FALSE(sink.wants("mem"));
    EXPECT_FALSE(sink.wants("bu"));

    sink.record(0, "bus.arb", "grant");
    sink.record(1, "mem", "dropped");
    ASSERT_EQ(sink.records().size(), 1u);
    EXPECT_EQ(sink.records()[0].category, "bus.arb");

    // Exact patterns and wildcards mix; the exact one does not
    // become a prefix.
    sink.enableOnly({"mem", "proc*"});
    EXPECT_TRUE(sink.wants("mem"));
    EXPECT_FALSE(sink.wants("mem.ctl"));
    EXPECT_TRUE(sink.wants("proc"));
    EXPECT_TRUE(sink.wants("proc3"));

    // '*' anywhere but the end is not special.
    sink.enableOnly({"b*s"});
    EXPECT_FALSE(sink.wants("bus"));
    EXPECT_TRUE(sink.wants("b*s"));
}

TEST(TraceSink, WildcardStarAloneAndReset)
{
    TraceSink sink;
    // A bare "*" matches everything (empty prefix) while keeping
    // the filter active - distinct from enableAll only in intent.
    sink.enableOnly({"*"});
    EXPECT_TRUE(sink.wants("bus"));
    EXPECT_TRUE(sink.wants("anything"));

    // Re-narrowing replaces wildcards too, and enableAll clears
    // remembered prefixes so a later enableOnly starts from scratch.
    sink.enableOnly({"mem"});
    EXPECT_FALSE(sink.wants("bus.arb"));
    sink.enableOnly({"bus*"});
    sink.enableAll();
    sink.enableOnly({"mem"});
    EXPECT_FALSE(sink.wants("bus.arb"));
    EXPECT_TRUE(sink.wants("mem"));
}

TEST(TraceIntegration, UncontendedCycleSequence)
{
    // n = 1, m = 1, r = 3: the first processor cycle is fully
    // deterministic: issue@0, grant@0, access 1..4, response grant@4,
    // delivery@5, next issue@5.
    TraceSink sink;
    SystemConfig cfg;
    cfg.numProcessors = 1;
    cfg.numModules = 1;
    cfg.memoryRatio = 3;
    cfg.warmupCycles = 0;
    cfg.measureCycles = 20;
    cfg.trace = &sink;
    (void)runOnce(cfg);

    const auto &recs = sink.records();
    ASSERT_GE(recs.size(), 7u);
    EXPECT_EQ(recs[0].tick, 0u);
    EXPECT_EQ(recs[0].message, "proc 0 issues to module 0");
    EXPECT_EQ(recs[1].tick, 0u);
    EXPECT_EQ(recs[1].message, "grant request proc 0 -> module 0");
    EXPECT_EQ(recs[2].tick, 1u);
    EXPECT_EQ(recs[2].message, "module 0 starts access for proc 0");
    EXPECT_EQ(recs[3].tick, 4u);
    EXPECT_EQ(recs[3].message, "module 0 completes access for proc 0");
    EXPECT_EQ(recs[4].tick, 4u);
    EXPECT_EQ(recs[4].message, "grant response module 0 -> proc 0");
    EXPECT_EQ(recs[5].tick, 5u);
    EXPECT_EQ(recs[5].message, "proc 0 receives response from module 0");
    EXPECT_EQ(recs[6].tick, 5u);
    EXPECT_EQ(recs[6].message, "proc 0 issues to module 0");
}

TEST(TraceIntegration, BusOnlyFilter)
{
    TraceSink sink;
    sink.enableOnly({"bus"});
    SystemConfig cfg;
    cfg.numProcessors = 2;
    cfg.numModules = 2;
    cfg.memoryRatio = 2;
    cfg.warmupCycles = 0;
    cfg.measureCycles = 100;
    cfg.trace = &sink;
    const Metrics m = runOnce(cfg);

    for (const auto &rec : sink.records())
        EXPECT_EQ(rec.category, "bus");
    // Every bus-busy cycle produced exactly one grant record.
    EXPECT_EQ(sink.emitted(), m.busBusyCycles);
}

TEST(TraceIntegration, TracingDoesNotPerturbResults)
{
    SystemConfig cfg;
    cfg.numProcessors = 4;
    cfg.numModules = 4;
    cfg.memoryRatio = 4;
    cfg.warmupCycles = 100;
    cfg.measureCycles = 5000;
    const Metrics plain = runOnce(cfg);

    TraceSink sink;
    cfg.trace = &sink;
    const Metrics traced = runOnce(cfg);
    EXPECT_EQ(plain.completedRequests, traced.completedRequests);
    EXPECT_EQ(plain.busBusyCycles, traced.busBusyCycles);
    EXPECT_GT(sink.emitted(), 0u);
}

} // namespace
} // namespace sbn
