/**
 * @file
 * Tests for the experiment runners (replication intervals over
 * simulator metrics).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace sbn {
namespace {

SystemConfig
quickConfig()
{
    SystemConfig cfg;
    cfg.numProcessors = 8;
    cfg.numModules = 8;
    cfg.memoryRatio = 8;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 30000;
    return cfg;
}

TEST(Experiment, ReplicateEbwIsDeterministic)
{
    const auto a = replicateEbw(quickConfig(), 4);
    const auto b = replicateEbw(quickConfig(), 4);
    EXPECT_DOUBLE_EQ(a.mean, b.mean);
    EXPECT_DOUBLE_EQ(a.halfWidth, b.halfWidth);
    EXPECT_EQ(a.samples, 4u);
}

TEST(Experiment, ReplicationIntervalIsTight)
{
    // Long windows and several replications must produce a small CI
    // relative to the mean.
    const auto est = replicateEbw(quickConfig(), 5);
    EXPECT_GT(est.mean, 1.0);
    EXPECT_LT(est.halfWidth / est.mean, 0.03);
}

TEST(Experiment, SingleRunFallsInsideInterval)
{
    const auto est = replicateEbw(quickConfig(), 6);
    SystemConfig cfg = quickConfig();
    cfg.seed = 777;
    EXPECT_TRUE(est.covers(runEbw(cfg), 0.05 * est.mean));
}

TEST(Experiment, ArbitraryMetricExtractor)
{
    const auto est =
        replicate(quickConfig(), 3,
                  [](const Metrics &m) { return m.busUtilization; });
    EXPECT_GT(est.mean, 0.5);
    EXPECT_LE(est.mean, 1.0);
}

TEST(Experiment, ReplicateToPrecisionBitIdenticalAcrossThreads)
{
    PrecisionTarget target;
    target.relative = 0.02;
    RoundSchedule schedule;
    schedule.initial = 2;
    schedule.cap = 8;

    const auto serial =
        replicateEbwToPrecision(quickConfig(), target, schedule, 1);
    EXPECT_GE(serial.estimate.samples, 2u);
    EXPECT_LE(serial.estimate.samples, 8u);

    for (unsigned threads : {2u, 8u}) {
        const auto parallel = replicateEbwToPrecision(
            quickConfig(), target, schedule, threads);
        EXPECT_EQ(parallel.estimate.mean, serial.estimate.mean)
            << threads << " threads";
        EXPECT_EQ(parallel.estimate.halfWidth,
                  serial.estimate.halfWidth)
            << threads << " threads";
        EXPECT_EQ(parallel.estimate.samples, serial.estimate.samples);
        EXPECT_EQ(parallel.rounds, serial.rounds);
        EXPECT_EQ(parallel.converged, serial.converged);
    }
}

TEST(Experiment, ReplicateToPrecisionMatchesFixedCountReplicate)
{
    // The adaptive run must reproduce replicate() bit for bit at the
    // replication count it ends with (same seed-derivation stream).
    PrecisionTarget target;
    target.relative = 0.05;
    RoundSchedule schedule;
    schedule.initial = 2;
    schedule.cap = 8;

    const auto adaptive =
        replicateEbwToPrecision(quickConfig(), target, schedule, 1);
    const auto fixed = replicateEbw(
        quickConfig(),
        static_cast<unsigned>(adaptive.estimate.samples), 1);
    EXPECT_EQ(adaptive.estimate.mean, fixed.mean);
    EXPECT_EQ(adaptive.estimate.halfWidth, fixed.halfWidth);
    EXPECT_EQ(adaptive.estimate.samples, fixed.samples);
}

TEST(Experiment, RunOnceMatchesSystemRun)
{
    SystemConfig cfg = quickConfig();
    const Metrics a = runOnce(cfg);
    SingleBusSystem system(cfg);
    const Metrics b = system.run();
    EXPECT_EQ(a.completedRequests, b.completedRequests);
    EXPECT_DOUBLE_EQ(a.ebw, b.ebw);
    EXPECT_DOUBLE_EQ(runEbw(cfg), a.ebw);
}

} // namespace
} // namespace sbn
