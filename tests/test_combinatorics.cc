/**
 * @file
 * Unit tests for the combinatorics toolkit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "util/combinatorics.hh"

namespace sbn {
namespace {

TEST(Factorial, SmallValues)
{
    EXPECT_DOUBLE_EQ(factorial(0), 1.0);
    EXPECT_DOUBLE_EQ(factorial(1), 1.0);
    EXPECT_DOUBLE_EQ(factorial(5), 120.0);
    EXPECT_DOUBLE_EQ(factorial(12), 479001600.0);
}

TEST(Factorial, MatchesLogFactorial)
{
    for (int k = 0; k <= 40; ++k)
        EXPECT_NEAR(std::log(factorial(k)), logFactorial(k), 1e-9)
            << "k=" << k;
}

TEST(Binomial, PascalIdentity)
{
    for (int n = 1; n <= 30; ++n)
        for (int k = 1; k <= n; ++k)
            EXPECT_DOUBLE_EQ(binomial(n, k),
                             binomial(n - 1, k - 1) + binomial(n - 1, k))
                << "n=" << n << " k=" << k;
}

TEST(Binomial, EdgeCases)
{
    EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
    EXPECT_DOUBLE_EQ(binomial(5, 5), 1.0);
    EXPECT_DOUBLE_EQ(binomial(5, 6), 0.0);
    EXPECT_DOUBLE_EQ(binomial(5, -1), 0.0);
    EXPECT_DOUBLE_EQ(binomial(8, 4), 70.0);
}

TEST(Stirling2, KnownValues)
{
    // Triangle rows from standard references.
    EXPECT_DOUBLE_EQ(stirling2(4, 2), 7.0);
    EXPECT_DOUBLE_EQ(stirling2(5, 3), 25.0);
    EXPECT_DOUBLE_EQ(stirling2(6, 3), 90.0);
    EXPECT_DOUBLE_EQ(stirling2(7, 4), 350.0);
    EXPECT_DOUBLE_EQ(stirling2(9, 9), 1.0);
    EXPECT_DOUBLE_EQ(stirling2(9, 1), 1.0);
    EXPECT_DOUBLE_EQ(stirling2(3, 5), 0.0);
}

TEST(Stirling2, RowSumIsBellNumber)
{
    // Bell numbers B_0..B_8.
    const double bell[] = {1, 1, 2, 5, 15, 52, 203, 877, 4140};
    for (int n = 0; n <= 8; ++n) {
        double row = 0.0;
        for (int k = 0; k <= n; ++k)
            row += stirling2(n, k);
        EXPECT_DOUBLE_EQ(row, bell[n]) << "n=" << n;
    }
}

TEST(Surjections, DefinitionMatchesInclusionExclusion)
{
    for (int n = 0; n <= 10; ++n) {
        for (int k = 0; k <= 10; ++k) {
            double expect = 0.0;
            for (int j = 0; j <= k; ++j) {
                const double sign = (j % 2 == 0) ? 1.0 : -1.0;
                expect += sign * binomial(k, j) *
                          std::pow(static_cast<double>(k - j), n);
            }
            if (n == 0 && k == 0)
                expect = 1.0;
            EXPECT_NEAR(surjections(n, k), expect,
                        1e-6 * std::max(1.0, expect))
                << "n=" << n << " k=" << k;
        }
    }
}

TEST(Multinomial, Basics)
{
    EXPECT_DOUBLE_EQ(multinomial(4, {2, 2}), 6.0);
    EXPECT_DOUBLE_EQ(multinomial(6, {1, 2, 3}), 60.0);
    EXPECT_DOUBLE_EQ(multinomial(3, {3}), 1.0);
    EXPECT_DOUBLE_EQ(multinomial(0, {}), 1.0);
}

TEST(DistinctTargetPmf, SumsToOne)
{
    for (int n = 1; n <= 12; ++n) {
        for (int m : {1, 2, 4, 7, 16}) {
            const auto pmf = distinctTargetPmf(n, m);
            const double total =
                std::accumulate(pmf.begin(), pmf.end(), 0.0);
            EXPECT_NEAR(total, 1.0, 1e-12) << "n=" << n << " m=" << m;
        }
    }
}

TEST(DistinctTargetPmf, MeanIsStreckerBandwidth)
{
    for (int n : {2, 4, 8, 16}) {
        for (int m : {2, 4, 8, 16}) {
            const auto pmf = distinctTargetPmf(n, m);
            double mean = 0.0;
            for (std::size_t x = 0; x < pmf.size(); ++x)
                mean += static_cast<double>(x) * pmf[x];
            const double strecker =
                m * (1.0 - std::pow(1.0 - 1.0 / m, n));
            EXPECT_NEAR(mean, strecker, 1e-9) << "n=" << n << " m=" << m;
        }
    }
}

TEST(DistinctTargetPmf, TwoProcessorsClosedForm)
{
    // Two requesters on m modules collide with probability 1/m.
    for (int m : {1, 2, 3, 8}) {
        const auto pmf = distinctTargetPmf(2, m);
        EXPECT_NEAR(pmf[1], 1.0 / m, 1e-12);
        if (m >= 2) {
            EXPECT_NEAR(pmf[2], 1.0 - 1.0 / m, 1e-12);
        }
    }
}

TEST(Partitions, CountsMatchPartitionFunction)
{
    // p(n) for n = 0..10 with unlimited parts.
    const int expect[] = {1, 1, 2, 3, 5, 7, 11, 15, 22, 30, 42};
    for (int n = 0; n <= 10; ++n) {
        int count = 0;
        forEachPartition(n, n, [&](const std::vector<int> &) { ++count; });
        EXPECT_EQ(count, expect[n]) << "n=" << n;
    }
}

TEST(Partitions, RespectsMaxParts)
{
    // Partitions of 6 into at most 2 parts: 6, 5+1, 4+2, 3+3.
    std::set<std::vector<int>> seen;
    forEachPartition(6, 2,
                     [&](const std::vector<int> &p) { seen.insert(p); });
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_TRUE(seen.count({6}));
    EXPECT_TRUE(seen.count({5, 1}));
    EXPECT_TRUE(seen.count({4, 2}));
    EXPECT_TRUE(seen.count({3, 3}));
}

TEST(Partitions, PartsAreDescendingAndSumCorrect)
{
    forEachPartition(9, 4, [&](const std::vector<int> &p) {
        EXPECT_LE(p.size(), 4u);
        int sum = 0;
        for (std::size_t i = 0; i < p.size(); ++i) {
            EXPECT_GE(p[i], 1);
            if (i) {
                EXPECT_LE(p[i], p[i - 1]);
            }
            sum += p[i];
        }
        EXPECT_EQ(sum, 9);
    });
}

TEST(BoundedPartitions, RespectsMaxValue)
{
    // Partitions of 5 with parts <= 2, at most 5 parts:
    // 2+2+1, 2+1+1+1, 1+1+1+1+1.
    int count = 0;
    forEachBoundedPartition(5, 5, 2, [&](const std::vector<int> &p) {
        ++count;
        for (int part : p)
            EXPECT_LE(part, 2);
    });
    EXPECT_EQ(count, 3);
}

TEST(Compositions, CountIsStarsAndBars)
{
    for (int total = 0; total <= 6; ++total) {
        for (int bins = 1; bins <= 4; ++bins) {
            int count = 0;
            forEachComposition(total, bins,
                               [&](const std::vector<int> &) { ++count; });
            EXPECT_DOUBLE_EQ(static_cast<double>(count),
                             binomial(total + bins - 1, bins - 1))
                << "total=" << total << " bins=" << bins;
        }
    }
}

TEST(AssignmentsOntoCells, MatchesBruteForce)
{
    // parts {2,1} onto 3 cells: vectors with one 2, one 1, one 0 in
    // any order = 3! = 6.
    EXPECT_DOUBLE_EQ(assignmentsOntoCells({2, 1}, 3), 6.0);
    // parts {1,1} onto 3 cells: choose 2 of 3 cells = 3.
    EXPECT_DOUBLE_EQ(assignmentsOntoCells({1, 1}, 3), 3.0);
    // parts {} onto 4 cells: exactly one (all-zero) vector.
    EXPECT_DOUBLE_EQ(assignmentsOntoCells({}, 4), 1.0);
    // parts {3,3,1} onto 5 cells: 5!/ (2! * 1! * 2!) = 30.
    EXPECT_DOUBLE_EQ(assignmentsOntoCells({3, 3, 1}, 5), 30.0);
}

TEST(AssignmentsOntoCells, TotalBallPlacementIdentity)
{
    // Summing A(mu, c) * k!/prod(part!) over all partitions mu of k
    // into at most c parts must give c^k (every placement counted).
    for (int k = 0; k <= 6; ++k) {
        for (int c = 1; c <= 5; ++c) {
            double total = 0.0;
            forEachBoundedPartition(
                k, c, std::max(k, 1), [&](const std::vector<int> &mu) {
                    double w = assignmentsOntoCells(mu, c);
                    for (int part : mu)
                        w /= factorial(part);
                    total += w * factorial(k);
                });
            EXPECT_NEAR(total, std::pow(static_cast<double>(c), k), 1e-6)
                << "k=" << k << " c=" << c;
        }
    }
}

} // namespace
} // namespace sbn
