/**
 * @file
 * Parameterized property tests: structural invariants that must hold
 * for EVERY system configuration, swept over the cross product of
 * sizes, ratios, probabilities, policies and buffering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/experiment.hh"

namespace sbn {
namespace {

using ParamTuple =
    std::tuple<int, int, int, double, ArbitrationPolicy, bool>;

class SystemInvariants : public ::testing::TestWithParam<ParamTuple>
{
  protected:
    SystemConfig
    config() const
    {
        const auto &[n, m, r, p, policy, buffered] = GetParam();
        SystemConfig cfg;
        cfg.numProcessors = n;
        cfg.numModules = m;
        cfg.memoryRatio = r;
        cfg.requestProbability = p;
        cfg.policy = policy;
        cfg.buffered = buffered;
        cfg.warmupCycles = 4000;
        cfg.measureCycles = 60000;
        cfg.seed = 99;
        return cfg;
    }
};

TEST_P(SystemInvariants, CapacityBounds)
{
    const SystemConfig cfg = config();
    const Metrics m = runOnce(cfg);

    // The bus ceiling (r+2)/2, one request in service per processor,
    // and the aggregate memory rate m*(r+2)/r all bound EBW.
    EXPECT_LE(m.ebw, cfg.maxEbw() * 1.01);
    EXPECT_LE(m.ebw, cfg.numProcessors * 1.01);
    EXPECT_LE(m.ebw,
              cfg.numModules * (cfg.memoryRatio + 2.0) /
                  cfg.memoryRatio * 1.01);
    EXPECT_LE(m.busUtilization, 1.0 + 1e-12);
    EXPECT_LE(m.meanModuleUtilization, 1.0 + 1e-12);
}

TEST_P(SystemInvariants, MeasurementIdentities)
{
    const SystemConfig cfg = config();
    const Metrics m = runOnce(cfg);

    // EBW computed from completions and from bus utilization agree
    // (every service is exactly two bus transfers).
    if (m.completedRequests > 100) {
        EXPECT_NEAR(m.ebw, m.ebwFromBusUtilization,
                    0.02 * m.ebw + 1e-9);
    }
    EXPECT_EQ(m.measuredCycles, cfg.measureCycles);
    EXPECT_NEAR(m.meanServiceCycles,
                m.meanWaitCycles + cfg.processorCycle(), 1e-9);
    EXPECT_GE(m.waitStats.min(), -1e-12);

    std::uint64_t per_proc_total = 0;
    for (auto c : m.perProcessorCompletions)
        per_proc_total += c;
    EXPECT_EQ(per_proc_total, m.completedRequests);
}

TEST_P(SystemInvariants, RequestConservation)
{
    const SystemConfig cfg = config();
    const Metrics m = runOnce(cfg);
    const auto slack = static_cast<std::uint64_t>(cfg.numProcessors);
    EXPECT_LE(m.completedRequests, m.issuedRequests + slack);
    EXPECT_LE(m.issuedRequests, m.completedRequests + slack);
}

TEST_P(SystemInvariants, DeterministicReplay)
{
    const SystemConfig cfg = config();
    const Metrics a = runOnce(cfg);
    const Metrics b = runOnce(cfg);
    EXPECT_EQ(a.completedRequests, b.completedRequests);
    EXPECT_EQ(a.busBusyCycles, b.busBusyCycles);
}

TEST_P(SystemInvariants, LoadRespondsToP)
{
    // EBW can never exceed the offered load n*p (each processor
    // requests at most once per processor cycle).
    const SystemConfig cfg = config();
    const Metrics m = runOnce(cfg);
    const double offered =
        cfg.numProcessors * cfg.requestProbability;
    EXPECT_LE(m.ebw, offered * 1.02 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SystemInvariants,
    ::testing::Combine(
        ::testing::Values(1, 2, 8, 13),                 // n
        ::testing::Values(1, 4, 16),                    // m
        ::testing::Values(1, 3, 8),                     // r
        ::testing::Values(0.3, 1.0),                    // p
        ::testing::Values(ArbitrationPolicy::ProcessorPriority,
                          ArbitrationPolicy::MemoryPriority),
        ::testing::Bool()),                             // buffered
    [](const ::testing::TestParamInfo<ParamTuple> &info) {
        std::string name = "n" + std::to_string(std::get<0>(info.param)) +
                           "m" + std::to_string(std::get<1>(info.param)) +
                           "r" + std::to_string(std::get<2>(info.param));
        name += std::get<3>(info.param) < 1.0 ? "pLow" : "pOne";
        name += std::get<4>(info.param) ==
                        ArbitrationPolicy::ProcessorPriority
                    ? "Proc"
                    : "Mem";
        name += std::get<5>(info.param) ? "Buf" : "Plain";
        return name;
    });

// ---------------------------------------------------------------------
// Monotonicity trends, parameterized over the driving axis.
// ---------------------------------------------------------------------

class SystemTrends
    : public ::testing::TestWithParam<std::tuple<ArbitrationPolicy, bool>>
{};

TEST_P(SystemTrends, EbwNondecreasingInModules)
{
    const auto &[policy, buffered] = GetParam();
    double prev = 0.0;
    for (int m : {1, 2, 4, 8, 16, 24}) {
        SystemConfig cfg;
        cfg.numProcessors = 8;
        cfg.numModules = m;
        cfg.memoryRatio = 8;
        cfg.policy = policy;
        cfg.buffered = buffered;
        cfg.measureCycles = 80000;
        const double ebw = runEbw(cfg);
        EXPECT_GE(ebw, prev - 0.05) << "m=" << m;
        prev = ebw;
    }
}

TEST_P(SystemTrends, EbwNondecreasingInR)
{
    // EBW (per processor cycle of r+2) grows with r: a slower memory
    // relative to the bus means more outstanding parallelism per
    // cycle. (This is the paper's Fig. 2 x-axis trend.)
    const auto &[policy, buffered] = GetParam();
    double prev = 0.0;
    for (int r : {1, 2, 4, 8, 16}) {
        SystemConfig cfg;
        cfg.numProcessors = 8;
        cfg.numModules = 16;
        cfg.memoryRatio = r;
        cfg.policy = policy;
        cfg.buffered = buffered;
        cfg.measureCycles = 80000;
        const double ebw = runEbw(cfg);
        EXPECT_GE(ebw, prev - 0.05) << "r=" << r;
        prev = ebw;
    }
}

TEST_P(SystemTrends, EbwGrowsWithPUpToLockstepDip)
{
    // EBW grows with the offered load n*p, except that fully
    // synchronous request streams (p exactly 1) can suffer slightly
    // MORE interference than p ~ 0.9 under memory priority (the
    // lockstep effect); allow a 7% dip between neighbouring points
    // but require strong overall growth.
    const auto &[policy, buffered] = GetParam();
    double prev = 0.0;
    double first = -1.0, last = 0.0;
    for (double p : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
        SystemConfig cfg;
        cfg.numProcessors = 8;
        cfg.numModules = 16;
        cfg.memoryRatio = 8;
        cfg.requestProbability = p;
        cfg.policy = policy;
        cfg.buffered = buffered;
        cfg.measureCycles = 80000;
        const double ebw = runEbw(cfg);
        EXPECT_GE(ebw, prev * 0.93 - 0.02) << "p=" << p;
        prev = ebw;
        if (first < 0.0)
            first = ebw;
        last = ebw;
    }
    EXPECT_GT(last, 3.0 * first);
}

INSTANTIATE_TEST_SUITE_P(
    Axes, SystemTrends,
    ::testing::Combine(
        ::testing::Values(ArbitrationPolicy::ProcessorPriority,
                          ArbitrationPolicy::MemoryPriority),
        ::testing::Bool()),
    [](const ::testing::TestParamInfo<
        std::tuple<ArbitrationPolicy, bool>> &info) {
        std::string name = std::get<0>(info.param) ==
                                   ArbitrationPolicy::ProcessorPriority
                               ? "Proc"
                               : "Mem";
        name += std::get<1>(info.param) ? "Buf" : "Plain";
        return name;
    });

} // namespace
} // namespace sbn
