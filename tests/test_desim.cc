/**
 * @file
 * Unit tests for the discrete-event kernel: ordering guarantees,
 * priorities, deschedule semantics and the simulation driver.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "desim/event.hh"
#include "desim/event_queue.hh"
#include "desim/simulation.hh"
#include "util/random.hh"

namespace sbn {
namespace {

TEST(EventQueue, FiresInTickOrder)
{
    Simulation sim;
    std::vector<int> order;
    EventFunction a([&] { order.push_back(1); });
    EventFunction b([&] { order.push_back(2); });
    EventFunction c([&] { order.push_back(3); });

    sim.queue().schedule(c, 30);
    sim.queue().schedule(a, 10);
    sim.queue().schedule(b, 20);
    sim.runAll();

    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
}

TEST(EventQueue, SameTickPriorityOrder)
{
    Simulation sim;
    std::vector<std::string> order;
    EventFunction decide([&] { order.push_back("decide"); },
                         event_priority::kDecide);
    EventFunction update([&] { order.push_back("update"); },
                         event_priority::kUpdate);

    // Schedule the decision first; the update must still run first.
    sim.queue().schedule(decide, 5);
    sim.queue().schedule(update, 5);
    sim.runAll();

    EXPECT_EQ(order, (std::vector<std::string>{"update", "decide"}));
}

TEST(EventQueue, SameTickSamePriorityIsFifo)
{
    Simulation sim;
    std::vector<int> order;
    std::vector<std::unique_ptr<EventFunction>> events;
    for (int i = 0; i < 16; ++i) {
        events.push_back(std::make_unique<EventFunction>(
            [&order, i] { order.push_back(i); }));
        sim.queue().schedule(*events.back(), 7);
    }
    sim.runAll();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduledFlagLifecycle)
{
    Simulation sim;
    EventFunction e([] {});
    EXPECT_FALSE(e.scheduled());
    sim.queue().schedule(e, 3);
    EXPECT_TRUE(e.scheduled());
    EXPECT_EQ(e.when(), 3u);
    sim.runAll();
    EXPECT_FALSE(e.scheduled());
}

TEST(EventQueue, RescheduleFromInsideCallback)
{
    Simulation sim;
    int fires = 0;
    EventFunction e([&] {
        ++fires;
        if (fires < 5) {
            // Self-reschedule: the kernel clears 'scheduled' before
            // process(), so this must work.
            sim.queue().schedule(e, sim.now() + 2);
        }
    });
    sim.queue().schedule(e, 0);
    sim.runAll();
    EXPECT_EQ(fires, 5);
    EXPECT_EQ(sim.now(), 8u);
}

TEST(EventQueue, DescheduleSkipsEvent)
{
    Simulation sim;
    int fired = 0;
    EventFunction a([&] { ++fired; });
    EventFunction b([&] { ++fired; });
    sim.queue().schedule(a, 1);
    sim.queue().schedule(b, 2);
    EXPECT_EQ(sim.queue().size(), 2u);
    sim.queue().deschedule(a);
    EXPECT_FALSE(a.scheduled());
    EXPECT_EQ(sim.queue().size(), 1u);
    sim.runAll();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, DescheduleThenRescheduleSameEvent)
{
    Simulation sim;
    int fired = 0;
    EventFunction a([&] { ++fired; });
    sim.queue().schedule(a, 5);
    sim.queue().deschedule(a);
    sim.queue().schedule(a, 9);
    sim.runAll();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 9u);
}

TEST(EventQueue, NextTickSkipsDescheduled)
{
    Simulation sim;
    EventFunction a([] {});
    EventFunction b([] {});
    sim.queue().schedule(a, 1);
    sim.queue().schedule(b, 4);
    sim.queue().deschedule(a);
    EXPECT_EQ(sim.queue().nextTick(), 4u);
}

TEST(Simulation, RunLimitIsExclusive)
{
    Simulation sim;
    std::vector<Tick> fired;
    std::vector<std::unique_ptr<EventFunction>> events;
    for (Tick t : {1u, 5u, 10u, 15u}) {
        events.push_back(std::make_unique<EventFunction>(
            [&fired, &sim] { fired.push_back(sim.now()); }));
        sim.queue().schedule(*events.back(), t);
    }

    sim.run(10); // events at tick >= 10 must not run
    EXPECT_EQ(fired, (std::vector<Tick>{1, 5}));
    sim.run(11);
    EXPECT_EQ(fired, (std::vector<Tick>{1, 5, 10}));
    sim.runAll();
    EXPECT_EQ(fired, (std::vector<Tick>{1, 5, 10, 15}));
}

TEST(Simulation, StepRunsExactlyOne)
{
    Simulation sim;
    int fired = 0;
    EventFunction a([&] { ++fired; });
    EventFunction b([&] { ++fired; });
    sim.queue().schedule(a, 1);
    sim.queue().schedule(b, 2);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(sim.step());
}

TEST(Simulation, ExecutedCounter)
{
    Simulation sim;
    std::vector<std::unique_ptr<EventFunction>> events;
    for (int i = 0; i < 7; ++i) {
        events.push_back(std::make_unique<EventFunction>([] {}));
        sim.queue().schedule(*events.back(), i);
    }
    sim.runAll();
    EXPECT_EQ(sim.queue().executed(), 7u);
}

TEST(EventQueue, HeavyDescheduleChurnKeepsOrderAndCounts)
{
    // Tombstone far more events than survive, well past the
    // compaction floor, and check that survivors still fire in exact
    // (tick, schedule-order) sequence with correct size() accounting.
    Simulation sim;
    constexpr int kEvents = 512;
    std::vector<int> fired;
    std::vector<std::unique_ptr<EventFunction>> events;
    events.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i) {
        events.push_back(std::make_unique<EventFunction>(
            [&fired, i] { fired.push_back(i); }));
        sim.queue().schedule(*events.back(),
                             static_cast<Tick>((i * 7) % 101));
    }
    EXPECT_EQ(sim.queue().size(), static_cast<std::uint64_t>(kEvents));

    // Deschedule 7 of every 8 events (448 dead vs 64 live): forces
    // the bounded compaction to kick in mid-churn.
    int survivors = 0;
    for (int i = 0; i < kEvents; ++i) {
        if (i % 8 != 0) {
            sim.queue().deschedule(*events[i]);
            EXPECT_FALSE(events[i]->scheduled());
        } else {
            ++survivors;
        }
    }
    EXPECT_EQ(sim.queue().size(),
              static_cast<std::uint64_t>(survivors));

    // Expected firing order: survivors sorted by (tick, schedule
    // order) - same-priority ties break by insertion sequence.
    std::vector<int> expected;
    for (int i = 0; i < kEvents; i += 8)
        expected.push_back(i);
    std::stable_sort(expected.begin(), expected.end(),
                     [](int a, int b) {
                         return (a * 7) % 101 < (b * 7) % 101;
                     });

    sim.runAll();
    EXPECT_EQ(fired, expected);
    EXPECT_EQ(sim.queue().size(), 0u);
    EXPECT_TRUE(sim.queue().empty());
}

TEST(EventQueue, RandomizedChurnMatchesReferenceModel)
{
    // Deterministic random schedule/deschedule/run interleaving
    // checked against a trivially-correct ordered-set reference.
    Simulation sim;
    constexpr int kEvents = 128;
    RandomGenerator rng(20260727);

    int last_fired = -1;
    std::vector<std::unique_ptr<EventFunction>> events;
    events.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i)
        events.push_back(std::make_unique<EventFunction>(
            [&last_fired, i] { last_fired = i; }));

    // Reference: (tick, schedule-op-counter) -> event index.
    std::set<std::pair<std::tuple<Tick, std::uint64_t>, int>> live;
    std::vector<std::tuple<Tick, std::uint64_t>> key(kEvents);
    std::uint64_t op_counter = 0;

    for (int op = 0; op < 20000; ++op) {
        const int i = static_cast<int>(rng.pickIndex(kEvents));
        const int action = static_cast<int>(rng.pickIndex(3));
        if (action == 0 && !events[i]->scheduled()) {
            const Tick when = sim.now() + rng.uniformInt(50);
            key[i] = {when, op_counter++};
            live.insert({key[i], i});
            sim.queue().schedule(*events[i], when);
        } else if (action == 1 && events[i]->scheduled()) {
            live.erase({key[i], i});
            sim.queue().deschedule(*events[i]);
        } else if (action == 2 && !sim.queue().empty()) {
            const auto expected = *live.begin();
            live.erase(live.begin());
            sim.queue().runOne();
            EXPECT_EQ(last_fired, expected.second) << "op " << op;
        }
        ASSERT_EQ(sim.queue().size(), live.size()) << "op " << op;
        ASSERT_EQ(sim.queue().empty(), live.empty()) << "op " << op;
    }

    while (!sim.queue().empty()) {
        const auto expected = *live.begin();
        live.erase(live.begin());
        sim.queue().runOne();
        EXPECT_EQ(last_fired, expected.second);
    }
    EXPECT_TRUE(live.empty());
}

TEST(Simulation, CascadedScheduling)
{
    // An event chain where each event schedules the next models the
    // simulator's self-sustaining behaviour.
    Simulation sim;
    Tick hops = 0;
    EventFunction hop([&] {
        if (++hops < 1000)
            sim.queue().schedule(hop, sim.now() + 1);
    });
    sim.queue().schedule(hop, 0);
    sim.runAll();
    EXPECT_EQ(hops, 1000u);
    EXPECT_EQ(sim.now(), 999u);
}

namespace {

/** Target for MemberEvent dispatch tests. */
struct Widget
{
    std::vector<int> hits;
    void poke(int index) { hits.push_back(index); }
};

} // namespace

TEST(MemberEvent, DispatchesToBoundMemberWithIndex)
{
    Simulation sim;
    Widget widget;
    MemberEvent<Widget> a(widget, &Widget::poke, 7);
    MemberEvent<Widget> b;
    b.bind(widget, &Widget::poke, 42, event_priority::kDecide,
           "widget-poke");

    sim.queue().schedule(b, 5); // kDecide: runs after a at tick 5
    sim.queue().schedule(a, 5);
    sim.runAll();
    EXPECT_EQ(widget.hits, (std::vector<int>{7, 42}));
    EXPECT_STREQ(b.name(), "widget-poke");
}

TEST(MemberEvent, ReschedulableLikeAnyEvent)
{
    Simulation sim;
    Widget widget;
    MemberEvent<Widget> e(widget, &Widget::poke, 1);
    sim.queue().schedule(e, 3);
    sim.queue().deschedule(e);
    sim.queue().schedule(e, 4);
    sim.runAll();
    EXPECT_EQ(widget.hits.size(), 1u);
    EXPECT_EQ(sim.now(), 4u);
}

TEST(EventQueueAdvanceTo, MovesTimeWithoutRunningEvents)
{
    Simulation sim;
    int fired = 0;
    EventFunction e([&] { ++fired; });
    sim.queue().schedule(e, 100);

    sim.queue().advanceTo(40);
    EXPECT_EQ(sim.now(), 40u);
    EXPECT_EQ(fired, 0);

    // Scheduling against the advanced clock works as usual.
    EventFunction f([&] { fired += 10; });
    sim.queue().schedule(f, 50);
    sim.runAll();
    EXPECT_EQ(fired, 11);
    EXPECT_EQ(sim.now(), 100u);
}

TEST(EventQueueAdvanceTo, RefusesToSkipPendingEvents)
{
    Simulation sim;
    EventFunction e([] {});
    sim.queue().schedule(e, 10);
    EXPECT_DEATH(sim.queue().advanceTo(11), "skipping over a pending");
    sim.queue().advanceTo(10); // exactly the pending tick is fine
    EXPECT_DEATH(sim.queue().advanceTo(9), "moving time backwards");
}

} // namespace
} // namespace sbn
