/**
 * @file
 * Tests for the multiple-bus bandwidth models (reference [5]'s family)
 * and their relation to the crossbar and the paper's conclusions.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analytic/crossbar.hh"
#include "analytic/multibus.hh"

namespace sbn {
namespace {

TEST(Multibus, OneBusServesExactlyOne)
{
    for (int n : {2, 4, 6}) {
        for (int m : {2, 5}) {
            EXPECT_NEAR(multibusExactBandwidth(n, m, 1), 1.0, 1e-12);
        }
    }
}

TEST(Multibus, FullBusesEqualCrossbar)
{
    for (int n : {2, 4, 6, 8}) {
        for (int m : {2, 4, 8}) {
            const int b = std::min(n, m);
            EXPECT_NEAR(multibusExactBandwidth(n, m, b),
                        crossbarExactBandwidth(n, m), 1e-9)
                << "n=" << n << " m=" << m;
            // More buses than min(n, m) cannot help further.
            EXPECT_NEAR(multibusExactBandwidth(n, m, b + 3),
                        crossbarExactBandwidth(n, m), 1e-9);
        }
    }
}

TEST(Multibus, MonotoneInBuses)
{
    double prev = 0.0;
    for (int b = 1; b <= 8; ++b) {
        const double bw = multibusExactBandwidth(8, 8, b);
        EXPECT_GE(bw, prev - 1e-12) << "b=" << b;
        EXPECT_LE(bw, static_cast<double>(b) + 1e-12);
        prev = bw;
    }
}

TEST(Multibus, CrossbarEquivalenceBusCount)
{
    // The paper's conclusion quotes reference [5] ("four buses are
    // needed") whose multiple-bus network is itself multiplexed, a
    // different unit system than this non-multiplexed chain. In
    // non-multiplexed units, the 8x8 crossbar level (4.947) is
    // reached with five buses on a 14-module system and is
    // structurally unreachable with four (BW <= b = 4):
    const double crossbar = crossbarExactBandwidth(8, 8);
    EXPECT_NEAR(multibusExactBandwidth(8, 14, 5) / crossbar, 1.0, 0.05);
    EXPECT_LE(multibusExactBandwidth(8, 14, 4), 4.0 + 1e-9);
    EXPECT_LT(multibusExactBandwidth(8, 8, 4) / crossbar, 0.85);
}

TEST(Multibus, ApproxTracksExact)
{
    // The memoryless approximation stays within ~10% for the paper's
    // parameter ranges (it is the same approximation quality as
    // Table 2 vs Table 1).
    for (int n : {4, 8}) {
        for (int m : {4, 8, 12}) {
            for (int b = 1; b <= std::min(n, m); ++b) {
                const double exact = multibusExactBandwidth(n, m, b);
                const double approx = multibusApproxBandwidth(n, m, b);
                EXPECT_NEAR(approx / exact, 1.0, 0.11)
                    << "n=" << n << " m=" << m << " b=" << b;
            }
        }
    }
}

TEST(Multibus, ApproxCapsAtBuses)
{
    EXPECT_LE(multibusApproxBandwidth(16, 16, 3), 3.0 + 1e-12);
}

} // namespace
} // namespace sbn
