/**
 * @file
 * Unit tests for the DTMC stationary solvers against closed-form
 * chains, including periodic and near-reducible cases.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "markov/dtmc.hh"
#include "util/random.hh"

namespace sbn {
namespace {

TEST(Dtmc, TwoStateClosedForm)
{
    // P = [[1-a, a], [b, 1-b]] has pi = (b, a)/(a+b).
    const double a = 0.3, b = 0.1;
    Dtmc chain(2);
    chain.addTransition(0, 0, 1 - a);
    chain.addTransition(0, 1, a);
    chain.addTransition(1, 0, b);
    chain.addTransition(1, 1, 1 - b);
    chain.validate();

    const auto pi = chain.stationaryDirect();
    EXPECT_NEAR(pi[0], b / (a + b), 1e-12);
    EXPECT_NEAR(pi[1], a / (a + b), 1e-12);
}

TEST(Dtmc, PeriodicChainHandledByBothSolvers)
{
    // Deterministic 3-cycle: period 3, uniform stationary law.
    Dtmc chain(3);
    chain.addTransition(0, 1, 1.0);
    chain.addTransition(1, 2, 1.0);
    chain.addTransition(2, 0, 1.0);
    chain.validate();

    for (const auto &pi :
         {chain.stationaryDirect(), chain.stationaryPower()}) {
        for (double v : pi)
            EXPECT_NEAR(v, 1.0 / 3.0, 1e-9);
    }
}

TEST(Dtmc, DirectMatchesPowerOnRandomChain)
{
    RandomGenerator rng(77);
    const std::size_t n = 25;
    Dtmc chain(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> row(n);
        double total = 0.0;
        for (auto &v : row) {
            v = rng.uniformReal() + 0.01; // strictly positive: ergodic
            total += v;
        }
        for (std::size_t j = 0; j < n; ++j)
            chain.addTransition(i, j, row[j] / total);
    }
    chain.validate();

    const auto direct = chain.stationaryDirect();
    const auto power = chain.stationaryPower(1e-14);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(direct[i], power[i], 1e-8);
}

TEST(Dtmc, StationaryIsFixedPoint)
{
    RandomGenerator rng(101);
    const std::size_t n = 12;
    Dtmc chain(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> row(n);
        double total = 0.0;
        for (auto &v : row) {
            v = rng.uniformReal();
            total += v;
        }
        for (std::size_t j = 0; j < n; ++j)
            chain.addTransition(i, j, row[j] / total);
    }
    const auto pi = chain.stationaryDirect();

    for (std::size_t j = 0; j < n; ++j) {
        double balance = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            balance += pi[i] * chain.probability(i, j);
        EXPECT_NEAR(balance, pi[j], 1e-10);
    }
    double total = 0.0;
    for (double v : pi)
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Dtmc, TransientStatesGetZeroMass)
{
    // State 0 drains into the recurrent pair {1, 2}.
    Dtmc chain(3);
    chain.addTransition(0, 1, 0.5);
    chain.addTransition(0, 2, 0.5);
    chain.addTransition(1, 2, 1.0);
    chain.addTransition(2, 1, 1.0);
    chain.validate();

    const auto pi = chain.stationaryDirect();
    EXPECT_NEAR(pi[0], 0.0, 1e-12);
    EXPECT_NEAR(pi[1], 0.5, 1e-12);
    EXPECT_NEAR(pi[2], 0.5, 1e-12);
}

TEST(Dtmc, BirthDeathClosedForm)
{
    // Random walk on 0..4 with reflecting ends, up prob 0.4, down 0.6;
    // stationary ratio pi[k+1]/pi[k] = 0.4/0.6 in the interior.
    const int n = 5;
    const double up = 0.4, down = 0.6;
    Dtmc chain(n);
    chain.addTransition(0, 1, up);
    chain.addTransition(0, 0, 1 - up);
    for (int k = 1; k < n - 1; ++k) {
        chain.addTransition(k, k + 1, up);
        chain.addTransition(k, k - 1, down);
        chain.addTransition(k, k, 1 - up - down);
    }
    chain.addTransition(n - 1, n - 2, down);
    chain.addTransition(n - 1, n - 1, 1 - down);
    chain.validate();

    const auto pi = chain.stationaryDirect();
    for (int k = 0; k + 1 < n; ++k)
        EXPECT_NEAR(pi[k + 1] / pi[k], up / down, 1e-9) << "k=" << k;
}

TEST(Dtmc, ExpectationHelper)
{
    const std::vector<double> pi{0.25, 0.75};
    const std::vector<double> reward{4.0, 8.0};
    EXPECT_DOUBLE_EQ(Dtmc::expectation(pi, reward), 7.0);
}

TEST(Dtmc, DuplicateTransitionsAccumulate)
{
    Dtmc chain(2);
    chain.addTransition(0, 1, 0.25);
    chain.addTransition(0, 1, 0.75);
    chain.addTransition(1, 0, 1.0);
    chain.validate();
    EXPECT_DOUBLE_EQ(chain.probability(0, 1), 1.0);
}

} // namespace
} // namespace sbn
