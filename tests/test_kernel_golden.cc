/**
 * @file
 * Golden pinned Metrics for the CycleSkip kernel.
 *
 * The kernel-differential suite used to prove CycleSkip == Classic
 * for every configuration class; the Classic kernel is now retired
 * and this suite is the anchor in its place: it pins the *absolute*
 * Metrics of the kernel for a small configuration grid against
 * values checked in under tests/golden/, so any behavioral drift (an
 * RNG-stream reorder, a changed grant decision, an off-by-one in the
 * measurement window) fails ctest with the offending config and
 * counter named. tests/test_kernel_diff.cc pins the wider
 * Classic-era differential grid the same way.
 *
 * Comparison is *exact*: the counters are integers and the derived
 * doubles are deterministic arithmetic on them, serialized as %.17g
 * (round-trips bit-exactly, same convention as the sharded-sweep
 * record format). There is no tolerance to absorb drift - that is the
 * point.
 *
 * Regenerating after an intentional kernel-behavior change:
 *
 *     SBN_REGEN_GOLDEN=1 ./build/tests/sbn_tests \
 *         --gtest_filter='GoldenKernel*'
 *
 * then rerun without the variable and review the diff like code (see
 * docs/testing.md).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "golden_util.hh"

namespace sbn {
namespace {

using golden::GoldenLine;
using golden::checkExactGolden;
using golden::exact;

TEST(GoldenKernelMetrics, CycleSkipPinnedGrid)
{
    std::vector<GoldenLine> computed;
    for (const int n : {2, 8}) {
        for (const int m : {2, 8}) {
            for (const int r : {2, 8}) {
                for (const double p : {0.1, 1.0}) {
                    for (const bool buffered : {false, true}) {
                        SystemConfig cfg;
                        cfg.numProcessors = n;
                        cfg.numModules = m;
                        cfg.memoryRatio = r;
                        cfg.requestProbability = p;
                        cfg.buffered = buffered;
                        cfg.warmupCycles = 500;
                        cfg.measureCycles = 5000;
                        cfg.seed = 20260727;

                        char label[64];
                        std::snprintf(label, sizeof label,
                                      "n=%d m=%d r=%d p=%.1f buf=%d",
                                      n, m, r, p, buffered ? 1 : 0);

                        const Metrics metrics = runOnce(cfg);
                        const std::string key = label;
                        computed.push_back(
                            {key + " completed",
                             exact(metrics.completedRequests)});
                        computed.push_back(
                            {key + " issued",
                             exact(metrics.issuedRequests)});
                        computed.push_back(
                            {key + " busBusy",
                             exact(metrics.busBusyCycles)});
                        computed.push_back(
                            {key + " ebw", exact(metrics.ebw)});
                        computed.push_back(
                            {key + " busUtil",
                             exact(metrics.busUtilization)});
                        computed.push_back(
                            {key + " meanWait",
                             exact(metrics.meanWaitCycles)});
                        computed.push_back(
                            {key + " meanService",
                             exact(metrics.meanServiceCycles)});
                    }
                }
            }
        }
    }
    checkExactGolden("kernel_metrics", computed);
}

/**
 * Both arbitration policies and the OldestFirst selection extension
 * on a contended shape - the grant-decision paths Classic's removal
 * leaves without a differential reference.
 */
TEST(GoldenKernelMetrics, CycleSkipPinnedPolicyVariants)
{
    std::vector<GoldenLine> computed;
    for (const ArbitrationPolicy policy :
         {ArbitrationPolicy::ProcessorPriority,
          ArbitrationPolicy::MemoryPriority}) {
        for (const SelectionRule selection :
             {SelectionRule::Random, SelectionRule::OldestFirst}) {
            SystemConfig cfg;
            cfg.numProcessors = 6;
            cfg.numModules = 4; // more processors than modules
            cfg.memoryRatio = 4;
            cfg.policy = policy;
            cfg.selection = selection;
            cfg.warmupCycles = 500;
            cfg.measureCycles = 5000;
            cfg.seed = 20260727;

            const std::string key =
                std::string(policy ==
                                    ArbitrationPolicy::ProcessorPriority
                                ? "procprio"
                                : "memprio") +
                (selection == SelectionRule::Random ? " random"
                                                    : " oldest");
            const Metrics metrics = runOnce(cfg);
            computed.push_back({key + " completed",
                                exact(metrics.completedRequests)});
            computed.push_back(
                {key + " busBusy", exact(metrics.busBusyCycles)});
            computed.push_back({key + " ebw", exact(metrics.ebw)});
            computed.push_back(
                {key + " meanWait", exact(metrics.meanWaitCycles)});
        }
    }
    checkExactGolden("kernel_metrics_policies", computed);
}

} // namespace
} // namespace sbn
