/**
 * @file
 * Golden pinned Metrics for the CycleSkip kernel.
 *
 * The kernel-differential suite (test_kernel_diff.cc) proves
 * CycleSkip == Classic for every configuration class, but it needs
 * Classic alive to diff against - and the ROADMAP retires
 * `KernelKind::Classic` next release. This suite is the replacement
 * anchor: it pins the *absolute* Metrics of the CycleSkip kernel for
 * a small configuration grid against values checked in under
 * tests/golden/, so once Classic is gone, any behavioral drift of the
 * surviving kernel (an RNG-stream reorder, a changed grant decision,
 * an off-by-one in the measurement window) still fails ctest with the
 * offending config and counter named.
 *
 * Comparison is *exact*: the counters are integers and the derived
 * doubles are deterministic arithmetic on them, serialized as %.17g
 * (round-trips bit-exactly, same convention as the sharded-sweep
 * record format). There is no tolerance to absorb drift - that is the
 * point.
 *
 * Regenerating after an intentional kernel-behavior change:
 *
 *     SBN_REGEN_GOLDEN=1 ./build/tests/sbn_tests \
 *         --gtest_filter='GoldenKernel*'
 *
 * then rerun without the variable and review the diff like code (see
 * docs/testing.md).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.hh"

#ifndef SBN_GOLDEN_DIR
#error "SBN_GOLDEN_DIR must point at the tests/golden source directory"
#endif

namespace sbn {
namespace {

struct GoldenLine
{
    std::string label;
    std::string value; //!< exact serialized form
};

std::string
exact(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

std::string
exact(std::uint64_t value)
{
    return std::to_string(value);
}

/** Exact-match golden comparison (or regen under SBN_REGEN_GOLDEN). */
void
checkExactGolden(const std::string &name,
                 const std::vector<GoldenLine> &computed)
{
    const std::string path =
        std::string(SBN_GOLDEN_DIR) + "/" + name + ".txt";

    if (std::getenv("SBN_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << "# Pinned CycleSkip-kernel Metrics (label value; "
               "exact match; see docs/testing.md).\n"
            << "# Regenerate with SBN_REGEN_GOLDEN=1 after an "
               "intentional kernel-behavior change.\n";
        for (const GoldenLine &line : computed)
            out << line.label << ' ' << line.value << '\n';
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " - run with SBN_REGEN_GOLDEN=1 to create it";

    std::vector<GoldenLine> expected;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t split = line.rfind(' ');
        ASSERT_NE(split, std::string::npos) << "bad line: " << line;
        expected.push_back(
            {line.substr(0, split), line.substr(split + 1)});
    }

    ASSERT_EQ(expected.size(), computed.size())
        << "golden file " << path
        << " and computed grid disagree on size - regenerate if the "
           "grid changed intentionally";
    for (std::size_t i = 0; i < computed.size(); ++i) {
        EXPECT_EQ(computed[i].label, expected[i].label)
            << "entry " << i << " of " << path;
        EXPECT_EQ(computed[i].value, expected[i].value)
            << computed[i].label << " in " << path
            << " - CycleSkip kernel behavior drifted";
    }
}

TEST(GoldenKernelMetrics, CycleSkipPinnedGrid)
{
    std::vector<GoldenLine> computed;
    for (const int n : {2, 8}) {
        for (const int m : {2, 8}) {
            for (const int r : {2, 8}) {
                for (const double p : {0.1, 1.0}) {
                    for (const bool buffered : {false, true}) {
                        SystemConfig cfg;
                        cfg.numProcessors = n;
                        cfg.numModules = m;
                        cfg.memoryRatio = r;
                        cfg.requestProbability = p;
                        cfg.buffered = buffered;
                        cfg.kernel = KernelKind::CycleSkip;
                        cfg.warmupCycles = 500;
                        cfg.measureCycles = 5000;
                        cfg.seed = 20260727;

                        char label[64];
                        std::snprintf(label, sizeof label,
                                      "n=%d m=%d r=%d p=%.1f buf=%d",
                                      n, m, r, p, buffered ? 1 : 0);

                        const Metrics metrics = runOnce(cfg);
                        const std::string key = label;
                        computed.push_back(
                            {key + " completed",
                             exact(metrics.completedRequests)});
                        computed.push_back(
                            {key + " issued",
                             exact(metrics.issuedRequests)});
                        computed.push_back(
                            {key + " busBusy",
                             exact(metrics.busBusyCycles)});
                        computed.push_back(
                            {key + " ebw", exact(metrics.ebw)});
                        computed.push_back(
                            {key + " busUtil",
                             exact(metrics.busUtilization)});
                        computed.push_back(
                            {key + " meanWait",
                             exact(metrics.meanWaitCycles)});
                        computed.push_back(
                            {key + " meanService",
                             exact(metrics.meanServiceCycles)});
                    }
                }
            }
        }
    }
    checkExactGolden("kernel_metrics", computed);
}

/**
 * Both arbitration policies and the OldestFirst selection extension
 * on a contended shape - the grant-decision paths Classic's removal
 * leaves without a differential reference.
 */
TEST(GoldenKernelMetrics, CycleSkipPinnedPolicyVariants)
{
    std::vector<GoldenLine> computed;
    for (const ArbitrationPolicy policy :
         {ArbitrationPolicy::ProcessorPriority,
          ArbitrationPolicy::MemoryPriority}) {
        for (const SelectionRule selection :
             {SelectionRule::Random, SelectionRule::OldestFirst}) {
            SystemConfig cfg;
            cfg.numProcessors = 6;
            cfg.numModules = 4; // more processors than modules
            cfg.memoryRatio = 4;
            cfg.policy = policy;
            cfg.selection = selection;
            cfg.kernel = KernelKind::CycleSkip;
            cfg.warmupCycles = 500;
            cfg.measureCycles = 5000;
            cfg.seed = 20260727;

            const std::string key =
                std::string(policy ==
                                    ArbitrationPolicy::ProcessorPriority
                                ? "procprio"
                                : "memprio") +
                (selection == SelectionRule::Random ? " random"
                                                    : " oldest");
            const Metrics metrics = runOnce(cfg);
            computed.push_back({key + " completed",
                                exact(metrics.completedRequests)});
            computed.push_back(
                {key + " busBusy", exact(metrics.busBusyCycles)});
            computed.push_back({key + " ebw", exact(metrics.ebw)});
            computed.push_back(
                {key + " meanWait", exact(metrics.meanWaitCycles)});
        }
    }
    checkExactGolden("kernel_metrics_policies", computed);
}

} // namespace
} // namespace sbn
