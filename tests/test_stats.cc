/**
 * @file
 * Unit tests for the statistics package: accumulator moments, merge,
 * Student-t intervals, batch means and the histogram.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/accumulator.hh"
#include "stats/batch_means.hh"
#include "stats/histogram.hh"
#include "stats/replication.hh"
#include "util/random.hh"

namespace sbn {
namespace {

TEST(Accumulator, EmptyDefaults)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_TRUE(std::isinf(a.confidenceHalfWidth()));
}

TEST(Accumulator, KnownMoments)
{
    Accumulator a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(v);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    // Sample variance with Bessel correction: sum sq dev = 32, /7.
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_NEAR(a.sum(), 40.0, 1e-12);
}

TEST(Accumulator, MergeMatchesSequential)
{
    RandomGenerator rng(99);
    Accumulator whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniformReal() * 10.0 - 3.0;
        whole.add(v);
        (i < 400 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty)
{
    Accumulator a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(StudentT, TableValues)
{
    EXPECT_NEAR(studentTQuantile(1, 0.95), 12.706, 1e-3);
    EXPECT_NEAR(studentTQuantile(4, 0.95), 2.776, 1e-3);
    EXPECT_NEAR(studentTQuantile(10, 0.90), 1.812, 1e-3);
    EXPECT_NEAR(studentTQuantile(30, 0.99), 2.750, 1e-3);
    EXPECT_NEAR(studentTQuantile(100000, 0.95), 1.960, 1e-3);
}

TEST(StudentT, DecreasesWithDof)
{
    for (double level : {0.90, 0.95, 0.99}) {
        double prev = studentTQuantile(1, level);
        for (std::uint64_t dof : {2u, 5u, 10u, 30u, 50u, 200u}) {
            const double cur = studentTQuantile(dof, level);
            EXPECT_LE(cur, prev) << "dof=" << dof << " level=" << level;
            prev = cur;
        }
    }
}

TEST(Estimate, CoversItsMean)
{
    Estimate e;
    e.mean = 5.0;
    e.halfWidth = 0.5;
    EXPECT_TRUE(e.covers(5.4));
    EXPECT_TRUE(e.covers(4.6));
    EXPECT_FALSE(e.covers(5.6));
    EXPECT_TRUE(e.covers(5.6, 0.2));
    EXPECT_DOUBLE_EQ(e.lower(), 4.5);
    EXPECT_DOUBLE_EQ(e.upper(), 5.5);
}

TEST(BatchMeans, GrandMeanMatchesStream)
{
    BatchMeans bm(10);
    double sum = 0.0;
    for (int i = 0; i < 1000; ++i) {
        bm.add(static_cast<double>(i % 7));
        sum += static_cast<double>(i % 7);
    }
    EXPECT_EQ(bm.batches(), 100u);
    EXPECT_NEAR(bm.mean(), sum / 1000.0, 1e-9);
}

TEST(BatchMeans, IntervalShrinksWithData)
{
    RandomGenerator rng(7);
    BatchMeans small(50), large(50);
    for (int i = 0; i < 1000; ++i)
        small.add(rng.uniformReal());
    for (int i = 0; i < 50000; ++i)
        large.add(rng.uniformReal());
    EXPECT_LT(large.estimate().halfWidth, small.estimate().halfWidth);
    EXPECT_TRUE(large.estimate().covers(0.5, 0.01));
}

TEST(BatchMeans, PartialBatchIgnored)
{
    BatchMeans bm(10);
    for (int i = 0; i < 15; ++i)
        bm.add(1.0);
    EXPECT_EQ(bm.batches(), 1u);
    bm.reset();
    EXPECT_EQ(bm.batches(), 0u);
}

TEST(Histogram, BinningAndCounts)
{
    Histogram h(0.0, 10.0, 10);
    for (double v : {0.0, 0.5, 1.0, 5.5, 9.99})
        h.add(v);
    h.add(-1.0);  // underflow
    h.add(10.0);  // overflow (hi is exclusive)
    h.add(100.0); // overflow

    EXPECT_EQ(h.count(), 8u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, MeanTracksAllSamples)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.5);
    h.add(1.5);
    h.add(2.5);
    EXPECT_NEAR(h.mean(), 1.5, 1e-12);
}

TEST(Histogram, QuantileMonotone)
{
    Histogram h(0.0, 100.0, 100);
    RandomGenerator rng(123);
    for (int i = 0; i < 10000; ++i)
        h.add(rng.uniformReal() * 100.0);
    const double q25 = h.quantile(0.25);
    const double q50 = h.quantile(0.50);
    const double q90 = h.quantile(0.90);
    EXPECT_LE(q25, q50);
    EXPECT_LE(q50, q90);
    EXPECT_NEAR(q50, 50.0, 3.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.3);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.binCount(0), 0u);
}

TEST(Histogram, LogScaleBinsArePowers)
{
    // logScale(1, 1024, 10) puts bin edges at exact powers of two.
    Histogram h = Histogram::logScale(1.0, 1024.0, 10);
    for (std::size_t i = 0; i <= 10; ++i)
        EXPECT_NEAR(h.binLow(i), std::pow(2.0, static_cast<double>(i)),
                    1e-9)
            << "edge " << i;

    h.add(1.0);    // first bin, inclusive lower edge
    h.add(1.99);   // still [1, 2)
    h.add(2.0);    // [2, 4)
    h.add(3.0);    // [2, 4)
    h.add(512.0);  // last bin [512, 1024)
    h.add(1023.0); // last bin
    h.add(0.5);    // below lo -> underflow
    h.add(1024.0); // hi is exclusive -> overflow

    EXPECT_EQ(h.count(), 8u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, QuantileOfEmptyIsNaN)
{
    const Histogram h(0.0, 1.0, 4);
    EXPECT_TRUE(std::isnan(h.quantile(0.0)));
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
    EXPECT_TRUE(std::isnan(h.quantile(1.0)));
    EXPECT_TRUE(std::isnan(h.maxSample()));
}

TEST(Histogram, QuantileSaturatesAtRangeEnds)
{
    // All mass in overflow: every quantile resolves to hi (the
    // histogram cannot see past its range). All mass in underflow
    // resolves to lo symmetrically.
    Histogram over(0.0, 10.0, 10);
    over.add(50.0);
    over.add(99.0);
    EXPECT_DOUBLE_EQ(over.quantile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(over.quantile(1.0), 10.0);

    Histogram under(1.0, 10.0, 10);
    under.add(0.25);
    under.add(0.5);
    EXPECT_DOUBLE_EQ(under.quantile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(under.quantile(1.0), 1.0);
}

TEST(Histogram, MergeMatchesSequentialFill)
{
    Histogram whole = Histogram::logScale(1.0, 4096.0, 24);
    Histogram left = Histogram::logScale(1.0, 4096.0, 24);
    Histogram right = Histogram::logScale(1.0, 4096.0, 24);

    RandomGenerator rng(77);
    for (int i = 0; i < 2000; ++i) {
        // Integer-valued samples (cycle counts) are the production
        // contract; their running sum is exact, making the merged
        // flat JSON byte-identical to the sequential fill.
        const double v = std::floor(rng.uniformReal() * 8192.0);
        whole.add(v);
        (i % 2 ? left : right).add(v);
    }
    left.merge(right);

    EXPECT_EQ(left.count(), whole.count());
    EXPECT_EQ(left.underflow(), whole.underflow());
    EXPECT_EQ(left.overflow(), whole.overflow());
    EXPECT_DOUBLE_EQ(left.maxSample(), whole.maxSample());
    // Byte-identical flat JSON is the contract sharded runs rely on.
    EXPECT_EQ(left.renderFlatJson(), whole.renderFlatJson());
}

TEST(Histogram, MergeWithEmptyKeepsStats)
{
    Histogram h(0.0, 10.0, 5);
    h.add(3.0);
    h.add(7.0);
    const std::string before = h.renderFlatJson();

    const Histogram empty(0.0, 10.0, 5);
    h.merge(empty);
    EXPECT_EQ(h.renderFlatJson(), before);
    EXPECT_DOUBLE_EQ(h.maxSample(), 7.0);

    Histogram fresh(0.0, 10.0, 5);
    fresh.merge(h);
    EXPECT_EQ(fresh.renderFlatJson(), before);
    EXPECT_DOUBLE_EQ(fresh.maxSample(), 7.0);
}

TEST(Histogram, MergeIncompatibleLayoutDies)
{
    Histogram linear(0.0, 10.0, 10);
    Histogram shifted(0.0, 20.0, 10);
    EXPECT_DEATH(linear.merge(shifted), "incompatible bin layout");

    Histogram log = Histogram::logScale(1.0, 10.0, 10);
    Histogram sameEdgesLinear(1.0, 10.0, 10);
    EXPECT_DEATH(sameEdgesLinear.merge(log), "incompatible bin layout");
}

TEST(Histogram, FlatJsonIsInsertionOrderInvariant)
{
    Histogram forward = Histogram::logScale(1.0, 1048576.0, 120);
    Histogram backward = Histogram::logScale(1.0, 1048576.0, 120);
    std::vector<double> samples;
    RandomGenerator rng(5);
    for (int i = 0; i < 500; ++i)
        samples.push_back(std::floor(1.0 + rng.uniformReal() * 2e6));
    for (double v : samples)
        forward.add(v);
    for (auto it = samples.rbegin(); it != samples.rend(); ++it)
        backward.add(*it);
    EXPECT_EQ(forward.renderFlatJson(), backward.renderFlatJson());

    // Sparse counts: empty bins are omitted, so a tiny histogram
    // renders a short, predictable line.
    Histogram tiny(0.0, 4.0, 4);
    tiny.add(0.5);
    tiny.add(2.5);
    tiny.add(2.6);
    EXPECT_EQ(tiny.renderFlatJson(),
              "{\"type\":\"sbn.hist.v1\",\"scale\":\"linear\","
              "\"lo\":0,\"hi\":4,\"bins\":4,\"count\":3,"
              "\"underflow\":0,\"overflow\":0,\"sum\":5.5999999999999996,"
              "\"counts\":\"0:1 2:2\"}");
}

TEST(Replication, DeterministicSeedDerivation)
{
    std::vector<std::uint64_t> seen_a, seen_b;
    auto run_a = runReplications(
        [&](std::uint64_t s) {
            seen_a.push_back(s);
            return static_cast<double>(s % 100);
        },
        5, 42);
    auto run_b = runReplications(
        [&](std::uint64_t s) {
            seen_b.push_back(s);
            return static_cast<double>(s % 100);
        },
        5, 42);
    EXPECT_EQ(seen_a, seen_b);
    EXPECT_DOUBLE_EQ(run_a.mean, run_b.mean);
    EXPECT_EQ(run_a.samples, 5u);
}

TEST(Replication, IntervalCoversTrueMean)
{
    // Experiment returns seed-dependent noise around 10.
    auto est = runReplications(
        [](std::uint64_t s) {
            RandomGenerator rng(s);
            double acc = 0.0;
            for (int i = 0; i < 1000; ++i)
                acc += rng.uniformReal();
            return 10.0 + (acc / 1000.0 - 0.5);
        },
        10, 7);
    EXPECT_TRUE(est.covers(10.0, 0.02));
    EXPECT_GT(est.halfWidth, 0.0);
}

TEST(ReplicationRounds, SeedStreamIgnoresRoundBoundaries)
{
    // Growing in rounds must hand out exactly the one-shot derivation
    // stream: replication i gets the same seed however the run grew.
    RandomGenerator seeder(31337);
    std::vector<std::uint64_t> expected(11);
    for (auto &s : expected)
        s = seeder.deriveSeed();

    ReplicationRounds rounds(31337);
    std::vector<std::uint64_t> streamed;
    for (unsigned target : {3u, 3u, 7u, 11u}) { // repeat = no-op
        const auto seeds = rounds.seedsForExtension(target);
        streamed.insert(streamed.end(), seeds.begin(), seeds.end());
        rounds.accept(std::vector<double>(seeds.size(), 1.0));
        EXPECT_EQ(rounds.completed(), target);
    }
    EXPECT_EQ(streamed, expected);
}

TEST(ReplicationRounds, RoundGrowthMatchesOneShotAccumulation)
{
    const auto experiment = [](std::uint64_t s) {
        RandomGenerator rng(s);
        return rng.uniformReal() * 5.0 - 1.0;
    };

    // One-shot reference over 10 replications.
    RandomGenerator seeder(99);
    Accumulator reference;
    for (int i = 0; i < 10; ++i)
        reference.add(experiment(seeder.deriveSeed()));

    // The same 10 replications grown in three rounds.
    ReplicationRounds rounds(99, 0.95);
    for (unsigned target : {2u, 5u, 10u}) {
        std::vector<double> values;
        for (std::uint64_t seed : rounds.seedsForExtension(target))
            values.push_back(experiment(seed));
        rounds.accept(values);
    }

    const Estimate est = rounds.estimate();
    EXPECT_EQ(est.samples, 10u);
    EXPECT_EQ(est.mean, reference.mean());
    EXPECT_EQ(est.halfWidth, reference.confidenceHalfWidth(0.95));
}

TEST(ReplicationRounds, FewerThanTwoReplicationsHaveNoInterval)
{
    ReplicationRounds rounds(5);
    EXPECT_EQ(rounds.completed(), 0u);
    EXPECT_EQ(rounds.estimate().halfWidth, 0.0);

    const auto seeds = rounds.seedsForExtension(1);
    ASSERT_EQ(seeds.size(), 1u);
    rounds.accept({4.25});
    const Estimate est = rounds.estimate();
    EXPECT_EQ(est.samples, 1u);
    EXPECT_EQ(est.mean, 4.25);
    EXPECT_EQ(est.halfWidth, 0.0);
}

} // namespace
} // namespace sbn
