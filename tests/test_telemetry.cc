/**
 * @file
 * Tests for the run-telemetry registry (src/telemetry): enable/reset
 * semantics, dump format, and the headline determinism contract -
 * the same config and seed produce byte-identical counter dumps at
 * any thread count, because kernels flush locally-accumulated counts
 * once per run and adaptive-round decisions happen in the serial
 * finalization phase.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/experiment.hh"
#include "exec/thread_pool.hh"
#include "service/protocol.hh"
#include "telemetry/telemetry.hh"

namespace sbn {
namespace {

/** RAII: leave telemetry disabled and zeroed however a test exits. */
struct TelemetryGuard
{
    TelemetryGuard()
    {
        setTelemetryEnabled(false);
        telemetryReset();
    }
    ~TelemetryGuard()
    {
        setTelemetryEnabled(false);
        telemetryReset();
    }
};

TEST(Telemetry, NamesAreCanonicalAndDistinct)
{
    std::set<std::string> seen;
    for (unsigned i = 0; i < kTelemetryCounterCount; ++i) {
        const std::string name =
            telemetryCounterName(static_cast<TelemetryCounter>(i));
        EXPECT_EQ(name.rfind("ctr.", 0), 0u) << name;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate counter name " << name;
    }
    for (unsigned i = 0; i < kTelemetryTimerCount; ++i) {
        const std::string name =
            telemetryTimerName(static_cast<TelemetryTimer>(i));
        EXPECT_EQ(name.rfind("tmr.", 0), 0u) << name;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate timer name " << name;
    }
}

TEST(Telemetry, DisabledAddsAreDropped)
{
    TelemetryGuard guard;
    EXPECT_FALSE(telemetryEnabled());
    telemetryAdd(TelemetryCounter::SimRuns, 5);
    const TelemetrySnapshot snap = telemetrySnapshot();
    for (unsigned i = 0; i < kTelemetryCounterCount; ++i)
        EXPECT_EQ(snap.counters[i], 0u);
}

TEST(Telemetry, CountersAccumulateAndResetZeroes)
{
    TelemetryGuard guard;
    setTelemetryEnabled(true);
    telemetryAdd(TelemetryCounter::SimRuns, 2);
    telemetryAdd(TelemetryCounter::SimRuns, 3);
    telemetryAdd(TelemetryCounter::ShardRecordsWritten, 1);
    TelemetrySnapshot snap = telemetrySnapshot();
    EXPECT_EQ(snap.counters[static_cast<unsigned>(
                  TelemetryCounter::SimRuns)],
              5u);
    EXPECT_EQ(snap.counters[static_cast<unsigned>(
                  TelemetryCounter::ShardRecordsWritten)],
              1u);

    telemetryReset();
    snap = telemetrySnapshot();
    for (unsigned i = 0; i < kTelemetryCounterCount; ++i)
        EXPECT_EQ(snap.counters[i], 0u);
}

TEST(Telemetry, DumpIsFlatJsonWithEveryCounterKey)
{
    TelemetryGuard guard;
    setTelemetryEnabled(true);
    telemetryAdd(TelemetryCounter::SimThinkDraws, 7);
    telemetryAddTimer(TelemetryTimer::SimRun, 1234);

    const TelemetrySnapshot snap = telemetrySnapshot();
    const std::string with_timers =
        formatTelemetrySnapshot(snap, /*include_timers=*/true);
    JsonObject fields;
    std::string error;
    ASSERT_TRUE(parseFlatJsonObject(with_timers, fields, error))
        << error;
    EXPECT_EQ(fields.at("type").text, "sbn.telemetry.v1");
    for (unsigned i = 0; i < kTelemetryCounterCount; ++i) {
        const char *name =
            telemetryCounterName(static_cast<TelemetryCounter>(i));
        ASSERT_TRUE(fields.count(name)) << "missing key " << name;
    }
    EXPECT_EQ(fields
                  .at(std::string(telemetryCounterName(
                          TelemetryCounter::SimThinkDraws)))
                  .number,
              7.0);
    const std::string run_ns =
        std::string(telemetryTimerName(TelemetryTimer::SimRun)) +
        "_ns";
    EXPECT_TRUE(fields.count(run_ns));

    // Counters-only form: timer keys absent, counter keys intact.
    const std::string counters_only =
        formatTelemetrySnapshot(snap, /*include_timers=*/false);
    JsonObject counters;
    ASSERT_TRUE(parseFlatJsonObject(counters_only, counters, error))
        << error;
    EXPECT_FALSE(counters.count(run_ns));
    for (unsigned i = 0; i < kTelemetryCounterCount; ++i)
        EXPECT_TRUE(counters.count(
            telemetryCounterName(static_cast<TelemetryCounter>(i))));
}

/** A simulation run with telemetry disabled must leave the registry
 *  untouched (the kernels' flush is gated, not merely zero). */
TEST(Telemetry, DisabledSimulationLeavesRegistryUntouched)
{
    TelemetryGuard guard;
    SystemConfig cfg;
    cfg.numProcessors = 4;
    cfg.numModules = 4;
    cfg.memoryRatio = 4;
    cfg.warmupCycles = 100;
    cfg.measureCycles = 2000;
    (void)runOnce(cfg);
    const TelemetrySnapshot snap = telemetrySnapshot();
    for (unsigned i = 0; i < kTelemetryCounterCount; ++i)
        EXPECT_EQ(snap.counters[i], 0u);
}

/** Run one adaptive estimate at @p threads and return the
 *  counters-only dump it produced. */
std::string
adaptiveCounterDump(unsigned threads)
{
    telemetryReset();
    SystemConfig cfg;
    cfg.numProcessors = 8;
    cfg.numModules = 8;
    cfg.memoryRatio = 4;
    cfg.requestProbability = 0.7;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 5000;
    cfg.seed = 20260808;

    PrecisionTarget target;
    target.relative = 0.002; // tight: forces extra adaptive rounds
    RoundSchedule schedule;
    schedule.initial = 4;
    schedule.growth = 2.0;
    schedule.cap = 16;
    (void)replicateToPrecision(
        cfg, target, [](const Metrics &m) { return m.ebw; }, schedule,
        threads);
    return formatTelemetrySnapshot(telemetrySnapshot(),
                                   /*include_timers=*/false);
}

/**
 * The determinism headline: same config + seed => byte-identical
 * counter dumps at 1, 4, and all hardware threads. Timer keys are
 * wall time and excluded by the counters-only format.
 */
TEST(Telemetry, CounterDumpByteIdenticalAcrossThreadCounts)
{
    TelemetryGuard guard;
    setTelemetryEnabled(true);

    const std::string serial = adaptiveCounterDump(1);

    // Sanity: the serial run actually moved the kernel counters.
    JsonObject fields;
    std::string error;
    ASSERT_TRUE(parseFlatJsonObject(serial, fields, error)) << error;
    EXPECT_GT(fields
                  .at(std::string(telemetryCounterName(
                      TelemetryCounter::SimRuns)))
                  .number,
              0.0);
    EXPECT_GT(fields
                  .at(std::string(telemetryCounterName(
                      TelemetryCounter::SimRequestsCompleted)))
                  .number,
              0.0);

    for (const unsigned threads :
         {4u, ThreadPool::hardwareThreads()}) {
        const std::string parallel = adaptiveCounterDump(threads);
        EXPECT_EQ(parallel, serial) << threads << " threads";
    }
}

/** FastStat flushes through the same registry: its counter totals are
 *  thread-invariant too (and independent replications again produce
 *  identical dumps). */
TEST(Telemetry, FastStatCounterDumpRepeatsExactly)
{
    TelemetryGuard guard;
    setTelemetryEnabled(true);

    SystemConfig cfg;
    cfg.kernel = KernelKind::FastStat;
    cfg.numProcessors = 8;
    cfg.numModules = 8;
    cfg.memoryRatio = 4;
    cfg.requestProbability = 0.7;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 5000;
    cfg.seed = 3;

    telemetryReset();
    (void)runOnce(cfg);
    const std::string first = formatTelemetrySnapshot(
        telemetrySnapshot(), /*include_timers=*/false);

    telemetryReset();
    (void)runOnce(cfg);
    const std::string second = formatTelemetrySnapshot(
        telemetrySnapshot(), /*include_timers=*/false);

    EXPECT_EQ(first, second);
    JsonObject fields;
    std::string error;
    ASSERT_TRUE(parseFlatJsonObject(first, fields, error)) << error;
    EXPECT_GT(fields
                  .at(std::string(telemetryCounterName(
                      TelemetryCounter::SimThinkDraws)))
                  .number,
              0.0);
}

} // namespace
} // namespace sbn
